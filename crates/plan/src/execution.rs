//! The result of executing a prepared query: answers plus a uniform
//! provenance report.
//!
//! Every answering surface in the workspace used to report completeness in
//! its own vocabulary (`Rewriting::complete`, `CertainAnswers::complete`,
//! `ObdaAnswers::exact`, `QueryResponse::exact`). The [`Provenance`] struct
//! is the single replacement: which plan was prepared, which strategy
//! actually ran, whether the answers are exactly the certain answers, *why*
//! (the trichotomy reason), and where the time went.

use crate::plan::PlanKind;
use ontorew_storage::AnswerSet;
use serde::Serialize;

/// The pipeline that actually produced the answers (for a [`Hybrid`] plan
/// this records the executor's choice, not the plan kind).
///
/// [`Hybrid`]: crate::plan::QueryPlan::Hybrid
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum StrategyTaken {
    /// The UCQ rewriting was evaluated over the source data.
    Rewriting,
    /// The query was evaluated over a chase materialization.
    Materialization,
    /// The query was evaluated over a magic-restricted chase that derived
    /// only the goal-relevant slice of the universal model.
    GoalDriven,
    /// Best-effort: the bounded rewriting's answers were unioned with a
    /// bounded chase's answers (both sound).
    Combined,
}

impl std::fmt::Display for StrategyTaken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StrategyTaken::Rewriting => "rewriting",
            StrategyTaken::Materialization => "materialization",
            StrategyTaken::GoalDriven => "goal-driven",
            StrategyTaken::Combined => "combined",
        })
    }
}

/// How a chase materialization was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum MaterializationMode {
    /// The whole store was chased from scratch.
    Scratch,
    /// A cached ancestor materialization was extended by an incremental
    /// chase over a recorded insert delta instead of re-chasing the store.
    Incremental {
        /// The data version of the ancestor materialization that was
        /// extended.
        from: u64,
        /// Number of genuinely new facts the incremental chase was seeded
        /// with (the composed batches, deduplicated and with already-chased
        /// facts removed).
        delta_facts: usize,
    },
    /// A cached ancestor materialization was brought forward through a
    /// lineage containing at least one **delete** edge: insert batches ran
    /// the incremental chase, delete batches ran DRed (delete-and-rederive
    /// over the derivation graph) instead of re-chasing the store.
    Dred {
        /// The data version of the ancestor materialization the lineage
        /// was replayed from.
        from: u64,
        /// Genuinely new facts the insert batches seeded.
        delta_facts: usize,
        /// Facts dropped from the materialized model across the delete
        /// batches (withdrawn assertions plus cascaded derivations, minus
        /// everything rederived).
        removed_facts: usize,
    },
}

impl std::fmt::Display for MaterializationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaterializationMode::Scratch => f.write_str("scratch"),
            MaterializationMode::Incremental { from, delta_facts } => {
                write!(f, "incremental(from={from}, delta_facts={delta_facts})")
            }
            MaterializationMode::Dred {
                from,
                delta_facts,
                removed_facts,
            } => {
                write!(
                    f,
                    "dred(from={from}, delta_facts={delta_facts}, removed_facts={removed_facts})"
                )
            }
        }
    }
}

/// Summary of the chase run behind a materialization-based execution.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ChaseSummary {
    /// Facts in the materialized instance.
    pub facts: usize,
    /// Labelled nulls invented.
    pub nulls: usize,
    /// Rounds executed.
    pub rounds: usize,
    /// True if the chase reached a fixpoint (universal model).
    pub complete: bool,
}

/// Summary of a goal-driven (magic-restricted) execution: how much of the
/// program was relevant and how much of the model the restriction skipped.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct GoalDrivenSummary {
    /// Rules of the original program in the query's relevance slice.
    pub relevant_rules: usize,
    /// Adorned guarded copies the magic rewrite emitted.
    pub adorned_rules: usize,
    /// Facts in the restricted chase's instance (seeds + slice).
    pub facts_derived: usize,
    /// Estimated facts a full-model materialization would hold — the cached
    /// full materialization's size when one exists for this data version,
    /// otherwise a store-size heuristic.
    pub full_model_estimate: usize,
}

/// The cost model's view of the executed query against what actually
/// happened: the per-strategy cost estimates, the join strategy those
/// estimates prefer for the query body, and the estimated vs. actual answer
/// cardinality — so `EXPLAIN` (and anything consuming serialized provenance)
/// exposes misestimates instead of hiding them.
#[derive(Clone, Debug, Serialize)]
pub struct CardinalityEstimate {
    /// The join strategy the cost model prefers for the query body
    /// (`"backtracking"` or `"generic_join"`).
    pub strategy: String,
    /// Estimated satisfying assignments of the query body.
    pub estimated_rows: u64,
    /// Answer tuples the execution actually produced.
    pub actual_rows: usize,
    /// Simulated cost (rows touched) of the backtracking join.
    pub backtracking_cost: f64,
    /// Simulated cost of the generic join (infinite for acyclic bodies).
    pub generic_join_cost: f64,
}

/// Where the execution's time went, microseconds.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct Timings {
    /// Time spent materializing the chase *in this execution* (0 when the
    /// materialization came from the planner's per-version cache).
    pub materialize_us: u64,
    /// Time spent evaluating queries over the store(s).
    pub evaluate_us: u64,
    /// End-to-end execution time.
    pub total_us: u64,
}

/// The uniform provenance report carried by every [`Execution`].
#[derive(Clone, Debug, Serialize)]
pub struct Provenance {
    /// The plan that was prepared for the query.
    pub plan: PlanKind,
    /// The strategy that actually ran.
    pub strategy: StrategyTaken,
    /// True when the answers are guaranteed to be *exactly* the certain
    /// answers; false means a sound under-approximation.
    pub exact: bool,
    /// Why: the trichotomy reason from the classification report, plus any
    /// runtime decision (hybrid choice, budget cut, chase fixpoint).
    pub reason: String,
    /// Disjuncts of the evaluated rewriting, when one was evaluated.
    pub rewriting_disjuncts: Option<usize>,
    /// Whether that rewriting was complete (a perfect rewriting).
    pub rewriting_complete: Option<bool>,
    /// The chase behind the materialization, when one was evaluated.
    pub chase: Option<ChaseSummary>,
    /// Whether the materialization came from the planner's per-version
    /// cache (None when no materialization was involved).
    pub materialization_cached: Option<bool>,
    /// How the materialization was obtained — chased from scratch, or an
    /// incremental extension of a cached ancestor version (None when no
    /// materialization was involved).
    pub materialization: Option<MaterializationMode>,
    /// The goal-driven (magic-restricted) run, when one was executed.
    pub goal_driven: Option<GoalDrivenSummary>,
    /// Estimated vs. actual cardinality of this execution, when statistics
    /// were available to the cost model (None on stores too large to scan).
    pub cardinality: Option<CardinalityEstimate>,
    /// Timing breakdown.
    pub timings: Timings,
}

/// The answers of one plan execution, with full provenance.
#[derive(Clone, Debug)]
pub struct Execution {
    /// The certain answers (or a sound under-approximation of them — see
    /// [`Provenance::exact`]).
    pub answers: AnswerSet,
    /// How the answers were produced and what they guarantee.
    pub provenance: Provenance,
}

impl Execution {
    /// True when the answers are exactly the certain answers.
    pub fn is_exact(&self) -> bool {
        self.provenance.exact
    }
}
