//! The planner: classify once, compile a plan per query, execute anywhere.

use crate::execution::{
    CardinalityEstimate, ChaseSummary, Execution, GoalDrivenSummary, MaterializationMode,
    Provenance, StrategyTaken, Timings,
};
use crate::plan::{MaterializationGuarantee, PlanKind, QueryPlan};
use ontorew_chase::{
    chase, chase_incremental, chase_retract, ChaseConfig, ChaseOutcome, ChaseResult,
    DerivationGraph,
};
use ontorew_core::{classify, ClassificationReport};
use ontorew_magic::{
    rewrite_goal_driven, rewrite_goal_driven_with, Adornment, MagicProgram, SipSelectivity,
};
use ontorew_model::prelude::*;
use ontorew_rewrite::{evaluate_rewriting_configured, rewrite, RewriteConfig, Rewriting};
use ontorew_storage::{
    estimate_join_cost, evaluate_cq, EvalConfig, RelationalStore, StoreStatistics,
};
use ontorew_telemetry::{global_registry, span};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Count one materialization by how it was obtained (the `mode` label of
/// `plan_materializations_total`).
fn record_materialization_mode(mode: &MaterializationMode) {
    let label = match mode {
        MaterializationMode::Scratch => "scratch",
        MaterializationMode::Incremental { .. } => "incremental",
        MaterializationMode::Dred { .. } => "dred",
    };
    global_registry()
        .counter(
            "plan_materializations_total",
            "Materializations computed, by mode (scratch, incremental, dred).",
            &[("mode", label)],
        )
        .inc();
}

/// [`SipSelectivity`] oracle backed by measured store statistics: an adorned
/// atom's estimate is its relation's cardinality divided by the distinct
/// counts of its bound columns (uniformity/independence) — the expected
/// matches once the SIP has fixed those positions. Derived predicates with
/// no stored relation estimate as infinite, so demand flows through measured
/// data first and reaches derived atoms carrying the most bindings.
struct StatisticsSipSelectivity<'a> {
    statistics: &'a StoreStatistics,
}

impl SipSelectivity for StatisticsSipSelectivity<'_> {
    fn estimate(&self, atom: &Atom, adornment: &Adornment) -> f64 {
        let Some(relation) = self.statistics.relation(atom.predicate) else {
            return f64::INFINITY;
        };
        let mut estimate = relation.cardinality as f64;
        for position in 0..atom.terms.len() {
            if adornment.bound_at(position) {
                let distinct = relation
                    .columns
                    .get(position)
                    .map(|c| c.distinct.max(1))
                    .unwrap_or(1) as f64;
                estimate /= distinct;
            }
        }
        estimate
    }
}

/// Configuration of a [`Planner`].
#[derive(Clone, Copy, Debug)]
pub struct PlannerConfig {
    /// Rewriting budgets. `None` (the default) uses the size-aware
    /// [`RewriteConfig::for_program`] heuristic.
    pub rewrite: Option<RewriteConfig>,
    /// Chase budgets for materialization-based plans.
    pub chase: ChaseConfig,
    /// Hybrid cost signal: above this rewriting fan-out, a hybrid plan
    /// prefers materialization when it is affordable (cached, or the store
    /// is below [`PlannerConfig::small_store_facts`]).
    pub hybrid_disjunct_cutoff: usize,
    /// Stores at or below this many facts count as cheap to materialize —
    /// used by hybrid plans and by the best-effort chase union.
    pub small_store_facts: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            rewrite: None,
            chase: ChaseConfig::default(),
            hybrid_disjunct_cutoff: 256,
            small_store_facts: 10_000,
        }
    }
}

/// How many data versions of chase materializations the planner keeps. Epoch
/// traffic only ever needs the latest one or two; the small surplus absorbs
/// multi-tenant interleavings.
///
/// The cache is strictly in-memory state, **never persisted** by the
/// durability layer: after a crash or restart only base facts are recovered
/// (WAL + segments), so the first chase-backed query of the new process
/// rebuilds its materialization from scratch
/// ([`MaterializationMode::Scratch`]) and the version chain re-grows from
/// there. Materializations are derived data — persisting them would mean
/// proving on recovery that a half-written chase store is consistent with
/// the replayed WAL, for a cost that one warm-up chase already bounds.
const MATERIALIZATION_CACHE_VERSIONS: usize = 4;

/// How many recorded insert deltas the planner keeps, and the longest delta
/// chain an incremental materialization will compose. Commit-per-fact
/// tenants produce many tiny edges; 64 of them bridge a realistic gap
/// between queries without letting the walk grow unbounded.
const MATERIALIZATION_DELTA_EDGES: usize = 64;

/// A chase materialization of one data version: the chased store, its
/// guarantees, the chase state an incremental continuation extends, and the
/// run statistics.
#[derive(Debug)]
pub struct Materialization {
    /// The chased store the query is evaluated over (frozen: clones share
    /// segments).
    pub store: RelationalStore,
    /// True if the chase reached a fixpoint (the store is a universal
    /// model, so evaluation yields exactly the certain answers). An
    /// incremental materialization is complete iff its base was and its own
    /// continuation reached a fixpoint.
    pub complete: bool,
    /// Facts in the chased store.
    pub facts: usize,
    /// Labelled nulls invented by the chase.
    pub nulls: usize,
    /// Chase rounds executed (of the latest scratch run or continuation).
    pub rounds: usize,
    /// Wall-clock cost of producing this materialization (chase +
    /// re-indexing for scratch; incremental chase + store extension for
    /// incremental), microseconds.
    pub micros: u64,
    /// How this materialization was obtained; reported in provenance.
    pub mode: MaterializationMode,
    /// Facts of the source store the materialization was computed from — a
    /// cheap sanity guard against version-token misuse.
    source_facts: usize,
    /// The chase state (frozen instance + fired keys) that
    /// [`chase_incremental`] seeds from when this version is extended.
    /// `store` is derived from the same instance and shares its segments.
    chased: ChaseResult,
    /// The labelled nulls of the chased instance. Kept as a shared set so
    /// an incremental extension can compute its exact null count in
    /// O(delta nulls) — a continuation can propagate *base* nulls into new
    /// facts, so `added`'s nulls alone would double-count.
    null_set: Arc<std::collections::BTreeSet<ontorew_model::term::Null>>,
}

impl Materialization {
    /// The chased instance behind the evaluation store (shares its
    /// segments). This is what `WHY NOT` explanations probe for blocked
    /// rule bodies.
    pub fn instance(&self) -> &Instance {
        &self.chased.instance
    }

    /// The derivation graph recorded during the chase, when the planner's
    /// [`ChaseConfig::track_provenance`] was on — what `WHY` walks and what
    /// DRed retraction repairs. `None` for untracked materializations.
    pub fn provenance(&self) -> Option<&DerivationGraph> {
        self.chased.provenance.as_ref()
    }

    fn summary(&self) -> ChaseSummary {
        ChaseSummary {
            facts: self.facts,
            nulls: self.nulls,
            rounds: self.rounds,
            complete: self.complete,
        }
    }
}

/// How many data versions of store statistics the planner keeps. Statistics
/// are a single store scan, so the cache is small and simply cleared at
/// capacity instead of tracking recency.
const STATISTICS_CACHE_VERSIONS: usize = 8;

/// Stores above this many facts are not scanned for statistics during
/// execution: the cost model falls back to the legacy size-threshold
/// signals rather than pay an unamortised O(store) pass.
const STATISTICS_MAX_FACTS: usize = 1 << 20;

/// Abstract cost units per derived fact of a chase run: a chase step does an
/// order of magnitude more work per fact (trigger search, null invention,
/// index maintenance) than a join touches per row.
const CHASE_COST_PER_FACT: f64 = 16.0;

/// At most this many rewriting disjuncts are individually costed; wider
/// unions are sampled and scaled, keeping the cost decision itself cheap.
const UCQ_COST_SAMPLE: usize = 128;

/// Per-version store statistics, guarded by the source store's fact count
/// exactly like the materialization cache.
#[derive(Default)]
struct StatisticsCache {
    entries: HashMap<u64, (usize, Arc<StoreStatistics>)>,
}

/// Whether a recorded delta batch inserted or deleted its facts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DeltaKind {
    Insert,
    Delete,
}

/// A recorded commit batch: `version` was produced from `parent` by
/// inserting or deleting `facts`, resulting in a store of `resulting_facts`
/// facts (the end-to-end guard an incremental extension is validated
/// against). The batch is behind an `Arc` so recording and chain-walking
/// never copy atoms while the cache lock is held.
#[derive(Clone, Debug)]
struct DeltaEdge {
    parent: u64,
    kind: DeltaKind,
    facts: Arc<[Atom]>,
    resulting_facts: usize,
}

/// The planner state shared by every [`PreparedQuery`] it hands out.
pub(crate) struct PlannerShared {
    program: TgdProgram,
    classification: ClassificationReport,
    rewrite_config: RewriteConfig,
    chase_config: ChaseConfig,
    hybrid_disjunct_cutoff: usize,
    small_store_facts: usize,
    /// Chase materializations keyed by caller-supplied data version, with a
    /// recency tick per entry (eviction is least-recently-used — versions
    /// are tenant-tagged, so "smallest version" would always sacrifice the
    /// lowest-tagged tenant). One materialization serves every chase-plan
    /// query against that version.
    materializations: Mutex<MaterializationCache>,
    /// Store statistics keyed by data version, feeding the cost model.
    statistics: Mutex<StatisticsCache>,
}

/// What a successful delta-chain walk hands back: the ancestor's version,
/// its cached materialization, and the kinded batches to replay (oldest
/// first).
type IncrementalBase = (u64, Arc<Materialization>, Vec<(DeltaKind, Arc<[Atom]>)>);

#[derive(Default)]
struct MaterializationCache {
    entries: HashMap<u64, (u64, Arc<Materialization>)>,
    /// Recorded insert batches keyed by resulting version, tick-stamped for
    /// eviction. `deltas[v] = (tick, edge)` says `v = edge.parent ∪
    /// edge.facts` — the chain a cache miss walks backwards to find a
    /// cached ancestor it can extend instead of re-chasing.
    deltas: HashMap<u64, (u64, DeltaEdge)>,
    tick: u64,
}

impl MaterializationCache {
    /// A cached entry for `version` matching the store's size guard,
    /// refreshing its recency.
    fn get(&mut self, version: u64, source_facts: usize) -> Option<Arc<Materialization>> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&version) {
            Some((last_used, m)) if m.source_facts == source_facts => {
                *last_used = tick;
                Some(Arc::clone(m))
            }
            _ => None,
        }
    }

    /// Insert `materialization` under `version`, evicting the
    /// least-recently-used entry at capacity.
    fn insert(&mut self, version: u64, materialization: Arc<Materialization>) {
        self.tick += 1;
        if self.entries.len() >= MATERIALIZATION_CACHE_VERSIONS
            && !self.entries.contains_key(&version)
        {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (last_used, _))| *last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(version, (self.tick, materialization));
    }

    /// Record that `version` was produced from `parent` by inserting
    /// `facts`, evicting the oldest edge at capacity.
    fn record_delta(&mut self, parent: u64, version: u64, edge: DeltaEdge) {
        debug_assert_eq!(parent, edge.parent);
        self.tick += 1;
        if self.deltas.len() >= MATERIALIZATION_DELTA_EDGES && !self.deltas.contains_key(&version) {
            if let Some(victim) = self
                .deltas
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| *k)
            {
                self.deltas.remove(&victim);
            }
        }
        self.deltas.insert(version, (self.tick, edge));
    }

    /// Walk the delta chain backwards from `version` looking for a cached,
    /// **complete** ancestor materialization: returns the ancestor and the
    /// batches to replay (oldest first), as shared handles so the caller
    /// can compose them *after* dropping the cache lock. The walk requires
    /// the edge into `version` to agree with the observed store size
    /// (`source_facts`) — the same guard `get` applies — and is bounded by
    /// the edge-store capacity, so it always terminates even on
    /// (impossible) cyclic version tokens.
    fn incremental_base(&mut self, version: u64, source_facts: usize) -> Option<IncrementalBase> {
        let newest = self.deltas.get(&version)?;
        if newest.1.resulting_facts != source_facts {
            return None;
        }
        let mut batches: Vec<(DeltaKind, Arc<[Atom]>)> = Vec::new();
        let mut at = version;
        for _ in 0..MATERIALIZATION_DELTA_EDGES {
            let (_, edge) = self.deltas.get(&at)?;
            batches.push((edge.kind, Arc::clone(&edge.facts)));
            at = edge.parent;
            if let Some((_, base)) = self.entries.get(&at) {
                if base.complete {
                    let base = Arc::clone(base);
                    batches.reverse();
                    self.tick += 1;
                    let tick = self.tick;
                    if let Some((last_used, _)) = self.entries.get_mut(&at) {
                        *last_used = tick;
                    }
                    return Some((at, base, batches));
                }
                // An incomplete (budget-cut) ancestor cannot be extended
                // soundly-and-completely; keep walking in case an older
                // complete one exists.
            }
        }
        None
    }
}

impl PlannerShared {
    /// Fetch or compute the statistics of `store` for the cost model. With a
    /// version token the scan happens once per data version; without one it
    /// only happens on stores cheap enough to scan per execution (the
    /// planner's small-store bound). `None` means the cost model has nothing
    /// to work with and callers fall back to size-threshold signals.
    fn store_statistics(
        &self,
        store: &RelationalStore,
        version: Option<u64>,
    ) -> Option<Arc<StoreStatistics>> {
        let source_facts = store.len();
        let Some(v) = version else {
            if source_facts > self.small_store_facts {
                return None;
            }
            return Some(Arc::new(StoreStatistics::collect(store)));
        };
        if source_facts > STATISTICS_MAX_FACTS {
            return None;
        }
        {
            let cache = self.statistics.lock();
            if let Some((facts, stats)) = cache.entries.get(&v) {
                if *facts == source_facts {
                    return Some(Arc::clone(stats));
                }
            }
        }
        // Collect outside the lock: other tenants' lookups must not wait on
        // the O(store) scan. A racing duplicate scan is harmless.
        let stats = Arc::new(StoreStatistics::collect(store));
        let mut cache = self.statistics.lock();
        if cache.entries.len() >= STATISTICS_CACHE_VERSIONS && !cache.entries.contains_key(&v) {
            cache.entries.clear();
        }
        cache.entries.insert(v, (source_facts, Arc::clone(&stats)));
        Some(stats)
    }

    /// Fetch or compute the materialization of `store`. With a version
    /// token, the result is cached and shared across queries; without one,
    /// every call chases afresh. On a miss at a version whose insert
    /// lineage is recorded (see [`Planner::record_delta`]) and whose
    /// ancestor materialization is cached and complete, the ancestor is
    /// **incrementally extended** — O(closure of the delta) — instead of
    /// re-chasing the whole store. The chase (either kind) runs outside the
    /// cache lock.
    fn materialize(
        &self,
        store: &RelationalStore,
        version: Option<u64>,
    ) -> (Arc<Materialization>, bool) {
        let source_facts = store.len();
        if let Some(v) = version {
            // The size guard inside `get` catches a caller reusing a version
            // token for different data; recomputing is then the safe choice.
            let mut cache = self.materializations.lock();
            if let Some(m) = cache.get(v, source_facts) {
                global_registry()
                    .counter(
                        "plan_materialization_cache_hits_total",
                        "Materialization cache hits (version token matched).",
                        &[],
                    )
                    .inc();
                return (m, true);
            }
            if let Some((from, base, batches)) = cache.incremental_base(v, source_facts) {
                drop(cache);
                let result = if batches.iter().any(|(kind, _)| *kind == DeltaKind::Delete) {
                    // At least one delete edge: replay the lineage stage by
                    // stage — incremental chase for inserts, DRed for
                    // deletes (needs the ancestor's derivation graph).
                    self.materialize_retraction(store, v, from, &base, &batches)
                } else {
                    // Pure-insert lineage: compose the recorded batches
                    // outside the lock (other tenants' cache lookups must
                    // not wait on O(delta) copying) and extend in one
                    // incremental chase.
                    let delta: Vec<Atom> = batches
                        .iter()
                        .flat_map(|(_, batch)| batch.iter().cloned())
                        .collect();
                    self.materialize_incremental(store, v, from, &base, delta)
                };
                if let Some(materialization) = result {
                    record_materialization_mode(&materialization.mode);
                    return (materialization, false);
                }
                // Validation failed (stale tokens, mismatched lineage, no
                // derivation graph to retract over): fall through to the
                // scratch chase.
            }
        }
        let start = Instant::now();
        let mut result = chase(&self.program, &store.to_instance(), &self.chase_config);
        // Freeze so the cached instance clones in O(#segments) — what makes
        // later incremental extensions and hybrid peeks cheap — and so the
        // evaluation store shares its segments instead of copying the rows.
        result.instance.freeze();
        let chased_store = RelationalStore::from_instance(&result.instance);
        let null_set = Arc::new(result.instance.nulls());
        let materialization = Arc::new(Materialization {
            complete: result.is_universal_model(),
            facts: result.instance.len(),
            nulls: null_set.len(),
            rounds: result.rounds,
            micros: start.elapsed().as_micros() as u64,
            mode: MaterializationMode::Scratch,
            source_facts,
            store: chased_store,
            chased: result,
            null_set,
        });
        record_materialization_mode(&MaterializationMode::Scratch);
        if let Some(v) = version {
            self.materializations
                .lock()
                .insert(v, Arc::clone(&materialization));
        }
        (materialization, false)
    }

    /// Extend the cached `base` materialization (of version `from`) by the
    /// composed insert `delta`, producing and caching the materialization
    /// of `version`. Returns `None` when the end-to-end size guard fails —
    /// the extended source does not match the observed store — in which
    /// case the caller falls back to a scratch chase.
    fn materialize_incremental(
        &self,
        store: &RelationalStore,
        version: u64,
        from: u64,
        base: &Arc<Materialization>,
        delta: Vec<Atom>,
    ) -> Option<Arc<Materialization>> {
        let start = Instant::now();
        // End-to-end guard: the base's source plus the genuinely-new delta
        // facts must reproduce the observed store size. This catches stale
        // or colliding version tokens the same way `get`'s size guard does,
        // before any chase work is wasted. Checking novelty against the
        // *chased* instance (the source store is not retained) is
        // conservative: a delta fact the base had merely derived makes the
        // guard under-count and fall back to a scratch chase — correct,
        // just not incremental.
        let mut new_source = base.source_facts;
        {
            let mut seen = Instance::new();
            for fact in &delta {
                if !base.chased.instance.contains(fact) && seen.insert(fact.clone()) {
                    new_source += 1;
                }
            }
        }
        if new_source != store.len() {
            return None;
        }
        // The genuinely-new facts (deduplicated, not already chased) are
        // what the continuation actually seeds — the honest delta size for
        // provenance, as opposed to the raw composed batch length.
        let delta_facts = new_source - base.source_facts;
        let delta_instance = Instance::from_atoms(delta);
        let incremental = chase_incremental(
            &self.program,
            &base.chased,
            &delta_instance,
            &self.chase_config,
        );
        let mut result = incremental.result;
        result.instance.freeze();
        // The evaluation store shares the frozen instance's segments —
        // O(#segments), no rows duplicated (the base's segments are reused
        // by the continuation's copy-on-write instance clone).
        let chased_store = RelationalStore::from_instance(&result.instance);
        // Exact null count in O(delta nulls): a continuation can propagate
        // *base* nulls into newly derived facts, so only genuinely new
        // nulls extend the shared set.
        let new_nulls: Vec<_> = incremental
            .added
            .nulls()
            .into_iter()
            .filter(|n| !base.null_set.contains(n))
            .collect();
        let null_set = if new_nulls.is_empty() {
            Arc::clone(&base.null_set)
        } else {
            let mut set = (*base.null_set).clone();
            set.extend(new_nulls);
            Arc::new(set)
        };
        let materialization = Arc::new(Materialization {
            complete: base.complete && result.is_universal_model(),
            facts: result.instance.len(),
            nulls: null_set.len(),
            rounds: result.rounds,
            micros: start.elapsed().as_micros() as u64,
            mode: MaterializationMode::Incremental { from, delta_facts },
            source_facts: store.len(),
            store: chased_store,
            chased: result,
            null_set,
        });
        self.materializations
            .lock()
            .insert(version, Arc::clone(&materialization));
        Some(materialization)
    }

    /// Replay a mixed insert/delete lineage on top of the cached `base`
    /// materialization (of version `from`): consecutive same-kind batches
    /// are coalesced, insert runs extend the chase state with
    /// [`chase_incremental`], delete runs repair it with [`chase_retract`]
    /// (DRed over the derivation graph). Returns `None` when the base
    /// carries no derivation graph (the planner's chase config ran without
    /// `track_provenance`) or when the end-to-end source guard fails — the
    /// caller then falls back to a scratch chase.
    fn materialize_retraction(
        &self,
        store: &RelationalStore,
        version: u64,
        from: u64,
        base: &Arc<Materialization>,
        batches: &[(DeltaKind, Arc<[Atom]>)],
    ) -> Option<Arc<Materialization>> {
        let start = Instant::now();
        // DRed rederives through the recorded derivation graph; without one
        // there is nothing to repair from.
        base.chased.provenance.as_ref()?;
        let config = ChaseConfig {
            track_provenance: true,
            ..self.chase_config
        };
        // Coalesce consecutive same-kind batches so a burst of
        // commit-per-fact edges costs one chase call per direction change.
        let mut runs: Vec<(DeltaKind, Vec<Atom>)> = Vec::new();
        for (kind, batch) in batches {
            match runs.last_mut() {
                Some((run_kind, facts)) if run_kind == kind => {
                    facts.extend(batch.iter().cloned());
                }
                _ => runs.push((*kind, batch.iter().cloned().collect())),
            }
        }
        let mut delta_facts = 0usize;
        let mut removed_facts = 0usize;
        let mut complete = base.complete;
        let mut current: Option<ChaseResult> = None;
        for (kind, facts) in runs {
            let prev: &ChaseResult = current.as_ref().unwrap_or(&base.chased);
            match kind {
                DeltaKind::Insert => {
                    // Count the genuinely new facts (novelty against the
                    // chased state is conservative, same as the pure-insert
                    // path) but seed the chase with the *full* batch: the
                    // graph must record every committed fact as a base
                    // assertion even when it was previously only derived,
                    // or a later retraction could cascade it away.
                    let mut seen = Instance::new();
                    for fact in &facts {
                        if !prev.instance.contains(fact) && seen.insert(fact.clone()) {
                            delta_facts += 1;
                        }
                    }
                    let incremental = chase_incremental(
                        &self.program,
                        prev,
                        &Instance::from_atoms(facts),
                        &config,
                    );
                    complete = complete && incremental.result.is_universal_model();
                    current = Some(incremental.result);
                }
                DeltaKind::Delete => {
                    let retracted =
                        chase_retract(&self.program, prev, &Instance::from_atoms(facts), &config);
                    removed_facts += retracted.removed;
                    // A scratch fallback inside the retraction re-chased
                    // the surviving source from nothing, so its own
                    // fixpoint verdict stands alone.
                    complete =
                        (complete || retracted.scratch) && retracted.result.is_universal_model();
                    current = Some(retracted.result);
                }
            }
        }
        let mut result = current?;
        // End-to-end guard, the retraction-aware analogue of the insert
        // path's size check: after replaying the lineage, the surviving
        // base assertions of the derivation graph *are* the source facts
        // the lineage claims — they must match the observed store.
        let asserted = result
            .provenance
            .as_ref()
            .map(|graph| graph.base_facts().count())?;
        if asserted != store.len() {
            return None;
        }
        result.instance.freeze();
        let chased_store = RelationalStore::from_instance(&result.instance);
        let null_set = Arc::new(result.instance.nulls());
        let materialization = Arc::new(Materialization {
            complete,
            facts: result.instance.len(),
            nulls: null_set.len(),
            rounds: result.rounds,
            micros: start.elapsed().as_micros() as u64,
            mode: MaterializationMode::Dred {
                from,
                delta_facts,
                removed_facts,
            },
            source_facts: store.len(),
            store: chased_store,
            chased: result,
            null_set,
        });
        self.materializations
            .lock()
            .insert(version, Arc::clone(&materialization));
        Some(materialization)
    }
}

/// The single entry point for query answering: classifies the program once
/// at construction, compiles each query into an explicit [`QueryPlan`], and
/// executes plans with a uniform provenance report.
///
/// Cloning a `Planner` is cheap (the state is shared), and every method
/// takes `&self` — a planner can serve any number of threads, which is how
/// the `ontorew-serve` layer uses it.
///
/// ```
/// use ontorew_model::{parse_program, parse_query, Instance};
/// use ontorew_plan::{PlanKind, Planner, StrategyTaken};
/// use ontorew_storage::RelationalStore;
///
/// // Linear (FO-rewritable) *and* weakly acyclic: both strategies are
/// // complete, so the plan is hybrid and cost signals decide per execution
/// // (here: narrow fan-out, so the rewriting runs).
/// let program = parse_program("[R1] student(X) -> person(X).").unwrap();
/// let planner = Planner::new(program);
/// let prepared = planner.prepare(&parse_query("q(X) :- person(X)").unwrap());
/// assert_eq!(prepared.plan().kind(), PlanKind::Hybrid);
///
/// let mut store = RelationalStore::new();
/// store.insert_fact("student", &["sara"]);
/// let execution = prepared.execute(&store);
/// assert!(execution.is_exact());
/// assert_eq!(execution.provenance.strategy, StrategyTaken::Rewriting);
/// assert!(execution.answers.contains_constants(&["sara"]));
/// ```
#[derive(Clone)]
pub struct Planner {
    inner: Arc<PlannerShared>,
}

impl Planner {
    /// Build a planner for `program` with default budgets (size-aware
    /// rewriting limits). Runs the full classification once.
    pub fn new(program: TgdProgram) -> Self {
        Planner::with_config(program, PlannerConfig::default())
    }

    /// Build a planner with explicit budgets.
    pub fn with_config(program: TgdProgram, config: PlannerConfig) -> Self {
        let classification = classify(&program);
        let rewrite_config = config
            .rewrite
            .unwrap_or_else(|| RewriteConfig::for_program(&program));
        Planner {
            inner: Arc::new(PlannerShared {
                program,
                classification,
                rewrite_config,
                chase_config: config.chase,
                hybrid_disjunct_cutoff: config.hybrid_disjunct_cutoff,
                small_store_facts: config.small_store_facts,
                materializations: Mutex::new(MaterializationCache::default()),
                statistics: Mutex::new(StatisticsCache::default()),
            }),
        }
    }

    /// The program this planner answers under.
    pub fn program(&self) -> &TgdProgram {
        &self.inner.program
    }

    /// The classification report (computed once at construction).
    pub fn classification(&self) -> &ClassificationReport {
        &self.inner.classification
    }

    /// The rewriting budgets plans are compiled under.
    pub fn rewrite_config(&self) -> &RewriteConfig {
        &self.inner.rewrite_config
    }

    /// The chase budgets materialization-based plans run under.
    pub fn chase_config(&self) -> &ChaseConfig {
        &self.inner.chase_config
    }

    /// The plan kind the trichotomy alone dictates for this program — what
    /// [`Planner::prepare`] compiles before per-query refinement (a
    /// budget-cut rewriting can still demote `Rewrite` to `BestEffort`, or
    /// an unexpectedly terminating saturation promote `BestEffort` to
    /// `Rewrite`). This is the right summary for system-level reports.
    pub fn plan_kind(&self) -> PlanKind {
        let classification = &self.inner.classification;
        match (
            classification.fo_rewritable(),
            classification.chase_terminates(),
        ) {
            (true, true) => PlanKind::Hybrid,
            (true, false) => PlanKind::Rewrite,
            (false, true) => PlanKind::Chase,
            (false, false) => PlanKind::BestEffort,
        }
    }

    /// Fetch or compute the chase materialization of `store`, cached per
    /// `version` token (callers that mutate data must bump the token —
    /// `ontorew-serve` passes its tenant-tagged epoch). Returns the
    /// materialization and whether it came from the cache. A miss at a
    /// version whose insert lineage was recorded (see
    /// [`Planner::record_delta`]) extends the cached ancestor incrementally
    /// instead of re-chasing the store.
    pub fn materialize(
        &self,
        store: &RelationalStore,
        version: Option<u64>,
    ) -> (Arc<Materialization>, bool) {
        self.inner.materialize(store, version)
    }

    /// A read-only peek (no recency refresh, no computation) at the cached
    /// materialization of `version`, guarded by the observed store size the
    /// same way [`Planner::materialize`]'s lookup is. The serving layer
    /// uses this to report derivation-graph statistics in `STATS` without
    /// forcing a chase.
    pub fn cached_materialization(
        &self,
        version: u64,
        source_facts: usize,
    ) -> Option<Arc<Materialization>> {
        match self.inner.materializations.lock().entries.get(&version) {
            Some((_, m)) if m.source_facts == source_facts => Some(Arc::clone(m)),
            _ => None,
        }
    }

    /// Record that data version `version` was produced from `parent` by
    /// inserting `facts`, with `resulting_facts` total facts afterwards.
    ///
    /// This is the bridge that makes `INSERT → QUERY` O(delta) on
    /// chase-plan programs: the serving layer calls it on every commit, and
    /// the next [`PreparedQuery::execute_versioned`] at `version` finds the
    /// edge, walks the chain back to a cached materialization, and runs
    /// [`chase_incremental`] over the composed batches instead of
    /// re-chasing the store. Recording is bounded (old edges are evicted)
    /// and purely advisory — an unverifiable or missing lineage simply
    /// falls back to the scratch chase.
    pub fn record_delta(&self, parent: u64, version: u64, facts: &[Atom], resulting_facts: usize) {
        // Copy the batch before taking the cache lock; the critical section
        // is then a plain map insert.
        let edge = DeltaEdge {
            parent,
            kind: DeltaKind::Insert,
            facts: facts.into(),
            resulting_facts,
        };
        self.inner
            .materializations
            .lock()
            .record_delta(parent, version, edge);
    }

    /// Record that data version `version` was produced from `parent` by
    /// **deleting** `facts`, with `resulting_facts` total facts afterwards.
    ///
    /// The delete counterpart of [`Planner::record_delta`]: a later cache
    /// miss whose lineage contains a delete edge is replayed stage by stage
    /// — insert batches through [`chase_incremental`], delete batches
    /// through [`chase_retract`] (DRed) — instead of re-chasing the store.
    /// DRed needs the cached ancestor's derivation graph, so this only pays
    /// off when the planner's [`ChaseConfig::track_provenance`] is on;
    /// otherwise the lineage is rejected and the next materialization
    /// chases from scratch (still correct, just not incremental).
    pub fn record_retraction(
        &self,
        parent: u64,
        version: u64,
        facts: &[Atom],
        resulting_facts: usize,
    ) {
        let edge = DeltaEdge {
            parent,
            kind: DeltaKind::Delete,
            facts: facts.into(),
            resulting_facts,
        };
        self.inner
            .materializations
            .lock()
            .record_delta(parent, version, edge);
    }

    /// Compile `query` into a [`PreparedQuery`] whose plan is chosen from
    /// the classification report plus per-query cost signals (rewriting
    /// fan-out under the size-aware budget, program size, store size at
    /// execution time).
    pub fn prepare(&self, query: &ConjunctiveQuery) -> PreparedQuery {
        let start = Instant::now();
        let classification = &self.inner.classification;
        let classes = {
            let members = classification.member_classes();
            if members.is_empty() {
                "no implemented class applies".to_string()
            } else {
                members.join(", ")
            }
        };
        let fo = classification.fo_rewritable();
        let terminating = classification.chase_terminates();

        let (plan, reason) = if !fo && terminating {
            // Chase territory. When the query is selective enough for a
            // magic-sets/SIP rewrite, chase only the goal-relevant slice of
            // the model instead of materializing all of it.
            match rewrite_goal_driven(&self.inner.program, query) {
                Ok(magic) => (
                    QueryPlan::GoalDriven {
                        magic: Arc::new(magic),
                    },
                    format!(
                        "not known FO-rewritable, but the chase terminates ({classes}) and \
                         the query is selective: goal-driven (magic-sets) restricted chase"
                    ),
                ),
                Err(why) => (
                    QueryPlan::ChaseThenEvaluate {
                        materialized: MaterializationGuarantee::Terminating,
                    },
                    format!(
                        "not known FO-rewritable, but the chase terminates ({classes}): \
                         materialization is sound and complete (goal-driven inadmissible: {why})"
                    ),
                ),
            }
        } else {
            // Rewriting is (or may be) the right strategy: compile it now —
            // the expensive, amortisable step every cached plan shares.
            let rewriting = Arc::new(rewrite(
                &self.inner.program,
                query,
                &self.inner.rewrite_config,
            ));
            match (fo, terminating, rewriting.complete) {
                (true, true, _) => (
                    QueryPlan::Hybrid { rewriting },
                    format!(
                        "FO-rewritable and chase-terminating ({classes}): \
                         cost signals choose per execution"
                    ),
                ),
                (true, false, true) => (
                    QueryPlan::RewriteThenEvaluate { rewriting },
                    format!("FO-rewritable ({classes}): perfect rewriting, AC0 evaluation"),
                ),
                (true, false, false) => (
                    QueryPlan::BestEffort {
                        magic: rewrite_goal_driven(&self.inner.program, query)
                            .ok()
                            .map(Arc::new),
                        rewriting,
                    },
                    format!(
                        "FO-rewritable ({classes}) but the saturation budget was exhausted: \
                         sound approximation"
                    ),
                ),
                (false, false, true) => (
                    QueryPlan::RewriteThenEvaluate { rewriting },
                    "outside every implemented class, yet the saturation reached a fixpoint: \
                     perfect rewriting"
                        .to_string(),
                ),
                (false, false, false) => (
                    QueryPlan::BestEffort {
                        magic: rewrite_goal_driven(&self.inner.program, query)
                            .ok()
                            .map(Arc::new),
                        rewriting,
                    },
                    format!(
                        "{}: bounded rewriting (plus bounded chase on small stores) — \
                         sound approximation",
                        match classification.fo_rewritability_verdict() {
                            ontorew_core::FoRewritabilityVerdict::NotKnownRewritable =>
                                "provably outside WR and every other implemented class",
                            _ => "classification undetermined within budget",
                        }
                    ),
                ),
                (false, true, _) => unreachable!("handled by the chase branch above"),
            }
        };
        global_registry()
            .counter(
                "plan_plans_total",
                "Plans compiled, by chosen kind.",
                &[("kind", plan.kind().label())],
            )
            .inc();
        PreparedQuery {
            shared: Arc::clone(&self.inner),
            query: query.clone(),
            plan,
            reason,
            prepare_us: start.elapsed().as_micros() as u64,
        }
    }

    /// Compile `query` under a *forced* plan kind, bypassing the
    /// classification-driven choice. This is the escape hatch behind the
    /// deprecated `ontorew_obda::Strategy` override and the forced arms of
    /// the E13 experiment; the provenance still reports guarantees honestly
    /// (a forced rewrite of a non-terminating saturation is flagged as a
    /// sound approximation).
    ///
    /// Forcing a guarantee-bearing kind (`Rewrite`/`Chase`/`Hybrid`) on an
    /// *unclassifiable* program — neither FO-rewritable nor
    /// chase-terminating, where every strategy is only a bounded
    /// approximation — is a structured [`PlannerError`] instead of a plan
    /// that silently cannot keep its promise; `BestEffort` (the honest kind
    /// for such programs) is always accepted. Forcing `GoalDriven` on a
    /// query the magic-sets rewrite rejects errors with the reason.
    pub fn prepare_forced(
        &self,
        query: &ConjunctiveQuery,
        kind: PlanKind,
    ) -> Result<PreparedQuery, PlannerError> {
        let start = Instant::now();
        let fo = self.inner.classification.fo_rewritable();
        let terminating = self.inner.classification.chase_terminates();
        if !fo && !terminating && kind != PlanKind::BestEffort {
            return Err(PlannerError::UnclassifiableForcedPlan { kind });
        }
        let reason = format!("plan forced to {kind} by the caller");
        let plan = match kind {
            PlanKind::Chase => QueryPlan::ChaseThenEvaluate {
                materialized: if terminating {
                    MaterializationGuarantee::Terminating
                } else {
                    MaterializationGuarantee::Bounded
                },
            },
            PlanKind::GoalDriven => match rewrite_goal_driven(&self.inner.program, query) {
                Ok(magic) => QueryPlan::GoalDriven {
                    magic: Arc::new(magic),
                },
                Err(why) => {
                    return Err(PlannerError::GoalDrivenInadmissible {
                        reason: why.to_string(),
                    })
                }
            },
            PlanKind::Rewrite | PlanKind::Hybrid | PlanKind::BestEffort => {
                let rewriting = Arc::new(rewrite(
                    &self.inner.program,
                    query,
                    &self.inner.rewrite_config,
                ));
                match kind {
                    PlanKind::Rewrite => QueryPlan::RewriteThenEvaluate { rewriting },
                    PlanKind::Hybrid => QueryPlan::Hybrid { rewriting },
                    _ => QueryPlan::BestEffort {
                        magic: rewrite_goal_driven(&self.inner.program, query)
                            .ok()
                            .map(Arc::new),
                        rewriting,
                    },
                }
            }
        };
        Ok(PreparedQuery {
            shared: Arc::clone(&self.inner),
            query: query.clone(),
            plan,
            reason,
            prepare_us: start.elapsed().as_micros() as u64,
        })
    }

    /// Convenience: prepare and execute in one call (no plan reuse, no
    /// materialization caching). Long-lived callers should prepare once and
    /// execute many times instead.
    pub fn answer(&self, query: &ConjunctiveQuery, store: &RelationalStore) -> Execution {
        self.prepare(query).execute(store)
    }
}

impl std::fmt::Debug for Planner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Planner")
            .field("rules", &self.inner.program.len())
            .field("fo_rewritable", &self.inner.classification.fo_rewritable())
            .field(
                "chase_terminates",
                &self.inner.classification.chase_terminates(),
            )
            .finish()
    }
}

/// Why [`Planner::prepare_forced`] refused to compile a plan. The
/// classification-driven [`Planner::prepare`] never fails — it always has
/// an honest fallback; forcing removes the fallback, so the refusal is a
/// structured error rather than a panic or a silently-degraded plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlannerError {
    /// A guarantee-bearing kind (`Rewrite`/`Chase`/`Hybrid`) was forced on
    /// a program that is neither FO-rewritable nor chase-terminating: no
    /// execution of that plan could keep the kind's guarantee. Use
    /// `BestEffort` (or [`Planner::prepare`]) for such programs.
    UnclassifiableForcedPlan {
        /// The kind the caller tried to force.
        kind: PlanKind,
    },
    /// `GoalDriven` was forced but the magic-sets rewrite rejected the
    /// program/query pair (no guardable rules, no bound constants, or a
    /// reserved-prefix collision).
    GoalDrivenInadmissible {
        /// The admissibility failure, human-readable.
        reason: String,
    },
}

impl std::fmt::Display for PlannerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlannerError::UnclassifiableForcedPlan { kind } => write!(
                f,
                "cannot force a {kind} plan: the program is neither FO-rewritable nor \
                 chase-terminating, so no {kind} execution can guarantee its answers \
                 (use besteffort)"
            ),
            PlannerError::GoalDrivenInadmissible { reason } => {
                write!(f, "cannot force a goal_driven plan: {reason}")
            }
        }
    }
}

impl std::error::Error for PlannerError {}

/// A query compiled against one planner: the plan, the trichotomy reason,
/// and an executor. Prepared queries are immutable and thread-safe — the
/// serving layer caches them behind `Arc`s and executes them concurrently.
pub struct PreparedQuery {
    shared: Arc<PlannerShared>,
    query: ConjunctiveQuery,
    plan: QueryPlan,
    reason: String,
    prepare_us: u64,
}

impl PreparedQuery {
    /// The query this plan answers.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The compiled plan.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// The trichotomy reason behind the plan choice.
    pub fn reason(&self) -> &str {
        &self.reason
    }

    /// Time spent compiling this plan, microseconds.
    pub fn prepare_us(&self) -> u64 {
        self.prepare_us
    }

    /// True when executing this plan is guaranteed to yield exactly the
    /// certain answers on *any* store: a perfect rewriting, a terminating
    /// chase, or a hybrid (which always has at least one of the two to run
    /// — a budget-cut hybrid rewriting falls back to the terminating
    /// materialization at execution time).
    pub fn guarantees_exact(&self) -> bool {
        match &self.plan {
            QueryPlan::RewriteThenEvaluate { rewriting } => rewriting.complete,
            QueryPlan::ChaseThenEvaluate { materialized } => {
                *materialized == MaterializationGuarantee::Terminating
            }
            QueryPlan::Hybrid { rewriting } => {
                rewriting.complete || self.shared.classification.chase_terminates()
            }
            // The goal-driven executor answers from the restricted chase
            // only when that chase reaches a fixpoint (a universal model of
            // the goal-relevant slice) and falls back to the full
            // materialization otherwise — so the plan is exact whenever the
            // full chase is guaranteed to terminate.
            QueryPlan::GoalDriven { .. } => self.shared.classification.chase_terminates(),
            QueryPlan::BestEffort { .. } => false,
        }
    }

    /// A multi-line, human-readable dump of the plan — what the serving
    /// protocol's `EXPLAIN` prints.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("plan: {}\n", self.plan.kind()));
        out.push_str(&format!("query: {}\n", self.query));
        out.push_str(&format!("reason: {}\n", self.reason));
        let classes = self.shared.classification.member_classes();
        out.push_str(&format!(
            "classes: {}\n",
            if classes.is_empty() {
                "(none)".to_string()
            } else {
                classes.join(", ")
            }
        ));
        match &self.plan {
            QueryPlan::ChaseThenEvaluate { materialized } => {
                out.push_str(&format!(
                    "materialization: {} (rounds<={}, facts<={})\n",
                    match materialized {
                        MaterializationGuarantee::Terminating => "terminating chase",
                        MaterializationGuarantee::Bounded => "budget-bounded chase",
                    },
                    self.shared.chase_config.max_rounds,
                    self.shared.chase_config.max_facts
                ));
            }
            QueryPlan::GoalDriven { magic } => {
                for line in magic.dump() {
                    out.push_str(&line);
                    out.push('\n');
                }
            }
            plan => {
                let rewriting = plan.rewriting().expect("non-chase plans carry a rewriting");
                out.push_str(&format!(
                    "rewriting: {} disjuncts ({} ucq + {} grounded), complete={}, \
                     generated={}, depth={}\n",
                    rewriting.len(),
                    rewriting.ucq.len(),
                    rewriting.grounded.len(),
                    rewriting.complete,
                    rewriting.stats.generated,
                    rewriting.stats.depth_reached
                ));
                if matches!(plan, QueryPlan::Hybrid { .. }) {
                    out.push_str(&format!(
                        "hybrid cutoff: prefer materialization above {} disjuncts \
                         when affordable\n",
                        self.shared.hybrid_disjunct_cutoff
                    ));
                }
                if let Some(magic) = plan.magic() {
                    out.push_str(&format!(
                        "best-effort chase: goal-restricted ({} adorned rules, {} seeds)\n",
                        magic.adorned_rules,
                        magic.seeds.len()
                    ));
                }
            }
        }
        out
    }

    /// Like [`PreparedQuery::explain`], but additionally peeks (read-only,
    /// no recency refresh) at the planner's materialization cache for
    /// `version`: when a chase-based execution at this version would hit a
    /// cached materialization, the dump reports how that materialization
    /// was obtained (scratch, incremental, or DRed). It also runs the cost
    /// model over the store's statistics and prints the per-strategy
    /// estimates the executor would decide with.
    pub fn explain_versioned(&self, store: &RelationalStore, version: u64) -> String {
        let mut out = self.explain();
        let cached = match self.shared.materializations.lock().entries.get(&version) {
            Some((_, m)) if m.source_facts == store.len() => Some((m.mode, m.complete, m.facts)),
            _ => None,
        };
        match cached {
            Some((mode, complete, facts)) => out.push_str(&format!(
                "cached materialization: {mode}, complete={complete}, facts={facts}\n"
            )),
            None => out.push_str("cached materialization: (none)\n"),
        }
        match self.shared.store_statistics(store, Some(version)) {
            Some(stats) => {
                let cost = estimate_join_cost(&stats, &self.query.body);
                let generic = if cost.generic_join.is_finite() {
                    format!("{:.0}", cost.generic_join)
                } else {
                    "n/a (acyclic)".to_string()
                };
                out.push_str(&format!(
                    "cost model: join strategy={} backtracking={:.0} generic_join={generic}\n",
                    cost.strategy(),
                    cost.backtracking,
                ));
                out.push_str(&format!(
                    "cost model: estimated rows={:.0}\n",
                    cost.estimated_rows
                ));
                if let Some(rewriting) = self.plan.rewriting() {
                    let rewrite_cost = self.rewriting_cost(rewriting, &stats);
                    let cached = cached.is_some_and(|(_, complete, _)| complete);
                    let materialize_cost =
                        self.materialization_cost(store, Some(version), cached, &stats);
                    out.push_str(&format!(
                        "cost model: rewriting={rewrite_cost:.0} materialization=\
                         {materialize_cost:.0}\n"
                    ));
                }
            }
            None => out.push_str("cost model: (store too large to scan)\n"),
        }
        out
    }

    /// Execute the plan over `store` with no data-version token: chase-based
    /// plans materialize afresh on every call.
    pub fn execute(&self, store: &RelationalStore) -> Execution {
        self.run(store, None)
    }

    /// Execute the plan over `store`, identifying the store's content by
    /// `version`: chase materializations are cached in the planner and
    /// shared across queries and executions of the same version. Callers
    /// must bump the token whenever the data changes (`ontorew-serve` uses
    /// its snapshot epoch, tagged per tenant).
    pub fn execute_versioned(&self, store: &RelationalStore, version: u64) -> Execution {
        self.run(store, Some(version))
    }

    fn run(&self, store: &RelationalStore, version: Option<u64>) -> Execution {
        let start = Instant::now();
        let mut run_span = span("plan.run");
        run_span.attr("kind", self.plan.kind().label());
        let statistics = self.shared.store_statistics(store, version);
        let stats = statistics.as_deref();
        let mut execution = match &self.plan {
            QueryPlan::RewriteThenEvaluate { rewriting } => self.run_rewriting(
                rewriting,
                store,
                stats,
                StrategyTaken::Rewriting,
                self.reason.clone(),
            ),
            QueryPlan::ChaseThenEvaluate { .. } => {
                self.run_materialization(store, version, self.reason.clone())
            }
            QueryPlan::Hybrid { rewriting } => self.run_hybrid(rewriting, store, version, stats),
            QueryPlan::GoalDriven { magic } => self.run_goal_driven(magic, store, version, stats),
            QueryPlan::BestEffort { rewriting, magic } => {
                self.run_best_effort(rewriting, magic.as_ref(), store, version, stats)
            }
        };
        // Estimated vs. actual cardinality of the original query, so EXPLAIN
        // and serialized provenance expose misestimates. The estimate is
        // computed from the *source* store's statistics even for
        // materialization-backed runs — the divergence is the signal.
        if let Some(stats) = stats {
            let cost = estimate_join_cost(stats, &self.query.body);
            execution.provenance.cardinality = Some(CardinalityEstimate {
                strategy: cost.strategy().label().to_string(),
                estimated_rows: cost.estimated_rows.round() as u64,
                actual_rows: execution.answers.len(),
                backtracking_cost: cost.backtracking,
                generic_join_cost: cost.generic_join,
            });
        }
        execution.provenance.timings.total_us = start.elapsed().as_micros() as u64;
        run_span.attr("strategy", format!("{:?}", execution.provenance.strategy));
        run_span.attr("answers", execution.answers.len());
        execution
    }

    fn run_rewriting(
        &self,
        rewriting: &Arc<Rewriting>,
        store: &RelationalStore,
        statistics: Option<&StoreStatistics>,
        strategy: StrategyTaken,
        reason: String,
    ) -> Execution {
        let start = Instant::now();
        let mut eval_span = span("plan.evaluate");
        eval_span.attr("disjuncts", rewriting.len());
        let config = EvalConfig {
            statistics,
            ..EvalConfig::default()
        };
        let answers = evaluate_rewriting_configured(rewriting, &self.query, store, &config);
        drop(eval_span);
        Execution {
            answers,
            provenance: Provenance {
                plan: self.plan.kind(),
                strategy,
                exact: rewriting.complete,
                reason,
                rewriting_disjuncts: Some(rewriting.len()),
                rewriting_complete: Some(rewriting.complete),
                chase: None,
                materialization_cached: None,
                materialization: None,
                goal_driven: None,
                cardinality: None,
                timings: Timings {
                    materialize_us: 0,
                    evaluate_us: start.elapsed().as_micros() as u64,
                    total_us: 0,
                },
            },
        }
    }

    fn run_materialization(
        &self,
        store: &RelationalStore,
        version: Option<u64>,
        reason: String,
    ) -> Execution {
        let mut mat_span = span("plan.materialize");
        let (materialization, cached) = self.shared.materialize(store, version);
        mat_span.attr("cached", cached);
        mat_span.attr("facts", materialization.facts);
        drop(mat_span);
        let start = Instant::now();
        let eval_span = span("plan.evaluate");
        let answers = evaluate_cq(&materialization.store, &self.query).without_nulls();
        drop(eval_span);
        Execution {
            answers,
            provenance: Provenance {
                plan: self.plan.kind(),
                strategy: StrategyTaken::Materialization,
                exact: materialization.complete,
                reason,
                rewriting_disjuncts: None,
                rewriting_complete: None,
                chase: Some(materialization.summary()),
                materialization_cached: Some(cached),
                materialization: Some(materialization.mode),
                goal_driven: None,
                cardinality: None,
                timings: Timings {
                    materialize_us: if cached { 0 } else { materialization.micros },
                    evaluate_us: start.elapsed().as_micros() as u64,
                    total_us: 0,
                },
            },
        }
    }

    /// The estimated cost (abstract row-touch units) of evaluating the
    /// rewriting over `store`: per disjunct, the cheaper of the two
    /// simulated join strategies; unions wider than [`UCQ_COST_SAMPLE`] are
    /// sampled and scaled so the decision itself stays cheap.
    fn rewriting_cost(&self, rewriting: &Rewriting, statistics: &StoreStatistics) -> f64 {
        let bodies = rewriting
            .ucq
            .disjuncts
            .iter()
            .map(|q| q.body.as_slice())
            .chain(rewriting.grounded.iter().map(|g| g.body.as_slice()));
        let total = rewriting.ucq.disjuncts.len() + rewriting.grounded.len();
        let mut sampled = 0usize;
        let mut cost = 0.0f64;
        for body in bodies.take(UCQ_COST_SAMPLE) {
            cost += estimate_join_cost(statistics, body).cheapest();
            sampled += 1;
        }
        if sampled > 0 && total > sampled {
            cost *= total as f64 / sampled as f64;
        }
        cost
    }

    /// The estimated cost of the materialization pipeline: chasing the full
    /// model (zero when a matching materialization is already cached) plus
    /// one evaluation of the original query over it.
    fn materialization_cost(
        &self,
        store: &RelationalStore,
        version: Option<u64>,
        cached: bool,
        statistics: &StoreStatistics,
    ) -> f64 {
        let chase = if cached {
            0.0
        } else {
            self.full_model_estimate(store, version) as f64 * CHASE_COST_PER_FACT
        };
        chase + estimate_join_cost(statistics, &self.query.body).cheapest()
    }

    /// The hybrid cost decision, made per execution because the store
    /// contents (and the materialization cache state) are only known now.
    /// An incomplete rewriting always falls back to the terminating
    /// materialization (correctness, not cost). Otherwise both pipelines are
    /// costed by the statistics-fed model — chase units for an uncached
    /// materialization plus one query evaluation, versus the summed
    /// per-disjunct cost of the union — and the cheaper one runs. When the
    /// store is too large to have statistics, the legacy size-threshold
    /// signals decide instead.
    fn run_hybrid(
        &self,
        rewriting: &Arc<Rewriting>,
        store: &RelationalStore,
        version: Option<u64>,
        statistics: Option<&StoreStatistics>,
    ) -> Execution {
        // A read-only peek (no recency refresh): riding the cache is decided
        // here, but the actual use happens in `run_materialization`, which
        // refreshes recency through the normal lookup.
        let (materialization_cached, cached_complete) = version
            .map(
                |v| match self.shared.materializations.lock().entries.get(&v) {
                    Some((_, m)) if m.source_facts == store.len() => (true, m.complete),
                    _ => (false, false),
                },
            )
            .unwrap_or((false, false));
        if !rewriting.complete {
            return self.run_materialization(
                store,
                version,
                format!(
                    "{}; hybrid chose materialization (rewriting budget exhausted)",
                    self.reason
                ),
            );
        }
        if cached_complete && rewriting.len() > 1 {
            return self.run_materialization(
                store,
                version,
                format!(
                    "{}; hybrid chose materialization (a complete materialization is \
                     already cached)",
                    self.reason
                ),
            );
        }
        if let Some(stats) = statistics {
            let rewrite_cost = self.rewriting_cost(rewriting, stats);
            let materialize_cost =
                self.materialization_cost(store, version, materialization_cached, stats);
            return if materialize_cost < rewrite_cost {
                self.run_materialization(
                    store,
                    version,
                    format!(
                        "{}; hybrid chose materialization (estimated cost {materialize_cost:.0} \
                         vs rewriting {rewrite_cost:.0})",
                        self.reason
                    ),
                )
            } else {
                self.run_rewriting(
                    rewriting,
                    store,
                    statistics,
                    StrategyTaken::Rewriting,
                    format!(
                        "{}; hybrid chose rewriting (estimated cost {rewrite_cost:.0} vs \
                         materialization {materialize_cost:.0})",
                        self.reason
                    ),
                )
            };
        }
        // No statistics (store above the scan bound): legacy size signals.
        let wide_fanout = rewriting.len() > self.shared.hybrid_disjunct_cutoff;
        let affordable = materialization_cached || store.len() <= self.shared.small_store_facts;
        if wide_fanout && affordable {
            self.run_materialization(
                store,
                version,
                format!(
                    "{}; hybrid chose materialization (wide rewriting fan-out and a small \
                     store)",
                    self.reason
                ),
            )
        } else {
            let why = if wide_fanout {
                "materialization not affordable"
            } else {
                "narrow rewriting fan-out"
            };
            self.run_rewriting(
                rewriting,
                store,
                statistics,
                StrategyTaken::Rewriting,
                format!("{}; hybrid chose rewriting ({why})", self.reason),
            )
        }
    }

    /// Chase the magic-restricted program: seed the instance with the
    /// query's demand facts, run the adorned program (deriving only the
    /// goal-relevant slice of the universal model), and evaluate the
    /// original query over the result. Returns `None` when the restricted
    /// chase did not reach a fixpoint — the caller decides the fallback.
    fn run_magic_chase(
        &self,
        magic: &Arc<MagicProgram>,
        store: &RelationalStore,
    ) -> (ontorew_chase::ChaseResult, u64) {
        let mut chase_span = span("magic.chase");
        let start = Instant::now();
        let mut instance = store.to_instance();
        for seed in &magic.seeds {
            instance.insert(seed.clone());
        }
        let result = chase(&magic.program, &instance, &self.shared.chase_config);
        chase_span.attr("facts", result.instance.len());
        chase_span.attr("rounds", result.rounds);
        chase_span.attr("terminated", result.outcome == ChaseOutcome::Terminated);
        (result, start.elapsed().as_micros() as u64)
    }

    /// The planner's estimate of how many facts a *full* materialization of
    /// this store would hold: the cached materialization's exact size when
    /// one exists for this data version, otherwise a store-size heuristic.
    fn full_model_estimate(&self, store: &RelationalStore, version: Option<u64>) -> usize {
        version
            .and_then(
                |v| match self.shared.materializations.lock().entries.get(&v) {
                    Some((_, m)) if m.source_facts == store.len() => Some(m.facts),
                    _ => None,
                },
            )
            .unwrap_or_else(|| store.len().saturating_mul(1 + self.shared.program.len()))
    }

    /// Goal-driven execution: chase only the query-relevant slice. Two
    /// escape hatches keep it no worse than the chase plan it replaces —
    /// when a *complete* full materialization of this version is already
    /// cached, one CQ evaluation over it beats re-running even a restricted
    /// chase; and when the restricted chase exhausts its budget the
    /// executor falls back to the full materialization pipeline so the
    /// plan's exactness guarantee survives.
    /// The goal-driven plan to chase: the prepared (structurally-adorned)
    /// magic program, unless statistics are available — then the program is
    /// re-adorned with the statistics-backed SIP oracle so demand flows
    /// through the atoms the *data* says are selective. Re-adorning is a
    /// worklist over the rules, microseconds against the chase it shapes;
    /// if the re-adornment is somehow inadmissible (it never should be when
    /// the prepared one was) the prepared program is kept.
    fn statistics_adorned(
        &self,
        magic: &Arc<MagicProgram>,
        statistics: Option<&StoreStatistics>,
    ) -> Arc<MagicProgram> {
        match statistics {
            Some(statistics) => rewrite_goal_driven_with(
                &self.shared.program,
                &self.query,
                &StatisticsSipSelectivity { statistics },
            )
            .map(Arc::new)
            .unwrap_or_else(|_| Arc::clone(magic)),
            None => Arc::clone(magic),
        }
    }

    fn run_goal_driven(
        &self,
        magic: &Arc<MagicProgram>,
        store: &RelationalStore,
        version: Option<u64>,
        statistics: Option<&StoreStatistics>,
    ) -> Execution {
        let warm = version
            .map(
                |v| match self.shared.materializations.lock().entries.get(&v) {
                    Some((_, m)) if m.source_facts == store.len() => m.complete,
                    _ => false,
                },
            )
            .unwrap_or(false);
        if warm {
            return self.run_materialization(
                store,
                version,
                format!(
                    "{}; a complete materialization is already cached — evaluated over it",
                    self.reason
                ),
            );
        }
        let magic = self.statistics_adorned(magic, statistics);
        let (result, materialize_us) = self.run_magic_chase(&magic, store);
        if result.outcome != ChaseOutcome::Terminated {
            return self.run_materialization(
                store,
                version,
                format!(
                    "{}; the restricted chase exhausted its budget — fell back to the full \
                     materialization",
                    self.reason
                ),
            );
        }
        let facts_derived = result.instance.len();
        let nulls = result.instance.nulls().len();
        let restricted = RelationalStore::from_instance(&result.instance);
        let start = Instant::now();
        let eval_span = span("plan.evaluate");
        let answers = evaluate_cq(&restricted, &self.query).without_nulls();
        drop(eval_span);
        Execution {
            answers,
            provenance: Provenance {
                plan: self.plan.kind(),
                strategy: StrategyTaken::GoalDriven,
                // The restricted chase reached a fixpoint: its instance is a
                // universal model of the goal-relevant slice, so evaluating
                // the original query over it yields exactly the certain
                // answers.
                exact: true,
                reason: self.reason.clone(),
                rewriting_disjuncts: None,
                rewriting_complete: None,
                chase: Some(ChaseSummary {
                    facts: facts_derived,
                    nulls,
                    rounds: result.rounds,
                    complete: true,
                }),
                materialization_cached: Some(false),
                materialization: None,
                goal_driven: Some(GoalDrivenSummary {
                    relevant_rules: magic.relevant_rules,
                    adorned_rules: magic.adorned_rules,
                    facts_derived,
                    full_model_estimate: self.full_model_estimate(store, version),
                }),
                cardinality: None,
                timings: Timings {
                    materialize_us,
                    evaluate_us: start.elapsed().as_micros() as u64,
                    total_us: 0,
                },
            },
        }
    }

    /// Best effort for the unclassified case: the bounded rewriting is
    /// always evaluated (sound); then the chase budget is spent where it
    /// counts — on the goal-restricted (magic) program when the query
    /// admits one, else on a full bounded chase when the store is small
    /// enough. Both unions are sound, and if the chase reaches a fixpoint
    /// the combined answers are exact after all.
    fn run_best_effort(
        &self,
        rewriting: &Arc<Rewriting>,
        magic: Option<&Arc<MagicProgram>>,
        store: &RelationalStore,
        version: Option<u64>,
        statistics: Option<&StoreStatistics>,
    ) -> Execution {
        let mut execution = self.run_rewriting(
            rewriting,
            store,
            statistics,
            StrategyTaken::Rewriting,
            self.reason.clone(),
        );
        if rewriting.complete {
            return execution;
        }
        if let Some(magic) = magic {
            // Spend the chase budget on goal-relevant facts first: the
            // restricted program derives the slice the query can actually
            // see, so the budget goes much further than a full chase would.
            let magic = self.statistics_adorned(magic, statistics);
            let (result, materialize_us) = self.run_magic_chase(&magic, store);
            let terminated = result.outcome == ChaseOutcome::Terminated;
            let facts_derived = result.instance.len();
            let nulls = result.instance.nulls().len();
            let restricted = RelationalStore::from_instance(&result.instance);
            let start = Instant::now();
            let more = evaluate_cq(&restricted, &self.query).without_nulls();
            execution.answers.union_with(&more);
            let provenance = &mut execution.provenance;
            provenance.strategy = StrategyTaken::Combined;
            // A terminated restricted chase is a universal model of the
            // goal-relevant slice — the combined answers are exact.
            provenance.exact = terminated;
            if terminated {
                provenance.reason = format!(
                    "{}; the goal-restricted chase reached a fixpoint, so the combined \
                     answers are exact",
                    provenance.reason
                );
            }
            provenance.chase = Some(ChaseSummary {
                facts: facts_derived,
                nulls,
                rounds: result.rounds,
                complete: terminated,
            });
            provenance.goal_driven = Some(GoalDrivenSummary {
                relevant_rules: magic.relevant_rules,
                adorned_rules: magic.adorned_rules,
                facts_derived,
                full_model_estimate: self.full_model_estimate(store, version),
            });
            provenance.timings.materialize_us = materialize_us;
            provenance.timings.evaluate_us += start.elapsed().as_micros() as u64;
            return execution;
        }
        if store.len() > self.shared.small_store_facts {
            return execution;
        }
        let (materialization, cached) = self.shared.materialize(store, version);
        let start = Instant::now();
        let more = evaluate_cq(&materialization.store, &self.query).without_nulls();
        execution.answers.union_with(&more);
        let provenance = &mut execution.provenance;
        provenance.strategy = StrategyTaken::Combined;
        provenance.exact = materialization.complete;
        if materialization.complete {
            provenance.reason = format!(
                "{}; the bounded chase reached a fixpoint, so the combined answers are exact",
                provenance.reason
            );
        }
        provenance.chase = Some(materialization.summary());
        provenance.materialization_cached = Some(cached);
        provenance.materialization = Some(materialization.mode);
        provenance.timings.materialize_us = if cached { 0 } else { materialization.micros };
        provenance.timings.evaluate_us += start.elapsed().as_micros() as u64;
        execution
    }
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("query", &format!("{}", self.query))
            .field("plan", &self.plan.kind())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_core::examples::{example1, example2, example2_query, example3};
    use ontorew_model::{parse_program, parse_query};

    /// Example 1 of the paper: SWR (hence FO-rewritable) *and* weakly
    /// acyclic — both guarantees hold, so the trichotomy compiles a hybrid
    /// plan and the executor picks rewriting for its narrow fan-out.
    #[test]
    fn example1_maps_to_a_hybrid_plan() {
        let planner = Planner::new(example1());
        assert!(planner.classification().fo_rewritable());
        assert!(planner.classification().chase_terminates());
        let prepared = planner.prepare(&parse_query("ans(X, Z) :- r(X, Z)").unwrap());
        assert_eq!(prepared.plan().kind(), PlanKind::Hybrid);

        let mut store = RelationalStore::new();
        store.insert_fact("s", &["a", "b", "c"]);
        store.insert_fact("t", &["d"]);
        let execution = prepared.execute(&store);
        assert!(execution.is_exact());
        assert_eq!(execution.provenance.strategy, StrategyTaken::Rewriting);
        assert!(execution.answers.contains_constants(&["a", "c"]));
    }

    /// Example 2: provably outside WR, but weakly acyclic — the only
    /// complete strategy is materialization, and that is the plan.
    #[test]
    fn example2_maps_to_a_chase_plan() {
        let planner = Planner::new(example2());
        assert!(!planner.classification().fo_rewritable());
        assert!(planner.classification().chase_terminates());
        let prepared = planner.prepare(&example2_query());
        assert!(matches!(
            prepared.plan(),
            QueryPlan::ChaseThenEvaluate {
                materialized: MaterializationGuarantee::Terminating
            }
        ));

        let mut store = RelationalStore::new();
        store.insert_fact("s", &["c", "c", "a"]);
        store.insert_fact("t", &["d", "a"]);
        let execution = prepared.execute(&store);
        assert!(execution.is_exact());
        assert_eq!(
            execution.provenance.strategy,
            StrategyTaken::Materialization
        );
        assert!(execution.answers.as_boolean());
        assert!(execution.provenance.reason.contains("chase terminates"));
    }

    /// Example 3: outside every previously known FO-rewritable class yet WR
    /// — rewriting is complete (the paper's separation), and since the
    /// program is also jointly acyclic both guarantees hold.
    #[test]
    fn example3_maps_to_a_hybrid_plan_via_wr() {
        let planner = Planner::new(example3());
        let c = planner.classification();
        assert!(!c.swr.is_swr && c.fo_rewritable(), "WR separates from SWR");
        assert!(c.chase_terminates(), "jointly acyclic");
        let query = parse_query("ans(A, B) :- s(A, A, B)").unwrap();
        let prepared = planner.prepare(&query);
        assert_eq!(prepared.plan().kind(), PlanKind::Hybrid);
        assert!(
            prepared
                .plan()
                .rewriting()
                .expect("hybrid carries a rewriting")
                .complete
        );
    }

    /// A DL-Lite-style ontology with an infinite ancestor chain: rewriting
    /// is the only complete strategy, so the plan is a pure rewrite.
    #[test]
    fn non_terminating_rewritable_ontology_maps_to_a_rewrite_plan() {
        let program = parse_program(
            "[R1] student(X) -> person(X).\n\
             [R2] person(X) -> hasParent(X, Y).\n\
             [R3] hasParent(X, Y) -> person(Y).",
        )
        .unwrap();
        let planner = Planner::new(program);
        assert!(planner.classification().fo_rewritable());
        assert!(!planner.classification().chase_terminates());
        let prepared = planner.prepare(&parse_query("q(X) :- person(X)").unwrap());
        assert_eq!(prepared.plan().kind(), PlanKind::Rewrite);
        let mut store = RelationalStore::new();
        store.insert_fact("student", &["sara"]);
        let execution = prepared.execute(&store);
        assert!(execution.is_exact());
        assert_eq!(execution.answers.len(), 1);
    }

    /// Example 2 plus a rule that breaks weak acyclicity: no guarantee
    /// holds, so the plan is best-effort — and on a small store the executor
    /// unions the bounded chase into the bounded rewriting.
    #[test]
    fn unclassified_program_maps_to_best_effort() {
        let program = parse_program(
            "[R1] t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n\
             [R2] s(Y1, Y1, Y2) -> r(Y2, Y3).\n\
             [R3] r(X, Y) -> t(Y, Z).",
        )
        .unwrap();
        let planner = Planner::new(program);
        assert!(!planner.classification().fo_rewritable());
        assert!(!planner.classification().chase_terminates());
        let prepared = planner.prepare(&parse_query(r#"q() :- r("a", X)"#).unwrap());
        assert_eq!(prepared.plan().kind(), PlanKind::BestEffort);

        let mut store = RelationalStore::new();
        store.insert_fact("s", &["c", "c", "a"]);
        store.insert_fact("t", &["d", "a"]);
        let execution = prepared.execute(&store);
        // The derivation r("a", _) needs one R2 application; both the
        // bounded rewriting and the bounded chase find it (soundness), so
        // the answer is certain even though exactness may not be guaranteed.
        assert!(execution.answers.as_boolean());
        assert_eq!(execution.provenance.strategy, StrategyTaken::Combined);
        assert!(execution.provenance.chase.is_some());
    }

    /// The hybrid cost decision is made by the statistics-fed model: on a
    /// cold store, chasing `store × rules` facts costs far more than
    /// evaluating the union (the reason reports both estimates), and the
    /// forced-chase pipeline must agree on the answers. The warm case —
    /// where a cached materialization makes the chase pipeline one CQ
    /// evaluation — is covered by
    /// `cached_materialization_redirects_warm_hybrids`.
    #[test]
    fn hybrid_cost_model_compares_estimated_pipeline_costs() {
        let mut text = String::new();
        for i in 0..400 {
            text.push_str(&format!("[H{i}] sub{i}(X) -> top(X).\n"));
        }
        let program = parse_program(&text).unwrap();
        let query = parse_query("q(X) :- top(X)").unwrap();
        let mut store = RelationalStore::new();
        store.insert_fact("sub3", &["a"]);
        store.insert_fact("sub7", &["b"]);
        store.insert_fact("top", &["c"]);

        let planner = Planner::new(program.clone());
        let prepared = planner.prepare(&query);
        assert_eq!(prepared.plan().kind(), PlanKind::Hybrid);
        assert!(prepared.plan().disjuncts() > 256, "401 disjuncts expected");
        let chosen = prepared.execute(&store);
        // Cold, 3 facts: evaluating 401 indexed point lookups is cheaper
        // than chasing 401 rules — the model must see that and say why.
        assert_eq!(chosen.provenance.strategy, StrategyTaken::Rewriting);
        assert!(
            chosen.provenance.reason.contains("estimated cost"),
            "{}",
            chosen.provenance.reason
        );
        assert!(chosen.is_exact());
        assert_eq!(chosen.answers.len(), 3);
        // The estimate-vs-actual record is attached for EXPLAIN consumers.
        let cardinality = chosen.provenance.cardinality.as_ref().expect("statistics");
        assert_eq!(cardinality.actual_rows, 3);
        assert_eq!(cardinality.strategy, "backtracking");

        // The forced materialization pipeline agrees on the answers.
        let by_chase = planner
            .prepare_forced(&query, PlanKind::Chase)
            .expect("classifiable")
            .execute(&store);
        assert_eq!(by_chase.provenance.strategy, StrategyTaken::Materialization);
        assert_eq!(
            by_chase.answers.iter().collect::<Vec<_>>(),
            chosen.answers.iter().collect::<Vec<_>>()
        );
    }

    /// Once a complete materialization of the current data version is
    /// cached, hybrid plans switch to it: evaluating one CQ over the
    /// universal model beats evaluating a multi-disjunct union.
    #[test]
    fn hybrid_switches_to_a_warm_materialization() {
        let planner = Planner::new(example1());
        let query = parse_query("ans(X, Z) :- r(X, Z)").unwrap();
        let prepared = planner.prepare(&query);
        assert_eq!(prepared.plan().kind(), PlanKind::Hybrid);
        assert!(prepared.plan().disjuncts() > 1);
        let mut store = RelationalStore::new();
        store.insert_fact("s", &["a", "b", "c"]);
        store.insert_fact("t", &["d"]);

        // Cold: narrow fan-out, no materialization — rewriting runs.
        let cold = prepared.execute_versioned(&store, 3);
        assert_eq!(cold.provenance.strategy, StrategyTaken::Rewriting);
        // Materialize the same version (as a chase-plan query would), and
        // the hybrid executor now rides the cached universal model.
        let (materialization, _) = planner.materialize(&store, Some(3));
        assert!(materialization.complete);
        let warm = prepared.execute_versioned(&store, 3);
        assert_eq!(warm.provenance.strategy, StrategyTaken::Materialization);
        assert!(warm.is_exact());
        assert_eq!(warm.provenance.materialization_cached, Some(true));
        assert!(warm.provenance.reason.contains("already cached"));
        assert_eq!(
            warm.answers.iter().collect::<Vec<_>>(),
            cold.answers.iter().collect::<Vec<_>>()
        );
        // Unversioned executions still pick the rewriting (no cache to ride).
        let unversioned = prepared.execute(&store);
        assert_eq!(unversioned.provenance.strategy, StrategyTaken::Rewriting);
    }

    /// Versioned executions share one chase materialization per version;
    /// bumping the version recomputes.
    #[test]
    fn materializations_are_cached_per_version() {
        let planner = Planner::new(example2());
        let prepared = planner.prepare(&example2_query());
        let mut store = RelationalStore::new();
        store.insert_fact("s", &["c", "c", "a"]);
        store.insert_fact("t", &["d", "a"]);

        let first = prepared.execute_versioned(&store, 7);
        assert_eq!(first.provenance.materialization_cached, Some(false));
        let second = prepared.execute_versioned(&store, 7);
        assert_eq!(second.provenance.materialization_cached, Some(true));
        assert_eq!(second.provenance.timings.materialize_us, 0);
        // Another query against the same version also hits the shared cache.
        let other = planner.prepare(&parse_query("p() :- s(X, Y, Z)").unwrap());
        let reused = other.execute_versioned(&store, 7);
        assert_eq!(reused.provenance.materialization_cached, Some(true));

        store.insert_fact("t", &["d2", "c"]);
        let bumped = prepared.execute_versioned(&store, 8);
        assert_eq!(bumped.provenance.materialization_cached, Some(false));
    }

    /// Materialization eviction is least-recently-used, not
    /// smallest-version — tenant-tagged versions must not starve the
    /// lowest-tagged tenant.
    #[test]
    fn materialization_eviction_is_lru_not_lowest_version() {
        let planner = Planner::new(example2());
        let mut store = RelationalStore::new();
        store.insert_fact("t", &["d", "a"]);
        // Fill the 4-slot cache with versions 10, 20, 30, 40.
        for v in [10, 20, 30, 40] {
            assert!(!planner.materialize(&store, Some(v)).1);
        }
        // Touch the *lowest* version so it is the most recently used...
        assert!(planner.materialize(&store, Some(10)).1);
        // ...then overflow: the LRU victim must be 20, not 10.
        assert!(!planner.materialize(&store, Some(50)).1);
        assert!(
            planner.materialize(&store, Some(10)).1,
            "the recently-touched lowest version must survive"
        );
        assert!(
            !planner.materialize(&store, Some(20)).1,
            "the least-recently-used version is the victim"
        );
    }

    /// A hybrid plan whose rewriting was budget-cut still *guarantees*
    /// exactness (execution falls back to the terminating chase), and
    /// PREPARE-time and QUERY-time exactness must not contradict.
    #[test]
    fn budget_cut_hybrid_remains_exact() {
        let mut text = String::new();
        for i in 0..40 {
            text.push_str(&format!("[H{i}] sub{i}(X) -> top(X).\n"));
        }
        let program = parse_program(&text).unwrap();
        let planner = Planner::with_config(
            program,
            PlannerConfig {
                // Far too small for the 41-disjunct perfect rewriting.
                rewrite: Some(RewriteConfig::default().with_max_queries(3)),
                ..PlannerConfig::default()
            },
        );
        let prepared = planner.prepare(&parse_query("q(X) :- top(X)").unwrap());
        assert_eq!(prepared.plan().kind(), PlanKind::Hybrid);
        assert!(!prepared.plan().rewriting().unwrap().complete);
        assert!(prepared.guarantees_exact(), "chase fallback is exact");
        let mut store = RelationalStore::new();
        store.insert_fact("sub7", &["a"]);
        let execution = prepared.execute(&store);
        assert_eq!(
            execution.provenance.strategy,
            StrategyTaken::Materialization
        );
        assert!(execution.is_exact());
        assert_eq!(execution.answers.len(), 1);
    }

    /// A recorded insert delta lets a cache miss extend the previous
    /// version's materialization incrementally — and the answers must equal
    /// the scratch chase's.
    #[test]
    fn recorded_deltas_enable_incremental_materialization() {
        let planner = Planner::new(example2());
        let prepared = planner.prepare(&example2_query());
        let mut store = RelationalStore::new();
        store.insert_fact("t", &["d", "a"]);

        let cold = prepared.execute_versioned(&store, 1);
        assert_eq!(
            cold.provenance.materialization,
            Some(MaterializationMode::Scratch)
        );
        assert!(!cold.answers.as_boolean());

        // Commit a batch, record the edge, query the new version.
        let batch = vec![Atom::fact("s", &["c", "c", "a"])];
        for fact in &batch {
            store.insert_atom(fact);
        }
        planner.record_delta(1, 2, &batch, store.len());
        let warm = prepared.execute_versioned(&store, 2);
        assert_eq!(
            warm.provenance.materialization,
            Some(MaterializationMode::Incremental {
                from: 1,
                delta_facts: 1
            })
        );
        assert!(warm.is_exact(), "complete base + terminated continuation");
        assert!(warm.answers.as_boolean(), "s + t now derive r(a, _)");

        // Scratch ground truth on a fresh planner.
        let scratch = Planner::new(example2())
            .prepare(&example2_query())
            .execute(&store);
        assert_eq!(
            warm.answers.iter().collect::<Vec<_>>(),
            scratch.answers.iter().collect::<Vec<_>>()
        );
    }

    /// Delta chains compose: several commits between queries are walked
    /// back to the cached ancestor in one incremental extension.
    #[test]
    fn delta_chains_compose_across_multiple_commits() {
        let planner = Planner::new(example2());
        let prepared = planner.prepare(&parse_query("p() :- s(X, Y, Z)").unwrap());
        let mut store = RelationalStore::new();
        store.insert_fact("t", &["d", "a"]);
        let _ = prepared.execute_versioned(&store, 10);

        let mut version = 10;
        for i in 0..3 {
            let batch = vec![Atom::fact("t", &[&format!("d{i}"), "a"])];
            for fact in &batch {
                store.insert_atom(fact);
            }
            planner.record_delta(version, version + 1, &batch, store.len());
            version += 1;
        }
        // No query ran at versions 11 and 12: the miss at 13 composes all
        // three edges back to the materialization of version 10.
        let execution = prepared.execute_versioned(&store, version);
        assert_eq!(
            execution.provenance.materialization,
            Some(MaterializationMode::Incremental {
                from: 10,
                delta_facts: 3
            })
        );
        // And the extended version is itself cached now.
        let again = prepared.execute_versioned(&store, version);
        assert_eq!(again.provenance.materialization_cached, Some(true));
    }

    /// A provenance-tracking planner: what the serving layer runs so DRed
    /// retraction and WHY walks have a derivation graph to work with.
    fn provenance_config() -> PlannerConfig {
        PlannerConfig {
            chase: ChaseConfig::default().with_provenance(true),
            ..PlannerConfig::default()
        }
    }

    /// A recorded delete edge lets a cache miss repair the previous
    /// version's materialization with DRed instead of re-chasing — and the
    /// answers must equal a scratch chase of the shrunken store.
    #[test]
    fn recorded_retractions_enable_dred_materialization() {
        let planner = Planner::with_config(example2(), provenance_config());
        let prepared = planner.prepare(&example2_query());
        let mut store = RelationalStore::new();
        store.insert_fact("s", &["c", "c", "a"]);
        store.insert_fact("t", &["d", "a"]);
        let cold = prepared.execute_versioned(&store, 1);
        assert_eq!(
            cold.provenance.materialization,
            Some(MaterializationMode::Scratch)
        );
        assert!(cold.answers.as_boolean(), "s + t derive r(a, _)");

        // Retract the s fact: the derived r atom (and everything chased
        // from it) loses its only support.
        let removed = vec![Atom::fact("s", &["c", "c", "a"])];
        store.remove_atom(&removed[0]);
        planner.record_retraction(1, 2, &removed, store.len());
        let warm = prepared.execute_versioned(&store, 2);
        assert!(
            matches!(
                warm.provenance.materialization,
                Some(MaterializationMode::Dred {
                    from: 1,
                    delta_facts: 0,
                    removed_facts,
                }) if removed_facts >= 1
            ),
            "{:?}",
            warm.provenance.materialization
        );
        assert!(warm.is_exact());
        assert!(!warm.answers.as_boolean(), "the derivation is gone");

        let scratch = Planner::new(example2())
            .prepare(&example2_query())
            .execute(&store);
        assert_eq!(
            warm.answers.iter().collect::<Vec<_>>(),
            scratch.answers.iter().collect::<Vec<_>>()
        );
    }

    /// Without provenance tracking there is no derivation graph to retract
    /// over: the delete lineage is rejected and the planner re-chases from
    /// scratch — correct, just not incremental.
    #[test]
    fn retraction_without_provenance_falls_back_to_scratch() {
        let planner = Planner::new(example2());
        let prepared = planner.prepare(&example2_query());
        let mut store = RelationalStore::new();
        store.insert_fact("s", &["c", "c", "a"]);
        store.insert_fact("t", &["d", "a"]);
        let _ = prepared.execute_versioned(&store, 1);

        let removed = vec![Atom::fact("s", &["c", "c", "a"])];
        store.remove_atom(&removed[0]);
        planner.record_retraction(1, 2, &removed, store.len());
        let execution = prepared.execute_versioned(&store, 2);
        assert_eq!(
            execution.provenance.materialization,
            Some(MaterializationMode::Scratch)
        );
        assert!(!execution.answers.as_boolean());
    }

    /// Insert and delete edges interleave in one lineage: the replay runs
    /// the incremental chase and DRed stage by stage and lands on the same
    /// answers as a scratch chase of the final store.
    #[test]
    fn mixed_insert_delete_lineage_composes() {
        let planner = Planner::with_config(example2(), provenance_config());
        let prepared = planner.prepare(&example2_query());
        let mut store = RelationalStore::new();
        store.insert_fact("t", &["d", "a"]);
        let _ = prepared.execute_versioned(&store, 1);

        let inserted_s = vec![Atom::fact("s", &["c", "c", "a"])];
        store.insert_atom(&inserted_s[0]);
        planner.record_delta(1, 2, &inserted_s, store.len());
        let inserted_t = vec![Atom::fact("t", &["e", "a"])];
        store.insert_atom(&inserted_t[0]);
        planner.record_delta(2, 3, &inserted_t, store.len());
        store.remove_atom(&inserted_s[0]);
        planner.record_retraction(3, 4, &inserted_s, store.len());

        // No query ran at versions 2 and 3: the miss at 4 replays all
        // three edges (insert, insert, delete) from the version-1 base.
        let execution = prepared.execute_versioned(&store, 4);
        assert!(
            matches!(
                execution.provenance.materialization,
                Some(MaterializationMode::Dred {
                    from: 1,
                    delta_facts: 2,
                    ..
                })
            ),
            "{:?}",
            execution.provenance.materialization
        );
        assert!(!execution.answers.as_boolean(), "the s fact is gone again");
        let scratch = Planner::new(example2())
            .prepare(&example2_query())
            .execute(&store);
        assert_eq!(
            execution.answers.iter().collect::<Vec<_>>(),
            scratch.answers.iter().collect::<Vec<_>>()
        );
        // And the repaired version is itself cached now.
        let again = prepared.execute_versioned(&store, 4);
        assert_eq!(again.provenance.materialization_cached, Some(true));
    }

    /// The versioned explain peeks at the cache and reports the mode of
    /// the materialization a chase execution at this version would hit.
    #[test]
    fn versioned_explain_reports_the_cached_mode() {
        let planner = Planner::new(example2());
        let prepared = planner.prepare(&example2_query());
        let mut store = RelationalStore::new();
        store.insert_fact("t", &["d", "a"]);
        assert!(prepared
            .explain_versioned(&store, 5)
            .contains("cached materialization: (none)"));
        let _ = prepared.execute_versioned(&store, 5);
        let explain = prepared.explain_versioned(&store, 5);
        assert!(
            explain.contains("cached materialization: scratch"),
            "{explain}"
        );
    }

    /// A continuation can propagate *base* nulls into newly derived facts;
    /// the incremental null count must not double-count them.
    #[test]
    fn incremental_null_count_is_exact_when_base_nulls_propagate() {
        let program = parse_program(
            "[R1] person(X) -> hasParent(X, N).\n\
             [R2] hasParent(X, P), vip(X) -> q(P).",
        )
        .unwrap();
        let planner = Planner::new(program);
        let mut store = RelationalStore::new();
        store.insert_fact("person", &["alice"]);
        let (base, _) = planner.materialize(&store, Some(1));
        assert_eq!(base.nulls, 1, "hasParent(alice, n1)");

        let batch = vec![Atom::fact("vip", &["alice"])];
        store.insert_atom(&batch[0]);
        planner.record_delta(1, 2, &batch, store.len());
        let (extended, _) = planner.materialize(&store, Some(2));
        assert_eq!(
            extended.mode,
            MaterializationMode::Incremental {
                from: 1,
                delta_facts: 1
            }
        );
        // The continuation derives q(n1), re-using the base's null: still
        // exactly one distinct null, both in the stat and in the store.
        assert_eq!(extended.nulls, 1);
        assert_eq!(extended.nulls, extended.store.to_instance().nulls().len());
    }

    /// A lineage that does not reproduce the observed store (wrong
    /// resulting size) is rejected and the planner re-chases from scratch.
    #[test]
    fn invalid_delta_lineage_falls_back_to_scratch() {
        let planner = Planner::new(example2());
        let prepared = planner.prepare(&example2_query());
        let mut store = RelationalStore::new();
        store.insert_fact("t", &["d", "a"]);
        let _ = prepared.execute_versioned(&store, 1);

        // The recorded batch claims one new fact, but the store actually
        // grew by two (a second fact slipped in without being recorded).
        let batch = vec![Atom::fact("s", &["c", "c", "a"])];
        store.insert_atom(&batch[0]);
        store.insert_fact("t", &["d2", "c"]);
        planner.record_delta(1, 2, &batch, store.len() - 1);
        let execution = prepared.execute_versioned(&store, 2);
        assert_eq!(
            execution.provenance.materialization,
            Some(MaterializationMode::Scratch),
            "mismatched lineage must not be extended"
        );
        assert!(execution.answers.as_boolean());
    }

    /// A stale version token (same number, different data) is detected by
    /// the source-size guard instead of serving wrong answers.
    #[test]
    fn version_token_misuse_recomputes_instead_of_serving_stale_data() {
        let planner = Planner::new(example2());
        let prepared = planner.prepare(&example2_query());
        let mut store = RelationalStore::new();
        store.insert_fact("t", &["d", "a"]);
        assert!(!prepared.execute_versioned(&store, 1).answers.as_boolean());
        store.insert_fact("s", &["c", "c", "a"]);
        // Same (wrong) token, new data: the guard forces a fresh chase.
        let execution = prepared.execute_versioned(&store, 1);
        assert_eq!(execution.provenance.materialization_cached, Some(false));
        assert!(execution.answers.as_boolean());
    }

    /// Forced plans bypass the trichotomy but keep the provenance honest.
    #[test]
    fn forced_plans_report_their_guarantees_honestly() {
        // Forcing the chase on a non-terminating ontology: bounded, sound,
        // not exact.
        let program = parse_program(
            "[R1] person(X) -> hasParent(X, Y).\n\
             [R2] hasParent(X, Y) -> person(Y).",
        )
        .unwrap();
        let planner = Planner::new(program);
        let query = parse_query("q(X) :- person(X)").unwrap();
        let forced = planner.prepare_forced(&query, PlanKind::Chase).unwrap();
        assert!(matches!(
            forced.plan(),
            QueryPlan::ChaseThenEvaluate {
                materialized: MaterializationGuarantee::Bounded
            }
        ));
        let mut store = RelationalStore::new();
        store.insert_fact("person", &["alice"]);
        let execution = forced.execute(&store);
        assert!(!execution.is_exact(), "bounded chase is an approximation");
        assert!(execution.answers.contains_constants(&["alice"]));
        // Forcing the rewriting on the same ontology is complete (linear).
        let rewritten = planner
            .prepare_forced(&query, PlanKind::Rewrite)
            .unwrap()
            .execute(&store);
        assert!(rewritten.is_exact());
        assert!(execution.provenance.reason.contains("forced"));
    }

    /// The explain dump names the plan, the reason and the cost artifacts.
    #[test]
    fn explain_dumps_the_plan() {
        let planner = Planner::new(example1());
        let prepared = planner.prepare(&parse_query("ans(X, Z) :- r(X, Z)").unwrap());
        let explain = prepared.explain();
        assert!(explain.contains("plan: hybrid"), "{explain}");
        assert!(explain.contains("reason:"), "{explain}");
        assert!(explain.contains("rewriting:"), "{explain}");
        assert!(explain.contains("classes:"), "{explain}");

        let chase_plan = Planner::new(example2()).prepare(&example2_query());
        let explain = chase_plan.explain();
        assert!(explain.contains("plan: chase"), "{explain}");
        assert!(
            explain.contains("materialization: terminating chase"),
            "{explain}"
        );
    }

    /// The registrar suite is chase territory (Datalog transitive closure:
    /// not FO-rewritable, weakly acyclic), and its selective query binds a
    /// constant over a guardable predicate — the planner picks the
    /// goal-driven pipeline and its restricted chase answers exactly like
    /// the full materialization, deriving far fewer facts.
    #[test]
    fn registrar_selective_query_maps_to_a_goal_driven_plan() {
        let planner = Planner::new(ontorew_workloads::registrar_ontology());
        assert!(!planner.classification().fo_rewritable());
        assert!(planner.classification().chase_terminates());
        let queries = ontorew_workloads::registrar_queries();
        let selective = &queries[0];
        let broad = &queries[1];

        let prepared = planner.prepare(selective);
        assert_eq!(prepared.plan().kind(), PlanKind::GoalDriven);
        assert!(prepared.guarantees_exact());

        let store = RelationalStore::from_instance(&ontorew_workloads::registrar_abox(200, 8, 5));
        let execution = prepared.execute(&store);
        assert_eq!(execution.provenance.strategy, StrategyTaken::GoalDriven);
        assert!(execution.is_exact());
        let full = planner
            .prepare_forced(selective, PlanKind::Chase)
            .unwrap()
            .execute(&store);
        assert_eq!(execution.answers, full.answers);
        let summary = execution.provenance.goal_driven.expect("summary reported");
        assert!(summary.relevant_rules >= 3);
        assert!(summary.adorned_rules >= 2);
        assert!(
            summary.facts_derived < full.provenance.chase.unwrap().facts,
            "the restricted chase derives a strict subset of the model"
        );

        // The broad scan binds no constants: inadmissible, fall back to the
        // plain chase plan with the reason recorded.
        let broad_plan = planner.prepare(broad);
        assert_eq!(broad_plan.plan().kind(), PlanKind::Chase);
        assert!(
            broad_plan.explain().contains("goal-driven inadmissible"),
            "{}",
            broad_plan.explain()
        );
    }

    /// The goal-driven `EXPLAIN` dumps the adorned program: seeds, magic
    /// rules and guarded copies.
    #[test]
    fn goal_driven_explain_dumps_the_adorned_program() {
        let planner = Planner::new(ontorew_workloads::registrar_ontology());
        let prepared = planner.prepare(&ontorew_workloads::registrar_queries()[0]);
        let explain = prepared.explain();
        assert!(explain.contains("plan: goal_driven"), "{explain}");
        assert!(explain.contains("adorned program:"), "{explain}");
        assert!(
            explain.contains("seed: magic_mustComplete_bf(\"student42\")"),
            "{explain}"
        );
        assert!(explain.contains("G5@bf"), "{explain}");
    }

    /// Forcing a guarantee-bearing kind on an unclassifiable program is a
    /// structured error, not a panic or a silently degraded plan;
    /// `BestEffort` (the honest kind) is always accepted.
    #[test]
    fn forcing_plans_on_unclassifiable_programs_is_a_structured_error() {
        let program = parse_program(
            "[R1] t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n\
             [R2] s(Y1, Y1, Y2) -> r(Y2, Y3).\n\
             [R3] r(X, Y) -> t(Y, Z).",
        )
        .unwrap();
        let planner = Planner::new(program);
        assert!(!planner.classification().fo_rewritable());
        assert!(!planner.classification().chase_terminates());
        let query = parse_query(r#"q() :- r("a", X)"#).unwrap();
        for kind in [PlanKind::Rewrite, PlanKind::Chase, PlanKind::Hybrid] {
            match planner.prepare_forced(&query, kind) {
                Err(PlannerError::UnclassifiableForcedPlan { kind: k }) => assert_eq!(k, kind),
                other => panic!("expected UnclassifiableForcedPlan, got {other:?}"),
            }
        }
        let err = planner.prepare_forced(&query, PlanKind::Chase).unwrap_err();
        assert!(err.to_string().contains("neither FO-rewritable"), "{err}");
        assert!(planner.prepare_forced(&query, PlanKind::BestEffort).is_ok());
    }

    /// Forcing `GoalDriven` on a program/query the magic rewrite rejects
    /// reports the admissibility failure.
    #[test]
    fn forcing_goal_driven_on_an_inadmissible_query_reports_the_reason() {
        // Example 2: the existential rule R2 makes every rule unguardable.
        let planner = Planner::new(example2());
        match planner.prepare_forced(&example2_query(), PlanKind::GoalDriven) {
            Err(PlannerError::GoalDrivenInadmissible { reason }) => {
                assert!(reason.contains("no guardable rules"), "{reason}");
            }
            other => panic!("expected GoalDrivenInadmissible, got {other:?}"),
        }
        // The registrar's selective query is admissible even when forced.
        let registrar = Planner::new(ontorew_workloads::registrar_ontology());
        let forced = registrar
            .prepare_forced(
                &ontorew_workloads::registrar_queries()[0],
                PlanKind::GoalDriven,
            )
            .unwrap();
        assert_eq!(forced.plan().kind(), PlanKind::GoalDriven);
    }

    /// The paper's running Examples 1–3 through the new evaluator: each
    /// example's query is answered by its planner-chosen pipeline, and the
    /// same query forced through both join strategies over the same store
    /// yields byte-identical answers, with the cost model's estimate-vs-
    /// actual record attached to the planner execution.
    #[test]
    fn paper_examples_agree_across_join_strategies() {
        use ontorew_storage::{evaluate_cq_instrumented, EvalConfig, JoinStrategy};
        #[allow(clippy::type_complexity)]
        let cases: [(TgdProgram, ConjunctiveQuery, Vec<(&str, Vec<&str>)>); 3] = [
            (
                example1(),
                parse_query("ans(X, Z) :- r(X, Z)").unwrap(),
                vec![("s", vec!["a", "b", "c"]), ("t", vec!["d"])],
            ),
            (
                example2(),
                example2_query(),
                vec![("s", vec!["c", "c", "a"]), ("t", vec!["d", "a"])],
            ),
            (
                example3(),
                parse_query("ans(X, Y) :- r(X, Y)").unwrap(),
                vec![("s", vec!["a", "b", "c"]), ("u", vec!["a"])],
            ),
        ];
        for (program, query, facts) in cases {
            let mut store = RelationalStore::new();
            for (pred, row) in &facts {
                store.insert_fact(pred, row);
            }
            let planner = Planner::new(program);
            let execution = planner.prepare(&query).execute_versioned(&store, 0);
            let cardinality = execution
                .provenance
                .cardinality
                .as_ref()
                .expect("small stores always have statistics");
            assert_eq!(cardinality.actual_rows, execution.answers.len());
            // Both join strategies, forced over the raw store, agree with
            // each other (the planner's answers may additionally contain
            // ontology-derived tuples, so they are compared superset-wise).
            let forced = |strategy| {
                evaluate_cq_instrumented(
                    &store,
                    &query,
                    &EvalConfig {
                        strategy: Some(strategy),
                        ..EvalConfig::default()
                    },
                )
                .0
            };
            let backtracking = forced(JoinStrategy::Backtracking);
            let generic = forced(JoinStrategy::GenericJoin);
            assert_eq!(generic, backtracking, "{query}");
            for row in backtracking.iter() {
                assert!(execution.answers.contains(row), "{query}: {row:?}");
            }
        }
    }

    /// `Planner::answer` is the one-shot convenience path.
    #[test]
    fn one_shot_answer_path() {
        let program = parse_program("[R1] student(X) -> person(X).").unwrap();
        let planner = Planner::new(program);
        let mut store = RelationalStore::new();
        store.insert_fact("student", &["sara"]);
        let execution = planner.answer(&parse_query("q(X) :- person(X)").unwrap(), &store);
        assert!(execution.is_exact());
        assert!(execution.answers.contains_constants(&["sara"]));
        assert!(execution.provenance.timings.total_us >= execution.provenance.timings.evaluate_us);
    }
}
