//! The compiled, inspectable query plan.
//!
//! A [`QueryPlan`] is what [`crate::Planner::prepare`] produces: an explicit
//! record of *how* a query will be answered, chosen from the trichotomy of
//! the paper's §7/§8 — FO-rewritable programs compile the ontology into the
//! query, chase-terminating programs materialize a universal model, and
//! everything else gets a sound best-effort pipeline. Plans are plain data:
//! they can be printed (`EXPLAIN` on the serving protocol), cached (the
//! prepared-plan cache of `ontorew-serve`) and executed any number of times
//! against different stores.

use ontorew_magic::MagicProgram;
use ontorew_rewrite::Rewriting;
use serde::Serialize;
use std::sync::Arc;

/// The shape of a plan — the coarse strategy the trichotomy picked.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum PlanKind {
    /// Evaluate the (perfect) UCQ rewriting directly over the data: sound
    /// and complete whenever some FO-rewritable class applies and the
    /// saturation reached its fixpoint.
    Rewrite,
    /// Chase the data into a universal model and evaluate the original
    /// query over it: sound and complete whenever the chase terminates
    /// (weak/joint acyclicity, acyclic GRD).
    Chase,
    /// Both guarantees hold: the executor picks rewriting or materialization
    /// per execution from cost signals (rewriting fan-out, store size,
    /// whether a materialization is already cached).
    Hybrid,
    /// The chase terminates *and* the query is selective enough for a
    /// magic-sets/SIP rewrite: chase the goal-restricted adorned program
    /// (seeded from the query's constants) instead of materializing the
    /// whole model, then evaluate the original query over the slice.
    GoalDriven,
    /// No guarantee holds: a budget-bounded rewriting (optionally unioned
    /// with a budget-bounded chase) yields a sound approximation of the
    /// certain answers — exact only if one of the budgets happens to reach a
    /// fixpoint.
    BestEffort,
}

impl PlanKind {
    /// The lowercase wire/CLI label (`rewrite`, `chase`, `hybrid`,
    /// `goal_driven`, `besteffort`).
    pub fn label(&self) -> &'static str {
        match self {
            PlanKind::Rewrite => "rewrite",
            PlanKind::Chase => "chase",
            PlanKind::Hybrid => "hybrid",
            PlanKind::GoalDriven => "goal_driven",
            PlanKind::BestEffort => "besteffort",
        }
    }

    /// Parse a wire/CLI label produced by [`PlanKind::label`].
    pub fn from_label(label: &str) -> Option<PlanKind> {
        match label {
            "rewrite" => Some(PlanKind::Rewrite),
            "chase" => Some(PlanKind::Chase),
            "hybrid" => Some(PlanKind::Hybrid),
            "goal_driven" => Some(PlanKind::GoalDriven),
            "besteffort" => Some(PlanKind::BestEffort),
            _ => None,
        }
    }
}

impl std::fmt::Display for PlanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether a chase-based plan materializes a *universal model* or only a
/// budget-bounded prefix of one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum MaterializationGuarantee {
    /// Chase termination is guaranteed (weak/joint acyclicity or an acyclic
    /// GRD): the materialized instance is a universal model and evaluating
    /// the query over it yields exactly the certain answers.
    Terminating,
    /// No termination guarantee: the chase runs under its round/fact budget
    /// and the answers are a sound under-approximation unless the run
    /// happens to reach a fixpoint.
    Bounded,
}

/// The compiled plan of one prepared query. Each variant carries the
/// artifacts its executor needs; the expensive ones (the rewriting) are
/// behind `Arc`s so cached plans share them.
#[derive(Clone, Debug)]
pub enum QueryPlan {
    /// Evaluate the compiled UCQ rewriting over the store.
    RewriteThenEvaluate {
        /// The compiled rewriting (perfect when `complete`).
        rewriting: Arc<Rewriting>,
    },
    /// Materialize the chase of the store (cached per data version by the
    /// planner), then evaluate the original query over it.
    ChaseThenEvaluate {
        /// The termination guarantee of the materialization.
        materialized: MaterializationGuarantee,
    },
    /// Rewriting and materialization are both complete strategies; the
    /// executor decides per execution which one is cheaper.
    Hybrid {
        /// The compiled rewriting, whose fan-out is the main cost signal.
        rewriting: Arc<Rewriting>,
    },
    /// Chase the magic-restricted adorned program (goal-relevant slice of
    /// the universal model), then evaluate the original query over it.
    GoalDriven {
        /// The adorned program, its seed facts, and the rewrite counts for
        /// `EXPLAIN`/provenance.
        magic: Arc<MagicProgram>,
    },
    /// Sound approximation for the unclassified case: evaluate the bounded
    /// rewriting, and union a bounded chase when the store is small enough
    /// for materialization to be affordable. When the query admits a
    /// magic-sets rewrite the bounded chase runs the goal-restricted
    /// program instead — the budget is spent on goal-relevant facts first.
    BestEffort {
        /// The budget-bounded rewriting.
        rewriting: Arc<Rewriting>,
        /// The goal-restricted program, when the query admits one.
        magic: Option<Arc<MagicProgram>>,
    },
}

impl QueryPlan {
    /// The coarse strategy of this plan.
    pub fn kind(&self) -> PlanKind {
        match self {
            QueryPlan::RewriteThenEvaluate { .. } => PlanKind::Rewrite,
            QueryPlan::ChaseThenEvaluate { .. } => PlanKind::Chase,
            QueryPlan::Hybrid { .. } => PlanKind::Hybrid,
            QueryPlan::GoalDriven { .. } => PlanKind::GoalDriven,
            QueryPlan::BestEffort { .. } => PlanKind::BestEffort,
        }
    }

    /// The compiled rewriting, for the plans that carry one.
    pub fn rewriting(&self) -> Option<&Arc<Rewriting>> {
        match self {
            QueryPlan::RewriteThenEvaluate { rewriting }
            | QueryPlan::Hybrid { rewriting }
            | QueryPlan::BestEffort { rewriting, .. } => Some(rewriting),
            QueryPlan::ChaseThenEvaluate { .. } | QueryPlan::GoalDriven { .. } => None,
        }
    }

    /// The magic-sets rewrite, for the plans that carry one.
    pub fn magic(&self) -> Option<&Arc<MagicProgram>> {
        match self {
            QueryPlan::GoalDriven { magic } => Some(magic),
            QueryPlan::BestEffort { magic, .. } => magic.as_ref(),
            _ => None,
        }
    }

    /// Total rewriting fan-out (0 for pure chase plans) — the per-query cost
    /// signal the planner and the hybrid executor use.
    pub fn disjuncts(&self) -> usize {
        self.rewriting().map(|r| r.len()).unwrap_or(0)
    }
}
