//! # ontorew-plan
//!
//! The classification-driven query planner — the single way to answer
//! queries in the `ontorew` workspace.
//!
//! The paper's central result is a trichotomy: classify the dependency set,
//! and the class tells you which answering strategy is sound, complete and
//! terminating. Weakly recursive (or otherwise FO-rewritable) programs
//! compile the ontology into the query (UCQ rewriting, AC0 data
//! complexity); weakly acyclic programs materialize a terminating chase;
//! everything else gets a sound, budget-bounded approximation. This crate
//! makes that trichotomy the shape of the public API:
//!
//! * [`Planner::new`] runs the full classification **once** per program;
//! * [`Planner::prepare`] compiles a query into a [`PreparedQuery`] holding
//!   an explicit, inspectable [`QueryPlan`] (`RewriteThenEvaluate`,
//!   `ChaseThenEvaluate`, `Hybrid`, or `BestEffort`) chosen from the
//!   classification report plus per-query cost signals (rewriting fan-out
//!   under the size-aware budget, program size, store size);
//! * [`PreparedQuery::execute`] returns an [`Execution`]: the answers plus a
//!   uniform [`Provenance`] report (strategy taken, exactness guarantee with
//!   the *reason* from the trichotomy, timings, cache provenance).
//!
//! Every other answering surface — `ontorew_obda::ObdaSystem`,
//! `ontorew_serve::QueryService`, the TCP protocol — is a thin shim over
//! this crate; strategy choice happens here and nowhere else.
//!
//! ```
//! use ontorew_model::{parse_program, parse_query, Instance};
//! use ontorew_plan::{PlanKind, Planner, StrategyTaken};
//! use ontorew_storage::RelationalStore;
//!
//! // Example 2 of the paper: not FO-rewritable, but weakly acyclic — the
//! // planner picks chase materialization, and says why.
//! let program = parse_program(
//!     "[R1] t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n\
//!      [R2] s(Y1, Y1, Y2) -> r(Y2, Y3).",
//! )
//! .unwrap();
//! let planner = Planner::new(program);
//! let prepared = planner.prepare(&parse_query(r#"q() :- r("a", X)"#).unwrap());
//! assert_eq!(prepared.plan().kind(), PlanKind::Chase);
//!
//! let mut store = RelationalStore::new();
//! store.insert_fact("s", &["c", "c", "a"]);
//! store.insert_fact("t", &["d", "a"]);
//! let execution = prepared.execute(&store);
//! assert!(execution.is_exact());
//! assert_eq!(execution.provenance.strategy, StrategyTaken::Materialization);
//! assert!(execution.answers.as_boolean());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod execution;
pub mod plan;
pub mod planner;

pub use execution::{
    ChaseSummary, Execution, GoalDrivenSummary, MaterializationMode, Provenance, StrategyTaken,
    Timings,
};
pub use plan::{MaterializationGuarantee, PlanKind, QueryPlan};
pub use planner::{Materialization, Planner, PlannerConfig, PlannerError, PreparedQuery};

// The goal-driven (magic-sets) surface: the planner compiles the adorned
// program itself, but callers inspecting a `QueryPlan::GoalDriven` need the
// types.
pub use ontorew_magic::{
    rewrite_goal_driven, rewrite_goal_driven_with, Adornment, Inadmissible, MagicProgram,
    SipSelectivity, StructuralSipSelectivity, MAGIC_PREFIX,
};

// The chase-side surface the serving layer needs to configure provenance
// tracking and walk derivation graphs without depending on `ontorew-chase`
// directly: every materialization-facing concept flows through the planner.
pub use ontorew_chase::{
    explain_absent, ChaseConfig, DerivationGraph, WhyNot, WhyNotCandidate, WhyStep,
};
