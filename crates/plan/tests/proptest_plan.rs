//! Property-based agreement tests for the planner.
//!
//! On weakly-acyclic (and FO-rewritable) workloads *both* strategies are
//! complete, so whatever plan the planner chooses, the answers must be
//! identical to both a forced chase plan and a forced rewriting plan — and
//! every path must report exactness. The materialization the chase plan
//! evaluates over must be the chase of the data up to null renaming.

use ontorew_chase::{chase, equivalent_up_to_null_renaming, ChaseConfig};
use ontorew_model::prelude::*;
use ontorew_plan::{PlanKind, Planner, PlannerConfig};
use ontorew_storage::RelationalStore;
use proptest::prelude::*;

/// One generated rule of the linear, weakly-acyclic family: subclass edges,
/// role-domain typing, and existential role invention. Role *range* rules
/// are deliberately absent — they would re-introduce the DL-Lite ancestor
/// cycle and break weak acyclicity.
#[derive(Clone, Debug)]
enum RuleSpec {
    /// `c<i>(X) -> c<j>(X)`
    Subclass(usize, usize),
    /// `r<i>(X, Y) -> c<j>(X)`
    RoleDomain(usize, usize),
    /// `c<i>(X) -> r<j>(X, Y)`
    Existential(usize, usize),
}

const CLASSES: usize = 6;
const ROLES: usize = 3;

fn rule_strategy() -> impl Strategy<Value = RuleSpec> {
    prop_oneof![
        (0..CLASSES, 0..CLASSES).prop_map(|(i, j)| RuleSpec::Subclass(i, j)),
        (0..ROLES, 0..CLASSES).prop_map(|(i, j)| RuleSpec::RoleDomain(i, j)),
        (0..CLASSES, 0..ROLES).prop_map(|(i, j)| RuleSpec::Existential(i, j)),
    ]
}

fn program_of(specs: &[RuleSpec]) -> TgdProgram {
    let mut text = String::new();
    for (n, spec) in specs.iter().enumerate() {
        match spec {
            RuleSpec::Subclass(i, j) if i != j => {
                text.push_str(&format!("[S{n}] c{i}(X) -> c{j}(X).\n"));
            }
            RuleSpec::Subclass(..) => {} // c -> c is a tautology; skip
            RuleSpec::RoleDomain(i, j) => {
                text.push_str(&format!("[D{n}] r{i}(X, Y) -> c{j}(X).\n"));
            }
            RuleSpec::Existential(i, j) => {
                text.push_str(&format!("[E{n}] c{i}(X) -> r{j}(X, Y).\n"));
            }
        }
    }
    if text.is_empty() {
        text.push_str("[S0] c1(X) -> c0(X).\n");
    }
    parse_program(&text).expect("generated program parses")
}

/// A random ABox over the generated signature.
fn facts_strategy() -> impl Strategy<Value = Vec<(String, Vec<String>)>> {
    let constants = || prop::sample::select(vec!["a", "b", "c", "d", "e"]);
    let class_fact =
        (0..CLASSES, constants()).prop_map(|(i, x)| (format!("c{i}"), vec![x.to_string()]));
    let role_fact = (0..ROLES, constants(), constants())
        .prop_map(|(i, x, y)| (format!("r{i}"), vec![x.to_string(), y.to_string()]));
    prop::collection::vec(prop_oneof![class_fact, role_fact], 1..12)
}

/// Queries over the signature: a class atom, a role atom, or a join.
fn query_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    prop_oneof![
        (0..CLASSES).prop_map(|i| parse_query(&format!("q(X) :- c{i}(X)")).unwrap()),
        (0..ROLES).prop_map(|i| parse_query(&format!("q(X, Y) :- r{i}(X, Y)")).unwrap()),
        (0..CLASSES, 0..ROLES)
            .prop_map(|(i, j)| { parse_query(&format!("q(X) :- c{i}(X), r{j}(X, Y)")).unwrap() }),
    ]
}

fn store_of(facts: &[(String, Vec<String>)]) -> RelationalStore {
    let mut store = RelationalStore::new();
    for (p, args) in facts {
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        store.insert_fact(p, &refs);
    }
    store
}

proptest! {
    /// The planner-chosen plan, a forced chase and a forced rewriting agree
    /// on every weakly-acyclic workload, and all three claim exactness.
    #[test]
    fn planner_and_forced_strategies_agree(
        specs in prop::collection::vec(rule_strategy(), 1..12),
        facts in facts_strategy(),
        query in query_strategy(),
    ) {
        let program = program_of(&specs);
        let planner = Planner::new(program.clone());
        // The generated family is linear (FO-rewritable) and weakly acyclic.
        prop_assert!(planner.classification().fo_rewritable());
        prop_assert!(planner.classification().chase_terminates());

        let store = store_of(&facts);
        let chosen = planner.prepare(&query).execute(&store);
        let by_chase = planner.prepare_forced(&query, PlanKind::Chase).unwrap().execute(&store);
        let by_rewriting = planner.prepare_forced(&query, PlanKind::Rewrite).unwrap().execute(&store);

        prop_assert!(chosen.is_exact());
        prop_assert!(by_chase.is_exact());
        prop_assert!(by_rewriting.is_exact());
        prop_assert!(
            chosen.answers.iter().eq(by_chase.answers.iter()),
            "chosen {:?} vs chase {:?} on {query}",
            chosen.answers, by_chase.answers
        );
        prop_assert!(
            chosen.answers.iter().eq(by_rewriting.answers.iter()),
            "chosen {:?} vs rewriting {:?} on {query}",
            chosen.answers, by_rewriting.answers
        );
    }

    /// Interleaved commit/query schedules: batches are committed with their
    /// delta edges recorded (as the serving layer does), queries run at
    /// random points in between, and every query's answers must equal a
    /// scratch evaluation of the same store by a fresh planner — whether
    /// the materialization behind it was chased from scratch, found cached,
    /// or composed incrementally over one or many recorded batches.
    #[test]
    fn interleaved_commits_and_queries_match_scratch(
        specs in prop::collection::vec(rule_strategy(), 1..10),
        batches in prop::collection::vec(facts_strategy(), 1..5),
        query_after in prop::collection::vec(prop::sample::select(vec![false, true]), 1..5),
        query in query_strategy(),
    ) {
        let program = program_of(&specs);
        let planner = Planner::new(program.clone());
        let prepared = planner.prepare(&query);
        let mut store = RelationalStore::new();
        let mut version = 0u64;
        // Version 0 starts materialized (the serving layer's epoch 0 state).
        let _ = prepared.execute_versioned(&store, version);
        for (i, batch) in batches.iter().enumerate() {
            let atoms: Vec<Atom> = batch
                .iter()
                .map(|(p, args)| {
                    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
                    Atom::fact(p, &refs)
                })
                .collect();
            for atom in &atoms {
                store.insert_atom(atom);
            }
            planner.record_delta(version, version + 1, &atoms, store.len());
            version += 1;
            if *query_after.get(i).unwrap_or(&false) {
                let served = prepared.execute_versioned(&store, version);
                let scratch = Planner::new(program.clone()).prepare(&query).execute(&store);
                prop_assert!(served.is_exact());
                prop_assert!(
                    served.answers.iter().eq(scratch.answers.iter()),
                    "interleaved answers diverge at version {version}: {:?} vs {:?}",
                    served.answers,
                    scratch.answers
                );
            }
        }
        // Final barrier query: always compared, regardless of the schedule.
        let served = prepared.execute_versioned(&store, version);
        let scratch = Planner::new(program.clone()).prepare(&query).execute(&store);
        prop_assert!(served.answers.iter().eq(scratch.answers.iter()));
        // The materialization at the final version (cached by a chase-plan
        // execution, or composed now over the recorded edges — hybrid plans
        // may have answered everything by rewriting) agrees with a
        // reference chase of the accumulated store.
        let (materialization, _cached) = planner.materialize(&store, Some(version));
        let reference = chase(&program, &store.to_instance(), &ChaseConfig::default());
        prop_assert!(materialization.complete);
        // Certain answers of the materialization equal the reference chase
        // (the instances themselves may differ in restricted-chase
        // witnesses, so the comparison is at the answer level).
        let from_cache = ontorew_storage::evaluate_cq(&materialization.store, &query)
            .without_nulls();
        let from_reference = ontorew_storage::evaluate_cq(
            &RelationalStore::from_instance(&reference.instance),
            &query,
        )
        .without_nulls();
        prop_assert_eq!(from_cache, from_reference);
    }

    /// Mixed INSERT/DELETE/QUERY schedules against the scratch-rechase
    /// oracle: batches are committed (or retracted) with their kinded delta
    /// edges recorded exactly as the serving layer does, queries run at
    /// random points in between, and every query's answers must equal a
    /// fresh planner's scratch evaluation of the same store — whether the
    /// materialization behind the versioned path was chased from scratch,
    /// found cached, extended incrementally, or repaired by DRed over the
    /// derivation graph.
    #[test]
    fn interleaved_inserts_deletes_and_queries_match_scratch(
        specs in prop::collection::vec(rule_strategy(), 1..10),
        ops in prop::collection::vec(
            (
                prop::sample::select(vec![false, true]),
                facts_strategy(),
                prop::sample::select(vec![false, true]),
            ),
            1..6,
        ),
        query in query_strategy(),
    ) {
        let program = program_of(&specs);
        // The serving layer's configuration: provenance on, so delete edges
        // can be repaired by DRed instead of forcing a scratch re-chase.
        let planner = Planner::with_config(
            program.clone(),
            PlannerConfig {
                chase: ChaseConfig::default().with_provenance(true),
                ..PlannerConfig::default()
            },
        );
        let prepared = planner.prepare(&query);
        let mut store = RelationalStore::new();
        let mut version = 0u64;
        // Version 0 starts materialized (the serving layer's epoch 0 state).
        let _ = prepared.execute_versioned(&store, version);
        for (is_delete, batch, query_after) in &ops {
            let atoms: Vec<Atom> = batch
                .iter()
                .map(|(p, args)| {
                    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
                    Atom::fact(p, &refs)
                })
                .collect();
            if *is_delete {
                // Retract the batch (absent facts are no-ops, like the
                // service); the delete edge is recorded either way.
                for atom in &atoms {
                    store.remove_atom(atom);
                }
                planner.record_retraction(version, version + 1, &atoms, store.len());
            } else {
                for atom in &atoms {
                    store.insert_atom(atom);
                }
                planner.record_delta(version, version + 1, &atoms, store.len());
            }
            version += 1;
            if *query_after {
                let served = prepared.execute_versioned(&store, version);
                let scratch = Planner::new(program.clone()).prepare(&query).execute(&store);
                prop_assert!(served.is_exact());
                prop_assert!(
                    served.answers.iter().eq(scratch.answers.iter()),
                    "mixed-schedule answers diverge at version {version}: {:?} vs {:?}",
                    served.answers,
                    scratch.answers
                );
            }
        }
        // Final barrier: always compared, and the materialization behind the
        // final version must agree with a reference chase of the surviving
        // store at the certain-answer level.
        let served = prepared.execute_versioned(&store, version);
        let scratch = Planner::new(program.clone()).prepare(&query).execute(&store);
        prop_assert!(
            served.answers.iter().eq(scratch.answers.iter()),
            "final answers diverge: {:?} vs {:?}",
            served.answers,
            scratch.answers
        );
        let (materialization, _cached) = planner.materialize(&store, Some(version));
        prop_assert!(materialization.complete);
        let reference = chase(&program, &store.to_instance(), &ChaseConfig::default());
        let from_cache = ontorew_storage::evaluate_cq(&materialization.store, &query)
            .without_nulls();
        let from_reference = ontorew_storage::evaluate_cq(
            &RelationalStore::from_instance(&reference.instance),
            &query,
        )
        .without_nulls();
        prop_assert_eq!(from_cache, from_reference);
    }

    /// The planner's cached materialization is the chase of the data, up to
    /// null renaming.
    #[test]
    fn materialization_is_the_chase_up_to_null_renaming(
        specs in prop::collection::vec(rule_strategy(), 1..10),
        facts in facts_strategy(),
    ) {
        let program = program_of(&specs);
        let planner = Planner::new(program.clone());
        let store = store_of(&facts);
        let (materialization, cached) = planner.materialize(&store, Some(1));
        prop_assert!(!cached);
        prop_assert!(materialization.complete);
        let reference = chase(&program, &store.to_instance(), &ChaseConfig::default());
        prop_assert!(equivalent_up_to_null_renaming(
            &materialization.store.to_instance(),
            &reference.instance,
        ));
        // And the version cache returns the same artifact.
        let (again, cached) = planner.materialize(&store, Some(1));
        prop_assert!(cached);
        prop_assert!(std::sync::Arc::ptr_eq(&materialization, &again));
    }
}
