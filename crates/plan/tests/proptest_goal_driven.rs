//! Property-based equivalence for the goal-driven (magic-sets) pipeline.
//!
//! The magic-sets guarantee: chasing the adorned/guarded program over the
//! instance plus the query's demand seeds answers the original query exactly
//! like a full-model chase — while deriving only goal-relevant facts. The
//! properties here check that guarantee over random Datalog-heavy programs
//! and constant-binding queries, under **both** chase variants (restricted
//! and oblivious), both at the magic-rewrite level and through the planner's
//! natural path (whatever plan it picks must agree with a forced full
//! chase). The paper's Examples 1–3 are pinned against the new pipeline at
//! the bottom.

use ontorew_chase::{chase, ChaseConfig, ChaseVariant};
use ontorew_core::examples::{example1, example2, example2_query, example3};
use ontorew_model::prelude::*;
use ontorew_plan::{
    rewrite_goal_driven, Inadmissible, PlanKind, Planner, PlannerConfig, PlannerError,
};
use ontorew_storage::{evaluate_cq, RelationalStore};
use proptest::prelude::*;

const CLASSES: usize = 5;
const ROLES: usize = 3;

/// One generated rule of a Datalog family rich enough to exercise every
/// magic-sets code path: hierarchies, typing, sideways joins (bindings must
/// flow left-to-right), transitive closure (adornment self-demand), and —
/// only for the planner-level property — existential invention (the
/// unguarded cascade).
#[derive(Clone, Debug)]
enum RuleSpec {
    /// `c<i>(X) -> c<j>(X)`
    Subclass(usize, usize),
    /// `r<i>(X, Y) -> c<j>(X)`
    RoleDomain(usize, usize),
    /// `c<i>(X), r<j>(X, Y) -> c<k>(Y)` — SIP passes X into the role scan.
    Join(usize, usize, usize),
    /// `r<i>(X, Y), r<i>(Y, Z) -> r<i>(X, Z)` — transitive closure.
    Transitive(usize),
    /// `c<i>(X) -> r<j>(X, Y)` — existential; unguardable.
    Existential(usize, usize),
}

fn datalog_rule() -> impl Strategy<Value = RuleSpec> {
    prop_oneof![
        (0..CLASSES, 0..CLASSES).prop_map(|(i, j)| RuleSpec::Subclass(i, j)),
        (0..ROLES, 0..CLASSES).prop_map(|(i, j)| RuleSpec::RoleDomain(i, j)),
        (0..CLASSES, 0..ROLES, 0..CLASSES).prop_map(|(i, j, k)| RuleSpec::Join(i, j, k)),
        (0..ROLES).prop_map(RuleSpec::Transitive),
    ]
}

fn any_rule() -> impl Strategy<Value = RuleSpec> {
    // The vendored proptest has no weighted arms; repeat the Datalog arm to
    // bias draws roughly 4:1 toward guardable rules.
    prop_oneof![
        datalog_rule(),
        datalog_rule(),
        datalog_rule(),
        datalog_rule(),
        (0..CLASSES, 0..ROLES).prop_map(|(i, j)| RuleSpec::Existential(i, j)),
    ]
}

fn program_of(specs: &[RuleSpec]) -> TgdProgram {
    let mut text = String::new();
    for (n, spec) in specs.iter().enumerate() {
        match spec {
            RuleSpec::Subclass(i, j) if i != j => {
                text.push_str(&format!("[S{n}] c{i}(X) -> c{j}(X).\n"));
            }
            RuleSpec::Subclass(..) => {}
            RuleSpec::RoleDomain(i, j) => {
                text.push_str(&format!("[D{n}] r{i}(X, Y) -> c{j}(X).\n"));
            }
            RuleSpec::Join(i, j, k) => {
                text.push_str(&format!("[J{n}] c{i}(X), r{j}(X, Y) -> c{k}(Y).\n"));
            }
            RuleSpec::Transitive(i) => {
                text.push_str(&format!("[T{n}] r{i}(X, Y), r{i}(Y, Z) -> r{i}(X, Z).\n"));
            }
            RuleSpec::Existential(i, j) => {
                text.push_str(&format!("[E{n}] c{i}(X) -> r{j}(X, Y).\n"));
            }
        }
    }
    if text.is_empty() {
        text.push_str("[S0] c1(X) -> c0(X).\n");
    }
    parse_program(&text).expect("generated program parses")
}

fn facts_strategy() -> impl Strategy<Value = Vec<(String, Vec<String>)>> {
    let constants = || prop::sample::select(vec!["a", "b", "c", "d", "e"]);
    let class_fact =
        (0..CLASSES, constants()).prop_map(|(i, x)| (format!("c{i}"), vec![x.to_string()]));
    let role_fact = (0..ROLES, constants(), constants())
        .prop_map(|(i, x, y)| (format!("r{i}"), vec![x.to_string(), y.to_string()]));
    prop::collection::vec(prop_oneof![class_fact, role_fact], 1..14)
}

/// Queries binding at least one constant — the goal-driven pipeline's
/// candidates — plus the occasional all-free scan (which must fall back).
fn query_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    let constants = || prop::sample::select(vec!["a", "b", "z"]);
    prop_oneof![
        (0..ROLES, constants())
            .prop_map(|(i, k)| parse_query(&format!("q(X) :- r{i}(\"{k}\", X)")).unwrap()),
        (0..CLASSES, constants())
            .prop_map(|(i, k)| parse_query(&format!("q() :- c{i}(\"{k}\")")).unwrap()),
        (0..CLASSES, 0..ROLES, constants()).prop_map(|(i, j, k)| {
            parse_query(&format!("q(Y) :- r{j}(\"{k}\", Y), c{i}(Y)")).unwrap()
        }),
        (0..CLASSES).prop_map(|i| parse_query(&format!("q(X) :- c{i}(X)")).unwrap()),
    ]
}

fn store_of(facts: &[(String, Vec<String>)]) -> RelationalStore {
    let mut store = RelationalStore::new();
    for (p, args) in facts {
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        store.insert_fact(p, &refs);
    }
    store
}

fn variant_config(variant: ChaseVariant) -> ChaseConfig {
    match variant {
        ChaseVariant::Restricted => ChaseConfig::restricted(64),
        ChaseVariant::Oblivious => ChaseConfig::oblivious(64),
    }
}

proptest! {
    /// Magic-rewrite-level equivalence on pure Datalog (always terminating):
    /// whenever the rewrite is admissible, chasing the restricted program
    /// over instance + seeds answers the original query exactly like the
    /// full chase — under both chase variants.
    #[test]
    fn goal_driven_answers_equal_full_chase_answers(
        specs in prop::collection::vec(datalog_rule(), 1..10),
        facts in facts_strategy(),
        query in query_strategy(),
    ) {
        let program = program_of(&specs);
        let Ok(magic) = rewrite_goal_driven(&program, &query) else {
            // Inadmissible (free query, nothing guardable): the fallback
            // path is covered by the planner-level property below.
            return Ok(());
        };
        let store = store_of(&facts);
        for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
            let config = variant_config(variant);
            let full = chase(&program, &store.to_instance(), &config);
            prop_assert!(full.is_universal_model(), "Datalog chase terminates");
            let mut seeded = store.to_instance();
            for seed in &magic.seeds {
                seeded.insert(seed.clone());
            }
            let restricted = chase(&magic.program, &seeded, &config);
            prop_assert!(restricted.is_universal_model());
            // Ignoring the demand (magic_*) relations, the restricted chase
            // derives a subset of the full model.
            let non_magic: usize = restricted
                .instance
                .predicates()
                .filter(|p| !p.name_str().starts_with(ontorew_plan::MAGIC_PREFIX))
                .map(|p| restricted.instance.relation_size(p))
                .sum();
            prop_assert!(
                non_magic <= full.instance.len(),
                "the restriction must not derive more than the full model"
            );
            let goal = evaluate_cq(
                &RelationalStore::from_instance(&restricted.instance),
                &query,
            )
            .without_nulls();
            let full_answers = evaluate_cq(
                &RelationalStore::from_instance(&full.instance),
                &query,
            )
            .without_nulls();
            prop_assert_eq!(
                goal, full_answers,
                "variant {:?} diverged on {} over {:?}", variant, query, program
            );
        }
    }

    /// Planner-level equivalence with existentials in the mix: whatever the
    /// planner picks for a chase-terminating program (goal-driven when
    /// admissible, plain chase otherwise), the answers equal a forced
    /// full-chase plan's — and both claim exactness — under both variants.
    #[test]
    fn planner_chosen_plan_agrees_with_forced_chase(
        specs in prop::collection::vec(any_rule(), 1..10),
        facts in facts_strategy(),
        query in query_strategy(),
    ) {
        let program = program_of(&specs);
        for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
            let planner = Planner::with_config(
                program.clone(),
                PlannerConfig {
                    chase: variant_config(variant),
                    ..PlannerConfig::default()
                },
            );
            if !planner.classification().chase_terminates() {
                // Existential draws may leave weak acyclicity: out of chase
                // territory, the goal-driven pipeline is never chosen.
                prop_assert_ne!(planner.prepare(&query).plan().kind(), PlanKind::GoalDriven);
                return Ok(());
            }
            let store = store_of(&facts);
            let chosen = planner.prepare(&query);
            let natural = chosen.execute(&store);
            let forced = planner
                .prepare_forced(&query, PlanKind::Chase)
                .unwrap()
                .execute(&store);
            prop_assert!(natural.is_exact());
            prop_assert!(forced.is_exact());
            prop_assert!(
                natural.answers.iter().eq(forced.answers.iter()),
                "{:?} plan diverged from forced chase on {} over {:?}: {:?} vs {:?}",
                chosen.plan().kind(), query, program, natural.answers, forced.answers
            );
            if chosen.plan().kind() == PlanKind::GoalDriven {
                let summary = natural.provenance.goal_driven.expect("summary reported");
                prop_assert!(summary.relevant_rules <= program.len());
            }
        }
    }
}

/// Example 1 (FO-rewritable *and* weakly acyclic) stays a hybrid plan: the
/// goal-driven pipeline only competes in pure chase territory.
#[test]
fn example1_is_untouched_by_the_goal_driven_pipeline() {
    let planner = Planner::new(example1());
    let prepared = planner.prepare(&parse_query("ans(X, Z) :- r(X, Z)").unwrap());
    assert_eq!(prepared.plan().kind(), PlanKind::Hybrid);
}

/// Example 2 (chase territory) is *inadmissible* for the goal restriction —
/// its existential rule R2 cascades until nothing guardable survives — so
/// the planner falls back to the full-model chase plan and the answers are
/// untouched.
#[test]
fn example2_falls_back_to_the_full_chase() {
    assert_eq!(
        rewrite_goal_driven(&example2(), &example2_query()).err(),
        Some(Inadmissible::NoGuardedRules)
    );
    let planner = Planner::new(example2());
    let prepared = planner.prepare(&example2_query());
    assert_eq!(prepared.plan().kind(), PlanKind::Chase);
    assert!(prepared.explain().contains("goal-driven inadmissible"));
    let mut store = RelationalStore::new();
    store.insert_fact("s", &["c", "c", "a"]);
    store.insert_fact("t", &["d", "a"]);
    let execution = prepared.execute(&store);
    assert!(execution.is_exact());
    assert!(execution.answers.as_boolean());
    // Forcing the pipeline anyway is a structured error, not a wrong plan.
    assert!(matches!(
        planner.prepare_forced(&example2_query(), PlanKind::GoalDriven),
        Err(PlannerError::GoalDrivenInadmissible { .. })
    ));
}

/// Example 3 (FO-rewritable via WR *and* jointly acyclic) keeps its hybrid
/// plan; the goal-driven pipeline only competes when rewriting is off the
/// table.
#[test]
fn example3_keeps_its_hybrid_plan() {
    let planner = Planner::new(example3());
    assert!(planner.classification().fo_rewritable());
    assert!(planner.classification().chase_terminates());
    let prepared = planner.prepare(&parse_query("ans(A, B) :- s(A, A, B)").unwrap());
    assert_eq!(prepared.plan().kind(), PlanKind::Hybrid);
}
