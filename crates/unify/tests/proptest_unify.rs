//! Property-based tests for unification, homomorphisms and containment.

use ontorew_model::prelude::*;
use ontorew_unify::*;
use proptest::prelude::*;

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        prop::sample::select(vec!["X", "Y", "Z", "W"]).prop_map(Term::variable),
        prop::sample::select(vec!["a", "b", "c"]).prop_map(Term::constant),
    ]
}

fn atom_strategy() -> impl Strategy<Value = Atom> {
    (1usize..=3, prop::collection::vec(term_strategy(), 3)).prop_map(|(arity, terms)| {
        Atom::new(
            &format!("rel{arity}"),
            terms.into_iter().take(arity).collect(),
        )
    })
}

fn ground_atom_strategy() -> impl Strategy<Value = Atom> {
    (
        1usize..=3,
        prop::collection::vec(prop::sample::select(vec!["a", "b", "c", "d"]), 3),
    )
        .prop_map(|(arity, names)| {
            Atom::new(
                &format!("rel{arity}"),
                names.into_iter().take(arity).map(Term::constant).collect(),
            )
        })
}

proptest! {
    /// The computed unifier is a unifier, and unifiability agrees with it.
    #[test]
    fn unifier_unifies(a in atom_strategy(), b in atom_strategy()) {
        match unify_atoms(&a, &b) {
            Some(u) => {
                prop_assert!(unifiable(&a, &b));
                prop_assert_eq!(u.apply_atom_deep(&a), u.apply_atom_deep(&b));
            }
            None => prop_assert!(!unifiable(&a, &b)),
        }
    }

    /// An atom always unifies with a freshened copy of itself, and the unifier
    /// maps it onto that copy.
    #[test]
    fn atom_unifies_with_its_renaming(a in atom_strategy()) {
        let (renamed, _) = freshen_variables(std::slice::from_ref(&a));
        let u = unify_atoms(&a, &renamed[0]);
        prop_assert!(u.is_some());
    }

    /// The MGU is most general: for ground instances obtained by any grounding
    /// of both atoms that makes them equal, the grounding factors through the
    /// MGU (checked on the ground case: if a grounding makes both equal, the
    /// MGU exists).
    #[test]
    fn ground_equality_implies_unifiability(
        a in atom_strategy(),
        grounding in prop::collection::vec(prop::sample::select(vec!["a", "b", "c"]), 4),
    ) {
        // Ground `a` with an arbitrary assignment.
        let vars = a.variables();
        let subst = Substitution::from_bindings(
            vars.iter().enumerate().map(|(i, v)| {
                (*v, Term::constant(grounding[i % grounding.len()]))
            }),
        );
        let grounded = subst.apply_atom(&a);
        prop_assert!(unifiable(&a, &grounded));
    }

    /// Homomorphism search agrees with brute-force enumeration of candidate
    /// assignments on small instances.
    #[test]
    fn homomorphism_existence_is_sound(
        pattern in atom_strategy(),
        facts in prop::collection::vec(ground_atom_strategy(), 0..8),
    ) {
        let instance: Instance = facts.into_iter().collect();
        let found = find_homomorphism(std::slice::from_ref(&pattern), &instance, &Substitution::new());
        match found {
            Some(h) => {
                let image = h.apply_atom(&pattern);
                prop_assert!(image.is_ground());
                prop_assert!(instance.contains(&image));
            }
            None => {
                // Brute force: no stored tuple of the right predicate matches.
                let matches = instance
                    .tuples(pattern.predicate)
                    .any(|tuple| {
                        let mut s = Substitution::new();
                        tuple.iter().zip(pattern.terms.iter()).all(|(value, pat)| match pat {
                            Term::Variable(v) => match s.get(*v) {
                                Some(existing) => existing == *value,
                                None => {
                                    s.bind(*v, *value);
                                    true
                                }
                            },
                            ground => ground == value,
                        })
                    });
                prop_assert!(!matches);
            }
        }
    }

    /// Containment is reflexive and invariant under variable renaming, and
    /// adding atoms to a body only makes the query more specific.
    #[test]
    fn containment_laws(
        atoms in prop::collection::vec(atom_strategy(), 1..4),
        extra in atom_strategy(),
    ) {
        let q = ConjunctiveQuery::boolean(atoms.clone());
        prop_assert!(is_contained_in(&q, &q));
        prop_assert!(is_contained_in(&q.freshen(), &q));
        let mut bigger_body = atoms;
        bigger_body.push(extra);
        let bigger = ConjunctiveQuery::boolean(bigger_body);
        prop_assert!(is_contained_in(&bigger, &q));
    }

    /// Minimization is idempotent.
    #[test]
    fn minimization_is_idempotent(atoms in prop::collection::vec(atom_strategy(), 1..4)) {
        let q = ConjunctiveQuery::boolean(atoms);
        let once = minimize(&q);
        let twice = minimize(&once);
        prop_assert_eq!(once.body.len(), twice.body.len());
        prop_assert!(are_equivalent(&once, &twice));
    }

    /// Pruning a UCQ never changes the set of certain answers it captures:
    /// every pruned disjunct is contained in some surviving disjunct.
    #[test]
    fn ucq_pruning_is_lossless(disjuncts in prop::collection::vec(
        prop::collection::vec(atom_strategy(), 1..3), 1..4)
    ) {
        let ucq = UnionOfConjunctiveQueries::new(
            disjuncts.iter().cloned().map(ConjunctiveQuery::boolean).collect(),
        );
        let pruned = prune_ucq(&ucq);
        prop_assert!(pruned.len() <= ucq.len());
        for original in ucq.iter() {
            prop_assert!(
                pruned.iter().any(|kept| is_contained_in(original, kept)),
                "disjunct lost by pruning"
            );
        }
    }
}
