//! Conjunctive-query containment, equivalence and minimization.
//!
//! By the Chandra–Merlin theorem, `q1 ⊑ q2` (every answer of `q1` over any
//! database is an answer of `q2`) holds iff there is a homomorphism from `q2`
//! to `q1` that maps the answer tuple of `q2` onto the answer tuple of `q1`.
//! The canonical database of `q1` is obtained by freezing its variables.
//!
//! Containment is the basis of the subsumption pruning used by the rewriting
//! engine, and minimization (computing a core) keeps rewritings small.

use crate::homomorphism::{find_homomorphism, freeze_atom, freeze_term};
use ontorew_model::prelude::*;

/// True if `sub ⊑ sup`: every answer of `sub` is an answer of `sup` over every
/// database. Requires the two queries to have the same arity.
pub fn is_contained_in(sub: &ConjunctiveQuery, sup: &ConjunctiveQuery) -> bool {
    if sub.arity() != sup.arity() {
        return false;
    }
    // Freeze `sub` into its canonical database.
    let canonical: Instance = sub.body.iter().map(freeze_atom).collect();
    // The homomorphism must map sup's answer variables onto sub's frozen
    // answer variables, position-wise.
    let mut seed = Substitution::new();
    for (sup_v, sub_v) in sup.answer_vars.iter().zip(sub.answer_vars.iter()) {
        let target = freeze_term(Term::Variable(*sub_v));
        match seed.get(*sup_v) {
            Some(existing) if existing != target => return false,
            _ => seed.bind(*sup_v, target),
        }
    }
    find_homomorphism(&sup.body, &canonical, &seed).is_some()
}

/// True if the two queries are equivalent (mutually contained).
pub fn are_equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    is_contained_in(q1, q2) && is_contained_in(q2, q1)
}

/// Compute a core (minimization) of the query: a subset of its body atoms that
/// is equivalent to the original query and from which no atom can be removed
/// while preserving equivalence.
///
/// The result is unique up to isomorphism; this implementation removes atoms
/// greedily in body order.
pub fn minimize(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut unbounded = usize::MAX;
    minimize_within(q, &mut unbounded)
}

/// [`minimize`] with a shared budget of homomorphism checks: each removal
/// attempt spends two ([`are_equivalent`] is two containment checks), and
/// when the budget runs out the remaining atoms are kept — a sound cut,
/// since any superset of a core is equivalent to the original query.
fn minimize_within(q: &ConjunctiveQuery, budget: &mut usize) -> ConjunctiveQuery {
    let mut body = q.body.clone();
    let mut i = 0;
    while i < body.len() {
        if body.len() == 1 || *budget < 2 {
            break;
        }
        let mut candidate_body = body.clone();
        candidate_body.remove(i);
        // The candidate must still contain every answer variable to be a
        // well-formed query.
        let vars: std::collections::BTreeSet<Variable> =
            ontorew_model::atom::variables_of(&candidate_body)
                .into_iter()
                .collect();
        if q.answer_vars.iter().all(|v| vars.contains(v)) {
            let candidate = ConjunctiveQuery {
                name: q.name,
                answer_vars: q.answer_vars.clone(),
                body: candidate_body.clone(),
            };
            let original = ConjunctiveQuery {
                name: q.name,
                answer_vars: q.answer_vars.clone(),
                body: body.clone(),
            };
            *budget -= 2;
            if are_equivalent(&candidate, &original) {
                body = candidate_body;
                continue; // re-check the same index, which now holds the next atom
            }
        }
        i += 1;
    }
    ConjunctiveQuery {
        name: q.name,
        answer_vars: q.answer_vars.clone(),
        body,
    }
}

/// The predicate-set signature of a body, as a bitset over the interned
/// distinct predicates of the UCQ being pruned (one `u64` word per 64
/// predicates). Two signatures are comparable in O(words).
fn predicate_signature(
    body: &[Atom],
    intern: &mut std::collections::HashMap<Predicate, usize>,
    words: usize,
) -> Vec<u64> {
    let mut sig = vec![0u64; words];
    for atom in body {
        let next = intern.len();
        let bit = *intern.entry(atom.predicate).or_insert(next);
        if bit / 64 >= sig.len() {
            sig.resize(bit / 64 + 1, 0);
        }
        sig[bit / 64] |= 1 << (bit % 64);
    }
    sig
}

/// True if every bit of `a` is set in `b` (predicate-set inclusion).
fn signature_subset(a: &[u64], b: &[u64]) -> bool {
    a.iter()
        .enumerate()
        .all(|(w, bits)| bits & !b.get(w).copied().unwrap_or(0) == 0)
}

/// A syntactic α-invariant key of a disjunct: variables renamed to their
/// first-occurrence index across the answer tuple and the body, atoms and
/// constants rendered in place. Two disjuncts with equal keys are the same
/// query up to variable naming (atom order still matters — catching the
/// exact duplicates rewriting saturation produces, for the cost of a single
/// formatting pass).
fn alpha_key(q: &ConjunctiveQuery) -> String {
    use std::fmt::Write as _;
    let mut ids: std::collections::HashMap<Variable, usize> = std::collections::HashMap::new();
    let mut key = String::new();
    let mut id_of = |v: Variable| {
        let next = ids.len();
        *ids.entry(v).or_insert(next)
    };
    for v in &q.answer_vars {
        let _ = write!(key, "?{} ", id_of(*v));
    }
    for atom in &q.body {
        let _ = write!(key, "{}(", atom.predicate.name_str());
        for term in &atom.terms {
            match term.as_variable() {
                Some(v) => {
                    let _ = write!(key, "?{},", id_of(v));
                }
                None => {
                    let _ = write!(key, "{term},");
                }
            }
        }
        key.push_str(") ");
    }
    key
}

/// Homomorphism checks one [`prune_ucq`] call may spend across minimization
/// and subsumption. Rewritings whose disjuncts share one predicate signature
/// (single-relation cyclic queries are the worst case) defeat the signature
/// bucketing and would otherwise pay a full quadratic homomorphism pass;
/// the budget caps prepare time at a constant once the UCQ is wide enough.
/// Cutting is sound: an unpruned (or unminimized) disjunct only makes the
/// UCQ redundant, never wrong.
const PRUNE_HOMOMORPHISM_BUDGET: usize = 10_000;

/// Remove from a UCQ every disjunct that is contained in another disjunct
/// (keeping the subsuming one), and minimize each surviving disjunct.
///
/// The result is logically equivalent to the input UCQ and is the normal form
/// produced by the rewriting engine.
///
/// Three guards keep the pass off the quadratic cliff:
///
/// * exact duplicates (up to α-renaming) are dropped by hashing before any
///   homomorphism runs;
/// * the pairwise containment loop is bucketed by predicate signature: a
///   homomorphism from `sup` into the canonical database of `sub` must map
///   every atom of `sup` onto a `sub` atom with the same predicate, so
///   `sub ⊑ sup` requires `preds(sup) ⊆ preds(sub)` — on hierarchy-shaped
///   rewritings the expensive checks become near-linear;
/// * the homomorphism checks that do run are capped by
///   [`PRUNE_HOMOMORPHISM_BUDGET`], so same-signature rewritings (where the
///   bucketing cannot help) stay affordable at any width.
pub fn prune_ucq(ucq: &UnionOfConjunctiveQueries) -> UnionOfConjunctiveQueries {
    prune_ucq_budgeted(ucq, PRUNE_HOMOMORPHISM_BUDGET).0
}

/// [`prune_ucq`] with an explicit homomorphism-check budget; returns the
/// pruned UCQ and the number of checks actually spent. A result whose spent
/// count equals the budget was (potentially) cut short — still sound, maybe
/// redundant.
pub fn prune_ucq_budgeted(
    ucq: &UnionOfConjunctiveQueries,
    budget: usize,
) -> (UnionOfConjunctiveQueries, usize) {
    let mut remaining = budget;
    let mut seen = std::collections::HashSet::new();
    let deduped: Vec<&ConjunctiveQuery> = ucq
        .disjuncts
        .iter()
        .filter(|q| seen.insert(alpha_key(q)))
        .collect();
    let minimized: Vec<ConjunctiveQuery> = deduped
        .iter()
        .map(|q| minimize_within(q, &mut remaining))
        .collect();
    let mut intern = std::collections::HashMap::new();
    let mut words = 1usize;
    let mut signatures: Vec<Vec<u64>> = Vec::with_capacity(minimized.len());
    for q in &minimized {
        let sig = predicate_signature(&q.body, &mut intern, words);
        words = words.max(sig.len());
        signatures.push(sig);
    }
    let mut keep = vec![true; minimized.len()];
    'outer: for i in 0..minimized.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..minimized.len() {
            if i == j || !keep[j] {
                continue;
            }
            // Drop disjunct j if it is contained in disjunct i (i subsumes
            // j); possible only when i's predicates all occur in j.
            if !signature_subset(&signatures[i], &signatures[j]) {
                continue;
            }
            if remaining == 0 {
                break 'outer;
            }
            remaining -= 1;
            if is_contained_in(&minimized[j], &minimized[i]) {
                // Break ties deterministically: if they are mutually contained
                // keep the one with the smaller index.
                if remaining == 0 {
                    break 'outer;
                }
                remaining -= 1;
                if is_contained_in(&minimized[i], &minimized[j]) && j < i {
                    continue;
                }
                keep[j] = false;
            }
        }
    }
    let survivors: Vec<ConjunctiveQuery> = minimized
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(q, _)| q)
        .collect();
    (
        UnionOfConjunctiveQueries::new(survivors),
        budget - remaining,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Term {
        Term::variable(n)
    }

    fn q(answers: &[&str], body: Vec<Atom>) -> ConjunctiveQuery {
        ConjunctiveQuery::new(answers.iter().map(|a| Variable::new(a)).collect(), body)
    }

    #[test]
    fn more_constrained_query_is_contained_in_less_constrained() {
        // q1(X) :- r(X, Y), s(Y)   ⊑   q2(X) :- r(X, Y)
        let q1 = q(
            &["X"],
            vec![
                Atom::new("r", vec![v("X"), v("Y")]),
                Atom::new("s", vec![v("Y")]),
            ],
        );
        let q2 = q(&["X"], vec![Atom::new("r", vec![v("X"), v("Y")])]);
        assert!(is_contained_in(&q1, &q2));
        assert!(!is_contained_in(&q2, &q1));
        assert!(!are_equivalent(&q1, &q2));
    }

    #[test]
    fn renamed_queries_are_equivalent() {
        let q1 = q(&["X"], vec![Atom::new("r", vec![v("X"), v("Y")])]);
        let q2 = q(&["A"], vec![Atom::new("r", vec![v("A"), v("B")])]);
        assert!(are_equivalent(&q1, &q2));
    }

    #[test]
    fn answer_variable_positions_matter() {
        // q1(X, Y) :- r(X, Y) is not equivalent to q2(X, Y) :- r(Y, X).
        let q1 = q(&["X", "Y"], vec![Atom::new("r", vec![v("X"), v("Y")])]);
        let q2 = q(&["X", "Y"], vec![Atom::new("r", vec![v("Y"), v("X")])]);
        assert!(!is_contained_in(&q1, &q2));
        assert!(!is_contained_in(&q2, &q1));
    }

    #[test]
    fn constants_affect_containment() {
        // q1(X) :- r(X, "a")  ⊑  q2(X) :- r(X, Y), but not vice versa.
        let q1 = q(
            &["X"],
            vec![Atom::new("r", vec![v("X"), Term::constant("a")])],
        );
        let q2 = q(&["X"], vec![Atom::new("r", vec![v("X"), v("Y")])]);
        assert!(is_contained_in(&q1, &q2));
        assert!(!is_contained_in(&q2, &q1));
    }

    #[test]
    fn different_arities_are_never_contained() {
        let q1 = q(&["X"], vec![Atom::new("r", vec![v("X"), v("Y")])]);
        let q2 = q(&["X", "Y"], vec![Atom::new("r", vec![v("X"), v("Y")])]);
        assert!(!is_contained_in(&q1, &q2));
    }

    #[test]
    fn redundant_atom_is_minimized_away() {
        // q(X) :- r(X, Y), r(X, Z)  minimizes to  q(X) :- r(X, Y).
        let query = q(
            &["X"],
            vec![
                Atom::new("r", vec![v("X"), v("Y")]),
                Atom::new("r", vec![v("X"), v("Z")]),
            ],
        );
        let m = minimize(&query);
        assert_eq!(m.body.len(), 1);
        assert!(are_equivalent(&m, &query));
    }

    #[test]
    fn non_redundant_atoms_are_kept() {
        let query = q(
            &["X"],
            vec![
                Atom::new("r", vec![v("X"), v("Y")]),
                Atom::new("s", vec![v("Y")]),
            ],
        );
        let m = minimize(&query);
        assert_eq!(m.body.len(), 2);
    }

    #[test]
    fn minimize_respects_answer_variables() {
        // q(X, Z) :- r(X, Y), r(X, Z): the atom with Z cannot be dropped even
        // though it is "redundant" modulo renaming, because Z is distinguished.
        let query = q(
            &["X", "Z"],
            vec![
                Atom::new("r", vec![v("X"), v("Y")]),
                Atom::new("r", vec![v("X"), v("Z")]),
            ],
        );
        let m = minimize(&query);
        assert!(m
            .body
            .iter()
            .any(|a| a.variable_set().contains(&Variable::new("Z"))));
        assert!(are_equivalent(&m, &query));
    }

    #[test]
    fn boolean_query_containment() {
        let q1 = ConjunctiveQuery::boolean(vec![Atom::new("r", vec![Term::constant("a"), v("X")])]);
        let q2 = ConjunctiveQuery::boolean(vec![Atom::new("r", vec![v("Y"), v("X")])]);
        assert!(is_contained_in(&q1, &q2));
        assert!(!is_contained_in(&q2, &q1));
    }

    #[test]
    fn prune_ucq_drops_subsumed_disjuncts() {
        let specific = q(
            &["X"],
            vec![
                Atom::new("r", vec![v("X"), v("Y")]),
                Atom::new("s", vec![v("Y")]),
            ],
        );
        let general = q(&["X"], vec![Atom::new("r", vec![v("X"), v("Y")])]);
        let ucq = UnionOfConjunctiveQueries::new(vec![specific, general.clone()]);
        let pruned = prune_ucq(&ucq);
        assert_eq!(pruned.len(), 1);
        assert!(are_equivalent(&pruned.disjuncts[0], &general));
    }

    #[test]
    fn prune_ucq_keeps_incomparable_disjuncts() {
        let q1 = q(&["X"], vec![Atom::new("r", vec![v("X"), v("Y")])]);
        let q2 = q(&["X"], vec![Atom::new("s", vec![v("X")])]);
        let pruned = prune_ucq(&UnionOfConjunctiveQueries::new(vec![q1, q2]));
        assert_eq!(pruned.len(), 2);
    }

    #[test]
    fn prune_ucq_handles_more_than_64_distinct_predicates() {
        // Force multi-word signatures: 70 incomparable single-atom disjuncts
        // plus one subsumed two-atom disjunct referencing the last predicate.
        let mut disjuncts: Vec<ConjunctiveQuery> = (0..70)
            .map(|i| q(&["X"], vec![Atom::new(&format!("p{i}"), vec![v("X")])]))
            .collect();
        disjuncts.push(q(
            &["X"],
            vec![
                Atom::new("p69", vec![v("X")]),
                Atom::new("extra", vec![v("X")]),
            ],
        ));
        let pruned = prune_ucq(&UnionOfConjunctiveQueries::new(disjuncts));
        // The two-atom disjunct is contained in the plain p69 disjunct.
        assert_eq!(pruned.len(), 70);
    }

    #[test]
    fn prune_ucq_deduplicates_equivalent_disjuncts() {
        let q1 = q(&["X"], vec![Atom::new("r", vec![v("X"), v("Y")])]);
        let q2 = q(&["A"], vec![Atom::new("r", vec![v("A"), v("B")])]);
        let pruned = prune_ucq(&UnionOfConjunctiveQueries::new(vec![q1, q2]));
        assert_eq!(pruned.len(), 1);
    }

    /// A triangle disjunct α-renamed `n` ways: one query up to naming.
    fn renamed_triangles(n: usize) -> UnionOfConjunctiveQueries {
        let disjuncts: Vec<ConjunctiveQuery> = (0..n)
            .map(|i| {
                let (x, y, z) = (format!("X{i}"), format!("Y{i}"), format!("Z{i}"));
                q(
                    &[&x],
                    vec![
                        Atom::new("follows", vec![v(&x), v(&y)]),
                        Atom::new("follows", vec![v(&y), v(&z)]),
                        Atom::new("follows", vec![v(&z), v(&x)]),
                    ],
                )
            })
            .collect();
        UnionOfConjunctiveQueries::new(disjuncts)
    }

    #[test]
    fn alpha_equivalent_duplicates_dedup_without_homomorphisms() {
        // 64 renamings of one triangle query: the hash dedup collapses them
        // before a single (exponential-in-the-worst-case) homomorphism
        // check runs — spent stays 0 even with a zero budget.
        let (pruned, spent) = prune_ucq_budgeted(&renamed_triangles(64), 0);
        assert_eq!(pruned.len(), 1);
        assert_eq!(spent, 0);
    }

    #[test]
    fn exhausted_budget_keeps_disjuncts_soundly() {
        let specific = q(
            &["X"],
            vec![
                Atom::new("r", vec![v("X"), v("Y")]),
                Atom::new("s", vec![v("Y")]),
            ],
        );
        let general = q(&["X"], vec![Atom::new("r", vec![v("X"), v("Y")])]);
        let ucq = UnionOfConjunctiveQueries::new(vec![specific, general]);
        // Budget 0: no pruning happens, both disjuncts survive (redundant
        // but logically equivalent to the pruned form).
        let (unpruned, spent) = prune_ucq_budgeted(&ucq, 0);
        assert_eq!(unpruned.len(), 2);
        assert_eq!(spent, 0);
        // Plenty of budget: the subsumed disjunct is dropped as before.
        let (pruned, spent) = prune_ucq_budgeted(&ucq, 1_000);
        assert_eq!(pruned.len(), 1);
        assert!(spent > 0 && spent < 1_000);
    }

    #[test]
    fn same_signature_ucqs_prepare_within_the_check_budget() {
        // 120 path queries of distinct lengths over one predicate: every
        // disjunct has the same predicate signature, so the bitset
        // bucketing rejects nothing and the quadratic pass (plus unbounded
        // minimization, ~2·Σ lengths checks on its own) would run far past
        // any constant. The budget must cap the work instead.
        let disjuncts: Vec<ConjunctiveQuery> = (1..=120)
            .map(|len| {
                let vars: Vec<String> = (0..=len).map(|i| format!("V{i}")).collect();
                let body: Vec<Atom> = (0..len)
                    .map(|i| Atom::new("follows", vec![v(&vars[i]), v(&vars[i + 1])]))
                    .collect();
                q(&[&vars[0]], body)
            })
            .collect();
        let ucq = UnionOfConjunctiveQueries::new(disjuncts);
        let budget = 500;
        let (pruned, spent) = prune_ucq_budgeted(&ucq, budget);
        assert!(spent <= budget, "budget overrun: {spent} > {budget}");
        assert!(!pruned.disjuncts.is_empty());
        assert!(pruned.len() <= 120);
    }
}
