//! Homomorphisms from atom sets into instances and into other atom sets.
//!
//! A homomorphism `h` from a set of atoms `A` into an instance `I` maps the
//! variables of `A` to terms of `I` such that `h(a) ∈ I` for every `a ∈ A`,
//! and is the identity on constants. Homomorphism search is the work-horse of
//! chase trigger detection, certain-answer checking and CQ containment.
//!
//! The search is a backtracking join with three standard optimisations:
//! atoms are matched in an order that prefers already-bound variables (a
//! greedy bound-first ordering), candidate tuples for an atom with at least
//! one ground position are fetched through the instance's per-column hash
//! indexes ([`Instance::candidates`]) instead of scanning the relation, and
//! [`all_homomorphisms_delta`] restricts the search to matches that use at
//! least one atom of a delta instance (the semi-naive decomposition the
//! chase engine is built on).

use ontorew_model::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::sync::{OnceLock, RwLock};

/// Find one homomorphism from `atoms` into `instance`, extending `seed`
/// (bindings in `seed` are fixed in advance; typically the identity or a
/// partial answer assignment).
pub fn find_homomorphism(
    atoms: &[Atom],
    instance: &Instance,
    seed: &Substitution,
) -> Option<Substitution> {
    let order = plan_order(atoms, seed);
    let mut current = seed.clone();
    search(&order, 0, instance, &mut current)
}

/// [`find_homomorphism`] over atoms the caller has already put into a match
/// order (see [`plan_match_order`]): skips the per-call greedy planning.
///
/// The chase's restricted-variant head-satisfaction check runs once per
/// (rule, frontier image); its seed domain is the rule frontier every time,
/// so the match order can be planned once per rule and reused for every
/// trigger instead of being recomputed per homomorphism search.
pub fn find_homomorphism_ordered(
    ordered_atoms: &[Atom],
    instance: &Instance,
    seed: &Substitution,
) -> Option<Substitution> {
    let mut current = seed.clone();
    search(ordered_atoms, 0, instance, &mut current)
}

/// The greedy bound-first match order of `atoms` given that the variables in
/// `bound` will already be bound when the search starts. This is
/// [`find_homomorphism`]'s internal planning step, exposed so callers with a
/// fixed seed *domain* (e.g. a rule frontier) can plan once and use
/// [`find_homomorphism_ordered`] per search.
pub fn plan_match_order(atoms: &[Atom], bound: impl IntoIterator<Item = Variable>) -> Vec<Atom> {
    let mut seed = Substitution::new();
    // Only the seed's domain influences the ordering; the bindings
    // themselves are irrelevant, so any ground placeholder works.
    for v in bound {
        seed.bind(v, Term::constant("__plan_placeholder"));
    }
    plan_order(atoms, &seed)
}

/// Find every homomorphism from `atoms` into `instance` extending `seed`.
///
/// The result can be exponentially large; callers that only need existence
/// should use [`find_homomorphism`].
pub fn all_homomorphisms(
    atoms: &[Atom],
    instance: &Instance,
    seed: &Substitution,
) -> Vec<Substitution> {
    crate::generic_join::count_backtracking_evaluation();
    let order = plan_order(atoms, seed);
    let mut out = Vec::new();
    let mut current = seed.clone();
    search_all(&order, 0, instance, &mut current, &mut out);
    out
}

/// True if there is a homomorphism from `atoms` into `instance`.
pub fn has_homomorphism(atoms: &[Atom], instance: &Instance) -> bool {
    find_homomorphism(atoms, instance, &Substitution::new()).is_some()
}

/// Which instance an atom is matched against in the semi-naive decomposition
/// used by [`all_homomorphisms_delta`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DeltaSource {
    /// `full \ delta`: the facts that already existed before the delta.
    Old,
    /// The delta itself.
    Delta,
    /// The whole instance.
    Full,
}

/// Find every homomorphism from `atoms` into `full` (extending `seed`) that
/// maps **at least one atom into `delta`**, where `delta ⊆ full`.
///
/// This is the semi-naive decomposition: for each pivot position `i`, atoms
/// before `i` are matched against `full \ delta`, atom `i` against `delta`,
/// and atoms after `i` against `full`. The union over pivots enumerates each
/// qualifying homomorphism exactly once, so a chase round that calls this
/// with the previous round's delta sees every *new* trigger once and no old
/// ones.
///
/// Returns the empty vector when `atoms` is empty (an empty body has no atom
/// in the delta), unlike [`all_homomorphisms`] which returns the seed.
pub fn all_homomorphisms_delta(
    atoms: &[Atom],
    full: &Instance,
    delta: &Instance,
    seed: &Substitution,
) -> Vec<Substitution> {
    crate::generic_join::count_backtracking_evaluation();
    let mut out = Vec::new();
    for pivot in 0..atoms.len() {
        let order = plan_order_delta(atoms, pivot, seed);
        let mut current = seed.clone();
        search_delta(&order, 0, full, delta, &mut current, (0, 1), &mut out);
    }
    out
}

/// One slice of the work of [`all_homomorphisms_delta`]: the homomorphisms
/// whose **pivot** is atom `pivot` and whose pivot match is the `chunk`-th
/// residue class (mod `chunk_count`) of the pivot atom's delta candidates.
///
/// The union over all `pivot ∈ 0..atoms.len()` and `chunk ∈ 0..chunk_count`
/// equals `all_homomorphisms_delta(atoms, full, delta, seed)` with each
/// homomorphism produced exactly once — the pivot decomposition is already
/// a disjoint union, and striding the pivot's candidate enumeration
/// partitions each pivot's share further. This is what lets the parallel
/// chase split the trigger search of a *single rule* across threads: a
/// recursive one-rule program (transitive closure) has only one rule to
/// search, but its delta can be split `chunk_count` ways.
pub fn all_homomorphisms_delta_chunk(
    atoms: &[Atom],
    full: &Instance,
    delta: &Instance,
    seed: &Substitution,
    pivot: usize,
    chunk: usize,
    chunk_count: usize,
) -> Vec<Substitution> {
    debug_assert!(pivot < atoms.len());
    debug_assert!(chunk < chunk_count.max(1));
    crate::generic_join::count_backtracking_evaluation();
    let mut out = Vec::new();
    let order = plan_order_delta(atoms, pivot, seed);
    let mut current = seed.clone();
    search_delta(
        &order,
        0,
        full,
        delta,
        &mut current,
        (chunk, chunk_count.max(1)),
        &mut out,
    );
    out
}

/// Find a homomorphism from `source` into the atom set `target`, treating
/// every variable of `target` as a frozen constant (i.e. the classical
/// "freezing" used for CQ containment).
pub fn find_homomorphism_into_atoms(source: &[Atom], target: &[Atom]) -> Option<Substitution> {
    let frozen = freeze_atoms(target);
    find_homomorphism(source, &frozen, &Substitution::new())
}

/// Freeze an atom set into an instance by replacing each variable with a
/// distinguished constant (`"__frozen_<name>"`). Constants and nulls are kept.
pub fn freeze_atoms(atoms: &[Atom]) -> Instance {
    let mut inst = Instance::new();
    for a in atoms {
        inst.insert(freeze_atom(a));
    }
    inst
}

/// Freeze a single atom (see [`freeze_atoms`]).
pub fn freeze_atom(atom: &Atom) -> Atom {
    Atom {
        predicate: atom.predicate,
        terms: atom.terms.iter().map(|t| freeze_term(*t)).collect(),
    }
}

/// Freeze a term: variables become distinguished constants, ground terms are
/// unchanged.
///
/// The frozen constant for a variable is memoized process-wide, so the
/// containment hot path pays one string formatting + interning per distinct
/// variable instead of one per occurrence.
pub fn freeze_term(term: Term) -> Term {
    match term {
        Term::Variable(v) => Term::Constant(frozen_constant(v)),
        other => other,
    }
}

/// The memoized `__frozen_<name>` constant for a variable.
fn frozen_constant(v: Variable) -> Constant {
    static CACHE: OnceLock<RwLock<HashMap<Symbol, Constant>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
    if let Some(c) = cache.read().expect("frozen cache poisoned").get(&v.0) {
        return *c;
    }
    let c = Constant::new(&format!("__frozen_{}", v.name()));
    cache.write().expect("frozen cache poisoned").insert(v.0, c);
    c
}

/// The substitution freezing every variable of `atoms` (useful to translate
/// between frozen constants and the original variables).
pub fn freezing_substitution(atoms: &[Atom]) -> Substitution {
    let mut s = Substitution::new();
    for v in ontorew_model::atom::variables_of(atoms) {
        s.bind(v, freeze_term(Term::Variable(v)));
    }
    s
}

/// Order the atoms so that atoms sharing variables with already-planned atoms
/// (or with the seed bindings) come as early as possible; ties are broken by
/// preferring atoms with more ground terms.
fn plan_order(atoms: &[Atom], seed: &Substitution) -> Vec<Atom> {
    let mut remaining: Vec<Atom> = atoms.to_vec();
    let mut bound: BTreeSet<Variable> = seed.domain().collect();
    let mut ordered = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let best_idx = pick_next_atom(remaining.iter(), &bound);
        let atom = remaining.remove(best_idx);
        bound.extend(atom.variable_set());
        ordered.push(atom);
    }
    ordered
}

/// Index into `remaining` of the greedily best atom to match next: prefer
/// atoms with many already-bound variables and ground terms, few variables.
fn pick_next_atom<'a>(
    remaining: impl Iterator<Item = &'a Atom>,
    bound: &BTreeSet<Variable>,
) -> usize {
    remaining
        .enumerate()
        .map(|(i, a)| {
            let vars = a.variable_set();
            let bound_vars = vars.iter().filter(|v| bound.contains(v)).count();
            let ground_terms = a.terms.iter().filter(|t| t.is_ground()).count();
            // Higher score = scheduled earlier.
            (
                i,
                (bound_vars * 100 + ground_terms * 10) as i64 - vars.len() as i64,
            )
        })
        .max_by_key(|(_, score)| *score)
        .expect("remaining is non-empty")
        .0
}

/// Plan the evaluation order for the semi-naive pivot decomposition: the
/// pivot atom (matched against the delta, usually the smallest relation)
/// goes first; the rest follow the greedy bound-first ordering. Sources are
/// assigned by *original* position — before the pivot `Old`, after it
/// `Full` — which is what makes the union over pivots duplicate-free.
fn plan_order_delta(atoms: &[Atom], pivot: usize, seed: &Substitution) -> Vec<(Atom, DeltaSource)> {
    let mut remaining: Vec<(Atom, DeltaSource)> = atoms
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != pivot)
        .map(|(i, a)| {
            let source = if i < pivot {
                DeltaSource::Old
            } else {
                DeltaSource::Full
            };
            (a.clone(), source)
        })
        .collect();
    let mut bound: BTreeSet<Variable> = seed.domain().collect();
    let mut ordered = Vec::with_capacity(atoms.len());
    bound.extend(atoms[pivot].variable_set());
    ordered.push((atoms[pivot].clone(), DeltaSource::Delta));
    while !remaining.is_empty() {
        let best_idx = pick_next_atom(remaining.iter().map(|(a, _)| a), &bound);
        let (atom, source) = remaining.remove(best_idx);
        bound.extend(atom.variable_set());
        ordered.push((atom, source));
    }
    ordered
}

fn search(
    atoms: &[Atom],
    idx: usize,
    instance: &Instance,
    current: &mut Substitution,
) -> Option<Substitution> {
    if idx == atoms.len() {
        return Some(current.clone());
    }
    let atom = &atoms[idx];
    let grounded = current.apply_atom(atom);
    for tuple in instance.candidates(&grounded) {
        if let Some(extension) = match_tuple(&grounded, tuple) {
            let saved = current.clone();
            for (v, t) in extension.iter() {
                current.bind(v, t);
            }
            if let Some(found) = search(atoms, idx + 1, instance, current) {
                return Some(found);
            }
            *current = saved;
        }
    }
    None
}

fn search_all(
    atoms: &[Atom],
    idx: usize,
    instance: &Instance,
    current: &mut Substitution,
    out: &mut Vec<Substitution>,
) {
    if idx == atoms.len() {
        out.push(current.clone());
        return;
    }
    let atom = &atoms[idx];
    let grounded = current.apply_atom(atom);
    for tuple in instance.candidates(&grounded) {
        if let Some(extension) = match_tuple(&grounded, tuple) {
            let saved = current.clone();
            for (v, t) in extension.iter() {
                current.bind(v, t);
            }
            search_all(atoms, idx + 1, instance, current, out);
            *current = saved;
        }
    }
}

/// The recursive delta-decomposition search. `pivot_stride = (chunk, n)`
/// restricts the **pivot level** (index 0, where the pivot atom is matched
/// against the delta) to every `n`-th candidate starting at `chunk`; the
/// full search passes `(0, 1)`.
#[allow(clippy::too_many_arguments)]
fn search_delta(
    atoms: &[(Atom, DeltaSource)],
    idx: usize,
    full: &Instance,
    delta: &Instance,
    current: &mut Substitution,
    pivot_stride: (usize, usize),
    out: &mut Vec<Substitution>,
) {
    if idx == atoms.len() {
        out.push(current.clone());
        return;
    }
    let (atom, source) = &atoms[idx];
    let grounded = current.apply_atom(atom);
    let candidates = match source {
        DeltaSource::Delta => delta.candidates(&grounded),
        DeltaSource::Old | DeltaSource::Full => full.candidates(&grounded),
    };
    let (chunk, stride) = if idx == 0 { pivot_stride } else { (0, 1) };
    for (i, tuple) in candidates.enumerate() {
        if stride > 1 && i % stride != chunk {
            continue;
        }
        if *source == DeltaSource::Old && delta.contains_tuple(grounded.predicate, tuple) {
            continue;
        }
        if let Some(extension) = match_tuple(&grounded, tuple) {
            let saved = current.clone();
            for (v, t) in extension.iter() {
                current.bind(v, t);
            }
            search_delta(atoms, idx + 1, full, delta, current, pivot_stride, out);
            *current = saved;
        }
    }
}

/// Match a (partially grounded) atom against a ground tuple, producing the
/// extra bindings required, or `None` if the tuple does not match.
fn match_tuple(atom: &Atom, tuple: &[Term]) -> Option<Substitution> {
    debug_assert_eq!(atom.terms.len(), tuple.len());
    let mut extension = Substitution::new();
    for (pattern, value) in atom.terms.iter().zip(tuple.iter()) {
        match pattern {
            Term::Variable(v) => match extension.get(*v) {
                Some(existing) if existing != *value => return None,
                Some(_) => {}
                None => extension.bind(*v, *value),
            },
            ground => {
                if ground != value {
                    return None;
                }
            }
        }
    }
    Some(extension)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Term {
        Term::variable(n)
    }

    fn sample_instance() -> Instance {
        let mut db = Instance::new();
        db.insert_fact("teaches", &["alice", "db101"]);
        db.insert_fact("teaches", &["bob", "ai102"]);
        db.insert_fact("course", &["db101"]);
        db.insert_fact("course", &["ai102"]);
        db.insert_fact("attends", &["carol", "db101"]);
        db
    }

    #[test]
    fn single_atom_homomorphism() {
        let db = sample_instance();
        let atoms = vec![Atom::new("teaches", vec![v("X"), v("Y")])];
        let h = find_homomorphism(&atoms, &db, &Substitution::new()).unwrap();
        assert!(db.contains(&h.apply_atom(&atoms[0])));
    }

    #[test]
    fn join_homomorphism() {
        let db = sample_instance();
        // teaches(X, C), attends(S, C): only C = db101 works.
        let atoms = vec![
            Atom::new("teaches", vec![v("X"), v("C")]),
            Atom::new("attends", vec![v("S"), v("C")]),
        ];
        let h = find_homomorphism(&atoms, &db, &Substitution::new()).unwrap();
        assert_eq!(h.apply_term(v("C")), Term::constant("db101"));
        assert_eq!(h.apply_term(v("X")), Term::constant("alice"));
        assert_eq!(h.apply_term(v("S")), Term::constant("carol"));
    }

    #[test]
    fn no_homomorphism_when_join_is_empty() {
        let db = sample_instance();
        let atoms = vec![
            Atom::new("teaches", vec![v("X"), v("C")]),
            Atom::new("attends", vec![v("X"), v("C")]),
        ];
        assert!(!has_homomorphism(&atoms, &db));
    }

    #[test]
    fn constants_in_patterns_constrain_matches() {
        let db = sample_instance();
        let atoms = vec![Atom::new("teaches", vec![Term::constant("bob"), v("C")])];
        let h = find_homomorphism(&atoms, &db, &Substitution::new()).unwrap();
        assert_eq!(h.apply_term(v("C")), Term::constant("ai102"));
        let atoms = vec![Atom::new("teaches", vec![Term::constant("zoe"), v("C")])];
        assert!(!has_homomorphism(&atoms, &db));
    }

    #[test]
    fn repeated_variables_in_pattern() {
        let mut db = Instance::new();
        db.insert_fact("edge", &["a", "b"]);
        db.insert_fact("edge", &["c", "c"]);
        let atoms = vec![Atom::new("edge", vec![v("X"), v("X")])];
        let h = find_homomorphism(&atoms, &db, &Substitution::new()).unwrap();
        assert_eq!(h.apply_term(v("X")), Term::constant("c"));
    }

    #[test]
    fn seed_bindings_are_respected() {
        let db = sample_instance();
        let atoms = vec![Atom::new("teaches", vec![v("X"), v("C")])];
        let mut seed = Substitution::new();
        seed.bind(Variable::new("X"), Term::constant("bob"));
        let h = find_homomorphism(&atoms, &db, &seed).unwrap();
        assert_eq!(h.apply_term(v("C")), Term::constant("ai102"));
        seed.bind(Variable::new("X"), Term::constant("nobody"));
        assert!(find_homomorphism(&atoms, &db, &seed).is_none());
    }

    #[test]
    fn all_homomorphisms_enumerates_every_match() {
        let db = sample_instance();
        let atoms = vec![Atom::new("teaches", vec![v("X"), v("Y")])];
        let hs = all_homomorphisms(&atoms, &db, &Substitution::new());
        assert_eq!(hs.len(), 2);
    }

    #[test]
    fn homomorphism_into_atoms_freezes_target_variables() {
        // source r(X, Y) maps into target r(Z, Z) (variables frozen), but
        // source r(X, X) does not map into target r(A, B).
        let source = vec![Atom::new("r", vec![v("X"), v("Y")])];
        let target = vec![Atom::new("r", vec![v("Z"), v("Z")])];
        assert!(find_homomorphism_into_atoms(&source, &target).is_some());
        let source = vec![Atom::new("r", vec![v("X"), v("X")])];
        let target = vec![Atom::new("r", vec![v("A"), v("B")])];
        assert!(find_homomorphism_into_atoms(&source, &target).is_none());
    }

    #[test]
    fn freezing_preserves_ground_terms() {
        let a = Atom::new("r", vec![Term::constant("a"), v("X")]);
        let f = freeze_atom(&a);
        assert_eq!(f.terms[0], Term::constant("a"));
        assert!(f.terms[1].is_constant());
        assert!(f.is_ground());
    }

    #[test]
    fn freezing_substitution_maps_each_variable_once() {
        let atoms = vec![Atom::new("r", vec![v("X"), v("Y"), v("X")])];
        let s = freezing_substitution(&atoms);
        assert_eq!(s.len(), 2);
        assert!(s.is_ground());
    }

    #[test]
    fn empty_atom_list_has_trivial_homomorphism() {
        let db = sample_instance();
        let h = find_homomorphism(&[], &db, &Substitution::new()).unwrap();
        assert!(h.is_empty());
    }

    #[test]
    fn delta_homomorphisms_are_exactly_the_new_ones() {
        // full = old ∪ delta; the delta-restricted search must return exactly
        // the homomorphisms of `full` that are not homomorphisms of `old`,
        // each exactly once.
        let mut old = Instance::new();
        old.insert_fact("r", &["a", "b"]);
        old.insert_fact("s", &["b", "c"]);
        let mut delta = Instance::new();
        delta.insert_fact("r", &["d", "b"]);
        delta.insert_fact("s", &["b", "e"]);
        let mut full = old.clone();
        full.extend_from(&delta);

        let atoms = vec![
            Atom::new("r", vec![v("X"), v("Y")]),
            Atom::new("s", vec![v("Y"), v("Z")]),
        ];
        let all_full = all_homomorphisms(&atoms, &full, &Substitution::new());
        let all_old = all_homomorphisms(&atoms, &old, &Substitution::new());
        let new = all_homomorphisms_delta(&atoms, &full, &delta, &Substitution::new());
        assert_eq!(all_full.len(), 4);
        assert_eq!(all_old.len(), 1);
        assert_eq!(new.len(), all_full.len() - all_old.len());
        // No duplicates, and none of the old homomorphisms appears.
        for (i, h) in new.iter().enumerate() {
            assert!(!all_old.contains(h));
            assert!(all_full.contains(h));
            assert!(!new[i + 1..].contains(h));
        }
    }

    #[test]
    fn chunked_delta_search_partitions_the_pivot_work() {
        // The union over (pivot, chunk) must equal the unchunked delta
        // search, with no duplicates — the property the within-rule parallel
        // trigger search relies on.
        let mut old = Instance::new();
        old.insert_fact("r", &["a", "b"]);
        old.insert_fact("s", &["b", "c"]);
        let mut delta = Instance::new();
        for i in 0..7 {
            delta.insert_fact("r", &[&format!("d{i}"), "b"]);
            delta.insert_fact("s", &["b", &format!("e{i}")]);
        }
        let mut full = old.clone();
        full.extend_from(&delta);
        let atoms = vec![
            Atom::new("r", vec![v("X"), v("Y")]),
            Atom::new("s", vec![v("Y"), v("Z")]),
        ];
        let whole = all_homomorphisms_delta(&atoms, &full, &delta, &Substitution::new());
        for chunk_count in [1usize, 2, 3, 5] {
            let mut union = Vec::new();
            for pivot in 0..atoms.len() {
                for chunk in 0..chunk_count {
                    union.extend(all_homomorphisms_delta_chunk(
                        &atoms,
                        &full,
                        &delta,
                        &Substitution::new(),
                        pivot,
                        chunk,
                        chunk_count,
                    ));
                }
            }
            assert_eq!(union.len(), whole.len(), "chunk_count={chunk_count}");
            for h in &whole {
                assert!(union.contains(h), "missing homomorphism at {chunk_count}");
            }
            for (i, h) in union.iter().enumerate() {
                assert!(!union[i + 1..].contains(h), "duplicate at {chunk_count}");
            }
        }
    }

    #[test]
    fn ordered_search_agrees_with_planned_search() {
        let db = sample_instance();
        let atoms = vec![
            Atom::new("teaches", vec![v("X"), v("C")]),
            Atom::new("attends", vec![v("S"), v("C")]),
        ];
        let mut seed = Substitution::new();
        seed.bind(Variable::new("X"), Term::constant("alice"));
        let order = plan_match_order(&atoms, [Variable::new("X")]);
        let planned = find_homomorphism(&atoms, &db, &seed).unwrap();
        let ordered = find_homomorphism_ordered(&order, &db, &seed).unwrap();
        assert_eq!(planned.apply_term(v("C")), ordered.apply_term(v("C")));
        assert_eq!(order.len(), atoms.len());
    }

    #[test]
    fn delta_equal_to_full_recovers_all_homomorphisms() {
        let db = sample_instance();
        let atoms = vec![
            Atom::new("teaches", vec![v("X"), v("C")]),
            Atom::new("attends", vec![v("S"), v("C")]),
        ];
        let all = all_homomorphisms(&atoms, &db, &Substitution::new());
        let delta_all = all_homomorphisms_delta(&atoms, &db, &db, &Substitution::new());
        assert_eq!(all.len(), delta_all.len());
        for h in &delta_all {
            assert!(all.contains(h));
        }
    }

    #[test]
    fn empty_delta_yields_no_homomorphisms() {
        let db = sample_instance();
        let atoms = vec![Atom::new("teaches", vec![v("X"), v("Y")])];
        let new = all_homomorphisms_delta(&atoms, &db, &Instance::new(), &Substitution::new());
        assert!(new.is_empty());
        // Unlike the unrestricted search, an empty atom list has no "new"
        // homomorphism either.
        assert!(all_homomorphisms_delta(&[], &db, &db, &Substitution::new()).is_empty());
    }

    #[test]
    fn freezing_is_memoized_consistently() {
        let a = freeze_term(Term::variable("MemoX"));
        let b = freeze_term(Term::variable("MemoX"));
        assert_eq!(a, b);
        assert_eq!(a, Term::constant("__frozen_MemoX"));
        assert_ne!(a, freeze_term(Term::variable("MemoY")));
    }

    #[test]
    fn zero_arity_atoms_match_only_if_present() {
        let mut db = Instance::new();
        db.insert(Atom::new("alarm", vec![]));
        assert!(has_homomorphism(&[Atom::new("alarm", vec![])], &db));
        assert!(!has_homomorphism(&[Atom::new("quiet", vec![])], &db));
    }
}
