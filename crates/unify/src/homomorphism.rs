//! Homomorphisms from atom sets into instances and into other atom sets.
//!
//! A homomorphism `h` from a set of atoms `A` into an instance `I` maps the
//! variables of `A` to terms of `I` such that `h(a) ∈ I` for every `a ∈ A`,
//! and is the identity on constants. Homomorphism search is the work-horse of
//! chase trigger detection, certain-answer checking and CQ containment.
//!
//! The search is a straightforward backtracking join with two standard
//! optimisations: atoms are matched in an order that prefers already-bound
//! variables (a greedy bound-first ordering), and candidate tuples are taken
//! from the smallest relation first.

use ontorew_model::prelude::*;
use std::collections::BTreeSet;

/// Find one homomorphism from `atoms` into `instance`, extending `seed`
/// (bindings in `seed` are fixed in advance; typically the identity or a
/// partial answer assignment).
pub fn find_homomorphism(
    atoms: &[Atom],
    instance: &Instance,
    seed: &Substitution,
) -> Option<Substitution> {
    let order = plan_order(atoms, seed);
    let mut current = seed.clone();
    search(&order, 0, instance, &mut current)
}

/// Find every homomorphism from `atoms` into `instance` extending `seed`.
///
/// The result can be exponentially large; callers that only need existence
/// should use [`find_homomorphism`].
pub fn all_homomorphisms(
    atoms: &[Atom],
    instance: &Instance,
    seed: &Substitution,
) -> Vec<Substitution> {
    let order = plan_order(atoms, seed);
    let mut out = Vec::new();
    let mut current = seed.clone();
    search_all(&order, 0, instance, &mut current, &mut out);
    out
}

/// True if there is a homomorphism from `atoms` into `instance`.
pub fn has_homomorphism(atoms: &[Atom], instance: &Instance) -> bool {
    find_homomorphism(atoms, instance, &Substitution::new()).is_some()
}

/// Find a homomorphism from `source` into the atom set `target`, treating
/// every variable of `target` as a frozen constant (i.e. the classical
/// "freezing" used for CQ containment).
pub fn find_homomorphism_into_atoms(source: &[Atom], target: &[Atom]) -> Option<Substitution> {
    let frozen = freeze_atoms(target);
    find_homomorphism(source, &frozen, &Substitution::new())
}

/// Freeze an atom set into an instance by replacing each variable with a
/// distinguished constant (`"__frozen_<name>"`). Constants and nulls are kept.
pub fn freeze_atoms(atoms: &[Atom]) -> Instance {
    let mut inst = Instance::new();
    for a in atoms {
        inst.insert(freeze_atom(a));
    }
    inst
}

/// Freeze a single atom (see [`freeze_atoms`]).
pub fn freeze_atom(atom: &Atom) -> Atom {
    Atom {
        predicate: atom.predicate,
        terms: atom.terms.iter().map(|t| freeze_term(*t)).collect(),
    }
}

/// Freeze a term: variables become distinguished constants, ground terms are
/// unchanged.
pub fn freeze_term(term: Term) -> Term {
    match term {
        Term::Variable(v) => Term::constant(&format!("__frozen_{}", v.name())),
        other => other,
    }
}

/// The substitution freezing every variable of `atoms` (useful to translate
/// between frozen constants and the original variables).
pub fn freezing_substitution(atoms: &[Atom]) -> Substitution {
    let mut s = Substitution::new();
    for v in ontorew_model::atom::variables_of(atoms) {
        s.bind(v, freeze_term(Term::Variable(v)));
    }
    s
}

/// Order the atoms so that atoms sharing variables with already-planned atoms
/// (or with the seed bindings) come as early as possible; ties are broken by
/// preferring atoms with more ground terms.
fn plan_order(atoms: &[Atom], seed: &Substitution) -> Vec<Atom> {
    let mut remaining: Vec<Atom> = atoms.to_vec();
    let mut bound: BTreeSet<Variable> = seed.domain().collect();
    let mut ordered = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let vars = a.variable_set();
                let bound_vars = vars.iter().filter(|v| bound.contains(v)).count();
                let ground_terms = a.terms.iter().filter(|t| t.is_ground()).count();
                // Higher score = scheduled earlier.
                (
                    i,
                    (bound_vars * 100 + ground_terms * 10) as i64 - vars.len() as i64,
                )
            })
            .max_by_key(|(_, score)| *score)
            .expect("remaining is non-empty");
        let atom = remaining.remove(best_idx);
        bound.extend(atom.variable_set());
        ordered.push(atom);
    }
    ordered
}

fn search(
    atoms: &[Atom],
    idx: usize,
    instance: &Instance,
    current: &mut Substitution,
) -> Option<Substitution> {
    if idx == atoms.len() {
        return Some(current.clone());
    }
    let atom = &atoms[idx];
    let grounded = current.apply_atom(atom);
    for tuple in instance.tuples(atom.predicate) {
        if let Some(extension) = match_tuple(&grounded, tuple) {
            let saved = current.clone();
            for (v, t) in extension.iter() {
                current.bind(v, t);
            }
            if let Some(found) = search(atoms, idx + 1, instance, current) {
                return Some(found);
            }
            *current = saved;
        }
    }
    None
}

fn search_all(
    atoms: &[Atom],
    idx: usize,
    instance: &Instance,
    current: &mut Substitution,
    out: &mut Vec<Substitution>,
) {
    if idx == atoms.len() {
        out.push(current.clone());
        return;
    }
    let atom = &atoms[idx];
    let grounded = current.apply_atom(atom);
    for tuple in instance.tuples(atom.predicate) {
        if let Some(extension) = match_tuple(&grounded, tuple) {
            let saved = current.clone();
            for (v, t) in extension.iter() {
                current.bind(v, t);
            }
            search_all(atoms, idx + 1, instance, current, out);
            *current = saved;
        }
    }
}

/// Match a (partially grounded) atom against a ground tuple, producing the
/// extra bindings required, or `None` if the tuple does not match.
fn match_tuple(atom: &Atom, tuple: &[Term]) -> Option<Substitution> {
    debug_assert_eq!(atom.terms.len(), tuple.len());
    let mut extension = Substitution::new();
    for (pattern, value) in atom.terms.iter().zip(tuple.iter()) {
        match pattern {
            Term::Variable(v) => match extension.get(*v) {
                Some(existing) if existing != *value => return None,
                Some(_) => {}
                None => extension.bind(*v, *value),
            },
            ground => {
                if ground != value {
                    return None;
                }
            }
        }
    }
    Some(extension)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Term {
        Term::variable(n)
    }

    fn sample_instance() -> Instance {
        let mut db = Instance::new();
        db.insert_fact("teaches", &["alice", "db101"]);
        db.insert_fact("teaches", &["bob", "ai102"]);
        db.insert_fact("course", &["db101"]);
        db.insert_fact("course", &["ai102"]);
        db.insert_fact("attends", &["carol", "db101"]);
        db
    }

    #[test]
    fn single_atom_homomorphism() {
        let db = sample_instance();
        let atoms = vec![Atom::new("teaches", vec![v("X"), v("Y")])];
        let h = find_homomorphism(&atoms, &db, &Substitution::new()).unwrap();
        assert!(db.contains(&h.apply_atom(&atoms[0])));
    }

    #[test]
    fn join_homomorphism() {
        let db = sample_instance();
        // teaches(X, C), attends(S, C): only C = db101 works.
        let atoms = vec![
            Atom::new("teaches", vec![v("X"), v("C")]),
            Atom::new("attends", vec![v("S"), v("C")]),
        ];
        let h = find_homomorphism(&atoms, &db, &Substitution::new()).unwrap();
        assert_eq!(h.apply_term(v("C")), Term::constant("db101"));
        assert_eq!(h.apply_term(v("X")), Term::constant("alice"));
        assert_eq!(h.apply_term(v("S")), Term::constant("carol"));
    }

    #[test]
    fn no_homomorphism_when_join_is_empty() {
        let db = sample_instance();
        let atoms = vec![
            Atom::new("teaches", vec![v("X"), v("C")]),
            Atom::new("attends", vec![v("X"), v("C")]),
        ];
        assert!(!has_homomorphism(&atoms, &db));
    }

    #[test]
    fn constants_in_patterns_constrain_matches() {
        let db = sample_instance();
        let atoms = vec![Atom::new("teaches", vec![Term::constant("bob"), v("C")])];
        let h = find_homomorphism(&atoms, &db, &Substitution::new()).unwrap();
        assert_eq!(h.apply_term(v("C")), Term::constant("ai102"));
        let atoms = vec![Atom::new("teaches", vec![Term::constant("zoe"), v("C")])];
        assert!(!has_homomorphism(&atoms, &db));
    }

    #[test]
    fn repeated_variables_in_pattern() {
        let mut db = Instance::new();
        db.insert_fact("edge", &["a", "b"]);
        db.insert_fact("edge", &["c", "c"]);
        let atoms = vec![Atom::new("edge", vec![v("X"), v("X")])];
        let h = find_homomorphism(&atoms, &db, &Substitution::new()).unwrap();
        assert_eq!(h.apply_term(v("X")), Term::constant("c"));
    }

    #[test]
    fn seed_bindings_are_respected() {
        let db = sample_instance();
        let atoms = vec![Atom::new("teaches", vec![v("X"), v("C")])];
        let mut seed = Substitution::new();
        seed.bind(Variable::new("X"), Term::constant("bob"));
        let h = find_homomorphism(&atoms, &db, &seed).unwrap();
        assert_eq!(h.apply_term(v("C")), Term::constant("ai102"));
        seed.bind(Variable::new("X"), Term::constant("nobody"));
        assert!(find_homomorphism(&atoms, &db, &seed).is_none());
    }

    #[test]
    fn all_homomorphisms_enumerates_every_match() {
        let db = sample_instance();
        let atoms = vec![Atom::new("teaches", vec![v("X"), v("Y")])];
        let hs = all_homomorphisms(&atoms, &db, &Substitution::new());
        assert_eq!(hs.len(), 2);
    }

    #[test]
    fn homomorphism_into_atoms_freezes_target_variables() {
        // source r(X, Y) maps into target r(Z, Z) (variables frozen), but
        // source r(X, X) does not map into target r(A, B).
        let source = vec![Atom::new("r", vec![v("X"), v("Y")])];
        let target = vec![Atom::new("r", vec![v("Z"), v("Z")])];
        assert!(find_homomorphism_into_atoms(&source, &target).is_some());
        let source = vec![Atom::new("r", vec![v("X"), v("X")])];
        let target = vec![Atom::new("r", vec![v("A"), v("B")])];
        assert!(find_homomorphism_into_atoms(&source, &target).is_none());
    }

    #[test]
    fn freezing_preserves_ground_terms() {
        let a = Atom::new("r", vec![Term::constant("a"), v("X")]);
        let f = freeze_atom(&a);
        assert_eq!(f.terms[0], Term::constant("a"));
        assert!(f.terms[1].is_constant());
        assert!(f.is_ground());
    }

    #[test]
    fn freezing_substitution_maps_each_variable_once() {
        let atoms = vec![Atom::new("r", vec![v("X"), v("Y"), v("X")])];
        let s = freezing_substitution(&atoms);
        assert_eq!(s.len(), 2);
        assert!(s.is_ground());
    }

    #[test]
    fn empty_atom_list_has_trivial_homomorphism() {
        let db = sample_instance();
        let h = find_homomorphism(&[], &db, &Substitution::new()).unwrap();
        assert!(h.is_empty());
    }

    #[test]
    fn zero_arity_atoms_match_only_if_present() {
        let mut db = Instance::new();
        db.insert(Atom::new("alarm", vec![]));
        assert!(has_homomorphism(&[Atom::new("alarm", vec![])], &db));
        assert!(!has_homomorphism(&[Atom::new("quiet", vec![])], &db));
    }
}
