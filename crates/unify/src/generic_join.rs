//! Worst-case-optimal generic join: variable-at-a-time homomorphism search.
//!
//! The backtracking search of [`crate::homomorphism`] matches one *atom* at a
//! time and therefore materialises every intermediate join result. On cyclic
//! query shapes (triangles, cliques) those intermediates can be much larger
//! than the final answer — the blowup worst-case-optimal join algorithms
//! avoid by resolving one *variable* at a time instead: for each variable,
//! the candidate values are the intersection of the per-atom value sets the
//! relation column indexes already maintain, so no tuple is ever built that
//! disagrees with some atom on an already-resolved variable.
//!
//! The engine here is the classic generic join over the segment indexes of
//! [`IndexedRelation`]:
//!
//! 1. variables are ordered greedily by estimated selectivity (smallest
//!    cheap support bound first, preferring variables connected to what is
//!    already bound);
//! 2. per variable, the cheapest supporting atom contributes a sorted
//!    distinct value list ([`IndexedRelation::matching_values`]); the
//!    second-cheapest is merged with [`intersect_sorted`] when its bound is
//!    comparable, and every other supporting atom filters the survivors
//!    with an existence probe ([`IndexedRelation::contains_match`]), so the
//!    per-variable work stays proportional to the smallest candidate list;
//! 3. each surviving value is bound and the search recurses.
//!
//! Because an atom's pattern is fully ground exactly when its last variable
//! is resolved — and the value lists / probes are exact (ground columns and
//! repeated variables checked) — every produced substitution is witnessed by
//! a real row per atom, and none is produced twice. The result set is
//! therefore identical to [`crate::all_homomorphisms`] (proptested in this
//! module), only the enumeration order differs.
//!
//! [`generic_join_delta`] mirrors [`crate::all_homomorphisms_delta`]'s
//! semi-naive pivot decomposition: per pivot `i`, atoms before `i` draw from
//! `full \ delta`, atom `i` from `delta`, atoms after `i` from `full`; the
//! union over pivots is duplicate-free for exactly the same reason it is in
//! the backtracking engine (the pivot is the first atom mapped into the
//! delta). [`generic_join_delta_pivot`] exposes one pivot's share as a work
//! unit for the parallel chase.

use ontorew_model::instance::{intersect_sorted, pattern_matches};
use ontorew_model::prelude::*;
use ontorew_telemetry::{global_registry, span, Counter, Histogram};
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

/// How a conjunctive body is evaluated: atom-at-a-time backtracking or
/// variable-at-a-time generic join.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinStrategy {
    /// Atom-at-a-time backtracking over index candidates
    /// ([`crate::all_homomorphisms`]).
    Backtracking,
    /// Variable-at-a-time worst-case-optimal join ([`generic_join_all`]).
    GenericJoin,
}

impl JoinStrategy {
    /// The metrics/provenance label of the strategy.
    pub fn label(&self) -> &'static str {
        match self {
            JoinStrategy::Backtracking => "backtracking",
            JoinStrategy::GenericJoin => "generic_join",
        }
    }
}

impl std::fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Anything that can serve [`IndexedRelation`]s by predicate — implemented
/// for [`Instance`] here and for `ontorew_storage::RelationalStore` in the
/// storage crate, so both evaluation consumers share one join engine.
pub trait RelationSource {
    /// The relation stored under `predicate`, if any rows exist.
    fn relation_of(&self, predicate: Predicate) -> Option<&IndexedRelation>;
}

impl RelationSource for Instance {
    fn relation_of(&self, predicate: Predicate) -> Option<&IndexedRelation> {
        self.relation(predicate)
    }
}

struct JoinMetrics {
    evaluations_backtracking: Arc<Counter>,
    evaluations_generic: Arc<Counter>,
    intersection_size: Arc<Histogram>,
}

fn metrics() -> &'static JoinMetrics {
    static METRICS: OnceLock<JoinMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = global_registry();
        JoinMetrics {
            evaluations_backtracking: registry.counter(
                "join_evaluations_total",
                "Conjunctive join evaluations, by strategy.",
                &[("strategy", "backtracking")],
            ),
            evaluations_generic: registry.counter(
                "join_evaluations_total",
                "Conjunctive join evaluations, by strategy.",
                &[("strategy", "generic_join")],
            ),
            intersection_size: registry.histogram(
                "join_intersection_size",
                "Surviving candidate values per variable resolution of the generic join.",
                &[],
            ),
        }
    })
}

/// Count one backtracking join evaluation (called by the backtracking entry
/// points so `join_evaluations_total` covers both strategies).
pub(crate) fn count_backtracking_evaluation() {
    metrics().evaluations_backtracking.inc();
}

/// Where an atom's matches are drawn from — the generic-join mirror of the
/// backtracking engine's `DeltaSource`.
#[derive(Clone, Copy)]
enum Source<'a> {
    /// The atom's predicate has no rows here: the join is empty.
    Absent,
    /// A plain relation (the full instance, or the delta's own relation).
    Rel(&'a IndexedRelation),
    /// `full \ delta`: the full relation minus the rows whose tuple is in
    /// the delta.
    Old {
        rel: &'a IndexedRelation,
        delta: &'a Instance,
        predicate: Predicate,
    },
}

impl<'a> Source<'a> {
    /// Cheap upper bound on the rows matching `pattern` (exact posting-list
    /// lengths; the `Old` exclusion is ignored — an upper bound suffices for
    /// support ordering).
    fn bound(&self, pattern: &[Term]) -> usize {
        match self {
            Source::Absent => 0,
            Source::Rel(rel) | Source::Old { rel, .. } => rel.match_bound(pattern),
        }
    }

    /// Sorted distinct values of `col` among the rows matching `pattern`.
    fn values(&self, pattern: &[Term], col: usize) -> Vec<Term> {
        match self {
            Source::Absent => Vec::new(),
            Source::Rel(rel) => rel.matching_values(pattern, col),
            Source::Old {
                rel,
                delta,
                predicate,
            } => {
                let mut values: Vec<Term> = rel
                    .candidates(pattern)
                    .filter(|row| {
                        pattern_matches(pattern, row) && !delta.contains_tuple(*predicate, row)
                    })
                    .map(|row| row[col])
                    .collect();
                values.sort_unstable();
                values.dedup();
                values
            }
        }
    }

    /// True if some row matches `pattern`.
    fn probe(&self, pattern: &[Term]) -> bool {
        match self {
            Source::Absent => false,
            Source::Rel(rel) => rel.contains_match(pattern),
            Source::Old {
                rel,
                delta,
                predicate,
            } => rel
                .candidates(pattern)
                .any(|row| pattern_matches(pattern, row) && !delta.contains_tuple(*predicate, row)),
        }
    }
}

/// One atom's evolving state during the search: its pattern with the current
/// bindings applied, and the source its matches must come from.
struct AtomState<'a> {
    pattern: Vec<Term>,
    source: Source<'a>,
}

impl AtomState<'_> {
    fn contains_var(&self, v: Variable) -> bool {
        self.pattern.contains(&Term::Variable(v))
    }

    fn first_col_of(&self, v: Variable) -> usize {
        self.pattern
            .iter()
            .position(|t| *t == Term::Variable(v))
            .expect("variable occurs in pattern")
    }
}

/// Find every homomorphism from `atoms` into `relations` extending `seed` —
/// the same substitution set as [`crate::all_homomorphisms`] (order may
/// differ), computed variable-at-a-time.
pub fn generic_join_all<S: RelationSource>(
    atoms: &[Atom],
    relations: &S,
    seed: &Substitution,
) -> Vec<Substitution> {
    metrics().evaluations_generic.inc();
    let mut eval_span = span("join.eval");
    eval_span.attr("strategy", "generic_join");
    eval_span.attr("atoms", atoms.len());
    let states: Vec<AtomState<'_>> = atoms
        .iter()
        .map(|atom| AtomState {
            pattern: seed.apply_atom(atom).terms,
            source: relations
                .relation_of(atom.predicate)
                .map(Source::Rel)
                .unwrap_or(Source::Absent),
        })
        .collect();
    let out = run(states, seed);
    eval_span.attr("answers", out.len());
    out
}

/// Find every homomorphism from `atoms` into `full` (extending `seed`) that
/// maps at least one atom into `delta` — the same substitution set as
/// [`crate::all_homomorphisms_delta`], computed variable-at-a-time per
/// pivot.
pub fn generic_join_delta(
    atoms: &[Atom],
    full: &Instance,
    delta: &Instance,
    seed: &Substitution,
) -> Vec<Substitution> {
    let mut out = Vec::new();
    for pivot in 0..atoms.len() {
        out.extend(generic_join_delta_pivot(atoms, full, delta, seed, pivot));
    }
    out
}

/// One pivot's share of [`generic_join_delta`]: the homomorphisms whose
/// first atom mapped into the delta is atom `pivot`. The union over pivots
/// is disjoint — this is the work unit the parallel chase hands to worker
/// threads for generic-join rules.
pub fn generic_join_delta_pivot(
    atoms: &[Atom],
    full: &Instance,
    delta: &Instance,
    seed: &Substitution,
    pivot: usize,
) -> Vec<Substitution> {
    debug_assert!(pivot < atoms.len());
    metrics().evaluations_generic.inc();
    let mut eval_span = span("join.eval");
    eval_span.attr("strategy", "generic_join");
    eval_span.attr("atoms", atoms.len());
    eval_span.attr("pivot", pivot);
    let states: Vec<AtomState<'_>> = atoms
        .iter()
        .enumerate()
        .map(|(i, atom)| AtomState {
            pattern: seed.apply_atom(atom).terms,
            source: if i == pivot {
                delta
                    .relation(atom.predicate)
                    .map(Source::Rel)
                    .unwrap_or(Source::Absent)
            } else if i < pivot {
                match full.relation(atom.predicate) {
                    Some(rel) => Source::Old {
                        rel,
                        delta,
                        predicate: atom.predicate,
                    },
                    None => Source::Absent,
                }
            } else {
                full.relation(atom.predicate)
                    .map(Source::Rel)
                    .unwrap_or(Source::Absent)
            },
        })
        .collect();
    let out = run(states, seed);
    eval_span.attr("answers", out.len());
    out
}

/// Drive the search: check atoms that are ground at entry, order the
/// variables, and recurse. Returns `[seed]` for a satisfied variable-free
/// body (matching [`crate::all_homomorphisms`] on empty atom lists).
fn run(mut states: Vec<AtomState<'_>>, seed: &Substitution) -> Vec<Substitution> {
    // Atoms ground at entry are membership checks; failing one empties the
    // join, passing ones drop out of the search.
    let mut ok = true;
    states.retain(|state| {
        if state.pattern.iter().all(Term::is_ground) {
            ok &= state.source.probe(&state.pattern);
            false
        } else {
            true
        }
    });
    if !ok {
        return Vec::new();
    }
    let order = order_variables(&states);
    let mut out = Vec::new();
    let mut current = seed.clone();
    solve(&order, 0, &mut states, &mut current, &mut out);
    out
}

/// The selectivity-greedy variable order: repeatedly pick the unresolved
/// variable with the smallest cheap support bound, preferring variables that
/// share an atom with something already bound or ground (so intersections
/// stay constrained), breaking ties by occurrence count (more atoms = more
/// pruning) and first occurrence (determinism).
fn order_variables(states: &[AtomState<'_>]) -> Vec<Variable> {
    let mut remaining: Vec<Variable> = Vec::new();
    for state in states {
        for term in &state.pattern {
            if let Term::Variable(v) = term {
                if !remaining.contains(v) {
                    remaining.push(*v);
                }
            }
        }
    }
    let first_occurrence: Vec<Variable> = remaining.clone();
    let occurrence = |v: Variable| first_occurrence.iter().position(|r| *r == v).unwrap_or(0);
    let mut resolved: BTreeSet<Variable> = BTreeSet::new();
    let mut order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let best = remaining
            .iter()
            .copied()
            .min_by_key(|&v| {
                let mut min_bound = usize::MAX;
                let mut occurrences = 0usize;
                let mut connected = false;
                for state in states.iter().filter(|s| s.contains_var(v)) {
                    occurrences += 1;
                    min_bound = min_bound.min(state.source.bound(&state.pattern));
                    connected |= state.pattern.iter().any(|t| match t {
                        Term::Variable(u) => resolved.contains(u),
                        ground => ground.is_ground(),
                    });
                }
                (
                    usize::from(!connected),
                    min_bound,
                    usize::MAX - occurrences,
                    occurrence(v),
                )
            })
            .expect("remaining is non-empty");
        remaining.retain(|v| *v != best);
        resolved.insert(best);
        order.push(best);
    }
    order
}

/// Resolve variable `order[vi]`: intersect the candidate value lists of the
/// two cheapest supporting atoms, semijoin-filter through the rest, then
/// bind each survivor and recurse.
fn solve(
    order: &[Variable],
    vi: usize,
    states: &mut [AtomState<'_>],
    current: &mut Substitution,
    out: &mut Vec<Substitution>,
) {
    if vi == order.len() {
        out.push(current.clone());
        return;
    }
    let v = order[vi];
    let mut supports: Vec<usize> = (0..states.len())
        .filter(|&i| states[i].contains_var(v))
        .collect();
    debug_assert!(!supports.is_empty(), "ordered variable occurs in some atom");
    supports.sort_by_key(|&i| states[i].source.bound(&states[i].pattern));

    // The cheapest support enumerates. The second-cheapest is materialised
    // and merged with `intersect_sorted` only when its bound is comparable —
    // a sorted merge touches every value of both lists, so against a much
    // larger (e.g. unconstrained) support, per-survivor existence probes are
    // what keep the per-variable work proportional to the *smallest* list,
    // the property the worst-case-optimality argument rests on.
    let first = &states[supports[0]];
    let first_bound = first.source.bound(&first.pattern);
    let mut values = first.source.values(&first.pattern, first.first_col_of(v));
    let mut probe_from = 1;
    if let Some(&second_idx) = supports.get(1) {
        let second = &states[second_idx];
        if !values.is_empty()
            && second.source.bound(&second.pattern) <= 4 * first_bound.saturating_add(4)
        {
            let other = second
                .source
                .values(&second.pattern, second.first_col_of(v));
            values = intersect_sorted(&values, &other);
            probe_from = 2;
        }
    }
    if supports.len() > probe_from && !values.is_empty() {
        values.retain(|value| {
            supports[probe_from..].iter().all(|&i| {
                let state = &states[i];
                let pattern = bind_pattern(&state.pattern, v, *value);
                state.source.probe(&pattern)
            })
        });
    }
    metrics().intersection_size.observe(values.len() as u64);
    for value in values {
        current.bind(v, value);
        let mut touched: Vec<(usize, Vec<Term>)> = Vec::with_capacity(supports.len());
        for &i in &supports {
            let bound = bind_pattern(&states[i].pattern, v, value);
            touched.push((i, std::mem::replace(&mut states[i].pattern, bound)));
        }
        solve(order, vi + 1, states, current, out);
        for (i, saved) in touched {
            states[i].pattern = saved;
        }
    }
    // Leave `current` without a binding for `v` only logically: the next
    // sibling value overwrites it, and the caller restores its own level the
    // same way, so stale bindings never leak into emitted substitutions
    // (every emit happens at full depth where all variables are freshly
    // bound).
}

/// `pattern` with every occurrence of variable `v` replaced by `value`.
fn bind_pattern(pattern: &[Term], v: Variable, value: Term) -> Vec<Term> {
    pattern
        .iter()
        .map(|t| match t {
            Term::Variable(u) if *u == v => value,
            other => *other,
        })
        .collect()
}

/// True if the variable hypergraph of `atoms` is cyclic (GYO ear-removal
/// test): cyclic bodies — triangles, cliques, feedback shapes — are where
/// the generic join's worst-case-optimality pays; acyclic bodies are served
/// as well or better by the backtracking search's bound-first order.
pub fn is_cyclic(atoms: &[Atom]) -> bool {
    let mut edges: Vec<BTreeSet<Variable>> = atoms
        .iter()
        .map(Atom::variable_set)
        .filter(|vars| !vars.is_empty())
        .collect();
    loop {
        if edges.len() <= 1 {
            return false;
        }
        let mut progress = false;
        // Remove "ear" vertices occurring in exactly one hyperedge.
        let mut counts: std::collections::HashMap<Variable, usize> =
            std::collections::HashMap::new();
        for edge in &edges {
            for v in edge {
                *counts.entry(*v).or_default() += 1;
            }
        }
        for edge in &mut edges {
            let before = edge.len();
            edge.retain(|v| counts[v] > 1);
            progress |= edge.len() != before;
        }
        // Remove hyperedges contained in another hyperedge (duplicates
        // count: of two equal edges only the earlier survives).
        let before = edges.len();
        let mut kept: Vec<BTreeSet<Variable>> = Vec::with_capacity(edges.len());
        'edge: for (i, edge) in edges.iter().enumerate() {
            for (j, other) in edges.iter().enumerate() {
                if j != i && edge.is_subset(other) && (edge != other || j < i) {
                    continue 'edge;
                }
            }
            kept.push(edge.clone());
        }
        edges = kept;
        progress |= edges.len() != before;
        if !progress {
            // A full GYO pass made no reduction: the residue is cyclic.
            return true;
        }
    }
}

/// Total rows below which the generic join's per-variable bookkeeping costs
/// more than the intermediate blowup it prevents (shared by every consumer
/// that picks a strategy without a measured cost model).
pub const GENERIC_JOIN_MIN_FACTS: usize = 128;

/// The default per-body strategy when no measured cost model is in play:
/// generic join for cyclic bodies over enough data, backtracking otherwise.
/// The `crates/plan` cost model refines this choice with real statistics.
pub fn choose_join_strategy<S: RelationSource>(atoms: &[Atom], relations: &S) -> JoinStrategy {
    if !is_cyclic(atoms) {
        return JoinStrategy::Backtracking;
    }
    let total: usize = atoms
        .iter()
        .map(|a| relations.relation_of(a.predicate).map_or(0, |r| r.len()))
        .sum();
    if total >= GENERIC_JOIN_MIN_FACTS {
        JoinStrategy::GenericJoin
    } else {
        JoinStrategy::Backtracking
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homomorphism::{all_homomorphisms, all_homomorphisms_delta};
    use proptest::prelude::*;

    fn v(n: &str) -> Term {
        Term::variable(n)
    }

    fn triangle_atoms() -> Vec<Atom> {
        vec![
            Atom::new("e", vec![v("X"), v("Y")]),
            Atom::new("e", vec![v("Y"), v("Z")]),
            Atom::new("e", vec![v("Z"), v("X")]),
        ]
    }

    fn sorted_keys(subs: &[Substitution]) -> Vec<String> {
        let mut keys: Vec<String> = subs.iter().map(|s| format!("{s:?}")).collect();
        keys.sort();
        keys
    }

    fn assert_same_set(a: &[Substitution], b: &[Substitution]) {
        assert_eq!(sorted_keys(a), sorted_keys(b));
    }

    #[test]
    fn triangle_matches_backtracking() {
        let mut db = Instance::new();
        for (x, y) in [
            ("a", "b"),
            ("b", "c"),
            ("c", "a"),
            ("a", "c"),
            ("c", "d"),
            ("d", "a"),
            ("b", "b"),
        ] {
            db.insert_fact("e", &[x, y]);
        }
        let atoms = triangle_atoms();
        let seed = Substitution::new();
        assert_same_set(
            &generic_join_all(&atoms, &db, &seed),
            &all_homomorphisms(&atoms, &db, &seed),
        );
    }

    #[test]
    fn seed_and_constants_are_respected() {
        let mut db = Instance::new();
        db.insert_fact("e", &["a", "b"]);
        db.insert_fact("e", &["b", "a"]);
        db.insert_fact("p", &["a"]);
        let atoms = vec![
            Atom::new("e", vec![v("X"), v("Y")]),
            Atom::new("p", vec![v("X")]),
        ];
        let mut seed = Substitution::new();
        seed.bind(Variable::new("Y"), Term::constant("b"));
        assert_same_set(
            &generic_join_all(&atoms, &db, &seed),
            &all_homomorphisms(&atoms, &db, &seed),
        );
        let atoms = vec![Atom::new("e", vec![Term::constant("b"), v("Y")])];
        let seed = Substitution::new();
        assert_same_set(
            &generic_join_all(&atoms, &db, &seed),
            &all_homomorphisms(&atoms, &db, &seed),
        );
    }

    #[test]
    fn repeated_variables_and_self_loops() {
        let mut db = Instance::new();
        db.insert_fact("e", &["a", "b"]);
        db.insert_fact("e", &["c", "c"]);
        let atoms = vec![Atom::new("e", vec![v("X"), v("X")])];
        let seed = Substitution::new();
        assert_same_set(
            &generic_join_all(&atoms, &db, &seed),
            &all_homomorphisms(&atoms, &db, &seed),
        );
    }

    #[test]
    fn empty_atoms_return_the_seed() {
        let db = Instance::new();
        let mut seed = Substitution::new();
        seed.bind(Variable::new("X"), Term::constant("a"));
        let out = generic_join_all(&[], &db, &seed);
        assert_eq!(out, vec![seed]);
    }

    #[test]
    fn unknown_predicate_empties_the_join() {
        let mut db = Instance::new();
        db.insert_fact("e", &["a", "b"]);
        let atoms = vec![
            Atom::new("e", vec![v("X"), v("Y")]),
            Atom::new("missing", vec![v("Y")]),
        ];
        assert!(generic_join_all(&atoms, &db, &Substitution::new()).is_empty());
    }

    #[test]
    fn zero_arity_atoms_behave_like_membership() {
        let mut db = Instance::new();
        db.insert(Atom::new("alarm", vec![]));
        db.insert_fact("e", &["a", "b"]);
        let atoms = vec![
            Atom::new("alarm", vec![]),
            Atom::new("e", vec![v("X"), v("Y")]),
        ];
        let seed = Substitution::new();
        assert_same_set(
            &generic_join_all(&atoms, &db, &seed),
            &all_homomorphisms(&atoms, &db, &seed),
        );
        let atoms = vec![Atom::new("quiet", vec![])];
        assert!(generic_join_all(&atoms, &db, &seed).is_empty());
    }

    #[test]
    fn delta_decomposition_matches_backtracking() {
        let mut old = Instance::new();
        old.insert_fact("e", &["a", "b"]);
        old.insert_fact("e", &["b", "c"]);
        old.insert_fact("e", &["c", "a"]);
        let mut delta = Instance::new();
        delta.insert_fact("e", &["c", "b"]);
        delta.insert_fact("e", &["b", "a"]);
        let mut full = old.clone();
        full.extend_from(&delta);
        let atoms = triangle_atoms();
        let seed = Substitution::new();
        assert_same_set(
            &generic_join_delta(&atoms, &full, &delta, &seed),
            &all_homomorphisms_delta(&atoms, &full, &delta, &seed),
        );
        // Pivot shares are disjoint and their union is the whole.
        let mut union = Vec::new();
        for pivot in 0..atoms.len() {
            union.extend(generic_join_delta_pivot(
                &atoms, &full, &delta, &seed, pivot,
            ));
        }
        assert_same_set(
            &union,
            &all_homomorphisms_delta(&atoms, &full, &delta, &seed),
        );
        let keys = sorted_keys(&union);
        for pair in keys.windows(2) {
            assert_ne!(pair[0], pair[1], "duplicate across pivots");
        }
    }

    #[test]
    fn delta_equal_to_full_recovers_all() {
        let mut db = Instance::new();
        db.insert_fact("e", &["a", "b"]);
        db.insert_fact("e", &["b", "a"]);
        let atoms = vec![
            Atom::new("e", vec![v("X"), v("Y")]),
            Atom::new("e", vec![v("Y"), v("X")]),
        ];
        let seed = Substitution::new();
        assert_same_set(
            &generic_join_delta(&atoms, &db, &db, &seed),
            &all_homomorphisms(&atoms, &db, &seed),
        );
        assert!(generic_join_delta(&atoms, &db, &Instance::new(), &seed).is_empty());
        assert!(generic_join_delta(&[], &db, &db, &seed).is_empty());
    }

    #[test]
    fn cyclicity_classifier_is_sane() {
        // Triangle: cyclic.
        assert!(is_cyclic(&triangle_atoms()));
        // Path join: acyclic.
        assert!(!is_cyclic(&[
            Atom::new("e", vec![v("X"), v("Y")]),
            Atom::new("e", vec![v("Y"), v("Z")]),
        ]));
        // Single atom, star, and ground bodies: acyclic.
        assert!(!is_cyclic(&[Atom::new("e", vec![v("X"), v("Y")])]));
        assert!(!is_cyclic(&[
            Atom::new("a", vec![v("X"), v("Y")]),
            Atom::new("b", vec![v("X"), v("Z")]),
            Atom::new("c", vec![v("X"), v("W")]),
        ]));
        assert!(!is_cyclic(&[Atom::new(
            "e",
            vec![Term::constant("a"), Term::constant("b")]
        )]));
        // 4-clique: cyclic.
        let clique: Vec<Atom> = [
            ("X", "Y"),
            ("X", "Z"),
            ("X", "W"),
            ("Y", "Z"),
            ("Y", "W"),
            ("Z", "W"),
        ]
        .iter()
        .map(|(a, b)| Atom::new("e", vec![v(a), v(b)]))
        .collect();
        assert!(is_cyclic(&clique));
        // Acyclic alpha shape: edge + a guard atom covering the join pair.
        assert!(!is_cyclic(&[
            Atom::new("e", vec![v("X"), v("Y")]),
            Atom::new("e", vec![v("Y"), v("Z")]),
            Atom::new("g", vec![v("X"), v("Y"), v("Z")]),
        ]));
    }

    #[test]
    fn strategy_chooser_needs_cyclic_and_big() {
        let mut db = Instance::new();
        for i in 0..200 {
            db.insert_fact("e", &[&format!("n{i}"), &format!("n{}", (i * 7) % 200)]);
        }
        assert_eq!(
            choose_join_strategy(&triangle_atoms(), &db),
            JoinStrategy::GenericJoin
        );
        assert_eq!(
            choose_join_strategy(
                &[
                    Atom::new("e", vec![v("X"), v("Y")]),
                    Atom::new("e", vec![v("Y"), v("Z")]),
                ],
                &db
            ),
            JoinStrategy::Backtracking
        );
        let mut small = Instance::new();
        small.insert_fact("e", &["a", "b"]);
        assert_eq!(
            choose_join_strategy(&triangle_atoms(), &small),
            JoinStrategy::Backtracking
        );
    }

    /// Random-program equivalence: generic join ≡ backtracking on arbitrary
    /// small atom sets and instances, full and delta-restricted.
    fn arb_term(vars: usize, consts: usize) -> impl Strategy<Value = Term> {
        prop_oneof![
            (0..vars).prop_map(|i| Term::variable(&format!("V{i}"))),
            (0..consts).prop_map(|i| Term::constant(&format!("c{i}"))),
        ]
    }

    fn arb_atoms() -> impl Strategy<Value = Vec<Atom>> {
        prop::collection::vec(
            (0..3usize, prop::collection::vec(arb_term(4, 4), 1..=3)),
            1..=4,
        )
        .prop_map(|specs| {
            specs
                .into_iter()
                .map(|(p, terms)| Atom::new(&format!("p{}_{}", p, terms.len()), terms))
                .collect()
        })
    }

    fn arb_instance() -> impl Strategy<Value = (Instance, Instance)> {
        // (old facts, delta facts) over the same predicate pool as arb_atoms.
        let fact = (0..3usize, prop::collection::vec(0..4usize, 1..=3));
        let in_delta = (0..2usize).prop_map(|b| b == 1);
        prop::collection::vec((fact, in_delta), 0..40).prop_map(|facts| {
            let mut old = Instance::new();
            let mut delta = Instance::new();
            for ((p, cols), in_delta) in facts {
                let names: Vec<String> = cols.iter().map(|c| format!("c{c}")).collect();
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                let atom = Atom::fact(&format!("p{}_{}", p, cols.len()), &refs);
                if in_delta {
                    delta.insert(atom);
                } else {
                    old.insert(atom);
                }
            }
            (old, delta)
        })
    }

    proptest! {
        #[test]
        fn prop_generic_join_equals_backtracking((old, delta) in arb_instance(), atoms in arb_atoms()) {
            let mut full = old.clone();
            full.extend_from(&delta);
            let seed = Substitution::new();
            let gj = generic_join_all(&atoms, &full, &seed);
            let bt = all_homomorphisms(&atoms, &full, &seed);
            prop_assert_eq!(sorted_keys(&gj), sorted_keys(&bt));
        }

        #[test]
        fn prop_generic_join_delta_equals_backtracking((old, delta) in arb_instance(), atoms in arb_atoms()) {
            let mut full = old.clone();
            full.extend_from(&delta);
            let seed = Substitution::new();
            let gj = generic_join_delta(&atoms, &full, &delta, &seed);
            let bt = all_homomorphisms_delta(&atoms, &full, &delta, &seed);
            prop_assert_eq!(sorted_keys(&gj), sorted_keys(&bt));
        }

        #[test]
        fn prop_frozen_instances_agree((old, delta) in arb_instance(), atoms in arb_atoms()) {
            // Freezing changes the segment layout, not the matches.
            let mut full = old.clone();
            full.extend_from(&delta);
            let mut frozen = full.clone();
            frozen.freeze();
            let seed = Substitution::new();
            prop_assert_eq!(
                sorted_keys(&generic_join_all(&atoms, &frozen, &seed)),
                sorted_keys(&all_homomorphisms(&atoms, &full, &seed))
            );
        }
    }
}
