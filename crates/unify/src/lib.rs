//! # ontorew-unify
//!
//! Unification machinery for TGD reasoning:
//!
//! * [`mgu`] — most general unifiers over function-free atoms;
//! * [`homomorphism`] — atom-at-a-time backtracking homomorphism search
//!   from atom sets into instances (the work-horse of chase triggers and
//!   certain-answer checks);
//! * [`generic_join`] — variable-at-a-time worst-case-optimal join over the
//!   instance segment indexes, equivalent to the backtracking search but
//!   immune to intermediate blowup on cyclic bodies;
//! * [`containment`] — conjunctive-query containment, equivalence and
//!   minimization (Chandra–Merlin);
//! * [`piece`] — piece unification between queries and TGD heads, the
//!   admissibility condition behind every rewriting step the paper's graphs
//!   approximate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod containment;
pub mod generic_join;
pub mod homomorphism;
pub mod mgu;
pub mod piece;

pub use containment::{are_equivalent, is_contained_in, minimize, prune_ucq, prune_ucq_budgeted};
pub use generic_join::{
    choose_join_strategy, generic_join_all, generic_join_delta, generic_join_delta_pivot,
    is_cyclic, JoinStrategy, RelationSource, GENERIC_JOIN_MIN_FACTS,
};
pub use homomorphism::{
    all_homomorphisms, all_homomorphisms_delta, all_homomorphisms_delta_chunk, find_homomorphism,
    find_homomorphism_into_atoms, find_homomorphism_ordered, freeze_atom, freeze_atoms,
    freeze_term, freezing_substitution, has_homomorphism, plan_match_order,
};
pub use mgu::{
    extend_unifier, unifiable, unify_all_with, unify_atom_lists, unify_atoms, unify_term_lists,
};
pub use piece::{piece_unifiers, PieceUnifier};
