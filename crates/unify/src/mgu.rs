//! Most general unifiers over flat (function-free) atoms.
//!
//! Because TGDs and conjunctive queries are function-free, unification never
//! needs an occurs check: terms are constants, labelled nulls or variables.
//! A unifier is represented as an [`Substitution`]; the functions in this
//! module always return unifiers in *resolved* form (no bound variable maps
//! to another bound variable), so a single application suffices.

use ontorew_model::prelude::*;

/// Attempt to unify two terms under an existing partial unifier.
///
/// Returns `false` (leaving `unifier` in an unspecified but consistent state
/// only on success paths) if the terms are not unifiable.
fn unify_terms_into(unifier: &mut Substitution, s: Term, t: Term) -> bool {
    let s = unifier.apply_term_deep(s);
    let t = unifier.apply_term_deep(t);
    if s == t {
        return true;
    }
    match (s, t) {
        (Term::Variable(v), other) => {
            unifier.bind(v, other);
            true
        }
        (other, Term::Variable(v)) => {
            unifier.bind(v, other);
            true
        }
        // Two distinct ground terms (constants or nulls) never unify under
        // the Unique Name Assumption.
        _ => false,
    }
}

/// Compute the most general unifier of two term lists of equal length.
pub fn unify_term_lists(left: &[Term], right: &[Term]) -> Option<Substitution> {
    if left.len() != right.len() {
        return None;
    }
    let mut unifier = Substitution::new();
    for (s, t) in left.iter().zip(right.iter()) {
        if !unify_terms_into(&mut unifier, *s, *t) {
            return None;
        }
    }
    Some(unifier.resolved())
}

/// Compute the most general unifier of two atoms.
///
/// Atoms over different predicates (name or arity) never unify.
pub fn unify_atoms(left: &Atom, right: &Atom) -> Option<Substitution> {
    if left.predicate != right.predicate {
        return None;
    }
    unify_term_lists(&left.terms, &right.terms)
}

/// Extend an existing unifier so that it also unifies `left` and `right`.
///
/// This is the incremental form used when unifying a whole set of atom pairs.
pub fn extend_unifier(unifier: &Substitution, left: &Atom, right: &Atom) -> Option<Substitution> {
    if left.predicate != right.predicate {
        return None;
    }
    let mut u = unifier.clone();
    for (s, t) in left.terms.iter().zip(right.terms.iter()) {
        if !unify_terms_into(&mut u, *s, *t) {
            return None;
        }
    }
    Some(u.resolved())
}

/// Simultaneously unify the paired atoms of two equally long atom lists.
pub fn unify_atom_lists(left: &[Atom], right: &[Atom]) -> Option<Substitution> {
    if left.len() != right.len() {
        return None;
    }
    let mut unifier = Substitution::new();
    for (l, r) in left.iter().zip(right.iter()) {
        unifier = extend_unifier(&unifier, l, r)?;
    }
    Some(unifier)
}

/// Unify every atom of `atoms` with the single atom `target` (used to
/// *factorize* a set of query atoms into one atom, and to unify a query piece
/// with a single-atom rule head).
pub fn unify_all_with(atoms: &[Atom], target: &Atom) -> Option<Substitution> {
    let mut unifier = Substitution::new();
    for a in atoms {
        unifier = extend_unifier(&unifier, a, target)?;
    }
    Some(unifier)
}

/// True if the two atoms are unifiable.
pub fn unifiable(left: &Atom, right: &Atom) -> bool {
    unify_atoms(left, right).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Term {
        Term::variable(n)
    }
    fn c(n: &str) -> Term {
        Term::constant(n)
    }

    #[test]
    fn identical_atoms_unify_with_empty_mgu() {
        let a = Atom::new("r", vec![v("X"), c("a")]);
        let mgu = unify_atoms(&a, &a).unwrap();
        assert!(mgu.is_empty());
    }

    #[test]
    fn variable_constant_unification() {
        let a = Atom::new("r", vec![v("X"), v("Y")]);
        let b = Atom::new("r", vec![c("a"), c("b")]);
        let mgu = unify_atoms(&a, &b).unwrap();
        assert_eq!(mgu.apply_atom(&a), b);
    }

    #[test]
    fn different_predicates_never_unify() {
        let a = Atom::new("r", vec![v("X")]);
        let b = Atom::new("s", vec![v("X")]);
        assert!(unify_atoms(&a, &b).is_none());
        let b2 = Atom::new("r", vec![v("X"), v("Y")]);
        assert!(unify_atoms(&a, &b2).is_none());
    }

    #[test]
    fn clashing_constants_fail() {
        let a = Atom::new("r", vec![c("a")]);
        let b = Atom::new("r", vec![c("b")]);
        assert!(unify_atoms(&a, &b).is_none());
    }

    #[test]
    fn repeated_variables_propagate_constraints() {
        // r(X, X) vs r(a, Y)  =>  X = a, Y = a
        let a = Atom::new("r", vec![v("X"), v("X")]);
        let b = Atom::new("r", vec![c("a"), v("Y")]);
        let mgu = unify_atoms(&a, &b).unwrap();
        assert_eq!(mgu.apply_atom(&a), mgu.apply_atom(&b));
        assert_eq!(
            mgu.apply_term_deep(Term::variable("Y")),
            Term::constant("a")
        );
    }

    #[test]
    fn repeated_variables_can_make_unification_fail() {
        // r(X, X) vs r(a, b) is not unifiable.
        let a = Atom::new("r", vec![v("X"), v("X")]);
        let b = Atom::new("r", vec![c("a"), c("b")]);
        assert!(unify_atoms(&a, &b).is_none());
    }

    #[test]
    fn mgu_is_most_general_variable_to_variable() {
        // r(X, Y) vs r(Y, Z): the unifier must identify the three variables
        // without introducing constants.
        let a = Atom::new("r", vec![v("X"), v("Y")]);
        let b = Atom::new("r", vec![v("Y"), v("Z")]);
        let mgu = unify_atoms(&a, &b).unwrap();
        assert_eq!(mgu.apply_atom_deep(&a), mgu.apply_atom_deep(&b));
        assert!(mgu.iter().all(|(_, t)| t.is_variable()));
    }

    #[test]
    fn nulls_behave_like_constants() {
        let n = Term::fresh_null();
        let a = Atom::new("r", vec![n]);
        let b = Atom::new("r", vec![c("a")]);
        assert!(unify_atoms(&a, &b).is_none());
        let d = Atom::new("r", vec![v("X")]);
        let mgu = unify_atoms(&d, &a).unwrap();
        assert_eq!(mgu.apply_atom(&d), a);
    }

    #[test]
    fn atom_list_unification_is_simultaneous() {
        // [r(X, b), s(X)] vs [r(a, Y), s(a)] unifies with X=a, Y=b.
        let l = vec![
            Atom::new("r", vec![v("X"), c("b")]),
            Atom::new("s", vec![v("X")]),
        ];
        let r = vec![
            Atom::new("r", vec![c("a"), v("Y")]),
            Atom::new("s", vec![c("a")]),
        ];
        let mgu = unify_atom_lists(&l, &r).unwrap();
        assert_eq!(mgu.apply_atoms(&l), mgu.apply_atoms(&r));
    }

    #[test]
    fn atom_list_unification_detects_cross_atom_conflicts() {
        // [r(X), s(X)] vs [r(a), s(b)] must fail because X cannot be both.
        let l = vec![Atom::new("r", vec![v("X")]), Atom::new("s", vec![v("X")])];
        let r = vec![Atom::new("r", vec![c("a")]), Atom::new("s", vec![c("b")])];
        assert!(unify_atom_lists(&l, &r).is_none());
        assert!(unify_atom_lists(&l, &l[..1]).is_none());
    }

    #[test]
    fn unify_all_with_factorizes() {
        // {p(X, Y), p(Y, Z)} unified with p(U, U) forces X=Y=Z.
        let atoms = vec![
            Atom::new("p", vec![v("X"), v("Y")]),
            Atom::new("p", vec![v("Y"), v("Z")]),
        ];
        let target = Atom::new("p", vec![v("U"), v("U")]);
        let mgu = unify_all_with(&atoms, &target).unwrap();
        let a0 = mgu.apply_atom_deep(&atoms[0]);
        let a1 = mgu.apply_atom_deep(&atoms[1]);
        let t = mgu.apply_atom_deep(&target);
        assert_eq!(a0, a1);
        assert_eq!(a0, t);
    }

    #[test]
    fn extend_unifier_respects_existing_bindings() {
        let mut base = Substitution::new();
        base.bind(Variable::new("X"), c("a"));
        let l = Atom::new("r", vec![v("X")]);
        let r_ok = Atom::new("r", vec![c("a")]);
        let r_bad = Atom::new("r", vec![c("b")]);
        assert!(extend_unifier(&base, &l, &r_ok).is_some());
        assert!(extend_unifier(&base, &l, &r_bad).is_none());
    }

    #[test]
    fn unifiable_is_consistent_with_unify() {
        let a = Atom::new("r", vec![v("X"), c("a")]);
        let b = Atom::new("r", vec![c("b"), v("Y")]);
        assert_eq!(unifiable(&a, &b), unify_atoms(&a, &b).is_some());
    }
}
