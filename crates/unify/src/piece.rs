//! Piece unification between conjunctive queries and TGD heads.
//!
//! A *rewriting step* (the operation the paper's position graph and P-node
//! graph approximate, §4) replaces a set of query atoms that unify with the
//! head of a TGD by the body of that TGD. The unification is only admissible
//! when the existential head variables of the rule are not forced to be equal
//! to anything the rest of the query can observe; this is captured by the
//! classical notion of a **piece unifier** from the existential-rule
//! literature.
//!
//! Given a query `q` with body `Q` and answer variables `x`, and a TGD
//! `R : B → H` whose variables are disjoint from those of `q` (standardise
//! apart with [`Tgd::freshen`] first), a piece unifier is a pair `(Q', u)`
//! where `Q' ⊆ Q` is non-empty, every atom of `Q'` unifies (simultaneously,
//! through `u`) with one head atom `α ∈ H`, and for every existential head
//! variable `z` of `R` occurring in `α`, the equivalence class of `z` induced
//! by `u` contains **only** `z` and variables of `q` that
//!   * are not answer variables of `q`, and
//!   * do not occur in `Q \ Q'` (they are local to the piece).
//!
//! In particular the class may not contain constants, frontier variables of
//! `R`, or other existential variables of `R`.
//!
//! For multi-atom heads this module unifies a piece against a *single* head
//! atom at a time (after [`ontorew_model::TgdProgram::with_split_heads`] this
//! is exact; for genuinely entangled multi-head rules it is sound but may miss
//! rewritings — see `ontorew-rewrite` for how this is surfaced).

use crate::mgu::extend_unifier;
use ontorew_model::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// A piece unifier of a query with (one head atom of) a TGD.
#[derive(Clone, Debug)]
pub struct PieceUnifier {
    /// Indices (into the query body) of the atoms forming the piece `Q'`.
    pub piece: Vec<usize>,
    /// Index (into the rule head) of the head atom the piece unifies with.
    pub head_index: usize,
    /// The unifier `u`, in resolved form.
    pub unifier: Substitution,
}

/// Upper bound on the number of candidate atoms for which *all* subsets are
/// enumerated; beyond this, only singleton and two-element pieces are tried
/// (larger pieces are extremely rare in practice and the bound keeps the
/// enumeration polynomial for pathological queries).
const EXHAUSTIVE_PIECE_LIMIT: usize = 10;

/// Enumerate every piece unifier of the query body `query_atoms` (with answer
/// variables `answer_vars`) with the TGD `rule`.
///
/// `rule` must be standardised apart from the query (no shared variables);
/// callers normally pass `rule.freshen()`.
pub fn piece_unifiers(
    query_atoms: &[Atom],
    answer_vars: &[Variable],
    rule: &Tgd,
) -> Vec<PieceUnifier> {
    let mut out = Vec::new();
    let answer_set: BTreeSet<Variable> = answer_vars.iter().copied().collect();
    let frontier: BTreeSet<Variable> = rule.frontier().into_iter().collect();
    let existentials: BTreeSet<Variable> = rule.existential_head_variables().into_iter().collect();

    for (head_index, head_atom) in rule.head.iter().enumerate() {
        // Candidate query atoms: same predicate and individually unifiable.
        let candidates: Vec<usize> = query_atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| {
                a.predicate == head_atom.predicate && crate::mgu::unifiable(a, head_atom)
            })
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            continue;
        }

        let subsets = enumerate_pieces(&candidates);
        for piece in subsets {
            if let Some(unifier) = unify_piece(query_atoms, &piece, head_atom) {
                if piece_is_admissible(
                    query_atoms,
                    &piece,
                    head_atom,
                    &unifier,
                    &answer_set,
                    &frontier,
                    &existentials,
                ) {
                    out.push(PieceUnifier {
                        piece: piece.clone(),
                        head_index,
                        unifier,
                    });
                }
            }
        }
    }
    out
}

/// Enumerate candidate pieces (non-empty subsets of the candidate indices),
/// bounded as described on [`EXHAUSTIVE_PIECE_LIMIT`].
fn enumerate_pieces(candidates: &[usize]) -> Vec<Vec<usize>> {
    let n = candidates.len();
    let mut out = Vec::new();
    if n <= EXHAUSTIVE_PIECE_LIMIT {
        for mask in 1u32..(1u32 << n) {
            let piece: Vec<usize> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| candidates[i])
                .collect();
            out.push(piece);
        }
    } else {
        for i in 0..n {
            out.push(vec![candidates[i]]);
            for j in (i + 1)..n {
                out.push(vec![candidates[i], candidates[j]]);
            }
        }
    }
    out
}

/// Simultaneously unify every atom of the piece with the head atom.
fn unify_piece(query_atoms: &[Atom], piece: &[usize], head_atom: &Atom) -> Option<Substitution> {
    let mut unifier = Substitution::new();
    for &i in piece {
        unifier = extend_unifier(&unifier, &query_atoms[i], head_atom)?;
    }
    Some(unifier)
}

/// Check the admissibility condition on existential head variables.
#[allow(clippy::too_many_arguments)]
fn piece_is_admissible(
    query_atoms: &[Atom],
    piece: &[usize],
    head_atom: &Atom,
    unifier: &Substitution,
    answer_vars: &BTreeSet<Variable>,
    frontier: &BTreeSet<Variable>,
    existentials: &BTreeSet<Variable>,
) -> bool {
    // Variables occurring in query atoms outside the piece.
    let piece_set: BTreeSet<usize> = piece.iter().copied().collect();
    let outside_vars: BTreeSet<Variable> = query_atoms
        .iter()
        .enumerate()
        .filter(|(i, _)| !piece_set.contains(i))
        .flat_map(|(_, a)| a.variable_set())
        .collect();

    // Group every term of interest by its representative under the unifier.
    let mut classes: BTreeMap<Term, BTreeSet<Term>> = BTreeMap::new();
    let mut add = |t: Term| {
        let rep = unifier.apply_term_deep(t);
        classes.entry(rep).or_default().insert(t);
    };
    for &i in piece {
        for t in &query_atoms[i].terms {
            add(*t);
        }
    }
    for t in &head_atom.terms {
        add(*t);
    }

    for z in head_atom.variable_set() {
        if !existentials.contains(&z) {
            continue;
        }
        let rep = unifier.apply_term_deep(Term::Variable(z));
        // The representative itself must not be a ground term.
        if rep.is_constant() || rep.is_null() {
            return false;
        }
        let class = match classes.get(&rep) {
            Some(c) => c,
            None => continue,
        };
        for member in class {
            match member {
                Term::Variable(v) if *v == z => {}
                Term::Variable(v) => {
                    // Another rule variable (frontier or existential) in the
                    // class makes the unification inadmissible.
                    if frontier.contains(v) || existentials.contains(v) {
                        return false;
                    }
                    // A query variable must be purely local to the piece and
                    // non-distinguished.
                    if answer_vars.contains(v) || outside_vars.contains(v) {
                        return false;
                    }
                }
                // Constants / nulls in the class are never admissible.
                _ => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Term {
        Term::variable(n)
    }
    fn var(n: &str) -> Variable {
        Variable::new(n)
    }

    /// person(X) -> hasParent(X, Z)   (Z existential)
    fn has_parent_rule() -> Tgd {
        Tgd::labelled(
            "Rp",
            vec![Atom::new("person", vec![v("X0")])],
            vec![Atom::new("hasParent", vec![v("X0"), v("Z0")])],
        )
    }

    #[test]
    fn simple_piece_unifier_exists() {
        // q(U) :- hasParent(U, W)   — W is existential and local, so the atom
        // can be rewritten with the rule.
        let body = vec![Atom::new("hasParent", vec![v("U"), v("W")])];
        let pus = piece_unifiers(&body, &[var("U")], &has_parent_rule());
        assert_eq!(pus.len(), 1);
        assert_eq!(pus[0].piece, vec![0]);
        assert_eq!(pus[0].head_index, 0);
    }

    #[test]
    fn answer_variable_blocks_existential_unification() {
        // q(U, W) :- hasParent(U, W) — W is an answer variable, so unifying it
        // with the existential Z is not admissible.
        let body = vec![Atom::new("hasParent", vec![v("U"), v("W")])];
        let pus = piece_unifiers(&body, &[var("U"), var("W")], &has_parent_rule());
        assert!(pus.is_empty());
    }

    #[test]
    fn shared_variable_outside_piece_blocks_unification() {
        // q(U) :- hasParent(U, W), person(W) — W also occurs outside the
        // candidate piece {hasParent(U, W)}, so that singleton piece is not
        // admissible (and person(W) does not unify with the head at all).
        let body = vec![
            Atom::new("hasParent", vec![v("U"), v("W")]),
            Atom::new("person", vec![v("W")]),
        ];
        let pus = piece_unifiers(&body, &[var("U")], &has_parent_rule());
        assert!(pus.is_empty());
    }

    #[test]
    fn constant_blocks_existential_unification() {
        // q(U) :- hasParent(U, "bob") — the existential cannot be a constant.
        let body = vec![Atom::new("hasParent", vec![v("U"), Term::constant("bob")])];
        let pus = piece_unifiers(&body, &[var("U")], &has_parent_rule());
        assert!(pus.is_empty());
    }

    #[test]
    fn frontier_position_accepts_constants() {
        // person(X) -> employed(Z, X): constant in the frontier position is fine.
        let rule = Tgd::new(
            vec![Atom::new("person", vec![v("X0")])],
            vec![Atom::new("employed", vec![v("Z0"), v("X0")])],
        );
        let body = vec![Atom::new("employed", vec![v("W"), Term::constant("alice")])];
        let pus = piece_unifiers(&body, &[], &rule);
        assert_eq!(pus.len(), 1);
    }

    #[test]
    fn two_atom_piece_is_found() {
        // rule: project(X) -> member(X, Z)
        // q() :- member(U, W), member(V, W)
        // Both atoms must be rewritten together: W is shared between them, so
        // singleton pieces are inadmissible but the two-atom piece is fine.
        let rule = Tgd::new(
            vec![Atom::new("project", vec![v("X0")])],
            vec![Atom::new("member", vec![v("X0"), v("Z0")])],
        );
        let body = vec![
            Atom::new("member", vec![v("U"), v("W")]),
            Atom::new("member", vec![v("V"), v("W")]),
        ];
        let pus = piece_unifiers(&body, &[], &rule);
        let pieces: Vec<_> = pus.iter().map(|p| p.piece.clone()).collect();
        assert!(pieces.contains(&vec![0, 1]));
        assert!(!pieces.contains(&vec![0]));
        assert!(!pieces.contains(&vec![1]));
    }

    #[test]
    fn two_existentials_cannot_be_identified() {
        // rule: p(X) -> r(Z1, Z2); query atom r(U, U) would force Z1 = Z2.
        let rule = Tgd::new(
            vec![Atom::new("p", vec![v("X0")])],
            vec![Atom::new("r", vec![v("Z1"), v("Z2")])],
        );
        let body = vec![Atom::new("r", vec![v("U"), v("U")])];
        let pus = piece_unifiers(&body, &[], &rule);
        assert!(pus.is_empty());
    }

    #[test]
    fn full_rule_unifies_freely() {
        // Datalog rule (no existentials): s(X, Y) -> r(X, Y). Any r-atom can
        // be rewritten, even with answer variables and constants.
        let rule = Tgd::new(
            vec![Atom::new("s", vec![v("X0"), v("Y0")])],
            vec![Atom::new("r", vec![v("X0"), v("Y0")])],
        );
        let body = vec![Atom::new("r", vec![v("A"), Term::constant("c")])];
        let pus = piece_unifiers(&body, &[var("A")], &rule);
        assert_eq!(pus.len(), 1);
    }

    #[test]
    fn no_unifier_for_unrelated_predicates() {
        let body = vec![Atom::new("teaches", vec![v("U"), v("W")])];
        let pus = piece_unifiers(&body, &[var("U")], &has_parent_rule());
        assert!(pus.is_empty());
    }

    #[test]
    fn multi_head_rules_offer_one_unifier_per_head_atom() {
        // p(X) -> q(X), t(X): both head atoms can resolve query atoms.
        let rule = Tgd::new(
            vec![Atom::new("p", vec![v("X0")])],
            vec![Atom::new("q", vec![v("X0")]), Atom::new("t", vec![v("X0")])],
        );
        let body = vec![Atom::new("q", vec![v("U")]), Atom::new("t", vec![v("U")])];
        let pus = piece_unifiers(&body, &[], &rule);
        let head_indices: BTreeSet<usize> = pus.iter().map(|p| p.head_index).collect();
        assert_eq!(head_indices, BTreeSet::from([0, 1]));
    }

    #[test]
    fn frontier_variable_cannot_join_existential_class() {
        // rule: p(X) -> r(X, Z); query atom r(V, V) forces X = Z via V.
        let rule = Tgd::new(
            vec![Atom::new("p", vec![v("X0")])],
            vec![Atom::new("r", vec![v("X0"), v("Z0")])],
        );
        let body = vec![Atom::new("r", vec![v("V"), v("V")])];
        let pus = piece_unifiers(&body, &[], &rule);
        assert!(pus.is_empty());
    }
}
