//! # ontorew-storage
//!
//! The relational substrate of the OBDA stack: an in-memory store of
//! relations with eager per-column hash indexes (the [`IndexedRelation`]
//! machinery shared with `ontorew-model`'s `Instance`), an index-nested-loop
//! join evaluator for conjunctive queries and UCQs, and a SQL renderer for
//! rewritings.
//!
//! [`IndexedRelation`]: ontorew_model::instance::IndexedRelation
//!
//! The paper assumes the extensional data lives in a standard relational
//! DBMS; this crate is the simulation of that DBMS (see DESIGN.md §1 for the
//! substitution rationale). The query answering path exercised by the
//! benchmarks — UCQ rewriting evaluated over indexed relations — matches the
//! deployment the paper targets.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod database;
pub mod eval;
pub mod persist;
pub mod relation;
pub mod sql;
pub mod stats;

pub use cost::{estimate_join_cost, JoinCost};
pub use database::RelationalStore;
pub use eval::{
    evaluate_boolean, evaluate_cq, evaluate_cq_instrumented, evaluate_ucq, evaluate_ucq_configured,
    evaluate_ucq_with, AnswerSet, EvalConfig, EvalStats,
};
pub use ontorew_unify::JoinStrategy;
pub use persist::{FsyncPolicy, TenantStorage};
pub use relation::Relation;
pub use sql::{cq_to_sql, ucq_to_sql};
pub use stats::{ColumnStats, RelationStats, StoreStatistics};
