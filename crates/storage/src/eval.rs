//! Conjunctive-query evaluation over the relational store.
//!
//! Evaluation is an index-nested-loop join: atoms are ordered greedily so
//! that each atom shares as many variables as possible with the atoms already
//! joined (and constants are exploited first), and for each atom the matching
//! tuples are fetched through the relation's eagerly maintained per-column
//! hash indexes (the most selective bound column wins), so evaluation only
//! needs shared access to the store.

use crate::cost::estimate_join_cost;
use crate::database::RelationalStore;
use crate::stats::StoreStatistics;
use ontorew_model::prelude::*;
use ontorew_unify::{choose_join_strategy, generic_join_all, JoinStrategy};
use std::collections::BTreeSet;

/// Configuration of the CQ evaluator.
///
/// The defaults reproduce the standard evaluation path (greedy atom
/// reordering, lazy per-column hash indexes). Switching the flags off is used
/// by the planner-ablation benchmark to quantify what each optimisation buys.
#[derive(Clone, Copy, Debug)]
pub struct EvalConfig<'a> {
    /// Reorder body atoms greedily (bound variables, ground terms, size).
    pub reorder_atoms: bool,
    /// Use per-column hash indexes for atoms with a ground column; when
    /// false, every atom is matched by a full scan.
    pub use_indexes: bool,
    /// Optional relation statistics; when present, the planner orders atoms
    /// by estimated matching rows instead of raw relation cardinality.
    pub statistics: Option<&'a StoreStatistics>,
    /// Join strategy: `Some` forces atom-at-a-time backtracking or the
    /// variable-at-a-time generic join; `None` picks per query — through the
    /// cost model ([`estimate_join_cost`]) when `statistics` are present,
    /// through the [`choose_join_strategy`] size threshold otherwise.
    pub strategy: Option<JoinStrategy>,
}

impl Default for EvalConfig<'_> {
    fn default() -> Self {
        EvalConfig {
            reorder_atoms: true,
            use_indexes: true,
            statistics: None,
            strategy: None,
        }
    }
}

/// Counters collected while evaluating one conjunctive query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of body atoms joined.
    pub atoms: usize,
    /// Rows fetched from relations (via index or scan).
    pub rows_fetched: usize,
    /// Atom lookups answered through a hash index.
    pub index_probes: usize,
    /// Atom lookups answered by a full scan.
    pub full_scans: usize,
    /// Number of answer tuples produced (before set deduplication).
    pub answers_emitted: usize,
}

/// The answers of a query: a set of tuples of ground terms, one column per
/// answer variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnswerSet {
    /// The answer variables, in output order.
    pub columns: Vec<Variable>,
    rows: BTreeSet<Vec<Term>>,
}

impl AnswerSet {
    /// An empty answer set with the given columns.
    pub fn empty(columns: Vec<Variable>) -> Self {
        AnswerSet {
            columns,
            rows: BTreeSet::new(),
        }
    }

    /// Number of answer tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no answers.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// For boolean queries: true if the (empty) answer tuple is present.
    pub fn as_boolean(&self) -> bool {
        !self.rows.is_empty()
    }

    /// Insert an answer tuple.
    pub fn insert(&mut self, row: Vec<Term>) {
        debug_assert_eq!(row.len(), self.columns.len());
        self.rows.insert(row);
    }

    /// True if the answer set contains the tuple.
    pub fn contains(&self, row: &[Term]) -> bool {
        self.rows.contains(row)
    }

    /// True if the answer set contains the tuple of constants named by
    /// `names`.
    pub fn contains_constants(&self, names: &[&str]) -> bool {
        let row: Vec<Term> = names.iter().map(|n| Term::constant(n)).collect();
        self.contains(&row)
    }

    /// Iterate over the answer tuples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<Term>> {
        self.rows.iter()
    }

    /// Merge another answer set (same columns assumed) into this one.
    pub fn union_with(&mut self, other: &AnswerSet) {
        for row in &other.rows {
            self.rows.insert(row.clone());
        }
    }

    /// Keep only answers made entirely of constants (no labelled nulls).
    ///
    /// Certain-answer semantics requires answers to be tuples of constants;
    /// chase-materialised instances contain nulls which must not leak into
    /// answers.
    pub fn without_nulls(&self) -> AnswerSet {
        AnswerSet {
            columns: self.columns.clone(),
            rows: self
                .rows
                .iter()
                .filter(|row| row.iter().all(|t| !t.is_null()))
                .cloned()
                .collect(),
        }
    }
}

/// Evaluate a conjunctive query over the store with the default
/// configuration.
pub fn evaluate_cq(store: &RelationalStore, query: &ConjunctiveQuery) -> AnswerSet {
    evaluate_cq_instrumented(store, query, &EvalConfig::default()).0
}

/// Evaluate a conjunctive query with an explicit [`EvalConfig`], returning
/// the answers together with the evaluation counters.
pub fn evaluate_cq_instrumented(
    store: &RelationalStore,
    query: &ConjunctiveQuery,
    config: &EvalConfig<'_>,
) -> (AnswerSet, EvalStats) {
    let strategy = config.strategy.unwrap_or_else(|| match config.statistics {
        Some(stats) => estimate_join_cost(stats, &query.body).strategy(),
        None => choose_join_strategy(&query.body, store),
    });
    if strategy == JoinStrategy::GenericJoin {
        return evaluate_cq_generic_join(store, query);
    }
    let mut answers = AnswerSet::empty(query.answer_vars.clone());
    let order = if config.reorder_atoms {
        plan_order(store, &query.body, config.statistics)
    } else {
        query.body.to_vec()
    };
    let mut stats = EvalStats {
        atoms: order.len(),
        ..EvalStats::default()
    };
    let mut bindings = Substitution::new();
    join(
        store,
        &order,
        0,
        &mut bindings,
        config,
        &mut stats,
        &mut |final_bindings, stats| {
            let row: Vec<Term> = query
                .answer_vars
                .iter()
                .map(|v| final_bindings.apply_term(Term::Variable(*v)))
                .collect();
            if row.iter().all(Term::is_ground) {
                stats.answers_emitted += 1;
                answers.insert(row);
            }
        },
    );
    (answers, stats)
}

/// The worst-case-optimal evaluation path: hand the body to
/// [`generic_join_all`] (variable-at-a-time over the relation segment
/// indexes) and project the substitutions onto the answer variables. The
/// answers are identical to the backtracking path — only the join order and
/// cost differ.
fn evaluate_cq_generic_join(
    store: &RelationalStore,
    query: &ConjunctiveQuery,
) -> (AnswerSet, EvalStats) {
    let mut answers = AnswerSet::empty(query.answer_vars.clone());
    let mut stats = EvalStats {
        atoms: query.body.len(),
        ..EvalStats::default()
    };
    for hom in generic_join_all(&query.body, store, &Substitution::new()) {
        let row: Vec<Term> = query
            .answer_vars
            .iter()
            .map(|v| hom.apply_term(Term::Variable(*v)))
            .collect();
        if row.iter().all(Term::is_ground) {
            stats.answers_emitted += 1;
            answers.insert(row);
        }
    }
    (answers, stats)
}

/// Unions smaller than this are always evaluated sequentially: spawning a
/// scoped thread costs more than joining a handful of indexed disjuncts.
const PARALLEL_UCQ_MIN_DISJUNCTS: usize = 8;

/// Evaluate a union of conjunctive queries over the store (set union of the
/// disjuncts' answers).
///
/// Disjuncts are independent — each one only reads the shared store — so
/// large unions (the shape UCQ rewritings of hierarchy-heavy ontologies
/// produce) are fanned out across `available_parallelism` scoped threads;
/// small unions are evaluated inline. Answers are a set union either way, so
/// the result is identical to the sequential evaluation.
pub fn evaluate_ucq(store: &RelationalStore, ucq: &UnionOfConjunctiveQueries) -> AnswerSet {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    evaluate_ucq_with(store, ucq, threads)
}

/// Evaluate a UCQ with an explicit thread budget (`<= 1` forces the
/// sequential path). Exposed for the plan executor and for tests that pin
/// the configuration.
pub fn evaluate_ucq_with(
    store: &RelationalStore,
    ucq: &UnionOfConjunctiveQueries,
    threads: usize,
) -> AnswerSet {
    evaluate_ucq_configured(store, ucq, threads, &EvalConfig::default())
}

/// Evaluate a UCQ with an explicit [`EvalConfig`] applied to every disjunct
/// — the plan executor's path, which threads the store statistics through so
/// each disjunct's join strategy is chosen by the cost model.
pub fn evaluate_ucq_configured(
    store: &RelationalStore,
    ucq: &UnionOfConjunctiveQueries,
    threads: usize,
    config: &EvalConfig<'_>,
) -> AnswerSet {
    let columns = ucq
        .disjuncts
        .first()
        .map(|q| q.answer_vars.clone())
        .unwrap_or_default();
    let mut answers = AnswerSet::empty(columns);
    let threads = threads.max(1);
    if threads == 1 || ucq.len() < PARALLEL_UCQ_MIN_DISJUNCTS.max(2 * threads) {
        for q in &ucq.disjuncts {
            let part = evaluate_cq_instrumented(store, q, config).0;
            answers.union_with(&part);
        }
        return answers;
    }
    // Contiguous chunks, one scoped worker per chunk: rewriting disjuncts of
    // one query have similar shapes (and therefore similar cost), so static
    // partitioning balances well without a work queue.
    let chunk_size = ucq.disjuncts.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = ucq
            .disjuncts
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut local: Option<AnswerSet> = None;
                    for q in chunk {
                        let part = evaluate_cq_instrumented(store, q, config).0;
                        match &mut local {
                            Some(acc) => acc.union_with(&part),
                            None => local = Some(part),
                        }
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            if let Some(part) = handle.join().expect("UCQ evaluation worker panicked") {
                answers.union_with(&part);
            }
        }
    });
    answers
}

/// Evaluate a boolean conjunctive query.
pub fn evaluate_boolean(store: &RelationalStore, query: &ConjunctiveQuery) -> bool {
    evaluate_cq(store, query).as_boolean()
}

/// Greedy join ordering: repeatedly pick the atom maximising
/// (number of already-bound variables, number of ground terms, -estimated
/// matching rows). Without statistics the estimate is the raw relation size;
/// with statistics it is refined by the distinct counts of the ground
/// columns.
fn plan_order(
    store: &RelationalStore,
    atoms: &[Atom],
    statistics: Option<&StoreStatistics>,
) -> Vec<Atom> {
    let mut remaining: Vec<Atom> = atoms.to_vec();
    let mut bound: BTreeSet<Variable> = BTreeSet::new();
    let mut ordered = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let (best, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let vars = a.variable_set();
                let bound_vars = vars.iter().filter(|v| bound.contains(v)).count() as i64;
                let ground = a.terms.iter().filter(|t| t.is_ground()).count() as i64;
                let size = match statistics {
                    Some(stats) => stats.estimated_matches(a) as i64,
                    None => store.relation_size(a.predicate) as i64,
                };
                (
                    i,
                    bound_vars * 1_000_000 + ground * 10_000 - size.min(9_999),
                )
            })
            .max_by_key(|(_, score)| *score)
            .expect("remaining is non-empty");
        let atom = remaining.remove(best);
        bound.extend(atom.variable_set());
        ordered.push(atom);
    }
    ordered
}

fn join(
    store: &RelationalStore,
    atoms: &[Atom],
    idx: usize,
    bindings: &mut Substitution,
    config: &EvalConfig<'_>,
    stats: &mut EvalStats,
    on_answer: &mut dyn FnMut(&Substitution, &mut EvalStats),
) {
    if idx == atoms.len() {
        on_answer(bindings, stats);
        return;
    }
    let atom = bindings.apply_atom(&atoms[idx]);
    let relation = match store.relation(atom.predicate) {
        Some(r) => r,
        None => return, // empty relation: no matches
    };

    // Choose an access path: the most selective bound-column index, or a
    // full scan (always a scan when indexes are disabled for ablation).
    let candidates = if config.use_indexes {
        relation.candidates(&atom.terms)
    } else {
        relation.scan_candidates()
    };
    if candidates.used_index() {
        stats.index_probes += 1;
    } else {
        stats.full_scans += 1;
    }

    for row in candidates {
        stats.rows_fetched += 1;
        if let Some(extension) = match_row(&atom, row) {
            let saved = bindings.clone();
            for (v, t) in extension.iter() {
                bindings.bind(v, t);
            }
            join(store, atoms, idx + 1, bindings, config, stats, on_answer);
            *bindings = saved;
        }
    }
}

/// Match a partially ground atom against a stored row, returning the new
/// bindings needed, or `None` if it does not match.
fn match_row(atom: &Atom, row: &[Term]) -> Option<Substitution> {
    let mut extension = Substitution::new();
    for (pattern, value) in atom.terms.iter().zip(row.iter()) {
        match pattern {
            Term::Variable(v) => match extension.get(*v) {
                Some(existing) if existing != *value => return None,
                Some(_) => {}
                None => extension.bind(*v, *value),
            },
            ground => {
                if ground != value {
                    return None;
                }
            }
        }
    }
    Some(extension)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Term {
        Term::variable(n)
    }

    fn university_store() -> RelationalStore {
        let mut db = RelationalStore::new();
        db.insert_fact("teaches", &["alice", "db101"]);
        db.insert_fact("teaches", &["bob", "ai102"]);
        db.insert_fact("teaches", &["alice", "ml103"]);
        db.insert_fact("attends", &["carol", "db101"]);
        db.insert_fact("attends", &["dave", "ai102"]);
        db.insert_fact("attends", &["carol", "ml103"]);
        db.insert_fact("course", &["db101"]);
        db.insert_fact("course", &["ai102"]);
        db.insert_fact("course", &["ml103"]);
        db
    }

    #[test]
    fn single_atom_query() {
        let db = university_store();
        let q = ConjunctiveQuery::new(
            vec![Variable::new("X")],
            vec![Atom::new("teaches", vec![v("X"), v("C")])],
        );
        let answers = evaluate_cq(&db, &q);
        assert_eq!(answers.len(), 2); // alice, bob (set semantics)
        assert!(answers.contains_constants(&["alice"]));
        assert!(answers.contains_constants(&["bob"]));
    }

    #[test]
    fn join_query() {
        let db = university_store();
        // Students attending a course taught by alice.
        let q = ConjunctiveQuery::new(
            vec![Variable::new("S")],
            vec![
                Atom::new("teaches", vec![Term::constant("alice"), v("C")]),
                Atom::new("attends", vec![v("S"), v("C")]),
            ],
        );
        let answers = evaluate_cq(&db, &q);
        assert_eq!(answers.len(), 1);
        assert!(answers.contains_constants(&["carol"]));
    }

    #[test]
    fn multi_column_answers() {
        let db = university_store();
        let q = ConjunctiveQuery::new(
            vec![Variable::new("T"), Variable::new("S")],
            vec![
                Atom::new("teaches", vec![v("T"), v("C")]),
                Atom::new("attends", vec![v("S"), v("C")]),
            ],
        );
        let answers = evaluate_cq(&db, &q);
        // (alice, carol) arises from two courses but answers are a set.
        assert_eq!(answers.len(), 2);
        assert!(answers.contains_constants(&["alice", "carol"]));
        assert!(answers.contains_constants(&["bob", "dave"]));
    }

    #[test]
    fn boolean_queries() {
        let db = university_store();
        let yes = ConjunctiveQuery::boolean(vec![Atom::new(
            "teaches",
            vec![Term::constant("alice"), v("C")],
        )]);
        let no = ConjunctiveQuery::boolean(vec![Atom::new(
            "teaches",
            vec![Term::constant("zoe"), v("C")],
        )]);
        assert!(evaluate_boolean(&db, &yes));
        assert!(!evaluate_boolean(&db, &no));
    }

    #[test]
    fn query_over_missing_relation_is_empty() {
        let db = university_store();
        let q = ConjunctiveQuery::new(
            vec![Variable::new("X")],
            vec![Atom::new("enrolled", vec![v("X")])],
        );
        assert!(evaluate_cq(&db, &q).is_empty());
    }

    #[test]
    fn repeated_variable_in_query_atom() {
        let mut db = RelationalStore::new();
        db.insert_fact("edge", &["a", "b"]);
        db.insert_fact("edge", &["c", "c"]);
        let q = ConjunctiveQuery::new(
            vec![Variable::new("X")],
            vec![Atom::new("edge", vec![v("X"), v("X")])],
        );
        let answers = evaluate_cq(&db, &q);
        assert_eq!(answers.len(), 1);
        assert!(answers.contains_constants(&["c"]));
    }

    #[test]
    fn ucq_evaluation_is_the_union() {
        let db = university_store();
        let q1 = ConjunctiveQuery::new(
            vec![Variable::new("X")],
            vec![Atom::new("teaches", vec![v("X"), Term::constant("db101")])],
        );
        let q2 = ConjunctiveQuery::new(
            vec![Variable::new("X")],
            vec![Atom::new("attends", vec![v("X"), Term::constant("db101")])],
        );
        let ucq = UnionOfConjunctiveQueries::new(vec![q1, q2]);
        let answers = evaluate_ucq(&db, &ucq);
        assert_eq!(answers.len(), 2);
        assert!(answers.contains_constants(&["alice"]));
        assert!(answers.contains_constants(&["carol"]));
    }

    #[test]
    fn parallel_ucq_evaluation_matches_sequential() {
        let mut db = RelationalStore::new();
        for i in 0..40 {
            db.insert_fact(
                &format!("p{i}"),
                &[&format!("c{i}"), &format!("d{}", i % 7)],
            );
            db.insert_fact("shared", &[&format!("d{}", i % 7)]);
        }
        // 40 disjuncts (over the parallel threshold), joining each p_i with
        // the shared relation.
        let disjuncts: Vec<ConjunctiveQuery> = (0..40)
            .map(|i| {
                ConjunctiveQuery::new(
                    vec![Variable::new("X")],
                    vec![
                        Atom::new(&format!("p{i}"), vec![v("X"), v("Y")]),
                        Atom::new("shared", vec![v("Y")]),
                    ],
                )
            })
            .collect();
        let ucq = UnionOfConjunctiveQueries::new(disjuncts);
        let sequential = evaluate_ucq_with(&db, &ucq, 1);
        assert_eq!(sequential.len(), 40);
        for threads in [2, 3, 8, 64] {
            let parallel = evaluate_ucq_with(&db, &ucq, threads);
            assert_eq!(parallel, sequential, "threads={threads} changed answers");
        }
        assert_eq!(evaluate_ucq(&db, &ucq), sequential);
    }

    #[test]
    fn answers_with_nulls_can_be_filtered() {
        let mut db = RelationalStore::new();
        db.insert_atom(&Atom {
            predicate: Predicate::new("p", 1),
            terms: vec![Term::Null(Null(1))],
        });
        db.insert_fact("p", &["a"]);
        let q = ConjunctiveQuery::new(vec![Variable::new("X")], vec![Atom::new("p", vec![v("X")])]);
        let answers = evaluate_cq(&db, &q);
        assert_eq!(answers.len(), 2);
        assert_eq!(answers.without_nulls().len(), 1);
    }

    #[test]
    fn all_evaluator_configurations_agree_on_answers() {
        let db = university_store();
        let stats = crate::stats::StoreStatistics::collect(&db);
        let q = ConjunctiveQuery::new(
            vec![Variable::new("S")],
            vec![
                Atom::new("attends", vec![v("S"), v("C")]),
                Atom::new("teaches", vec![Term::constant("alice"), v("C")]),
                Atom::new("course", vec![v("C")]),
            ],
        );
        let baseline = evaluate_cq(&db, &q);
        let configs = [
            EvalConfig {
                reorder_atoms: false,
                use_indexes: false,
                ..EvalConfig::default()
            },
            EvalConfig {
                reorder_atoms: false,
                use_indexes: true,
                ..EvalConfig::default()
            },
            EvalConfig {
                reorder_atoms: true,
                use_indexes: false,
                ..EvalConfig::default()
            },
            EvalConfig {
                reorder_atoms: true,
                use_indexes: true,
                statistics: Some(&stats),
                ..EvalConfig::default()
            },
        ];
        for config in configs {
            let (answers, _) = evaluate_cq_instrumented(&db, &q, &config);
            assert_eq!(answers, baseline, "config {config:?} changed the answers");
        }
    }

    #[test]
    fn disabling_indexes_forces_full_scans() {
        let db = university_store();
        let q = ConjunctiveQuery::new(
            vec![Variable::new("S")],
            vec![
                Atom::new("teaches", vec![Term::constant("alice"), v("C")]),
                Atom::new("attends", vec![v("S"), v("C")]),
            ],
        );
        let (_, with_indexes) = evaluate_cq_instrumented(&db, &q, &EvalConfig::default());
        let (_, without_indexes) = evaluate_cq_instrumented(
            &db,
            &q,
            &EvalConfig {
                use_indexes: false,
                ..EvalConfig::default()
            },
        );
        assert!(with_indexes.index_probes > 0);
        assert_eq!(without_indexes.index_probes, 0);
        assert!(without_indexes.full_scans > 0);
        assert!(without_indexes.rows_fetched >= with_indexes.rows_fetched);
    }

    #[test]
    fn planner_reduces_fetched_rows_on_selective_queries() {
        // A selective constant on the second atom: without reordering the
        // evaluator starts from the large unselective atom.
        let mut db = RelationalStore::new();
        for i in 0..200 {
            db.insert_fact("attends", &[&format!("s{i}"), &format!("c{}", i % 20)]);
        }
        db.insert_fact("teaches", &["alice", "c3"]);
        let q = ConjunctiveQuery::new(
            vec![Variable::new("S")],
            vec![
                Atom::new("attends", vec![v("S"), v("C")]),
                Atom::new("teaches", vec![Term::constant("alice"), v("C")]),
            ],
        );
        let (planned_answers, planned) = evaluate_cq_instrumented(&db, &q, &EvalConfig::default());
        let (naive_answers, naive) = evaluate_cq_instrumented(
            &db,
            &q,
            &EvalConfig {
                reorder_atoms: false,
                ..EvalConfig::default()
            },
        );
        assert_eq!(planned_answers, naive_answers);
        assert!(
            planned.rows_fetched < naive.rows_fetched,
            "planned {planned:?} vs naive {naive:?}"
        );
    }

    #[test]
    fn statistics_driven_planning_matches_size_driven_planning_answers() {
        let db = university_store();
        let stats = crate::stats::StoreStatistics::collect(&db);
        let q = ConjunctiveQuery::new(
            vec![Variable::new("T"), Variable::new("S")],
            vec![
                Atom::new("teaches", vec![v("T"), v("C")]),
                Atom::new("attends", vec![v("S"), v("C")]),
            ],
        );
        let with_stats = evaluate_cq_instrumented(
            &db,
            &q,
            &EvalConfig {
                statistics: Some(&stats),
                ..EvalConfig::default()
            },
        )
        .0;
        assert_eq!(with_stats, evaluate_cq(&db, &q));
    }

    #[test]
    fn generic_join_strategy_matches_backtracking_on_cyclic_queries() {
        let mut db = RelationalStore::new();
        for i in 0..150u32 {
            db.insert_fact(
                "follows",
                &[&format!("u{i}"), &format!("u{}", (i * 17 + 3) % 150)],
            );
            db.insert_fact(
                "follows",
                &[&format!("u{i}"), &format!("u{}", (i + 1) % 150)],
            );
        }
        let triangle = ConjunctiveQuery::new(
            vec![Variable::new("X"), Variable::new("Y"), Variable::new("Z")],
            vec![
                Atom::new("follows", vec![v("X"), v("Y")]),
                Atom::new("follows", vec![v("Y"), v("Z")]),
                Atom::new("follows", vec![v("Z"), v("X")]),
            ],
        );
        let forced = |strategy| {
            evaluate_cq_instrumented(
                &db,
                &triangle,
                &EvalConfig {
                    strategy: Some(strategy),
                    ..EvalConfig::default()
                },
            )
            .0
        };
        let backtracking = forced(JoinStrategy::Backtracking);
        let generic = forced(JoinStrategy::GenericJoin);
        assert_eq!(generic, backtracking);
        // The auto choice goes to the generic join here (cyclic + big) and
        // must give the same answers.
        assert_eq!(
            ontorew_unify::choose_join_strategy(&triangle.body, &db),
            JoinStrategy::GenericJoin
        );
        assert_eq!(evaluate_cq(&db, &triangle), backtracking);
    }

    #[test]
    fn evaluation_agrees_with_naive_homomorphism_search() {
        // Cross-check the indexed join against the backtracking homomorphism
        // search from ontorew-unify on a small random-ish instance.
        let db = university_store();
        let inst = db.to_instance();
        let q = ConjunctiveQuery::new(
            vec![Variable::new("T")],
            vec![
                Atom::new("teaches", vec![v("T"), v("C")]),
                Atom::new("course", vec![v("C")]),
                Atom::new("attends", vec![v("S"), v("C")]),
            ],
        );
        let fast = evaluate_cq(&db, &q);
        let homs = ontorew_unify::all_homomorphisms(&q.body, &inst, &Substitution::new());
        let mut slow: BTreeSet<Vec<Term>> = BTreeSet::new();
        for h in homs {
            slow.insert(vec![h.apply_term(v("T"))]);
        }
        let fast_rows: BTreeSet<Vec<Term>> = fast.iter().cloned().collect();
        assert_eq!(fast_rows, slow);
    }
}
