//! Relation statistics used by the join planner.
//!
//! The statistics are deliberately simple — per-relation cardinalities and
//! per-column distinct counts — which is all the greedy index-nested-loop
//! planner of [`crate::eval`] needs to order atoms by estimated selectivity.
//! Collecting them is a single pass over the store; OBDA benchmarks collect
//! them once per database and reuse them across every rewritten disjunct.

use crate::database::RelationalStore;
use ontorew_model::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Per-column statistics of one relation.
#[derive(Clone, Debug, Default)]
pub struct ColumnStats {
    /// Number of distinct values in the column.
    pub distinct: usize,
}

/// Per-relation statistics.
#[derive(Clone, Debug, Default)]
pub struct RelationStats {
    /// Number of tuples.
    pub cardinality: usize,
    /// Statistics for each column.
    pub columns: Vec<ColumnStats>,
}

impl RelationStats {
    /// The estimated number of tuples matching an equality selection on
    /// `column` (cardinality / distinct, at least 1 when the relation is
    /// non-empty).
    pub fn selection_estimate(&self, column: usize) -> usize {
        if self.cardinality == 0 {
            return 0;
        }
        let distinct = self
            .columns
            .get(column)
            .map(|c| c.distinct.max(1))
            .unwrap_or(1);
        (self.cardinality / distinct).max(1)
    }
}

/// Statistics for every relation of a store.
#[derive(Clone, Debug, Default)]
pub struct StoreStatistics {
    relations: BTreeMap<Predicate, RelationStats>,
}

impl StoreStatistics {
    /// Collect statistics with a single scan of every relation.
    pub fn collect(store: &RelationalStore) -> Self {
        let mut relations = BTreeMap::new();
        for predicate in store.predicates() {
            let relation = match store.relation(predicate) {
                Some(r) => r,
                None => continue,
            };
            let mut distinct: Vec<BTreeSet<Term>> = vec![BTreeSet::new(); predicate.arity];
            let mut cardinality = 0usize;
            for row in relation.scan() {
                cardinality += 1;
                for (i, t) in row.iter().enumerate() {
                    if let Some(set) = distinct.get_mut(i) {
                        set.insert(*t);
                    }
                }
            }
            relations.insert(
                predicate,
                RelationStats {
                    cardinality,
                    columns: distinct
                        .into_iter()
                        .map(|set| ColumnStats {
                            distinct: set.len(),
                        })
                        .collect(),
                },
            );
        }
        StoreStatistics { relations }
    }

    /// Statistics for one relation, if it exists.
    pub fn relation(&self, predicate: Predicate) -> Option<&RelationStats> {
        self.relations.get(&predicate)
    }

    /// The cardinality of a relation (0 if absent).
    pub fn cardinality(&self, predicate: Predicate) -> usize {
        self.relations
            .get(&predicate)
            .map(|r| r.cardinality)
            .unwrap_or(0)
    }

    /// Estimate the number of rows of `atom`'s relation that match the
    /// atom's ground terms, assuming independent uniform columns.
    pub fn estimated_matches(&self, atom: &Atom) -> usize {
        let stats = match self.relations.get(&atom.predicate) {
            Some(s) => s,
            None => return 0,
        };
        let mut estimate = stats.cardinality as f64;
        if estimate == 0.0 {
            return 0;
        }
        for (i, term) in atom.terms.iter().enumerate() {
            if term.is_ground() {
                let distinct = stats.columns.get(i).map(|c| c.distinct.max(1)).unwrap_or(1) as f64;
                estimate /= distinct;
            }
        }
        estimate.max(1.0) as usize
    }

    /// Number of relations covered by the statistics.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if no relation has statistics.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> RelationalStore {
        let mut db = RelationalStore::new();
        db.insert_fact("teaches", &["alice", "db101"]);
        db.insert_fact("teaches", &["alice", "ml103"]);
        db.insert_fact("teaches", &["bob", "ai102"]);
        db.insert_fact("course", &["db101"]);
        db.insert_fact("course", &["ai102"]);
        db.insert_fact("course", &["ml103"]);
        db
    }

    #[test]
    fn cardinalities_and_distinct_counts() {
        let stats = StoreStatistics::collect(&store());
        assert_eq!(stats.len(), 2);
        let teaches = stats.relation(Predicate::new("teaches", 2)).unwrap();
        assert_eq!(teaches.cardinality, 3);
        assert_eq!(teaches.columns[0].distinct, 2); // alice, bob
        assert_eq!(teaches.columns[1].distinct, 3);
        assert_eq!(stats.cardinality(Predicate::new("course", 1)), 3);
        assert_eq!(stats.cardinality(Predicate::new("missing", 1)), 0);
    }

    #[test]
    fn selection_estimates_divide_by_distinct_values() {
        let stats = StoreStatistics::collect(&store());
        let teaches = stats.relation(Predicate::new("teaches", 2)).unwrap();
        // 3 tuples / 2 distinct teachers = 1 (integer floor, min 1).
        assert_eq!(teaches.selection_estimate(0), 1);
        assert_eq!(teaches.selection_estimate(1), 1);
    }

    #[test]
    fn estimated_matches_accounts_for_ground_terms() {
        let stats = StoreStatistics::collect(&store());
        let unbound = Atom::new("teaches", vec![Term::variable("X"), Term::variable("Y")]);
        let bound = Atom::new(
            "teaches",
            vec![Term::constant("alice"), Term::variable("Y")],
        );
        assert_eq!(stats.estimated_matches(&unbound), 3);
        assert!(stats.estimated_matches(&bound) <= stats.estimated_matches(&unbound));
        let missing = Atom::new("nope", vec![Term::variable("X")]);
        assert_eq!(stats.estimated_matches(&missing), 0);
    }

    #[test]
    fn empty_store_has_empty_statistics() {
        let stats = StoreStatistics::collect(&RelationalStore::new());
        assert!(stats.is_empty());
    }
}
