//! A single stored relation with per-column hash indexes.

use ontorew_model::instance::{Candidates, IndexedRelation};
use ontorew_model::prelude::*;

/// A stored relation: the extension of one predicate.
///
/// A thin wrapper around the segmented, copy-on-write [`IndexedRelation`]
/// machinery shared with [`Instance`]: tuples live in `Arc`-shared frozen
/// segments plus a mutable tail, kept in insertion order within each segment
/// (so scans are cache friendly), deduplicated through tuple interning, and
/// every column maintains an eager hash index from term to row ids per
/// segment. Because the indexes are always current, lookups need only shared
/// access — the query evaluator probes them without building per-query
/// caches — and [`Relation::freeze`] makes `clone()` share all frozen rows
/// by reference, which is what lets an epoch store publish snapshots in
/// O(batch).
#[derive(Clone, Debug)]
pub struct Relation {
    predicate: Predicate,
    data: IndexedRelation,
}

impl Relation {
    /// An empty relation for `predicate`.
    pub fn new(predicate: Predicate) -> Self {
        Relation {
            predicate,
            data: IndexedRelation::with_arity(predicate.arity),
        }
    }

    /// Wrap an already-built [`IndexedRelation`] (e.g. one cloned out of an
    /// [`Instance`]). A clone of a *frozen* `IndexedRelation` shares all
    /// segments by reference, so this is how a store is derived from a
    /// chased instance in O(#segments) without duplicating any rows.
    ///
    /// # Panics
    /// Panics if the data's arity does not match the predicate.
    pub fn from_indexed(predicate: Predicate, data: IndexedRelation) -> Self {
        assert_eq!(
            data.arity(),
            predicate.arity,
            "relation arity mismatch for {predicate}"
        );
        Relation { predicate, data }
    }

    /// The predicate this relation stores.
    pub fn predicate(&self) -> Predicate {
        self.predicate
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Insert a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple arity does not match the predicate, or if the
    /// tuple contains a variable.
    pub fn insert(&mut self, tuple: Vec<Term>) -> bool {
        assert_eq!(
            tuple.len(),
            self.predicate.arity,
            "tuple arity mismatch for {}",
            self.predicate
        );
        assert!(
            tuple.iter().all(Term::is_ground),
            "cannot store a tuple containing variables"
        );
        self.data.insert(tuple)
    }

    /// True if the relation contains the tuple.
    pub fn contains(&self, tuple: &[Term]) -> bool {
        self.data.contains(tuple)
    }

    /// Remove a tuple; returns `true` if it was present. Segments are
    /// immutable, so a hit rebuilds this relation from its retained rows
    /// (O(rows)); a miss costs one membership probe. Other relations of the
    /// store keep sharing their segments, so a retraction epoch costs
    /// O(affected relations), not O(store).
    pub fn remove(&mut self, tuple: &[Term]) -> bool {
        self.data.remove_row(tuple)
    }

    /// Publish the mutable tail as a frozen, `Arc`-shared segment (see
    /// [`IndexedRelation::freeze`]); afterwards `clone()` costs O(#segments)
    /// until the next insert.
    pub fn freeze(&mut self) {
        self.data.freeze();
    }

    /// Number of segments backing the relation (tests and diagnostics).
    pub fn segment_count(&self) -> usize {
        self.data.segment_count()
    }

    /// True if `self` and `other` share all frozen segments by reference.
    pub fn shares_segments_with(&self, other: &Relation) -> bool {
        self.data.shares_segments_with(&other.data)
    }

    /// Iterate over all tuples, oldest segment first (insertion order is
    /// preserved across freezes).
    pub fn scan(&self) -> impl Iterator<Item = &Vec<Term>> {
        self.data.rows()
    }

    /// Number of tuples whose column `col` equals `value`.
    pub fn lookup_count(&self, col: usize, value: Term) -> usize {
        assert!(col < self.predicate.arity, "column out of range");
        self.data.postings_len(col, &value)
    }

    /// The tuples that can match `pattern` (a tuple of ground terms and
    /// variables): probes the posting list of the most selective ground
    /// column per segment, or falls back to a scan when no column is ground.
    /// The iterator borrows `pattern` (later segments are probed lazily).
    pub fn candidates<'a>(&'a self, pattern: &'a [Term]) -> Candidates<'a> {
        self.data.candidates(pattern)
    }

    /// A full scan presented as a [`Candidates`] iterator (the evaluator's
    /// index-ablation path).
    pub fn scan_candidates(&self) -> Candidates<'_> {
        self.data.scan_candidates()
    }

    /// The backing [`IndexedRelation`] — the generic-join evaluator works
    /// directly over its segment indexes.
    pub fn indexed(&self) -> &IndexedRelation {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: &str) -> Term {
        Term::constant(n)
    }

    fn sample() -> Relation {
        let mut r = Relation::new(Predicate::new("teaches", 2));
        r.insert(vec![c("alice"), c("db101")]);
        r.insert(vec![c("bob"), c("ai102")]);
        r.insert(vec![c("alice"), c("ml103")]);
        r
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = sample();
        assert_eq!(r.len(), 3);
        assert!(!r.insert(vec![c("alice"), c("db101")]));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn contains_and_scan() {
        let r = sample();
        assert!(r.contains(&[c("bob"), c("ai102")]));
        assert!(!r.contains(&[c("bob"), c("db101")]));
        assert_eq!(r.scan().count(), 3);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_is_enforced() {
        let mut r = Relation::new(Predicate::new("r", 2));
        r.insert(vec![c("a")]);
    }

    #[test]
    #[should_panic(expected = "containing variables")]
    fn variables_are_rejected() {
        let mut r = Relation::new(Predicate::new("r", 1));
        r.insert(vec![Term::variable("X")]);
    }

    #[test]
    fn remove_drops_the_tuple_and_keeps_indexes_fresh() {
        let mut r = sample();
        r.freeze();
        assert!(r.remove(&[c("alice"), c("db101")]));
        assert!(!r.remove(&[c("alice"), c("db101")]));
        assert_eq!(r.len(), 2);
        assert!(!r.contains(&[c("alice"), c("db101")]));
        assert_eq!(r.lookup_count(0, c("alice")), 1);
        // Reinsertion after removal is a fresh insert.
        assert!(r.insert(vec![c("alice"), c("db101")]));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn lookup_stays_correct_after_inserts() {
        let mut r = sample();
        assert_eq!(r.lookup_count(0, c("alice")), 2);
        // Insert after lookups; the eager index must be maintained.
        r.insert(vec![c("alice"), c("pl104")]);
        assert_eq!(r.lookup_count(0, c("alice")), 3);
        assert_eq!(r.lookup_count(0, c("zoe")), 0);
    }

    #[test]
    fn lookup_agrees_with_scan() {
        let r = sample();
        let scanned = r.scan().filter(|row| row[1] == c("ai102")).count();
        assert_eq!(scanned, r.lookup_count(1, c("ai102")));
    }

    #[test]
    fn candidates_pick_the_most_selective_column() {
        let r = sample();
        // alice appears twice in column 0, db101 once in column 1.
        let pattern = vec![c("alice"), c("db101")];
        assert_eq!(r.candidates(&pattern).count(), 1);
        let pattern = vec![c("alice"), Term::variable("C")];
        assert_eq!(r.candidates(&pattern).count(), 2);
        let pattern = vec![Term::variable("T"), Term::variable("C")];
        assert_eq!(r.candidates(&pattern).count(), 3);
    }

    #[test]
    fn frozen_relations_share_segments_and_keep_answering() {
        let mut r = sample();
        r.freeze();
        let copy = r.clone();
        assert!(copy.shares_segments_with(&r));
        assert_eq!(copy.scan().count(), 3);
        assert_eq!(copy.lookup_count(0, c("alice")), 2);
        // Growth after the freeze stays private to the clone.
        let mut grown = copy.clone();
        grown.insert(vec![c("zoe"), c("db101")]);
        assert_eq!(grown.len(), 4);
        assert_eq!(r.len(), 3);
        assert_eq!(
            grown.candidates(&[Term::variable("T"), c("db101")]).count(),
            2
        );
        assert_eq!(r.candidates(&[Term::variable("T"), c("db101")]).count(), 1);
    }
}
