//! A single stored relation with per-column hash indexes.

use ontorew_model::instance::{Candidates, IndexedRelation};
use ontorew_model::prelude::*;

/// A stored relation: the extension of one predicate.
///
/// A thin wrapper around the [`IndexedRelation`] machinery shared with
/// [`Instance`]: tuples are kept in insertion order in a dense `Vec` (so
/// scans are cache friendly), deduplicated through a hash set, and every
/// column maintains an eager hash index from term to row ids. Because the
/// indexes are always current, lookups need only shared access — the query
/// evaluator probes them without building per-query caches.
#[derive(Clone, Debug)]
pub struct Relation {
    predicate: Predicate,
    data: IndexedRelation,
}

impl Relation {
    /// An empty relation for `predicate`.
    pub fn new(predicate: Predicate) -> Self {
        Relation {
            predicate,
            data: IndexedRelation::with_arity(predicate.arity),
        }
    }

    /// The predicate this relation stores.
    pub fn predicate(&self) -> Predicate {
        self.predicate
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Insert a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple arity does not match the predicate, or if the
    /// tuple contains a variable.
    pub fn insert(&mut self, tuple: Vec<Term>) -> bool {
        assert_eq!(
            tuple.len(),
            self.predicate.arity,
            "tuple arity mismatch for {}",
            self.predicate
        );
        assert!(
            tuple.iter().all(Term::is_ground),
            "cannot store a tuple containing variables"
        );
        self.data.insert(tuple)
    }

    /// True if the relation contains the tuple.
    pub fn contains(&self, tuple: &[Term]) -> bool {
        self.data.contains(tuple)
    }

    /// Iterate over all tuples in insertion order.
    pub fn scan(&self) -> impl Iterator<Item = &Vec<Term>> {
        self.data.rows().iter()
    }

    /// All tuples in insertion order, as a dense slice.
    pub fn rows(&self) -> &[Vec<Term>] {
        self.data.rows()
    }

    /// The tuple stored at `row_id`.
    pub fn row(&self, row_id: usize) -> &Vec<Term> {
        &self.data.rows()[row_id]
    }

    /// Row ids of tuples whose column `col` equals `value`.
    pub fn lookup(&self, col: usize, value: Term) -> &[u32] {
        assert!(col < self.predicate.arity, "column out of range");
        self.data.postings(col, &value)
    }

    /// The tuples that can match `pattern` (a tuple of ground terms and
    /// variables): probes the posting list of the most selective ground
    /// column, or falls back to a full scan when no column is ground.
    pub fn candidates(&self, pattern: &[Term]) -> Candidates<'_> {
        self.data.candidates(pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: &str) -> Term {
        Term::constant(n)
    }

    fn sample() -> Relation {
        let mut r = Relation::new(Predicate::new("teaches", 2));
        r.insert(vec![c("alice"), c("db101")]);
        r.insert(vec![c("bob"), c("ai102")]);
        r.insert(vec![c("alice"), c("ml103")]);
        r
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = sample();
        assert_eq!(r.len(), 3);
        assert!(!r.insert(vec![c("alice"), c("db101")]));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn contains_and_scan() {
        let r = sample();
        assert!(r.contains(&[c("bob"), c("ai102")]));
        assert!(!r.contains(&[c("bob"), c("db101")]));
        assert_eq!(r.scan().count(), 3);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_is_enforced() {
        let mut r = Relation::new(Predicate::new("r", 2));
        r.insert(vec![c("a")]);
    }

    #[test]
    #[should_panic(expected = "containing variables")]
    fn variables_are_rejected() {
        let mut r = Relation::new(Predicate::new("r", 1));
        r.insert(vec![Term::variable("X")]);
    }

    #[test]
    fn lookup_stays_correct_after_inserts() {
        let mut r = sample();
        assert_eq!(r.lookup(0, c("alice")).len(), 2);
        // Insert after lookups; the eager index must be maintained.
        r.insert(vec![c("alice"), c("pl104")]);
        assert_eq!(r.lookup(0, c("alice")).len(), 3);
        assert_eq!(r.lookup(0, c("zoe")).len(), 0);
    }

    #[test]
    fn lookup_agrees_with_scan() {
        let r = sample();
        let scanned: Vec<usize> = r
            .scan()
            .enumerate()
            .filter(|(_, row)| row[1] == c("ai102"))
            .map(|(i, _)| i)
            .collect();
        let indexed: Vec<usize> = r
            .lookup(1, c("ai102"))
            .iter()
            .map(|&id| id as usize)
            .collect();
        assert_eq!(scanned, indexed);
    }

    #[test]
    fn candidates_pick_the_most_selective_column() {
        let r = sample();
        // alice appears twice in column 0, db101 once in column 1.
        let pattern = vec![c("alice"), c("db101")];
        assert_eq!(r.candidates(&pattern).count(), 1);
        let pattern = vec![c("alice"), Term::variable("C")];
        assert_eq!(r.candidates(&pattern).count(), 2);
        let pattern = vec![Term::variable("T"), Term::variable("C")];
        assert_eq!(r.candidates(&pattern).count(), 3);
    }
}
