//! A single stored relation with per-column hash indexes.

use crate::tuple::{encode_tuple, EncodedTuple};
use ontorew_model::prelude::*;
use std::collections::{HashMap, HashSet};

/// A stored relation: the extension of one predicate.
///
/// Tuples are kept in insertion order in a dense `Vec` (so scans are cache
/// friendly), deduplicated through a hash set of [`EncodedTuple`]s, and
/// indexed per column on demand: the first lookup on a column builds a hash
/// index from term to row ids, which subsequent lookups reuse.
#[derive(Clone, Debug)]
pub struct Relation {
    predicate: Predicate,
    rows: Vec<Vec<Term>>,
    dedup: HashSet<EncodedTuple>,
    /// Lazily built per-column indexes: `indexes[col][term] -> row ids`.
    indexes: Vec<Option<HashMap<Term, Vec<usize>>>>,
}

impl Relation {
    /// An empty relation for `predicate`.
    pub fn new(predicate: Predicate) -> Self {
        Relation {
            predicate,
            rows: Vec::new(),
            dedup: HashSet::new(),
            indexes: vec![None; predicate.arity],
        }
    }

    /// The predicate this relation stores.
    pub fn predicate(&self) -> Predicate {
        self.predicate
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple arity does not match the predicate, or if the
    /// tuple contains a variable.
    pub fn insert(&mut self, tuple: Vec<Term>) -> bool {
        assert_eq!(
            tuple.len(),
            self.predicate.arity,
            "tuple arity mismatch for {}",
            self.predicate
        );
        assert!(
            tuple.iter().all(Term::is_ground),
            "cannot store a tuple containing variables"
        );
        let encoded = encode_tuple(&tuple);
        if !self.dedup.insert(encoded) {
            return false;
        }
        let row_id = self.rows.len();
        for (col, term) in tuple.iter().enumerate() {
            if let Some(index) = &mut self.indexes[col] {
                index.entry(*term).or_default().push(row_id);
            }
        }
        self.rows.push(tuple);
        true
    }

    /// True if the relation contains the tuple.
    pub fn contains(&self, tuple: &[Term]) -> bool {
        self.dedup.contains(&encode_tuple(tuple))
    }

    /// Iterate over all tuples in insertion order.
    pub fn scan(&self) -> impl Iterator<Item = &Vec<Term>> {
        self.rows.iter()
    }

    /// The tuple stored at `row_id`.
    pub fn row(&self, row_id: usize) -> &Vec<Term> {
        &self.rows[row_id]
    }

    /// Row ids of tuples whose column `col` equals `value`, building the
    /// column index on first use.
    pub fn lookup(&mut self, col: usize, value: Term) -> &[usize] {
        assert!(col < self.predicate.arity, "column out of range");
        if self.indexes[col].is_none() {
            let mut index: HashMap<Term, Vec<usize>> = HashMap::new();
            for (row_id, row) in self.rows.iter().enumerate() {
                index.entry(row[col]).or_default().push(row_id);
            }
            self.indexes[col] = Some(index);
        }
        self.indexes[col]
            .as_ref()
            .expect("index was just built")
            .get(&value)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Like [`Relation::lookup`] but without building an index (pure scan);
    /// used when the relation is borrowed immutably.
    pub fn lookup_scan(&self, col: usize, value: Term) -> Vec<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| row[col] == value)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of columns that currently have a materialised index.
    pub fn indexed_columns(&self) -> usize {
        self.indexes.iter().filter(|i| i.is_some()).count()
    }

    /// Eagerly build the index on column `col`.
    pub fn build_index(&mut self, col: usize) {
        let _ = self.lookup(col, Term::constant("__index_warmup__"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: &str) -> Term {
        Term::constant(n)
    }

    fn sample() -> Relation {
        let mut r = Relation::new(Predicate::new("teaches", 2));
        r.insert(vec![c("alice"), c("db101")]);
        r.insert(vec![c("bob"), c("ai102")]);
        r.insert(vec![c("alice"), c("ml103")]);
        r
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = sample();
        assert_eq!(r.len(), 3);
        assert!(!r.insert(vec![c("alice"), c("db101")]));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn contains_and_scan() {
        let r = sample();
        assert!(r.contains(&[c("bob"), c("ai102")]));
        assert!(!r.contains(&[c("bob"), c("db101")]));
        assert_eq!(r.scan().count(), 3);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_is_enforced() {
        let mut r = Relation::new(Predicate::new("r", 2));
        r.insert(vec![c("a")]);
    }

    #[test]
    #[should_panic(expected = "containing variables")]
    fn variables_are_rejected() {
        let mut r = Relation::new(Predicate::new("r", 1));
        r.insert(vec![Term::variable("X")]);
    }

    #[test]
    fn lookup_builds_index_lazily_and_stays_correct_after_inserts() {
        let mut r = sample();
        assert_eq!(r.indexed_columns(), 0);
        let rows = r.lookup(0, c("alice")).to_vec();
        assert_eq!(rows.len(), 2);
        assert_eq!(r.indexed_columns(), 1);
        // Insert after the index is built; the index must be maintained.
        r.insert(vec![c("alice"), c("pl104")]);
        assert_eq!(r.lookup(0, c("alice")).len(), 3);
        assert_eq!(r.lookup(0, c("zoe")).len(), 0);
    }

    #[test]
    fn lookup_scan_matches_lookup() {
        let mut r = sample();
        let scan = r.lookup_scan(1, c("ai102"));
        let indexed = r.lookup(1, c("ai102")).to_vec();
        assert_eq!(scan, indexed);
    }

    #[test]
    fn build_index_is_idempotent() {
        let mut r = sample();
        r.build_index(0);
        r.build_index(0);
        assert_eq!(r.indexed_columns(), 1);
    }
}
