//! A measured cost model for join-strategy selection.
//!
//! [`estimate_join_cost`] simulates both join engines over the statistics of
//! [`crate::stats::StoreStatistics`] — per-relation cardinalities and
//! per-column distinct counts, under the textbook uniformity/independence
//! assumptions — and returns the estimated work (rows touched) of each:
//!
//! * **backtracking** replays the greedy atom order of [`crate::eval`]
//!   (bound variables first, then ground terms, then smallest estimate) and
//!   charges, per atom, the rows fetched through the most selective bound
//!   column for every row of the growing intermediate result — so cyclic
//!   bodies over skewed data show their intermediate blowup in the estimate;
//! * **generic join** replays the variable-at-a-time engine of
//!   `ontorew_unify::generic_join`: per variable, the cheapest supporting
//!   atom's candidate list is enumerated and every other support charges one
//!   existence probe per candidate, so the per-variable work is proportional
//!   to the smallest list — the worst-case-optimality property, visible in
//!   the estimate as well.
//!
//! The model replaces the raw `choose_join_strategy` size threshold wherever
//! statistics are available (the plan layer collects and caches them per
//! data version), and its per-strategy numbers are surfaced through
//! `EXPLAIN` together with the actual answer cardinality, so misestimates
//! are observable rather than silent.

use crate::stats::StoreStatistics;
use ontorew_model::prelude::*;
use ontorew_unify::{is_cyclic, JoinStrategy};
use std::collections::BTreeSet;

/// Fixed bookkeeping charge of a generic-join evaluation (pattern states,
/// variable ordering): keeps tiny inputs on the backtracking engine, like
/// `GENERIC_JOIN_MIN_FACTS` does for the statistics-free chooser.
const GENERIC_JOIN_SETUP_COST: f64 = 64.0;

/// The estimated work of evaluating one conjunctive body under each join
/// strategy, in abstract row-touch units, plus the estimated number of
/// satisfying assignments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinCost {
    /// Estimated rows touched by the atom-at-a-time backtracking join.
    pub backtracking: f64,
    /// Estimated rows touched by the variable-at-a-time generic join;
    /// infinite for acyclic bodies, where the generic join is never chosen
    /// (the backtracking bound-first order serves them as well or better).
    pub generic_join: f64,
    /// Estimated number of satisfying assignments of the body.
    pub estimated_rows: f64,
}

impl JoinCost {
    /// The strategy the model prefers: the cheaper simulated engine.
    pub fn strategy(&self) -> JoinStrategy {
        if self.generic_join < self.backtracking {
            JoinStrategy::GenericJoin
        } else {
            JoinStrategy::Backtracking
        }
    }

    /// The cost of the preferred strategy.
    pub fn cheapest(&self) -> f64 {
        self.backtracking.min(self.generic_join)
    }
}

/// Estimate the cost of joining `atoms` under both strategies.
pub fn estimate_join_cost(statistics: &StoreStatistics, atoms: &[Atom]) -> JoinCost {
    let (backtracking, estimated_rows) = backtracking_cost(statistics, atoms);
    let generic_join = if is_cyclic(atoms) {
        generic_join_cost(statistics, atoms)
    } else {
        f64::INFINITY
    };
    JoinCost {
        backtracking,
        generic_join,
        estimated_rows,
    }
}

/// The distinct count of `column` in `atom`'s relation (1 when unknown, so
/// divisions are no-ops rather than infinities).
fn distinct(statistics: &StoreStatistics, atom: &Atom, column: usize) -> f64 {
    statistics
        .relation(atom.predicate)
        .and_then(|r| r.columns.get(column))
        .map(|c| c.distinct.max(1))
        .unwrap_or(1) as f64
}

/// Simulate the greedy index-nested-loop join: returns (cost, estimated
/// satisfying assignments).
fn backtracking_cost(statistics: &StoreStatistics, atoms: &[Atom]) -> (f64, f64) {
    let mut remaining: Vec<&Atom> = atoms.iter().collect();
    let mut bound: BTreeSet<Variable> = BTreeSet::new();
    let mut prefix = 1.0f64;
    let mut cost = 0.0f64;
    while !remaining.is_empty() {
        // Mirror `eval::plan_order`: most already-bound variables, then most
        // ground terms, then the smallest match estimate.
        let (best, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let bound_vars = a
                    .variable_set()
                    .iter()
                    .filter(|v| bound.contains(v))
                    .count() as i64;
                let ground = a.terms.iter().filter(|t| t.is_ground()).count() as i64;
                let size = statistics.estimated_matches(a) as i64;
                (
                    i,
                    bound_vars * 1_000_000 + ground * 10_000 - size.min(9_999),
                )
            })
            .max_by_key(|(_, score)| *score)
            .expect("remaining is non-empty");
        let atom = remaining.remove(best);
        let cardinality = statistics.cardinality(atom.predicate) as f64;
        if cardinality == 0.0 {
            // Missing relation: the join dies after touching the prefix.
            return (cost + prefix.max(1.0), 0.0);
        }
        // Rows fetched per intermediate row: the evaluator probes the most
        // selective constrained column's hash index; rows that survive all
        // constrained columns extend the intermediate result.
        let mut fetched = cardinality;
        let mut matches = cardinality;
        for (i, term) in atom.terms.iter().enumerate() {
            let constrained = match term {
                Term::Variable(v) => bound.contains(v),
                ground => ground.is_ground(),
            };
            if constrained {
                let d = distinct(statistics, atom, i);
                fetched = fetched.min(cardinality / d);
                matches /= d;
            }
        }
        cost += prefix * fetched.max(1.0);
        prefix *= matches;
        bound.extend(atom.variable_set());
    }
    (cost, prefix)
}

/// Simulate the variable-at-a-time generic join: greedy selectivity order,
/// cheapest-support enumeration, one probe per candidate for every other
/// support.
fn generic_join_cost(statistics: &StoreStatistics, atoms: &[Atom]) -> f64 {
    let mut unresolved: Vec<Variable> = Vec::new();
    for atom in atoms {
        for term in &atom.terms {
            if let Term::Variable(v) = term {
                if !unresolved.contains(v) {
                    unresolved.push(*v);
                }
            }
        }
    }
    let mut resolved: BTreeSet<Variable> = BTreeSet::new();
    let mut prefix = 1.0f64;
    let mut cost = GENERIC_JOIN_SETUP_COST;
    while !unresolved.is_empty() {
        // Per unresolved variable: the expected candidate-list length each
        // supporting atom offers under the current (estimated) bindings.
        let estimates = |v: Variable| -> (Vec<f64>, f64, bool) {
            let mut ests: Vec<f64> = Vec::new();
            let mut domain = 1.0f64;
            let mut connected = false;
            for atom in atoms {
                let col = match atom
                    .terms
                    .iter()
                    .position(|t| matches!(t, Term::Variable(u) if *u == v))
                {
                    Some(c) => c,
                    None => continue,
                };
                let cardinality = statistics.cardinality(atom.predicate) as f64;
                if cardinality == 0.0 {
                    ests.push(0.0);
                    continue;
                }
                // Rows of the atom surviving the already-resolved columns…
                let mut matches = cardinality;
                for (i, term) in atom.terms.iter().enumerate() {
                    let constrained = match term {
                        Term::Variable(u) => resolved.contains(u),
                        ground => ground.is_ground(),
                    };
                    if constrained {
                        matches /= distinct(statistics, atom, i);
                        connected = true;
                    }
                }
                // …cap the distinct values of v's column among them.
                let d = distinct(statistics, atom, col);
                domain = domain.max(d);
                ests.push(d.min(matches.max(0.0)));
            }
            ests.sort_by(|a, b| a.partial_cmp(b).expect("estimates are finite"));
            (ests, domain, connected)
        };
        // Greedy order mirroring `order_variables`: connected variables
        // first, then the smallest cheapest-support estimate.
        let (vi, _) = unresolved
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let (ea, _, ca) = estimates(**a);
                let (eb, _, cb) = estimates(**b);
                (u8::from(!ca), ea.first().copied().unwrap_or(0.0))
                    .partial_cmp(&(u8::from(!cb), eb.first().copied().unwrap_or(0.0)))
                    .expect("estimates are finite")
            })
            .expect("unresolved is non-empty");
        let v = unresolved.remove(vi);
        let (ests, domain, _) = estimates(v);
        let candidates = ests.first().copied().unwrap_or(0.0);
        // Enumerate the cheapest list, probe it through every other support;
        // survivors are the candidates thinned by each other support's
        // chance of containing the value.
        let probes = candidates * ests.len().saturating_sub(1) as f64;
        cost += prefix * (candidates + probes).max(1.0);
        let mut survivors = candidates;
        for est in ests.iter().skip(1) {
            survivors *= (est / domain).min(1.0);
        }
        prefix *= survivors;
        resolved.insert(v);
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::RelationalStore;

    fn v(n: &str) -> Term {
        Term::variable(n)
    }

    /// A follower graph where a few hubs concentrate the in-degree: the
    /// shape where atom-at-a-time joins enumerate a quadratic number of
    /// two-paths while the generic join stays near-linear.
    fn hub_store(users: usize, hubs: usize) -> RelationalStore {
        let mut db = RelationalStore::new();
        for u in 0..users {
            for h in 0..hubs {
                db.insert_fact("follows", &[&format!("u{u}"), &format!("h{h}")]);
            }
        }
        for a in 0..hubs {
            for b in 0..hubs {
                if a != b {
                    db.insert_fact("follows", &[&format!("h{a}"), &format!("h{b}")]);
                }
            }
        }
        db
    }

    fn triangle() -> Vec<Atom> {
        vec![
            Atom::new("follows", vec![v("X"), v("Y")]),
            Atom::new("follows", vec![v("Y"), v("Z")]),
            Atom::new("follows", vec![v("Z"), v("X")]),
        ]
    }

    #[test]
    fn cyclic_bodies_over_skewed_data_prefer_the_generic_join() {
        let db = hub_store(400, 8);
        let stats = StoreStatistics::collect(&db);
        let cost = estimate_join_cost(&stats, &triangle());
        assert!(cost.generic_join.is_finite());
        assert!(
            cost.generic_join < cost.backtracking,
            "generic {} vs backtracking {}",
            cost.generic_join,
            cost.backtracking
        );
        assert_eq!(cost.strategy(), JoinStrategy::GenericJoin);
        assert!(cost.estimated_rows > 0.0);
    }

    #[test]
    fn acyclic_bodies_always_cost_out_to_backtracking() {
        let db = hub_store(100, 4);
        let stats = StoreStatistics::collect(&db);
        let path = vec![
            Atom::new("follows", vec![v("X"), v("Y")]),
            Atom::new("follows", vec![v("Y"), v("Z")]),
        ];
        let cost = estimate_join_cost(&stats, &path);
        assert!(cost.generic_join.is_infinite());
        assert_eq!(cost.strategy(), JoinStrategy::Backtracking);
        assert_eq!(cost.cheapest(), cost.backtracking);
    }

    #[test]
    fn tiny_cyclic_inputs_stay_on_backtracking() {
        let mut db = RelationalStore::new();
        db.insert_fact("follows", &["a", "b"]);
        db.insert_fact("follows", &["b", "c"]);
        db.insert_fact("follows", &["c", "a"]);
        let stats = StoreStatistics::collect(&db);
        let cost = estimate_join_cost(&stats, &triangle());
        // The setup charge dominates three facts.
        assert_eq!(cost.strategy(), JoinStrategy::Backtracking);
    }

    #[test]
    fn missing_relations_estimate_zero_rows() {
        let stats = StoreStatistics::collect(&RelationalStore::new());
        let cost = estimate_join_cost(&stats, &triangle());
        assert_eq!(cost.estimated_rows, 0.0);
        assert!(cost.backtracking >= 1.0);
    }

    #[test]
    fn selective_constants_shrink_the_estimate() {
        let db = hub_store(200, 6);
        let stats = StoreStatistics::collect(&db);
        let open = vec![Atom::new("follows", vec![v("X"), v("Y")])];
        let pinned = vec![Atom::new("follows", vec![Term::constant("u0"), v("Y")])];
        let open_cost = estimate_join_cost(&stats, &open);
        let pinned_cost = estimate_join_cost(&stats, &pinned);
        assert!(pinned_cost.estimated_rows < open_cost.estimated_rows);
        assert!(pinned_cost.backtracking < open_cost.backtracking);
    }
}
