//! Rendering conjunctive queries and UCQs as SQL.
//!
//! FO-rewritability (Definition 1 of the paper) matters in practice because
//! the rewriting of a query can be handed to a standard relational DBMS as a
//! SQL query. This module renders a CQ as a `SELECT ... FROM ... WHERE ...`
//! block and a UCQ as the `UNION` of its disjuncts, using positional column
//! names `c0, c1, ...` for the relations of the extensional store.

use ontorew_model::prelude::*;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Render a conjunctive query as a SQL `SELECT` statement.
///
/// Each body atom becomes an aliased table reference (`r AS t0`), join
/// conditions equate columns bound to the same variable, constants become
/// equality filters, and the answer variables become the projection list.
/// Boolean queries project the constant `1`.
pub fn cq_to_sql(query: &ConjunctiveQuery) -> String {
    let mut from = Vec::new();
    let mut conditions = Vec::new();
    // For each variable, the list of "t<i>.c<j>" column references bound to it.
    let mut columns_of_var: HashMap<Variable, Vec<String>> = HashMap::new();

    for (i, atom) in query.body.iter().enumerate() {
        let alias = format!("t{i}");
        from.push(format!("{} AS {alias}", atom.predicate.name));
        for (j, term) in atom.terms.iter().enumerate() {
            let column = format!("{alias}.c{j}");
            match term {
                Term::Variable(v) => columns_of_var.entry(*v).or_default().push(column),
                Term::Constant(c) => {
                    conditions.push(format!("{column} = '{}'", c.name()));
                }
                Term::Null(n) => {
                    conditions.push(format!("{column} = '_:n{}'", n.id()));
                }
            }
        }
    }

    // Join conditions: every column of a variable equals the first column.
    for columns in columns_of_var.values() {
        for other in &columns[1..] {
            conditions.push(format!("{} = {}", columns[0], other));
        }
    }

    let projection = if query.answer_vars.is_empty() {
        "1".to_owned()
    } else {
        query
            .answer_vars
            .iter()
            .map(|v| {
                let column = columns_of_var
                    .get(v)
                    .and_then(|cols| cols.first())
                    .cloned()
                    .unwrap_or_else(|| "NULL".to_owned());
                format!("{column} AS {}", v.name())
            })
            .collect::<Vec<_>>()
            .join(", ")
    };

    let mut sql = String::new();
    write!(sql, "SELECT DISTINCT {projection} FROM {}", from.join(", ")).unwrap();
    if !conditions.is_empty() {
        write!(sql, " WHERE {}", conditions.join(" AND ")).unwrap();
    }
    sql
}

/// Render a UCQ as the `UNION` of the SQL renderings of its disjuncts.
pub fn ucq_to_sql(ucq: &UnionOfConjunctiveQueries) -> String {
    ucq.disjuncts
        .iter()
        .map(cq_to_sql)
        .collect::<Vec<_>>()
        .join("\nUNION\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Term {
        Term::variable(n)
    }

    #[test]
    fn single_atom_select() {
        let q = ConjunctiveQuery::new(
            vec![Variable::new("X")],
            vec![Atom::new("teaches", vec![v("X"), v("Y")])],
        );
        let sql = cq_to_sql(&q);
        assert!(sql.starts_with("SELECT DISTINCT t0.c0 AS X FROM teaches AS t0"));
        assert!(!sql.contains("WHERE"));
    }

    #[test]
    fn join_conditions_are_emitted() {
        let q = ConjunctiveQuery::new(
            vec![Variable::new("S")],
            vec![
                Atom::new("teaches", vec![v("T"), v("C")]),
                Atom::new("attends", vec![v("S"), v("C")]),
            ],
        );
        let sql = cq_to_sql(&q);
        assert!(sql.contains("FROM teaches AS t0, attends AS t1"));
        assert!(sql.contains("t0.c1 = t1.c1"));
    }

    #[test]
    fn constants_become_filters() {
        let q = ConjunctiveQuery::boolean(vec![Atom::new("r", vec![Term::constant("a"), v("X")])]);
        let sql = cq_to_sql(&q);
        assert!(sql.contains("SELECT DISTINCT 1"));
        assert!(sql.contains("t0.c0 = 'a'"));
    }

    #[test]
    fn repeated_variables_become_self_joins() {
        let q = ConjunctiveQuery::boolean(vec![Atom::new("edge", vec![v("X"), v("X")])]);
        let sql = cq_to_sql(&q);
        assert!(sql.contains("t0.c0 = t0.c1"));
    }

    #[test]
    fn ucq_is_a_union() {
        let q1 =
            ConjunctiveQuery::new(vec![Variable::new("X")], vec![Atom::new("r", vec![v("X")])]);
        let q2 =
            ConjunctiveQuery::new(vec![Variable::new("X")], vec![Atom::new("s", vec![v("X")])]);
        let sql = ucq_to_sql(&UnionOfConjunctiveQueries::new(vec![q1, q2]));
        assert_eq!(sql.matches("SELECT DISTINCT").count(), 2);
        assert!(sql.contains("\nUNION\n"));
    }
}
