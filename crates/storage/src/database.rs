//! The relational store: a collection of [`Relation`]s.

use crate::relation::Relation;
use ontorew_model::prelude::*;
use std::collections::HashMap;

/// An in-memory relational database: one [`Relation`] per predicate.
///
/// This is the extensional layer of an OBDA deployment — the part the paper
/// assumes is "managed by the DBMS". It interconverts with the simpler
/// [`Instance`] representation used by the chase.
#[derive(Clone, Debug, Default)]
pub struct RelationalStore {
    relations: HashMap<Predicate, Relation>,
}

impl RelationalStore {
    /// An empty store.
    pub fn new() -> Self {
        RelationalStore::default()
    }

    /// Build a store from an [`Instance`] by cloning its relations — which
    /// share all frozen segments by reference, so converting a *frozen*
    /// instance (e.g. a cached chase materialization) costs O(#segments)
    /// and duplicates no rows. Unfrozen relations are deep-copied, as a
    /// per-atom rebuild would be.
    pub fn from_instance(instance: &Instance) -> Self {
        let mut store = RelationalStore::new();
        for p in instance.predicates() {
            let rel = instance.relation(p).expect("predicates() yields non-empty");
            store
                .relations
                .insert(p, crate::relation::Relation::from_indexed(p, rel.clone()));
        }
        store
    }

    /// Convert the store back into an [`Instance`].
    pub fn to_instance(&self) -> Instance {
        let mut inst = Instance::new();
        for (p, rel) in &self.relations {
            for row in rel.scan() {
                inst.insert(Atom {
                    predicate: *p,
                    terms: row.clone(),
                });
            }
        }
        inst
    }

    /// Insert a ground atom; returns `true` if it was new.
    pub fn insert_atom(&mut self, atom: &Atom) -> bool {
        self.relations
            .entry(atom.predicate)
            .or_insert_with(|| Relation::new(atom.predicate))
            .insert(atom.terms.clone())
    }

    /// Insert a fact given by predicate name and constant names.
    pub fn insert_fact(&mut self, predicate: &str, constants: &[&str]) -> bool {
        self.insert_atom(&Atom::fact(predicate, constants))
    }

    /// Remove a ground atom; returns `true` if it was present. The affected
    /// relation is rebuilt from its retained tuples (see
    /// [`Relation::remove`]); every other relation keeps sharing its frozen
    /// segments, so a retraction epoch costs O(affected relations).
    pub fn remove_atom(&mut self, atom: &Atom) -> bool {
        match self.relations.get_mut(&atom.predicate) {
            Some(rel) => {
                let removed = rel.remove(&atom.terms);
                if removed && rel.is_empty() {
                    self.relations.remove(&atom.predicate);
                }
                removed
            }
            None => false,
        }
    }

    /// Freeze every relation (see [`Relation::freeze`]): publish all mutable
    /// tails as `Arc`-shared segments, making the next `clone()` of this
    /// store O(#relations + #segments) instead of O(#tuples). The epoch
    /// store calls this before publishing each snapshot.
    pub fn freeze(&mut self) {
        for rel in self.relations.values_mut() {
            rel.freeze();
        }
    }

    /// True if the store contains the ground atom.
    pub fn contains_atom(&self, atom: &Atom) -> bool {
        self.relations
            .get(&atom.predicate)
            .map(|r| r.contains(&atom.terms))
            .unwrap_or(false)
    }

    /// The relation for `predicate`, if it has any tuples.
    pub fn relation(&self, predicate: Predicate) -> Option<&Relation> {
        self.relations.get(&predicate)
    }

    /// Total tuples across the relations named by `atoms` (the size signal
    /// of the default join-strategy choice).
    pub fn body_size(&self, atoms: &[Atom]) -> usize {
        atoms.iter().map(|a| self.relation_size(a.predicate)).sum()
    }

    /// Mutable access to the relation for `predicate`, creating it if absent.
    pub fn relation_mut(&mut self, predicate: Predicate) -> &mut Relation {
        self.relations
            .entry(predicate)
            .or_insert_with(|| Relation::new(predicate))
    }

    /// Number of tuples in the relation for `predicate` (0 if absent).
    pub fn relation_size(&self, predicate: Predicate) -> usize {
        self.relations
            .get(&predicate)
            .map(Relation::len)
            .unwrap_or(0)
    }

    /// Total number of tuples across all relations.
    pub fn len(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// True if the store holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The predicates present in the store.
    pub fn predicates(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.relations.keys().copied()
    }

    /// The signature induced by the store.
    pub fn signature(&self) -> Signature {
        self.predicates().collect()
    }
}

impl ontorew_unify::RelationSource for RelationalStore {
    fn relation_of(
        &self,
        predicate: Predicate,
    ) -> Option<&ontorew_model::instance::IndexedRelation> {
        self.relation(predicate).map(Relation::indexed)
    }
}

impl From<&Instance> for RelationalStore {
    fn from(instance: &Instance) -> Self {
        RelationalStore::from_instance(instance)
    }
}

impl From<Instance> for RelationalStore {
    fn from(instance: Instance) -> Self {
        RelationalStore::from_instance(&instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut db = RelationalStore::new();
        assert!(db.insert_fact("teaches", &["alice", "db101"]));
        assert!(!db.insert_fact("teaches", &["alice", "db101"]));
        assert!(db.contains_atom(&Atom::fact("teaches", &["alice", "db101"])));
        assert_eq!(db.len(), 1);
        assert_eq!(db.relation_size(Predicate::new("teaches", 2)), 1);
        assert_eq!(db.relation_size(Predicate::new("absent", 1)), 0);
    }

    #[test]
    fn remove_atom_round_trip() {
        let mut db = RelationalStore::new();
        db.insert_fact("r", &["a", "b"]);
        db.insert_fact("r", &["c", "d"]);
        db.freeze();
        assert!(db.remove_atom(&Atom::fact("r", &["a", "b"])));
        assert!(!db.remove_atom(&Atom::fact("r", &["a", "b"])));
        assert!(!db.remove_atom(&Atom::fact("zzz", &["a"])));
        assert_eq!(db.len(), 1);
        assert!(db.contains_atom(&Atom::fact("r", &["c", "d"])));
        // Emptying a relation removes it from the signature.
        assert!(db.remove_atom(&Atom::fact("r", &["c", "d"])));
        assert!(db.is_empty());
        assert_eq!(db.signature().len(), 0);
    }

    #[test]
    fn instance_round_trip() {
        let mut inst = Instance::new();
        inst.insert_fact("r", &["a", "b"]);
        inst.insert_fact("s", &["c"]);
        let store = RelationalStore::from_instance(&inst);
        assert_eq!(store.len(), 2);
        assert_eq!(store.to_instance(), inst);
    }

    #[test]
    fn signature_reflects_contents() {
        let mut db = RelationalStore::new();
        db.insert_fact("r", &["a", "b"]);
        db.insert_fact("s", &["c"]);
        let sig = db.signature();
        assert!(sig.contains(Predicate::new("r", 2)));
        assert!(sig.contains(Predicate::new("s", 1)));
        assert_eq!(sig.len(), 2);
    }

    #[test]
    fn relation_mut_creates_on_demand() {
        let mut db = RelationalStore::new();
        let p = Predicate::new("new_rel", 1);
        assert!(db.relation(p).is_none());
        db.relation_mut(p).insert(vec![Term::constant("x")]);
        assert_eq!(db.relation_size(p), 1);
    }

    #[test]
    fn from_conversions() {
        let mut inst = Instance::new();
        inst.insert_fact("r", &["a", "b"]);
        let s1: RelationalStore = (&inst).into();
        let s2: RelationalStore = inst.clone().into();
        assert_eq!(s1.len(), s2.len());
    }
}
