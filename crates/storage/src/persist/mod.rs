//! Durability: write-ahead logging, on-disk segments and crash recovery.
//!
//! Everything above this module is in-memory; this is the layer that makes
//! a tenant's store survive a `kill -9`. The design maps the segmented
//! copy-on-write store onto a classic LSM-style durable layout:
//!
//! * [`wal`] — a per-tenant **write-ahead log** guarding the mutable tail:
//!   every committed epoch (insert batch or delete retraction) is appended
//!   as one checksummed, length-prefixed record *before* the epoch is
//!   published to readers. The fsync cadence is configurable
//!   ([`FsyncPolicy`]: `Always` / `EveryN` / `Off`).
//! * [`segment`] — frozen store contents spilled to **write-once segment
//!   files** (one per relation per checkpoint), each carrying its own
//!   checksum.
//! * [`manifest`] — the **manifest**: the atomic (write-temp + rename)
//!   pointer naming the checkpoint epoch and the exact segment files that
//!   make it up. Recovery = load manifest → read segments → replay the WAL
//!   suffix.
//! * [`tenant`] — [`TenantStorage`], the per-tenant composition of the
//!   three: create, recover, log commits, checkpoint (which truncates the
//!   WAL), tombstone on drop.
//! * [`failpoint`] — crash-point **fault injection** hooks compiled into
//!   the persist I/O paths; tests arm them to simulate a crash (the write
//!   never happens), a torn write (a prefix hits the disk), or a plain
//!   I/O error the still-running process must clean up after, at every
//!   interesting point.
//!
//! The invariant the whole module is built around: **recovery never
//! surfaces a half-applied epoch**. A WAL record is applied all-or-nothing
//! (its checksum covers the whole batch), and a torn, truncated or
//! corrupted tail is detected and discarded — never propagated into the
//! recovered store.

pub mod failpoint;
pub mod manifest;
pub mod segment;
pub mod tenant;
pub mod wal;

pub use failpoint::{arm, clear_all, disarm, FailAction};
pub use manifest::{Manifest, SegmentEntry};
pub use segment::{read_segment, write_segment};
pub use tenant::{RecoveredTenant, TenantStorage, TenantStorageState};
pub use wal::{read_wal, Wal, WalOpKind, WalRecord, WalTail};

use std::io;
use std::path::Path;

/// When the WAL forces its appends to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: an acknowledged commit is durable even
    /// across power loss. The slowest policy — every commit pays a device
    /// flush.
    Always,
    /// `fsync` once every N records: bounded data loss (at most the last
    /// N−1 acknowledged commits) at a fraction of the cost.
    EveryN(u32),
    /// Never `fsync` from the commit path: the OS flushes on its own
    /// schedule. A process crash loses nothing (the page cache survives);
    /// a machine crash can lose the un-flushed suffix.
    Off,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::EveryN(8)
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every-{n}"),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "off" => Ok(FsyncPolicy::Off),
            other => {
                let n = other
                    .strip_prefix("every-")
                    .or_else(|| other.strip_prefix("every="))
                    .and_then(|n| n.parse::<u32>().ok())
                    .filter(|n| *n > 0)
                    .ok_or_else(|| {
                        format!("bad fsync policy {other:?}: use always, every-N or off")
                    })?;
                Ok(FsyncPolicy::EveryN(n))
            }
        }
    }
}

/// CRC-32 (IEEE 802.3 polynomial, the zlib/`crc32` convention) over `data`.
/// The checksum every WAL record, segment file and manifest carries.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0, data)
}

/// Continue a CRC-32 over more data (for streaming writers).
pub fn crc32_update(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    for &byte in data {
        crc = CRC32_TABLE[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// The byte-wise CRC-32 lookup table, built at compile time.
static CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// `fsync` the directory containing `path`, making a just-completed rename
/// or create durable (on platforms where directories can be synced; errors
/// from opening the directory are ignored on platforms that refuse).
pub(crate) fn sync_parent_dir(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            dir.sync_all()?;
        }
    }
    Ok(())
}

/// Little-endian binary encoding helpers shared by the WAL and segment
/// codecs. Strings are u32-length-prefixed UTF-8.
pub(crate) mod codec {
    use ontorew_model::prelude::*;
    use std::io;

    /// Cap on any single length field (strings, rows, batches) while
    /// decoding: corrupt input must fail cleanly, not allocate gigabytes.
    pub const MAX_LEN: u32 = 1 << 28;

    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_str(out: &mut Vec<u8>, s: &str) {
        put_u32(out, s.len() as u32);
        out.extend_from_slice(s.as_bytes());
    }

    /// Encode one ground term. Constants carry their name; labelled nulls
    /// carry their numeric id (so recovered stores are equal modulo nothing
    /// — ids are preserved verbatim).
    pub fn put_term(out: &mut Vec<u8>, term: &Term) -> io::Result<()> {
        match term {
            Term::Constant(c) => {
                out.push(0);
                put_str(out, c.name());
            }
            Term::Null(n) => {
                out.push(1);
                put_u64(out, n.id());
            }
            Term::Variable(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "cannot persist a non-ground term",
                ));
            }
        }
        Ok(())
    }

    /// Encode one ground atom: predicate name, arity, then each term.
    pub fn put_atom(out: &mut Vec<u8>, atom: &Atom) -> io::Result<()> {
        put_str(out, atom.predicate.name_str());
        put_u32(out, atom.terms.len() as u32);
        for term in &atom.terms {
            put_term(out, term)?;
        }
        Ok(())
    }

    /// A cursor over an encoded payload; every read is bounds-checked so
    /// corrupt input yields `InvalidData`, never a panic.
    pub struct Cursor<'a> {
        data: &'a [u8],
        pos: usize,
    }

    impl<'a> Cursor<'a> {
        pub fn new(data: &'a [u8]) -> Self {
            Cursor { data, pos: 0 }
        }

        pub fn is_done(&self) -> bool {
            self.pos == self.data.len()
        }

        fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
            let end = self.pos.checked_add(n).filter(|e| *e <= self.data.len());
            match end {
                Some(end) => {
                    let slice = &self.data[self.pos..end];
                    self.pos = end;
                    Ok(slice)
                }
                None => Err(corrupt("record payload is truncated")),
            }
        }

        pub fn u8(&mut self) -> io::Result<u8> {
            Ok(self.take(1)?[0])
        }

        pub fn u32(&mut self) -> io::Result<u32> {
            let bytes = self.take(4)?;
            Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
        }

        pub fn u64(&mut self) -> io::Result<u64> {
            let bytes = self.take(8)?;
            Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
        }

        pub fn str(&mut self) -> io::Result<&'a str> {
            let len = self.u32()?;
            if len > MAX_LEN {
                return Err(corrupt("string length out of range"));
            }
            std::str::from_utf8(self.take(len as usize)?)
                .map_err(|_| corrupt("string is not valid UTF-8"))
        }

        pub fn term(&mut self) -> io::Result<Term> {
            match self.u8()? {
                0 => Ok(Term::constant(self.str()?)),
                1 => Ok(Term::Null(ontorew_model::term::Null(self.u64()?))),
                _ => Err(corrupt("unknown term tag")),
            }
        }

        pub fn atom(&mut self) -> io::Result<Atom> {
            let name = self.str()?.to_string();
            let arity = self.u32()?;
            if arity > MAX_LEN {
                return Err(corrupt("atom arity out of range"));
            }
            let mut terms = Vec::with_capacity(arity as usize);
            for _ in 0..arity {
                terms.push(self.term()?);
            }
            Ok(Atom {
                predicate: Predicate::new(&name, terms.len()),
                terms,
            })
        }
    }

    pub fn corrupt(message: &str) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, message.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical zlib test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn crc32_streaming_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let (a, b) = data.split_at(17);
        assert_eq!(crc32_update(crc32(a), b), crc32(data));
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        assert_eq!("always".parse::<FsyncPolicy>(), Ok(FsyncPolicy::Always));
        assert_eq!("off".parse::<FsyncPolicy>(), Ok(FsyncPolicy::Off));
        assert_eq!(
            "every-16".parse::<FsyncPolicy>(),
            Ok(FsyncPolicy::EveryN(16))
        );
        assert_eq!("every=4".parse::<FsyncPolicy>(), Ok(FsyncPolicy::EveryN(4)));
        assert!("every-0".parse::<FsyncPolicy>().is_err());
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::EveryN(8).to_string(), "every-8");
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::EveryN(8));
    }

    #[test]
    fn terms_and_atoms_round_trip() {
        use ontorew_model::prelude::*;
        let atom = Atom {
            predicate: Predicate::new("attends", 2),
            terms: vec![
                Term::constant("sara jones"),
                Term::Null(ontorew_model::term::Null(42)),
            ],
        };
        let mut buf = Vec::new();
        codec::put_atom(&mut buf, &atom).unwrap();
        let mut cursor = codec::Cursor::new(&buf);
        assert_eq!(cursor.atom().unwrap(), atom);
        assert!(cursor.is_done());
    }

    #[test]
    fn variables_refuse_to_encode() {
        use ontorew_model::prelude::*;
        let mut buf = Vec::new();
        let bad = Atom::new("p", vec![Term::variable("X")]);
        assert!(codec::put_atom(&mut buf, &bad).is_err());
    }

    #[test]
    fn cursor_rejects_truncation_and_garbage() {
        let mut buf = Vec::new();
        codec::put_str(&mut buf, "hello");
        // Truncated payload.
        let mut cursor = codec::Cursor::new(&buf[..buf.len() - 1]);
        assert!(cursor.str().is_err());
        // Absurd length field must not allocate.
        let mut huge = Vec::new();
        codec::put_u32(&mut huge, u32::MAX);
        let mut cursor = codec::Cursor::new(&huge);
        assert!(cursor.str().is_err());
        // Unknown term tag.
        let mut cursor = codec::Cursor::new(&[7u8]);
        assert!(cursor.term().is_err());
    }
}
