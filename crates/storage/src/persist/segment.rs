//! Write-once on-disk segment files.
//!
//! A checkpoint spills each relation of the frozen store into one segment
//! file. Segments are immutable once written — a later checkpoint writes
//! *new* files and retires the old ones via the manifest, mirroring how the
//! in-memory store shares frozen `Arc` segments instead of mutating them.
//!
//! ## File format
//!
//! ```text
//! [4-byte magic "OSG1"][u32 payload-len][u32 crc32(payload)][payload]
//! payload = str predicate-name, u32 arity, u32 row-count,
//!           row-count × (arity × term)   (see persist::codec)
//! ```
//!
//! A segment that fails its magic, length or checksum is a **hard recovery
//! error** — unlike a torn WAL tail (which is expected after a crash and
//! safely dropped), a manifest-referenced segment was fully durable before
//! the manifest named it, so corruption means real data loss that must be
//! surfaced, never papered over.

use super::codec::{self, Cursor};
use super::failpoint;
use super::{crc32, sync_parent_dir};
use ontorew_model::prelude::*;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// The 4-byte segment file magic (version 1).
pub const SEGMENT_MAGIC: &[u8; 4] = b"OSG1";

/// Serialize one relation into the write-once segment file at `path`.
/// Returns `(rows, bytes, crc)` for the manifest entry. The file is synced
/// before returning; the caller syncs the parent directory when it
/// publishes the manifest.
///
/// A relation whose payload would exceed [`codec::MAX_LEN`] is rejected
/// *before* anything touches disk — `read_segment` refuses any file past
/// that bound, so writing it would publish a manifest (and truncate the
/// WAL) pointing at a checkpoint the next restart can never load. The
/// error aborts the checkpoint; the previous manifest and the WAL stay
/// authoritative and the data remains recoverable.
pub fn write_segment<'a>(
    path: &Path,
    predicate: Predicate,
    rows: impl Iterator<Item = &'a Vec<Term>>,
) -> io::Result<(u64, u64, u32)> {
    write_segment_capped(path, predicate, rows, codec::MAX_LEN as usize)
}

/// [`write_segment`] with an explicit payload cap (tests exercise the
/// bound without building a 256 MiB relation).
fn write_segment_capped<'a>(
    path: &Path,
    predicate: Predicate,
    rows: impl Iterator<Item = &'a Vec<Term>>,
    max_payload: usize,
) -> io::Result<(u64, u64, u32)> {
    let oversized = |count: u32| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "relation {} exceeds the {max_payload}-byte segment cap ({count} rows in); \
                 aborting the checkpoint",
                predicate.name_str()
            ),
        )
    };
    let mut payload = Vec::new();
    codec::put_str(&mut payload, predicate.name_str());
    codec::put_u32(&mut payload, predicate.arity as u32);
    let count_at = payload.len();
    codec::put_u32(&mut payload, 0);
    if payload.len() > max_payload {
        return Err(oversized(0));
    }
    let mut count = 0u32;
    for row in rows {
        for term in row {
            codec::put_term(&mut payload, term)?;
        }
        count += 1;
        // Checked per row so an oversized relation fails early instead of
        // first materializing multi-gigabyte payloads (past 4 GiB the u32
        // length prefix would silently wrap).
        if payload.len() > max_payload {
            return Err(oversized(count));
        }
    }
    payload[count_at..count_at + 4].copy_from_slice(&count.to_le_bytes());

    let checksum = crc32(&payload);
    let mut frame = Vec::with_capacity(payload.len() + 12);
    frame.extend_from_slice(SEGMENT_MAGIC);
    codec::put_u32(&mut frame, payload.len() as u32);
    codec::put_u32(&mut frame, checksum);
    frame.extend_from_slice(&payload);

    // Write to a temp file and rename into place: a checkpoint that reuses
    // a file name (same epoch, e.g. after a failed first attempt) must
    // never truncate a segment the live manifest still references.
    let tmp = path.with_extension("tmp");
    let mut file = File::create(&tmp)?;
    if let Some(torn) = failpoint::check("segment.write.before_write")? {
        let n = torn.min(frame.len());
        file.write_all(&frame[..n])?;
        let _ = file.sync_all();
        return Err(failpoint::torn_error("segment.write.before_write"));
    }
    file.write_all(&frame)?;
    failpoint::check("segment.write.before_sync")?;
    file.sync_all()?;
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    Ok((count as u64, frame.len() as u64, checksum))
}

/// Read and verify the segment file at `path`. `expected_crc` comes from
/// the manifest entry that referenced this file; any mismatch — magic,
/// length, checksum, or decode — is `InvalidData`.
pub fn read_segment(path: &Path, expected_crc: u32) -> io::Result<(Predicate, Vec<Vec<Term>>)> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    if data.len() < 12 || &data[..4] != SEGMENT_MAGIC {
        return Err(codec::corrupt("segment file has bad magic"));
    }
    let len = u32::from_le_bytes(data[4..8].try_into().unwrap());
    let checksum = u32::from_le_bytes(data[8..12].try_into().unwrap());
    if len > codec::MAX_LEN || data.len() - 12 != len as usize {
        return Err(codec::corrupt("segment file has bad length"));
    }
    let payload = &data[12..];
    if crc32(payload) != checksum || checksum != expected_crc {
        return Err(codec::corrupt("segment file failed its checksum"));
    }
    let mut cursor = Cursor::new(payload);
    let name = cursor.str()?.to_string();
    let arity = cursor.u32()?;
    let rows_len = cursor.u32()?;
    if arity > codec::MAX_LEN || rows_len > codec::MAX_LEN {
        return Err(codec::corrupt("segment header out of range"));
    }
    let predicate = Predicate::new(&name, arity as usize);
    let mut rows = Vec::with_capacity(rows_len as usize);
    for _ in 0..rows_len {
        let mut row = Vec::with_capacity(arity as usize);
        for _ in 0..arity {
            row.push(cursor.term()?);
        }
        rows.push(row);
    }
    if !cursor.is_done() {
        return Err(codec::corrupt("trailing bytes in segment file"));
    }
    Ok((predicate, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_seg(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ontorew-seg-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("test.seg")
    }

    fn rows() -> Vec<Vec<Term>> {
        vec![
            vec![Term::constant("alice"), Term::constant("db101")],
            vec![
                Term::constant("bob"),
                Term::Null(ontorew_model::term::Null(7)),
            ],
        ]
    }

    #[test]
    fn segment_round_trip() {
        let path = temp_seg("roundtrip");
        let predicate = Predicate::new("teaches", 2);
        let data = rows();
        let (count, bytes, crc) = write_segment(&path, predicate, data.iter()).unwrap();
        assert_eq!(count, 2);
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        let (p, read) = read_segment(&path, crc).unwrap();
        assert_eq!(p, predicate);
        assert_eq!(read, data);
    }

    #[test]
    fn empty_relation_round_trips() {
        let path = temp_seg("empty");
        let predicate = Predicate::new("lonely", 3);
        let empty: Vec<Vec<Term>> = Vec::new();
        let (count, _, crc) = write_segment(&path, predicate, empty.iter()).unwrap();
        assert_eq!(count, 0);
        let (p, read) = read_segment(&path, crc).unwrap();
        assert_eq!(p, predicate);
        assert!(read.is_empty());
    }

    #[test]
    fn corruption_is_a_hard_error() {
        let path = temp_seg("corrupt");
        let data = rows();
        let (_, _, crc) = write_segment(&path, Predicate::new("r", 2), data.iter()).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        // Flip any byte: magic, header or payload — all must be rejected.
        for idx in [0usize, 5, 9, 14, pristine.len() - 1] {
            let mut bad = pristine.clone();
            bad[idx] ^= 0x5A;
            std::fs::write(&path, &bad).unwrap();
            assert!(read_segment(&path, crc).is_err(), "flip at {idx} accepted");
        }
        // Truncation too.
        std::fs::write(&path, &pristine[..pristine.len() - 3]).unwrap();
        assert!(read_segment(&path, crc).is_err());
        // And a manifest/file checksum disagreement.
        std::fs::write(&path, &pristine).unwrap();
        assert!(read_segment(&path, crc ^ 1).is_err());
    }

    #[test]
    fn oversized_relation_aborts_the_checkpoint_before_touching_disk() {
        // (The cap is exercised via write_segment_capped; the public entry
        // point runs the identical path with codec::MAX_LEN.)
        let path = temp_seg("oversize");
        let data = rows();
        let err = write_segment_capped(&path, Predicate::new("r", 2), data.iter(), 16).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("segment cap"), "{err}");
        // Nothing was written: no segment, no leftover temp file — the old
        // manifest and the WAL remain the authority.
        assert!(!path.exists());
        assert!(!path.with_extension("tmp").exists());
    }

    #[test]
    fn torn_segment_write_fails_cleanly() {
        let _guard = failpoint::test_lock().lock();
        failpoint::clear_all();
        let path = temp_seg("torn");
        failpoint::arm(
            "segment.write.before_write",
            super::super::FailAction::Torn(9),
        );
        let data = rows();
        assert!(write_segment(&path, Predicate::new("r", 2), data.iter()).is_err());
        failpoint::clear_all();
        // The partial file is unreadable garbage, as recovery would find it.
        assert!(read_segment(&path, 0).is_err());
    }
}
