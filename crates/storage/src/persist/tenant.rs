//! [`TenantStorage`]: the per-tenant composition of WAL, segments and
//! manifest.
//!
//! ## On-disk layout
//!
//! ```text
//! <root>/<tenant>/
//!   PROGRAM            # the tenant's TGD program, Display round-trip text
//!   MANIFEST           # checkpoint pointer (absent until first checkpoint)
//!   wal.log            # records for epochs past the checkpoint
//!   segments/          # write-once segment files named by the manifest
//!     seg-<epoch>-<i>.seg
//!   TOMBSTONE          # present only after TENANT DROP
//! ```
//!
//! ## Lifecycle
//!
//! * [`TenantStorage::create`] — set up the directory for a brand-new
//!   tenant (wiping a tombstoned or stale one) and persist its program.
//! * [`TenantStorage::open`] — recover: read PROGRAM, load the manifest's
//!   segments, replay the WAL suffix (dropping any torn tail), and hand
//!   back the reconstructed store.
//! * [`TenantStorage::log_commit`] — append one epoch record; called from
//!   the epoch store's commit path *before* the epoch is published.
//! * [`TenantStorage::checkpoint`] — spill the frozen store to fresh
//!   segments, publish the manifest, truncate the WAL through the
//!   checkpointed epoch, and retire old segment files. Segment writing
//!   happens off the WAL lock so commits keep flowing.
//! * [`TenantStorage::tombstone`] — mark the tenant dropped: recovery
//!   skips it, re-`create` wipes it.

use super::manifest::{Manifest, SegmentEntry};
use super::segment::{read_segment, write_segment};
use super::wal::{read_wal, Wal, WalOpKind, WalRecord, WalTail};
use super::{sync_parent_dir, FsyncPolicy};
use crate::database::RelationalStore;
use ontorew_telemetry::global_registry;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const PROGRAM_FILE: &str = "PROGRAM";
const MANIFEST_FILE: &str = "MANIFEST";
const WAL_FILE: &str = "wal.log";
const SEGMENTS_DIR: &str = "segments";
const TOMBSTONE_FILE: &str = "TOMBSTONE";

/// A stats snapshot of one tenant's durable state (the STATS gauges).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStorageState {
    /// Current WAL size in bytes.
    pub wal_bytes: u64,
    /// Segment files referenced by the live manifest.
    pub segments_on_disk: u64,
    /// The epoch fully captured by those segments.
    pub checkpoint_epoch: u64,
    /// Times this tenant has been recovered from disk (persisted at each
    /// checkpoint, so a never-checkpointed tenant reports only the
    /// recoveries since its last wipe).
    pub recoveries: u64,
}

/// What [`TenantStorage::open`] reconstructed.
#[derive(Debug)]
pub struct RecoveredTenant {
    /// The durable handle, ready for new commits.
    pub storage: TenantStorage,
    /// The tenant's program, exactly as persisted (parse it back).
    pub program_text: String,
    /// The recovered store: checkpoint segments + replayed WAL suffix,
    /// frozen.
    pub store: RelationalStore,
    /// The highest recovered epoch (commits resume at `epoch + 1`).
    pub epoch: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed: usize,
    /// Of which retraction (delete) epochs.
    pub replayed_deletes: usize,
    /// What the WAL tail looked like (`Clean`, or how many torn bytes were
    /// discarded).
    pub tail: WalTail,
}

/// The durable handle for one tenant. Commit-path appends and compactor
/// checkpoints synchronize on the internal WAL lock; segment writing stays
/// outside it.
#[derive(Debug)]
pub struct TenantStorage {
    dir: PathBuf,
    wal: Mutex<Wal>,
    /// Serializes checkpoints (compactor vs. shutdown flush).
    checkpointing: Mutex<()>,
    wal_bytes: AtomicU64,
    segments_on_disk: AtomicU64,
    checkpoint_epoch: AtomicU64,
    recoveries: AtomicU64,
}

impl TenantStorage {
    /// Set up the directory for a brand-new tenant and persist its program
    /// text. An existing directory at this name — tombstoned or stale — is
    /// wiped: the registry is the authority on which names are live.
    pub fn create(
        root: &Path,
        name: &str,
        program_text: &str,
        policy: FsyncPolicy,
    ) -> io::Result<TenantStorage> {
        let dir = root.join(name);
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        std::fs::create_dir_all(dir.join(SEGMENTS_DIR))?;
        write_atomic(&dir.join(PROGRAM_FILE), program_text.as_bytes())?;
        sync_parent_dir(&dir)?;
        let wal = Wal::open(&dir.join(WAL_FILE), policy)?;
        Ok(TenantStorage {
            dir,
            wal_bytes: AtomicU64::new(wal.bytes()),
            wal: Mutex::new(wal),
            checkpointing: Mutex::new(()),
            segments_on_disk: AtomicU64::new(0),
            checkpoint_epoch: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
        })
    }

    /// Recover the tenant at `<root>/<name>`. Returns `Ok(None)` for a
    /// directory that does not exist or carries a tombstone. Corrupt
    /// segments or manifest are hard errors; a torn WAL *tail* is not — it
    /// is discarded (and physically truncated so new appends land after
    /// the last intact record).
    pub fn open(
        root: &Path,
        name: &str,
        policy: FsyncPolicy,
    ) -> io::Result<Option<RecoveredTenant>> {
        let recovery_start = std::time::Instant::now();
        let dir = root.join(name);
        if !dir.is_dir() || dir.join(TOMBSTONE_FILE).exists() {
            return Ok(None);
        }
        let mut program_text = String::new();
        File::open(dir.join(PROGRAM_FILE))?.read_to_string(&mut program_text)?;

        let manifest = Manifest::read(&dir.join(MANIFEST_FILE))?.unwrap_or_default();
        let mut store = RelationalStore::new();
        for entry in &manifest.segments {
            let (predicate, rows) =
                read_segment(&dir.join(SEGMENTS_DIR).join(&entry.file), entry.crc)?;
            let relation = store.relation_mut(predicate);
            for row in rows {
                relation.insert(row);
            }
        }

        let wal_path = dir.join(WAL_FILE);
        let (records, tail) = read_wal(&wal_path)?;
        if tail != WalTail::Clean {
            // Chop the unusable tail off the file itself, otherwise the
            // next append would land after garbage and be dropped by the
            // following recovery.
            let len = std::fs::metadata(&wal_path)?.len();
            let file = OpenOptions::new().write(true).open(&wal_path)?;
            file.set_len(len - tail.dropped_bytes())?;
            file.sync_all()?;
        }
        let mut epoch = manifest.epoch;
        let mut replayed = 0usize;
        let mut replayed_deletes = 0usize;
        for record in &records {
            if record.epoch <= manifest.epoch {
                continue; // already captured by the checkpoint
            }
            match record.kind {
                WalOpKind::Insert => {
                    for fact in &record.facts {
                        store.insert_atom(fact);
                    }
                }
                WalOpKind::Delete => {
                    replayed_deletes += 1;
                    for fact in &record.facts {
                        store.remove_atom(fact);
                    }
                }
            }
            replayed += 1;
            epoch = record.epoch;
        }
        store.freeze();

        let storage = TenantStorage {
            wal_bytes: AtomicU64::new(0),
            wal: Mutex::new(Wal::open(&wal_path, policy)?),
            checkpointing: Mutex::new(()),
            segments_on_disk: AtomicU64::new(manifest.segments.len() as u64),
            checkpoint_epoch: AtomicU64::new(manifest.epoch),
            recoveries: AtomicU64::new(manifest.recoveries + 1),
            dir,
        };
        storage
            .wal_bytes
            .store(storage.wal.lock().bytes(), Ordering::Relaxed);
        storage.remove_unreferenced_segments(&manifest)?;
        let registry = global_registry();
        registry
            .counter("recoveries_total", "Tenant recoveries performed.", &[])
            .inc();
        registry
            .counter(
                "recovery_replayed_records_total",
                "WAL records replayed during recoveries.",
                &[],
            )
            .add(replayed as u64);
        registry
            .histogram_us(
                "recovery_seconds",
                "Tenant recovery (segment load + WAL replay) duration in seconds.",
                &[],
            )
            .observe(recovery_start.elapsed().as_micros() as u64);
        Ok(Some(RecoveredTenant {
            storage,
            program_text,
            store,
            epoch,
            replayed,
            replayed_deletes,
            tail,
        }))
    }

    /// List the recoverable tenant names under `root`: directories with a
    /// PROGRAM and no tombstone.
    pub fn list(root: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        let entries = match std::fs::read_dir(root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(names),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let dir = entry.path();
            if dir.is_dir() && dir.join(PROGRAM_FILE).exists() && !dir.join(TOMBSTONE_FILE).exists()
            {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// This tenant's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Append one epoch record to the WAL. Called before the epoch is
    /// published; an error here aborts the commit.
    pub fn log_commit(&self, record: &WalRecord) -> io::Result<()> {
        let bytes = self.wal.lock().append(record)?;
        self.wal_bytes.store(bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Force the WAL to stable storage regardless of fsync policy
    /// (graceful shutdown).
    pub fn sync(&self) -> io::Result<()> {
        self.wal.lock().sync()
    }

    /// Spill `store` (the frozen contents as of `epoch`) to fresh segment
    /// files, publish the manifest, truncate the WAL through `epoch`, and
    /// retire the previous checkpoint's segments. Commits are only blocked
    /// for the manifest publish + WAL truncation, not the segment writes.
    pub fn checkpoint(
        &self,
        store: &RelationalStore,
        epoch: u64,
    ) -> io::Result<TenantStorageState> {
        let _only_one = self.checkpointing.lock();
        let checkpoint_start = std::time::Instant::now();
        let seg_dir = self.dir.join(SEGMENTS_DIR);
        let mut predicates: Vec<_> = store.predicates().collect();
        predicates.sort_by_key(|p| (p.name_str(), p.arity));
        let mut segments = Vec::with_capacity(predicates.len());
        for (i, predicate) in predicates.into_iter().enumerate() {
            let relation = store.relation(predicate).expect("predicates() is live");
            let file = format!("seg-{epoch}-{i}.seg");
            let (rows, bytes, crc) =
                write_segment(&seg_dir.join(&file), predicate, relation.scan())?;
            segments.push(SegmentEntry {
                file,
                rows,
                bytes,
                crc,
            });
        }
        let manifest = Manifest {
            epoch,
            recoveries: self.recoveries.load(Ordering::Relaxed),
            segments,
        };
        {
            let mut wal = self.wal.lock();
            manifest.write(&self.dir.join(MANIFEST_FILE))?;
            let bytes = wal.truncate_through(epoch)?;
            self.wal_bytes.store(bytes, Ordering::Relaxed);
        }
        self.checkpoint_epoch.store(epoch, Ordering::Relaxed);
        self.segments_on_disk
            .store(manifest.segments.len() as u64, Ordering::Relaxed);
        self.remove_unreferenced_segments(&manifest)?;
        let registry = global_registry();
        registry
            .counter("checkpoints_total", "Checkpoints published.", &[])
            .inc();
        registry
            .counter(
                "checkpoint_segments_spilled_total",
                "Segment files written by checkpoints.",
                &[],
            )
            .add(manifest.segments.len() as u64);
        registry
            .histogram_us(
                "checkpoint_seconds",
                "Checkpoint (segment spill + manifest publish + WAL truncate) duration in seconds.",
                &[],
            )
            .observe(checkpoint_start.elapsed().as_micros() as u64);
        Ok(self.state())
    }

    /// Mark the tenant dropped: recovery skips it, re-`create` wipes it.
    /// The data files are removed eagerly to reclaim space; the tombstone
    /// (and the program, for post-mortems) remain.
    pub fn tombstone(&self) -> io::Result<()> {
        let mut marker = File::create(self.dir.join(TOMBSTONE_FILE))?;
        marker.write_all(b"dropped\n")?;
        marker.sync_all()?;
        sync_parent_dir(&self.dir.join(TOMBSTONE_FILE))?;
        let _ = std::fs::remove_file(self.dir.join(WAL_FILE));
        let _ = std::fs::remove_file(self.dir.join(MANIFEST_FILE));
        let _ = std::fs::remove_dir_all(self.dir.join(SEGMENTS_DIR));
        Ok(())
    }

    /// Snapshot of the durable-state gauges.
    pub fn state(&self) -> TenantStorageState {
        TenantStorageState {
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            segments_on_disk: self.segments_on_disk.load(Ordering::Relaxed),
            checkpoint_epoch: self.checkpoint_epoch.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
        }
    }

    /// Delete segment files (and stray temp files) not referenced by
    /// `manifest` — leftovers of a crash between segment spill and manifest
    /// publish, or of a superseded checkpoint.
    fn remove_unreferenced_segments(&self, manifest: &Manifest) -> io::Result<()> {
        let live: HashSet<&str> = manifest.segments.iter().map(|s| s.file.as_str()).collect();
        let seg_dir = self.dir.join(SEGMENTS_DIR);
        let entries = match std::fs::read_dir(&seg_dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let keep = name.to_str().is_some_and(|n| live.contains(n));
            if !keep {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(())
    }
}

/// Write `data` to `path` atomically (temp + fsync + rename).
fn write_atomic(path: &Path, data: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(data)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::failpoint;
    use super::super::FailAction;
    use super::*;
    use ontorew_model::prelude::*;

    fn temp_root(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ontorew-tenant-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn insert(epoch: u64, names: &[&str]) -> WalRecord {
        WalRecord {
            epoch,
            kind: WalOpKind::Insert,
            facts: names.iter().map(|n| Atom::fact("node", &[n])).collect(),
        }
    }

    fn delete(epoch: u64, names: &[&str]) -> WalRecord {
        WalRecord {
            kind: WalOpKind::Delete,
            ..insert(epoch, names)
        }
    }

    #[test]
    fn create_log_recover_round_trip() {
        let root = temp_root("roundtrip");
        let storage = TenantStorage::create(
            &root,
            "acme",
            "[R1] node(X) -> seen(X).\n",
            FsyncPolicy::default(),
        )
        .unwrap();
        storage.log_commit(&insert(1, &["a", "b"])).unwrap();
        storage.log_commit(&delete(2, &["a"])).unwrap();
        storage.log_commit(&insert(3, &["c"])).unwrap();
        drop(storage); // "crash": nothing checkpointed, WAL only

        let recovered = TenantStorage::open(&root, "acme", FsyncPolicy::default())
            .unwrap()
            .expect("tenant exists");
        assert_eq!(recovered.program_text, "[R1] node(X) -> seen(X).\n");
        assert_eq!(recovered.epoch, 3);
        assert_eq!(recovered.replayed, 3);
        assert_eq!(recovered.replayed_deletes, 1);
        assert_eq!(recovered.tail, WalTail::Clean);
        assert_eq!(recovered.store.len(), 2);
        assert!(recovered.store.contains_atom(&Atom::fact("node", &["b"])));
        assert!(recovered.store.contains_atom(&Atom::fact("node", &["c"])));
        assert!(!recovered.store.contains_atom(&Atom::fact("node", &["a"])));
        assert_eq!(recovered.storage.state().recoveries, 1);
    }

    #[test]
    fn checkpoint_truncates_wal_and_survives_recovery() {
        let root = temp_root("checkpoint");
        let storage = TenantStorage::create(&root, "t", "", FsyncPolicy::default()).unwrap();
        let mut store = RelationalStore::new();
        for (epoch, name) in [(1u64, "a"), (2, "b"), (3, "c")] {
            storage.log_commit(&insert(epoch, &[name])).unwrap();
            store.insert_fact("node", &[name]);
        }
        store.freeze();
        let state = storage.checkpoint(&store, 3).unwrap();
        assert_eq!(state.checkpoint_epoch, 3);
        assert_eq!(state.segments_on_disk, 1);
        assert_eq!(state.wal_bytes, 0, "WAL fully truncated at the checkpoint");

        // More commits after the checkpoint land in the fresh WAL.
        storage.log_commit(&insert(4, &["d"])).unwrap();
        drop(storage);

        let recovered = TenantStorage::open(&root, "t", FsyncPolicy::default())
            .unwrap()
            .unwrap();
        assert_eq!(recovered.epoch, 4);
        assert_eq!(recovered.replayed, 1, "only the post-checkpoint suffix");
        assert_eq!(recovered.store.len(), 4);
        assert_eq!(recovered.storage.state().checkpoint_epoch, 3);
    }

    #[test]
    fn second_checkpoint_retires_old_segments() {
        let root = temp_root("retire");
        let storage = TenantStorage::create(&root, "t", "", FsyncPolicy::default()).unwrap();
        let mut store = RelationalStore::new();
        store.insert_fact("node", &["a"]);
        store.freeze();
        storage.log_commit(&insert(1, &["a"])).unwrap();
        storage.checkpoint(&store, 1).unwrap();
        store.insert_fact("edge", &["a", "b"]);
        store.freeze();
        storage.log_commit(&insert(2, &["ignored"])).unwrap();
        storage.checkpoint(&store, 2).unwrap();
        let seg_dir = storage.dir().join("segments");
        let mut files: Vec<_> = std::fs::read_dir(&seg_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        files.sort();
        assert_eq!(files, vec!["seg-2-0.seg", "seg-2-1.seg"]);
    }

    #[test]
    fn tombstone_hides_the_tenant_and_recreate_wipes_it() {
        let root = temp_root("tombstone");
        let storage =
            TenantStorage::create(&root, "t", "old program", FsyncPolicy::default()).unwrap();
        storage.log_commit(&insert(1, &["a"])).unwrap();
        storage.tombstone().unwrap();
        assert!(TenantStorage::open(&root, "t", FsyncPolicy::default())
            .unwrap()
            .is_none());
        assert!(TenantStorage::list(&root).unwrap().is_empty());

        // Re-creating the name starts from scratch.
        let storage =
            TenantStorage::create(&root, "t", "new program", FsyncPolicy::default()).unwrap();
        storage.log_commit(&insert(1, &["z"])).unwrap();
        drop(storage);
        let recovered = TenantStorage::open(&root, "t", FsyncPolicy::default())
            .unwrap()
            .unwrap();
        assert_eq!(recovered.program_text, "new program");
        assert_eq!(recovered.store.len(), 1);
        assert_eq!(TenantStorage::list(&root).unwrap(), vec!["t".to_string()]);
    }

    #[test]
    fn torn_wal_tail_is_truncated_so_new_appends_survive() {
        let root = temp_root("torn-tail");
        let storage = TenantStorage::create(&root, "t", "", FsyncPolicy::default()).unwrap();
        storage.log_commit(&insert(1, &["a"])).unwrap();
        {
            let _guard = failpoint::test_lock().lock();
            failpoint::clear_all();
            failpoint::arm("wal.append.before_write", FailAction::Torn(7));
            assert!(storage.log_commit(&insert(2, &["b"])).is_err());
            failpoint::clear_all();
        }
        drop(storage);

        // First recovery: the torn record is discarded and the file healed.
        let recovered = TenantStorage::open(&root, "t", FsyncPolicy::default())
            .unwrap()
            .unwrap();
        assert_eq!(recovered.epoch, 1);
        assert!(recovered.tail.dropped_bytes() > 0);
        // New commits append after the healed tail...
        recovered.storage.log_commit(&insert(2, &["c"])).unwrap();
        drop(recovered);
        // ...and a second recovery sees them.
        let again = TenantStorage::open(&root, "t", FsyncPolicy::default())
            .unwrap()
            .unwrap();
        assert_eq!(again.epoch, 2);
        assert_eq!(again.tail, WalTail::Clean);
        assert!(again.store.contains_atom(&Atom::fact("node", &["c"])));
        assert_eq!(again.storage.state().recoveries, 1, "not yet checkpointed");
    }

    #[test]
    fn io_error_on_log_commit_does_not_lose_later_acked_commits() {
        // The failed-fsync repro: epoch 2's append fails after its frame
        // reached the file, the server keeps running, the retried commit
        // reuses epoch 2, and two more commits are acknowledged. Recovery
        // must replay every acknowledged epoch and none of the aborted one.
        let root = temp_root("io-error");
        let storage = TenantStorage::create(&root, "t", "", FsyncPolicy::Always).unwrap();
        storage.log_commit(&insert(1, &["acked1"])).unwrap();
        {
            let _guard = failpoint::test_lock().lock();
            failpoint::clear_all();
            failpoint::arm("wal.append.before_sync", FailAction::IoError);
            assert!(storage.log_commit(&insert(2, &["aborted"])).is_err());
            failpoint::clear_all();
        }
        storage.log_commit(&insert(2, &["acked2"])).unwrap();
        storage.log_commit(&insert(3, &["acked3"])).unwrap();
        drop(storage);

        let recovered = TenantStorage::open(&root, "t", FsyncPolicy::default())
            .unwrap()
            .unwrap();
        assert_eq!(recovered.tail, WalTail::Clean);
        assert_eq!(recovered.epoch, 3);
        assert_eq!(recovered.replayed, 3);
        for name in ["acked1", "acked2", "acked3"] {
            assert!(
                recovered.store.contains_atom(&Atom::fact("node", &[name])),
                "acknowledged commit {name} lost"
            );
        }
        assert!(
            !recovered
                .store
                .contains_atom(&Atom::fact("node", &["aborted"])),
            "aborted batch resurfaced"
        );
    }

    #[test]
    fn crash_between_segments_and_manifest_keeps_the_old_checkpoint() {
        let root = temp_root("crash-manifest");
        let storage = TenantStorage::create(&root, "t", "", FsyncPolicy::default()).unwrap();
        let mut store = RelationalStore::new();
        store.insert_fact("node", &["a"]);
        store.freeze();
        storage.log_commit(&insert(1, &["a"])).unwrap();
        storage.checkpoint(&store, 1).unwrap();

        store.insert_fact("node", &["b"]);
        store.freeze();
        storage.log_commit(&insert(2, &["b"])).unwrap();
        {
            let _guard = failpoint::test_lock().lock();
            failpoint::clear_all();
            failpoint::arm("manifest.write.before_rename", FailAction::Crash);
            assert!(storage.checkpoint(&store, 2).is_err());
            failpoint::clear_all();
        }
        drop(storage);

        // Recovery: old manifest + WAL replay reproduce the full store, and
        // the orphaned epoch-2 segments are swept.
        let recovered = TenantStorage::open(&root, "t", FsyncPolicy::default())
            .unwrap()
            .unwrap();
        assert_eq!(recovered.epoch, 2);
        assert_eq!(recovered.store.len(), 2);
        assert_eq!(recovered.storage.state().checkpoint_epoch, 1);
        let seg_dir = recovered.storage.dir().join("segments");
        let files: Vec<_> = std::fs::read_dir(&seg_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(files, vec!["seg-1-0.seg"]);
    }

    #[test]
    fn recoveries_counter_persists_across_checkpoints() {
        let root = temp_root("recoveries");
        let storage = TenantStorage::create(&root, "t", "", FsyncPolicy::default()).unwrap();
        storage.log_commit(&insert(1, &["a"])).unwrap();
        drop(storage);
        for expected in 1..=3u64 {
            let recovered = TenantStorage::open(&root, "t", FsyncPolicy::default())
                .unwrap()
                .unwrap();
            assert_eq!(recovered.storage.state().recoveries, expected);
            // Checkpoint persists the counter for the next round.
            recovered
                .storage
                .checkpoint(&recovered.store, recovered.epoch)
                .unwrap();
        }
    }

    #[test]
    fn nulls_survive_recovery_verbatim() {
        let root = temp_root("nulls");
        let storage = TenantStorage::create(&root, "t", "", FsyncPolicy::default()).unwrap();
        let atom = Atom {
            predicate: Predicate::new("knows", 2),
            terms: vec![
                Term::constant("alice"),
                Term::Null(ontorew_model::term::Null(99)),
            ],
        };
        storage
            .log_commit(&WalRecord {
                epoch: 1,
                kind: WalOpKind::Insert,
                facts: vec![atom.clone()],
            })
            .unwrap();
        drop(storage);
        let recovered = TenantStorage::open(&root, "t", FsyncPolicy::default())
            .unwrap()
            .unwrap();
        assert!(recovered.store.contains_atom(&atom), "null id preserved");
    }
}
