//! Crash-point fault injection for the persist I/O paths.
//!
//! Every interesting point of the WAL / checkpoint machinery calls
//! [`check`] with a stable name (e.g. `"wal.append.before_write"`). In
//! production nothing is armed and the check is one relaxed atomic load.
//! Tests arm a point with a [`FailAction`] to simulate:
//!
//! * **a crash before the I/O** (`FailAction::Crash`) — the operation
//!   returns an error and the write never happens, exactly as if the
//!   process had been killed the instant before;
//! * **a torn write** (`FailAction::Torn(n)`) — the caller is told to
//!   write only the first `n` bytes and then fail, the way a power cut
//!   mid-`write(2)` leaves a prefix on disk;
//! * **a plain I/O error** (`FailAction::IoError`) — the syscall fails but
//!   the process lives on (ENOSPC, a failed fsync), so the caller must
//!   restore its on-disk invariants before returning.
//!
//! The first two simulate process death: callers recognise them via
//! [`is_simulated_crash`] and skip any invariant-restoring cleanup a dead
//! process could never have run. The third is indistinguishable from a
//! production I/O failure and exercises exactly that cleanup.
//!
//! Armed points fire once and disarm themselves (each simulated crash is
//! one crash), so a test can arm a point, drive the workload until it
//! trips, then recover. The registry is process-global; tests touching it
//! serialize through [`test_lock`].

use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};

/// What an armed failpoint does when reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Fail before the I/O happens (simulates `kill -9` just before the
    /// syscall).
    Crash,
    /// Write only the first `n` bytes of the payload, then fail (simulates
    /// a torn write / power cut mid-write). Only meaningful at points that
    /// write a buffer; elsewhere it behaves like [`FailAction::Crash`].
    Torn(usize),
    /// Fail the I/O with a plain error while the process keeps running
    /// (simulates ENOSPC, a failed fsync, …). Unlike [`FailAction::Crash`],
    /// the caller is expected to clean up after this one — it is *not*
    /// recognised by [`is_simulated_crash`].
    IoError,
}

/// Number of armed points — the fast path is a single relaxed load of this
/// counter, so unarmed production traffic pays one atomic read per persist
/// I/O call, nothing more.
static ARMED: AtomicUsize = AtomicUsize::new(0);

static REGISTRY: Mutex<Option<HashMap<&'static str, FailAction>>> = Mutex::new(None);

/// Serializes tests that arm failpoints (the registry is process-global).
pub fn test_lock() -> &'static Mutex<()> {
    static LOCK: Mutex<()> = Mutex::new(());
    &LOCK
}

/// Arm `point` with `action`. The point fires once, then disarms itself.
pub fn arm(point: &'static str, action: FailAction) {
    let mut registry = REGISTRY.lock();
    let map = registry.get_or_insert_with(HashMap::new);
    if map.insert(point, action).is_none() {
        ARMED.fetch_add(1, Ordering::SeqCst);
    }
}

/// Disarm `point` if armed.
pub fn disarm(point: &str) {
    let mut registry = REGISTRY.lock();
    if let Some(map) = registry.as_mut() {
        if map.remove(point).is_some() {
            ARMED.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Disarm everything (test teardown).
pub fn clear_all() {
    let mut registry = REGISTRY.lock();
    if let Some(map) = registry.as_mut() {
        let n = map.len();
        map.clear();
        ARMED.fetch_sub(n, Ordering::SeqCst);
    }
}

/// The marker payload of a simulated-crash error, so callers can tell
/// "the process notionally died here" apart from a real I/O failure.
#[derive(Debug)]
struct SimulatedCrash(String);

impl std::fmt::Display for SimulatedCrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SimulatedCrash {}

/// The error a tripped crash/torn failpoint surfaces: callers treat it like
/// any other I/O failure (`ErrorKind::Other`, message names the point), but
/// [`is_simulated_crash`] recognises it.
fn crash_error(point: &str) -> io::Error {
    io::Error::other(SimulatedCrash(format!(
        "failpoint {point} tripped (simulated crash)"
    )))
}

/// Whether `e` came from a [`FailAction::Crash`] / [`FailAction::Torn`]
/// failpoint — i.e. the process is notionally dead and invariant-restoring
/// cleanup (which a killed process could never run) must be skipped so the
/// test observes the true post-crash disk state.
pub fn is_simulated_crash(e: &io::Error) -> bool {
    e.get_ref()
        .is_some_and(|inner| inner.is::<SimulatedCrash>())
}

/// Check `point`. Returns:
/// * `Ok(None)` — not armed, proceed normally (the overwhelmingly common
///   path: one atomic load);
/// * `Ok(Some(n))` — armed with [`FailAction::Torn`]: the caller must
///   write exactly the first `n` bytes, then return a crash error (via
///   [`torn_error`]);
/// * `Err(_)` — armed with [`FailAction::Crash`]: abort before the I/O.
pub fn check(point: &'static str) -> io::Result<Option<usize>> {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return Ok(None);
    }
    let mut registry = REGISTRY.lock();
    let action = registry.as_mut().and_then(|map| map.remove(point));
    if action.is_some() {
        ARMED.fetch_sub(1, Ordering::SeqCst);
    }
    drop(registry);
    match action {
        None => Ok(None),
        Some(FailAction::Crash) => Err(crash_error(point)),
        Some(FailAction::Torn(n)) => Ok(Some(n)),
        Some(FailAction::IoError) => Err(io::Error::other(format!(
            "failpoint {point} tripped (injected io error)"
        ))),
    }
}

/// The error to return after honoring a torn write at `point`.
pub fn torn_error(point: &'static str) -> io::Error {
    crash_error(point)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_points_pass_through() {
        let _guard = test_lock().lock();
        clear_all();
        assert!(matches!(check("persist.test.nothing"), Ok(None)));
    }

    #[test]
    fn armed_points_fire_once_and_disarm() {
        let _guard = test_lock().lock();
        clear_all();
        arm("persist.test.crash", FailAction::Crash);
        assert!(check("persist.test.crash").is_err());
        assert!(matches!(check("persist.test.crash"), Ok(None)));
        arm("persist.test.torn", FailAction::Torn(5));
        assert_eq!(check("persist.test.torn").unwrap(), Some(5));
        assert!(matches!(check("persist.test.torn"), Ok(None)));
        clear_all();
    }

    #[test]
    fn io_errors_are_not_simulated_crashes() {
        let _guard = test_lock().lock();
        clear_all();
        arm("persist.test.io", FailAction::IoError);
        let err = check("persist.test.io").unwrap_err();
        assert!(!is_simulated_crash(&err), "{err}");
        arm("persist.test.crash2", FailAction::Crash);
        let err = check("persist.test.crash2").unwrap_err();
        assert!(is_simulated_crash(&err), "{err}");
        assert!(is_simulated_crash(&torn_error("persist.test.torn2")));
        clear_all();
    }

    #[test]
    fn disarm_and_clear_work() {
        let _guard = test_lock().lock();
        clear_all();
        arm("persist.test.a", FailAction::Crash);
        arm("persist.test.b", FailAction::Crash);
        disarm("persist.test.a");
        assert!(matches!(check("persist.test.a"), Ok(None)));
        clear_all();
        assert!(matches!(check("persist.test.b"), Ok(None)));
    }
}
