//! The write-ahead log: checksummed, length-prefixed epoch records.
//!
//! One WAL file per tenant guards the mutable tail of the store. Every
//! committed epoch — an `INSERT` batch or a `DELETE` retraction — is
//! appended as one record *before* the epoch is published to readers, so a
//! crash after the append replays the batch on recovery and a crash before
//! it loses nothing that was ever acknowledged.
//!
//! ## Record frame
//!
//! ```text
//! [u32 payload-len][u32 crc32(payload)][payload]
//! payload = u64 epoch, u8 kind (0=insert, 1=delete), u32 count,
//!           count × atom (see persist::codec)
//! ```
//!
//! The checksum covers the whole batch, which is what makes replay
//! all-or-nothing: a record either applies completely or (when its frame is
//! torn, truncated or corrupted) is dropped **together with everything
//! after it** — a bad frame means the tail cannot be trusted, so recovery
//! stops there rather than resynchronize on garbage.

use super::codec::{self, Cursor};
use super::failpoint;
use super::{crc32, FsyncPolicy};
use ontorew_model::prelude::*;
use ontorew_telemetry::{global_registry, Counter, Histogram};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Cached registry handles for the WAL hot path.
struct WalMetrics {
    appends: Arc<Counter>,
    bytes: Arc<Counter>,
    fsyncs: Arc<Histogram>,
    rollbacks: Arc<Counter>,
    poisoned: Arc<Counter>,
}

fn wal_metrics() -> &'static WalMetrics {
    static METRICS: OnceLock<WalMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global_registry();
        WalMetrics {
            appends: r.counter("wal_appends_total", "WAL records appended.", &[]),
            bytes: r.counter("wal_append_bytes_total", "Bytes appended to WALs.", &[]),
            fsyncs: r.histogram_us(
                "wal_fsync_seconds",
                "WAL fsync (sync_data) latency in seconds.",
                &[],
            ),
            rollbacks: r.counter(
                "wal_rollbacks_total",
                "Aborted appends rolled back by truncation.",
                &[],
            ),
            poisoned: r.counter(
                "wal_poisoned_total",
                "Times a WAL handle was poisoned (untrusted tail).",
                &[],
            ),
        }
    })
}

/// `sync_data` with its latency recorded into `wal_fsync_seconds`.
fn sync_data_timed(file: &File) -> io::Result<()> {
    let start = Instant::now();
    let result = file.sync_data();
    wal_metrics()
        .fsyncs
        .observe(start.elapsed().as_micros() as u64);
    result
}

/// What kind of mutation a WAL record carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalOpKind {
    /// The batch was inserted as one epoch.
    Insert,
    /// The batch was retracted as one epoch.
    Delete,
}

/// One durable epoch: the batch that produced it, all-or-nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// The epoch this record published.
    pub epoch: u64,
    /// Insert or delete.
    pub kind: WalOpKind,
    /// The batch, verbatim.
    pub facts: Vec<Atom>,
}

impl WalRecord {
    /// Serialize the full frame (length prefix + checksum + payload).
    /// A batch whose payload would exceed [`codec::MAX_LEN`] is rejected
    /// here — `read_wal` treats any frame past that bound as corrupt, so
    /// letting it reach the log would acknowledge a commit that recovery
    /// silently discards (together with the entire tail after it).
    pub fn encode(&self) -> io::Result<Vec<u8>> {
        self.encode_capped(codec::MAX_LEN as usize)
    }

    /// [`encode`](WalRecord::encode) with an explicit payload cap (tests
    /// exercise the bound without building a 256 MiB batch).
    fn encode_capped(&self, max_payload: usize) -> io::Result<Vec<u8>> {
        let mut payload = Vec::with_capacity(64);
        codec::put_u64(&mut payload, self.epoch);
        payload.push(match self.kind {
            WalOpKind::Insert => 0,
            WalOpKind::Delete => 1,
        });
        codec::put_u32(&mut payload, self.facts.len() as u32);
        for fact in &self.facts {
            codec::put_atom(&mut payload, fact)?;
            if payload.len() > max_payload {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "WAL record payload exceeds the {max_payload}-byte cap; \
                         split the batch into smaller commits"
                    ),
                ));
            }
        }
        let mut frame = Vec::with_capacity(payload.len() + 8);
        codec::put_u32(&mut frame, payload.len() as u32);
        codec::put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        Ok(frame)
    }

    /// Decode one payload (after the frame passed its checksum).
    fn decode(payload: &[u8]) -> io::Result<WalRecord> {
        let mut cursor = Cursor::new(payload);
        let epoch = cursor.u64()?;
        let kind = match cursor.u8()? {
            0 => WalOpKind::Insert,
            1 => WalOpKind::Delete,
            _ => return Err(codec::corrupt("unknown WAL record kind")),
        };
        let count = cursor.u32()?;
        if count > codec::MAX_LEN {
            return Err(codec::corrupt("WAL batch size out of range"));
        }
        let mut facts = Vec::with_capacity(count as usize);
        for _ in 0..count {
            facts.push(cursor.atom()?);
        }
        if !cursor.is_done() {
            return Err(codec::corrupt("trailing bytes in WAL record"));
        }
        Ok(WalRecord { epoch, kind, facts })
    }
}

/// What `read_wal` found at the end of the log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalTail {
    /// Every frame decoded and checksummed cleanly.
    Clean,
    /// The last frame was cut short (crash mid-append): `dropped` bytes
    /// were discarded.
    Truncated {
        /// Bytes discarded from the tail.
        dropped: u64,
    },
    /// A frame failed its checksum or decoded to garbage: the frame and
    /// everything after it (`dropped` bytes) were discarded.
    Corrupt {
        /// Bytes discarded from the tail.
        dropped: u64,
    },
}

impl WalTail {
    /// Bytes of unusable tail that were discarded (0 when clean).
    pub fn dropped_bytes(&self) -> u64 {
        match self {
            WalTail::Clean => 0,
            WalTail::Truncated { dropped } | WalTail::Corrupt { dropped } => *dropped,
        }
    }
}

/// Read every intact record of the WAL at `path`, stopping (and reporting)
/// at the first torn, truncated or corrupt frame. Also enforces that record
/// epochs are strictly increasing — a decode that resynchronized onto
/// stale bytes would violate it.
pub fn read_wal(path: &Path) -> io::Result<(Vec<WalRecord>, WalTail)> {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok((Vec::new(), WalTail::Clean));
        }
        Err(e) => return Err(e),
    }
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut last_epoch = 0u64;
    while pos < data.len() {
        let remaining = data.len() - pos;
        if remaining < 8 {
            return Ok((
                records,
                WalTail::Truncated {
                    dropped: remaining as u64,
                },
            ));
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let checksum = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        if len > codec::MAX_LEN as usize {
            return Ok((
                records,
                WalTail::Corrupt {
                    dropped: remaining as u64,
                },
            ));
        }
        if remaining - 8 < len {
            return Ok((
                records,
                WalTail::Truncated {
                    dropped: remaining as u64,
                },
            ));
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if crc32(payload) != checksum {
            return Ok((
                records,
                WalTail::Corrupt {
                    dropped: remaining as u64,
                },
            ));
        }
        match WalRecord::decode(payload) {
            Ok(record) if record.epoch > last_epoch => {
                last_epoch = record.epoch;
                records.push(record);
                pos += 8 + len;
            }
            // A checksum-clean frame decoding to garbage (or a non-monotone
            // epoch) means we are not looking at a real record boundary.
            _ => {
                return Ok((
                    records,
                    WalTail::Corrupt {
                        dropped: remaining as u64,
                    },
                ));
            }
        }
    }
    Ok((records, WalTail::Clean))
}

/// The append handle: owns the open file and the fsync cadence. Appends are
/// serialized by the caller (the epoch store's writer lock); the handle
/// itself is `Send` so a background compactor can rewrite it.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    policy: FsyncPolicy,
    bytes: u64,
    appends_since_sync: u32,
    /// Set when the log's tail can no longer be trusted: a failed append
    /// left bytes on disk and the rollback that would have removed them
    /// also failed (or a simulated crash deliberately left them there).
    /// Every later append and sync refuses until the file is rewritten
    /// from its intact records ([`Wal::truncate_through`]) or reopened via
    /// recovery — committing on top of a broken tail would hand recovery a
    /// frame it must misclassify as corrupt, discarding acknowledged data.
    poisoned: Option<String>,
}

impl Wal {
    /// Open (or create) the WAL at `path` for appending.
    pub fn open(path: &Path, policy: FsyncPolicy) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let bytes = file.metadata()?.len();
        Ok(Wal {
            path: path.to_path_buf(),
            file,
            policy,
            bytes,
            appends_since_sync: 0,
            poisoned: None,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current size of the log in bytes (the `wal_bytes` STATS gauge and
    /// the compactor's checkpoint trigger).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The fsync cadence this log was opened with.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Append one record, then apply the fsync policy. Returns the new log
    /// size. On any error the record must be considered not durable (the
    /// caller aborts the commit) — and the log is guaranteed to hold **no
    /// trace of the aborted frame**: a failed write or fsync is rolled back
    /// by truncating the file to the pre-append offset, so the caller may
    /// retry (reusing the aborted epoch number) or keep committing later
    /// epochs. Without the rollback, recovery would replay the aborted
    /// batch and then misclassify the retried epoch's frame as corrupt,
    /// discarding every acknowledged commit after it. If the rollback
    /// itself fails the handle is poisoned: all further appends refuse
    /// until the tail is rewritten or the tenant is recovered.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        if let Some(reason) = &self.poisoned {
            return Err(io::Error::other(format!(
                "WAL is poisoned ({reason}); recover the tenant before committing"
            )));
        }
        let frame = record.encode()?;
        if let Some(torn) = failpoint::check("wal.append.before_write")? {
            // Simulate a torn write: a prefix of the frame reaches the
            // file, then the "process dies". A dead process cannot roll
            // back, so the torn bytes stay on disk for recovery to find —
            // and the handle is poisoned so a test that keeps driving it
            // cannot publish epochs on top of the broken tail.
            let n = torn.min(frame.len());
            let _ = self.file.write_all(&frame[..n]);
            let _ = self.file.sync_data();
            self.bytes += n as u64;
            self.poisoned = Some("simulated torn append".to_string());
            wal_metrics().poisoned.inc();
            return Err(failpoint::torn_error("wal.append.before_write"));
        }
        let start = self.bytes;
        match self.write_and_sync(&frame) {
            Ok(()) => {
                self.bytes += frame.len() as u64;
                let metrics = wal_metrics();
                metrics.appends.inc();
                metrics.bytes.add(frame.len() as u64);
                Ok(self.bytes)
            }
            Err(e) if failpoint::is_simulated_crash(&e) => {
                // Simulated kill -9 after the write: the complete frame
                // stays on disk (the at-least-once window crash tests
                // exercise), and the notionally-dead handle refuses
                // further work.
                self.poisoned = Some(format!("simulated crash: {e}"));
                wal_metrics().poisoned.inc();
                Err(e)
            }
            Err(e) => {
                // A real I/O failure (ENOSPC mid-write, failed fsync) with
                // the process still running: an unknown prefix of the
                // frame — possibly all of it — may be on disk. Truncate
                // back to the last acknowledged record so the aborted
                // epoch leaves no trace.
                match self.rollback_to(start) {
                    Ok(()) => wal_metrics().rollbacks.inc(),
                    Err(rollback) => {
                        self.poisoned = Some(format!(
                            "failed append could not be rolled back: {rollback}"
                        ));
                        wal_metrics().poisoned.inc();
                    }
                }
                Err(e)
            }
        }
    }

    /// Write one encoded frame and apply the fsync cadence. Does not touch
    /// `self.bytes`; the caller accounts for it on success.
    fn write_and_sync(&mut self, frame: &[u8]) -> io::Result<()> {
        self.file.write_all(frame)?;
        failpoint::check("wal.append.before_sync")?;
        match self.policy {
            FsyncPolicy::Always => sync_data_timed(&self.file)?,
            FsyncPolicy::EveryN(n) => {
                self.appends_since_sync += 1;
                if self.appends_since_sync >= n {
                    sync_data_timed(&self.file)?;
                    self.appends_since_sync = 0;
                }
            }
            FsyncPolicy::Off => {}
        }
        Ok(())
    }

    /// Restore the log to exactly `len` bytes after a failed append, and
    /// sync the truncation so the discarded suffix cannot resurface.
    fn rollback_to(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.sync_data()?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Force everything appended so far to stable storage (graceful
    /// shutdown and checkpoint use this regardless of policy).
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(reason) = &self.poisoned {
            return Err(io::Error::other(format!(
                "WAL is poisoned ({reason}); refusing to sync an untrusted tail"
            )));
        }
        sync_data_timed(&self.file)?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Drop every record with `epoch <= through_epoch` (they are covered by
    /// a checkpoint) by rewriting the retained suffix and atomically
    /// swapping it in. Called by the compactor after a successful manifest
    /// publish, off the commit path but under the same writer serialization.
    pub fn truncate_through(&mut self, through_epoch: u64) -> io::Result<u64> {
        failpoint::check("wal.truncate.before_rewrite")?;
        let (records, _tail) = read_wal(&self.path)?;
        let mut retained = Vec::new();
        for record in records.iter().filter(|r| r.epoch > through_epoch) {
            retained.extend_from_slice(&record.encode()?);
        }
        let tmp = self.path.with_extension("tmp");
        {
            let mut out = File::create(&tmp)?;
            out.write_all(&retained)?;
            out.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        super::sync_parent_dir(&self.path)?;
        // Reopen the handle onto the new file (the old descriptor points at
        // the unlinked inode).
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        self.bytes = retained.len() as u64;
        self.appends_since_sync = 0;
        // The rewrite kept only intact records, so a previously poisoned
        // tail (e.g. a rollback that failed) has been healed.
        self.poisoned = None;
        Ok(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::super::failpoint::FailAction;
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_wal(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ontorew-wal-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn record(epoch: u64, kind: WalOpKind, names: &[&str]) -> WalRecord {
        WalRecord {
            epoch,
            kind,
            facts: names.iter().map(|n| Atom::fact("r", &[n])).collect(),
        }
    }

    #[test]
    fn append_and_read_round_trip() {
        let path = temp_wal("roundtrip");
        let mut wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        let r1 = record(1, WalOpKind::Insert, &["a", "b"]);
        let r2 = record(2, WalOpKind::Delete, &["a"]);
        let r3 = record(3, WalOpKind::Insert, &[]);
        wal.append(&r1).unwrap();
        wal.append(&r2).unwrap();
        let bytes = wal.append(&r3).unwrap();
        assert_eq!(bytes, wal.bytes());
        let (records, tail) = read_wal(&path).unwrap();
        assert_eq!(records, vec![r1, r2, r3]);
        assert_eq!(tail, WalTail::Clean);
    }

    #[test]
    fn missing_wal_reads_as_empty() {
        let path = temp_wal("missing");
        let (records, tail) = read_wal(&path).unwrap();
        assert!(records.is_empty());
        assert_eq!(tail, WalTail::Clean);
    }

    #[test]
    fn truncated_tail_is_dropped_not_propagated() {
        let path = temp_wal("truncated");
        let mut wal = Wal::open(&path, FsyncPolicy::Off).unwrap();
        wal.append(&record(1, WalOpKind::Insert, &["a"])).unwrap();
        wal.append(&record(2, WalOpKind::Insert, &["b"])).unwrap();
        drop(wal);
        // Cut the file mid-way through the second frame.
        let data = std::fs::read(&path).unwrap();
        for cut in [data.len() - 1, data.len() - 5, data.len() - 9] {
            std::fs::write(&path, &data[..cut]).unwrap();
            let (records, tail) = read_wal(&path).unwrap();
            assert_eq!(records.len(), 1, "cut at {cut}");
            assert_eq!(records[0].epoch, 1);
            assert!(
                matches!(tail, WalTail::Truncated { dropped } if dropped > 0)
                    || matches!(tail, WalTail::Corrupt { dropped } if dropped > 0),
                "cut at {cut}: {tail:?}"
            );
        }
    }

    #[test]
    fn corrupt_frame_is_detected_by_checksum() {
        let path = temp_wal("corrupt");
        let mut wal = Wal::open(&path, FsyncPolicy::Off).unwrap();
        wal.append(&record(1, WalOpKind::Insert, &["a"])).unwrap();
        let second_start = wal.bytes() as usize;
        wal.append(&record(2, WalOpKind::Insert, &["b"])).unwrap();
        drop(wal);
        // Flip one payload byte of the second record.
        let mut data = std::fs::read(&path).unwrap();
        let idx = second_start + 12;
        data[idx] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let (records, tail) = read_wal(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert!(matches!(tail, WalTail::Corrupt { .. }), "{tail:?}");
    }

    #[test]
    fn bit_flips_anywhere_in_the_tail_never_surface_a_half_applied_epoch() {
        let path = temp_wal("fuzz");
        let mut wal = Wal::open(&path, FsyncPolicy::Off).unwrap();
        for epoch in 1..=5u64 {
            wal.append(&record(
                epoch,
                WalOpKind::Insert,
                &[format!("c{epoch}").as_str()],
            ))
            .unwrap();
        }
        drop(wal);
        let pristine = std::fs::read(&path).unwrap();
        let (clean, _) = read_wal(&path).unwrap();
        assert_eq!(clean.len(), 5);
        for idx in 0..pristine.len() {
            let mut data = pristine.clone();
            data[idx] ^= 0x5A;
            std::fs::write(&path, &data).unwrap();
            let (records, _tail) = read_wal(&path).unwrap();
            // Every surviving record must be byte-identical to a clean
            // prefix — a flipped byte can only shorten the replay, never
            // change or tear a batch.
            assert!(records.len() <= clean.len(), "flip at {idx}");
            assert_eq!(
                records.as_slice(),
                &clean[..records.len()],
                "flip at {idx} changed a record"
            );
        }
    }

    #[test]
    fn truncate_through_drops_checkpointed_records() {
        let path = temp_wal("truncate-through");
        let mut wal = Wal::open(&path, FsyncPolicy::Off).unwrap();
        for epoch in 1..=4u64 {
            wal.append(&record(epoch, WalOpKind::Insert, &["x"]))
                .unwrap();
        }
        let bytes = wal.truncate_through(2).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        let (records, tail) = read_wal(&path).unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(
            records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![3, 4]
        );
        // Appends continue on the rewritten file.
        wal.append(&record(5, WalOpKind::Delete, &["x"])).unwrap();
        let (records, _) = read_wal(&path).unwrap();
        assert_eq!(records.last().unwrap().epoch, 5);
    }

    #[test]
    fn failpoint_simulates_a_torn_append() {
        let _guard = failpoint::test_lock().lock();
        failpoint::clear_all();
        let path = temp_wal("failpoint");
        let mut wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        wal.append(&record(1, WalOpKind::Insert, &["a"])).unwrap();
        failpoint::arm("wal.append.before_write", FailAction::Torn(6));
        let err = wal
            .append(&record(2, WalOpKind::Insert, &["b"]))
            .unwrap_err();
        assert!(err.to_string().contains("failpoint"), "{err}");
        failpoint::clear_all();
        // The "dead" handle refuses further appends — committing on top of
        // the torn tail would be lost by the next recovery.
        let err = wal
            .append(&record(3, WalOpKind::Insert, &["c"]))
            .unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        assert!(wal.sync().is_err());
        // Recovery sees the intact first record and drops the torn tail.
        let (records, tail) = read_wal(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert!(tail.dropped_bytes() > 0, "{tail:?}");
    }

    #[test]
    fn io_error_during_append_rolls_back_so_retried_epochs_survive() {
        let _guard = failpoint::test_lock().lock();
        failpoint::clear_all();
        let path = temp_wal("io-error");
        let mut wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        wal.append(&record(1, WalOpKind::Insert, &["acked1"]))
            .unwrap();
        let before = wal.bytes();
        // The frame reaches the file in full, then the fsync fails — and
        // the process keeps running.
        failpoint::arm("wal.append.before_sync", FailAction::IoError);
        let err = wal
            .append(&record(2, WalOpKind::Insert, &["aborted"]))
            .unwrap_err();
        assert!(err.to_string().contains("injected io error"), "{err}");
        failpoint::clear_all();
        // The aborted frame was truncated away: the log is byte-identical
        // to before the failed append.
        assert_eq!(wal.bytes(), before);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before);
        // The caller retries with the SAME epoch number, then keeps
        // committing — recovery must see every acknowledged record.
        wal.append(&record(2, WalOpKind::Insert, &["acked2"]))
            .unwrap();
        wal.append(&record(3, WalOpKind::Insert, &["acked3"]))
            .unwrap();
        let (records, tail) = read_wal(&path).unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(
            records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(
            records[1].facts,
            vec![Atom::fact("r", &["acked2"])],
            "the aborted batch must not resurface"
        );
    }

    #[test]
    fn simulated_crash_after_the_write_keeps_the_frame_and_poisons_the_handle() {
        let _guard = failpoint::test_lock().lock();
        failpoint::clear_all();
        let path = temp_wal("crash-after-write");
        let mut wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        wal.append(&record(1, WalOpKind::Insert, &["a"])).unwrap();
        let before = std::fs::metadata(&path).unwrap().len();
        failpoint::arm("wal.append.before_sync", FailAction::Crash);
        assert!(wal.append(&record(2, WalOpKind::Insert, &["b"])).is_err());
        failpoint::clear_all();
        // A kill -9 after write(2) leaves the complete frame on disk (the
        // at-least-once window): no rollback may hide it from recovery.
        assert!(std::fs::metadata(&path).unwrap().len() > before);
        let (records, tail) = read_wal(&path).unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(records.len(), 2);
        // And the notionally-dead handle refuses to keep committing.
        let err = wal
            .append(&record(3, WalOpKind::Insert, &["c"]))
            .unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
    }

    #[test]
    fn truncate_through_heals_a_poisoned_wal() {
        let _guard = failpoint::test_lock().lock();
        failpoint::clear_all();
        let path = temp_wal("heal");
        let mut wal = Wal::open(&path, FsyncPolicy::Off).unwrap();
        wal.append(&record(1, WalOpKind::Insert, &["a"])).unwrap();
        wal.append(&record(2, WalOpKind::Insert, &["b"])).unwrap();
        failpoint::arm("wal.append.before_write", FailAction::Torn(5));
        assert!(wal.append(&record(3, WalOpKind::Insert, &["c"])).is_err());
        failpoint::clear_all();
        assert!(wal.append(&record(3, WalOpKind::Insert, &["c"])).is_err());
        // Rewriting the log from its intact records restores the invariant
        // (the torn suffix is dropped) and un-poisons the handle.
        wal.truncate_through(1).unwrap();
        wal.append(&record(3, WalOpKind::Insert, &["c"])).unwrap();
        let (records, tail) = read_wal(&path).unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(
            records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![2, 3]
        );
    }

    #[test]
    fn oversized_batches_are_rejected_at_encode_time() {
        // A batch whose payload exceeds the cap fails with InvalidInput —
        // append() calls encode() first, so the commit aborts before a
        // single byte reaches the file. (The cap is exercised via
        // encode_capped; building a real 256 MiB batch would be all cost,
        // no extra coverage — the code path is identical.)
        let record = record(1, WalOpKind::Insert, &["aa", "bb"]);
        let err = record.encode_capped(16).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("split the batch"), "{err}");
        // The real cap accepts ordinary batches, and what encode() accepts
        // read_wal always replays (the frame stays under its MAX_LEN
        // corruption bound).
        let frame = record.encode().unwrap();
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap());
        assert!(len <= codec::MAX_LEN);
    }
}
