//! The per-tenant manifest: the atomic pointer to a checkpoint.
//!
//! A manifest names the checkpoint epoch and the exact segment files that
//! reproduce the store at that epoch. Recovery loads the manifest, reads
//! the listed segments, then replays WAL records with a higher epoch.
//!
//! Updates are atomic: the new manifest is written to a temp file, synced,
//! then `rename(2)`d over the old one (and the directory synced) — a crash
//! leaves either the old checkpoint or the new one, never a mix. Because
//! the write is atomic, a manifest that fails to parse or checksum is a
//! **hard error**, not a recoverable tail.
//!
//! The format is line-oriented text (human-debuggable, like `ls` on the
//! data directory) with a trailing CRC line:
//!
//! ```text
//! ontorew-manifest v1
//! epoch 42
//! recoveries 3
//! segment seg-42-0.seg 20000 482113 9f1c2b3a
//! segment seg-42-1.seg 512 10240 00ff10ab
//! crc 5d41402a
//! ```

use super::failpoint;
use super::{crc32, sync_parent_dir};
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// One segment file referenced by a manifest. The predicate it holds is
/// recorded inside the segment itself; the manifest keeps only what it
/// needs to locate and verify the file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentEntry {
    /// File name relative to the tenant's `segments/` directory.
    pub file: String,
    /// Row count (a stats gauge; the segment header is authoritative).
    pub rows: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// The payload checksum the segment must match.
    pub crc: u32,
}

/// A tenant checkpoint: which epoch is fully captured on disk, and by
/// which segment files.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Every epoch `<= epoch` is captured by the segments; WAL records
    /// beyond it are replayed on recovery.
    pub epoch: u64,
    /// How many times this tenant has been recovered (survives restarts;
    /// the `recoveries` STATS gauge).
    pub recoveries: u64,
    /// The segment files, one per relation.
    pub segments: Vec<SegmentEntry>,
}

impl Manifest {
    fn render(&self) -> String {
        let mut body = String::from("ontorew-manifest v1\n");
        body.push_str(&format!("epoch {}\n", self.epoch));
        body.push_str(&format!("recoveries {}\n", self.recoveries));
        for seg in &self.segments {
            body.push_str(&format!(
                "segment {} {} {} {:08x}\n",
                seg.file, seg.rows, seg.bytes, seg.crc
            ));
        }
        body
    }

    /// Atomically publish this manifest at `path` (write temp → fsync →
    /// rename → fsync dir).
    pub fn write(&self, path: &Path) -> io::Result<()> {
        let body = self.render();
        let text = format!("{body}crc {:08x}\n", crc32(body.as_bytes()));
        let tmp = path.with_extension("tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_all()?;
        }
        failpoint::check("manifest.write.before_rename")?;
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path)?;
        Ok(())
    }

    /// Read the manifest at `path`. `Ok(None)` when the file does not exist
    /// (a tenant that has never checkpointed); a file that exists but fails
    /// to parse or checksum is a hard `InvalidData` error.
    pub fn read(path: &Path) -> io::Result<Option<Manifest>> {
        let mut text = String::new();
        match File::open(path) {
            Ok(mut file) => {
                file.read_to_string(&mut text)
                    .map_err(|_| bad("manifest is not valid UTF-8"))?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        }
        let crc_line_start = text
            .trim_end_matches('\n')
            .rfind('\n')
            .map(|i| i + 1)
            .ok_or_else(|| bad("manifest too short"))?;
        let (body, crc_line) = text.split_at(crc_line_start);
        let expected = crc_line
            .trim_end()
            .strip_prefix("crc ")
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| bad("manifest missing crc line"))?;
        if crc32(body.as_bytes()) != expected {
            return Err(bad("manifest failed its checksum"));
        }

        let mut lines = body.lines();
        if lines.next() != Some("ontorew-manifest v1") {
            return Err(bad("manifest has unknown header"));
        }
        let mut manifest = Manifest::default();
        let mut saw_epoch = false;
        for line in lines {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("epoch") => {
                    manifest.epoch = parse_u64(parts.next())?;
                    saw_epoch = true;
                }
                Some("recoveries") => manifest.recoveries = parse_u64(parts.next())?,
                Some("segment") => {
                    let file = parts.next().ok_or_else(|| bad("segment missing file"))?;
                    let rows = parse_u64(parts.next())?;
                    let bytes = parse_u64(parts.next())?;
                    let crc = parts
                        .next()
                        .and_then(|h| u32::from_str_radix(h, 16).ok())
                        .ok_or_else(|| bad("segment missing crc"))?;
                    manifest.segments.push(SegmentEntry {
                        file: file.to_string(),
                        rows,
                        bytes,
                        crc,
                    });
                }
                // Unknown keys are skipped so v1 readers tolerate additive
                // future fields; the crc already proved the bytes intact.
                Some(_) => {}
                None => {}
            }
        }
        if !saw_epoch {
            return Err(bad("manifest missing epoch"));
        }
        Ok(Some(manifest))
    }
}

fn parse_u64(field: Option<&str>) -> io::Result<u64> {
    field
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad("manifest field is not a number"))
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_manifest(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ontorew-manifest-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("MANIFEST")
    }

    fn sample() -> Manifest {
        Manifest {
            epoch: 42,
            recoveries: 3,
            segments: vec![
                SegmentEntry {
                    file: "seg-42-0.seg".into(),
                    rows: 20_000,
                    bytes: 482_113,
                    crc: 0x9F1C_2B3A,
                },
                SegmentEntry {
                    file: "seg-42-1.seg".into(),
                    rows: 0,
                    bytes: 24,
                    crc: 0,
                },
            ],
        }
    }

    #[test]
    fn manifest_round_trip() {
        let path = temp_manifest("roundtrip");
        let manifest = sample();
        manifest.write(&path).unwrap();
        assert_eq!(Manifest::read(&path).unwrap(), Some(manifest));
        // Overwrite is atomic and replaces cleanly.
        let newer = Manifest {
            epoch: 99,
            ..sample()
        };
        newer.write(&path).unwrap();
        assert_eq!(Manifest::read(&path).unwrap().unwrap().epoch, 99);
        // No stray temp file left behind.
        assert!(!path.with_extension("tmp").exists());
    }

    #[test]
    fn absent_manifest_reads_as_none() {
        let path = temp_manifest("absent");
        assert_eq!(Manifest::read(&path).unwrap(), None);
    }

    #[test]
    fn corrupt_manifest_is_a_hard_error() {
        let path = temp_manifest("corrupt");
        sample().write(&path).unwrap();
        let pristine = std::fs::read_to_string(&path).unwrap();
        // Flip a digit in the body: checksum catches it.
        let tampered = pristine.replacen("epoch 42", "epoch 43", 1);
        std::fs::write(&path, tampered).unwrap();
        assert!(Manifest::read(&path).is_err());
        // Strip the crc line entirely.
        let no_crc = pristine.lines().take(3).collect::<Vec<_>>().join("\n");
        std::fs::write(&path, no_crc).unwrap();
        assert!(Manifest::read(&path).is_err());
        // Empty file.
        std::fs::write(&path, "").unwrap();
        assert!(Manifest::read(&path).is_err());
    }

    #[test]
    fn crash_before_rename_preserves_the_old_manifest() {
        let _guard = failpoint::test_lock().lock();
        failpoint::clear_all();
        let path = temp_manifest("crash");
        let old = sample();
        old.write(&path).unwrap();
        failpoint::arm(
            "manifest.write.before_rename",
            super::super::FailAction::Crash,
        );
        let newer = Manifest {
            epoch: 100,
            ..sample()
        };
        assert!(newer.write(&path).is_err());
        failpoint::clear_all();
        assert_eq!(Manifest::read(&path).unwrap(), Some(old));
    }
}
