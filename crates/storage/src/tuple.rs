//! Compact tuple encoding.
//!
//! Relations deduplicate and index millions of tuples during chase
//! materialization; hashing a `Vec<Term>` (a multi-word enum per term) is
//! noticeably more expensive than hashing a flat byte string. This module
//! encodes a ground tuple into a compact byte representation (one tag byte
//! plus a little-endian `u64` per term) backed by [`bytes::Bytes`], which is
//! cheap to clone, hash and compare.
//!
//! Symbols are recovered through a process-local cache populated at encoding
//! time, so an [`EncodedTuple`] is only meaningful within the process that
//! produced it (it is an in-memory index key, not a persistence format).

use bytes::{BufMut, Bytes, BytesMut};
use ontorew_model::prelude::*;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::OnceLock;

const TAG_CONSTANT: u8 = 0;
const TAG_NULL: u8 = 1;
const TAG_VARIABLE: u8 = 2;

/// A compactly encoded tuple of terms. Produced by [`encode_tuple`].
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct EncodedTuple(Bytes);

impl EncodedTuple {
    /// Number of encoded terms.
    pub fn arity(&self) -> usize {
        self.0.len() / 9
    }

    /// Size of the encoding in bytes.
    pub fn byte_len(&self) -> usize {
        self.0.len()
    }
}

static SYMBOL_CACHE: OnceLock<RwLock<HashMap<u32, Symbol>>> = OnceLock::new();

fn cache() -> &'static RwLock<HashMap<u32, Symbol>> {
    SYMBOL_CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Encode a tuple, registering its symbols so the encoding can later be
/// decoded with [`decode_tuple`].
pub fn encode_tuple(terms: &[Term]) -> EncodedTuple {
    {
        let mut map = cache().write();
        for t in terms {
            match t {
                Term::Constant(c) => {
                    map.insert(c.0.index(), c.0);
                }
                Term::Variable(v) => {
                    map.insert(v.0.index(), v.0);
                }
                Term::Null(_) => {}
            }
        }
    }
    let mut buf = BytesMut::with_capacity(terms.len() * 9);
    for t in terms {
        match t {
            Term::Constant(c) => {
                buf.put_u8(TAG_CONSTANT);
                buf.put_u64_le(c.0.index() as u64);
            }
            Term::Null(n) => {
                buf.put_u8(TAG_NULL);
                buf.put_u64_le(n.id());
            }
            Term::Variable(v) => {
                buf.put_u8(TAG_VARIABLE);
                buf.put_u64_le(v.0.index() as u64);
            }
        }
    }
    EncodedTuple(buf.freeze())
}

/// Decode a tuple previously produced by [`encode_tuple`] in this process.
///
/// # Panics
/// Panics if the tuple mentions a symbol that was never encoded in this
/// process (which indicates a logic error, not bad data).
pub fn decode_tuple(encoded: &EncodedTuple) -> Vec<Term> {
    let bytes = &encoded.0;
    let map = cache().read();
    let mut terms = Vec::with_capacity(bytes.len() / 9);
    let mut i = 0;
    while i + 9 <= bytes.len() {
        let tag = bytes[i];
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&bytes[i + 1..i + 9]);
        let value = u64::from_le_bytes(raw);
        let term = match tag {
            TAG_CONSTANT => Term::Constant(Constant(
                *map.get(&(value as u32))
                    .expect("decoded a symbol that was never encoded"),
            )),
            TAG_NULL => Term::Null(Null(value)),
            TAG_VARIABLE => Term::Variable(Variable(
                *map.get(&(value as u32))
                    .expect("decoded a symbol that was never encoded"),
            )),
            _ => unreachable!("corrupt tuple encoding"),
        };
        terms.push(term);
        i += 9;
    }
    terms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_constants_and_nulls() {
        let terms = vec![
            Term::constant("alice"),
            Term::Null(Null(99)),
            Term::constant("db101"),
        ];
        let enc = encode_tuple(&terms);
        assert_eq!(enc.arity(), 3);
        assert_eq!(enc.byte_len(), 27);
        assert_eq!(decode_tuple(&enc), terms);
    }

    #[test]
    fn round_trip_variables() {
        let terms = vec![Term::variable("X"), Term::variable("Y")];
        let enc = encode_tuple(&terms);
        assert_eq!(decode_tuple(&enc), terms);
    }

    #[test]
    fn equal_tuples_encode_identically() {
        let a = encode_tuple(&[Term::constant("a"), Term::constant("b")]);
        let b = encode_tuple(&[Term::constant("a"), Term::constant("b")]);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_tuples_encode_differently() {
        let a = encode_tuple(&[Term::constant("a")]);
        let b = encode_tuple(&[Term::constant("b")]);
        assert_ne!(a, b);
        let c = encode_tuple(&[Term::variable("a")]);
        assert_ne!(a, c);
    }

    #[test]
    fn variables_and_constants_with_same_name_differ() {
        let a = encode_tuple(&[Term::constant("x")]);
        let b = encode_tuple(&[Term::variable("x")]);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_tuple_is_representable() {
        let enc = encode_tuple(&[]);
        assert_eq!(enc.arity(), 0);
        assert!(decode_tuple(&enc).is_empty());
    }
}
