//! Property-based crash-recovery tests for the persist layer.
//!
//! The contract under test is **all-or-nothing epochs**: after a simulated
//! crash at any persist I/O point — including torn writes that leave a
//! prefix of a record on disk — recovery reproduces either the store of an
//! oracle that applied exactly the acknowledged operations, or (when the
//! crash hit after the record was fully written but before the commit was
//! acknowledged) that oracle plus the one in-flight operation. It never
//! surfaces a half-applied epoch, and a failed checkpoint never loses an
//! acknowledged commit. These tests run in one process, so the page cache
//! stands in for the disk.

use ontorew_model::prelude::*;
use ontorew_storage::persist::{failpoint, FailAction, TenantStorage, WalOpKind, WalRecord};
use ontorew_storage::{FsyncPolicy, RelationalStore};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_root(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ontorew-proppersist-{}-{}-{}",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One workload step: a batch commit or a checkpoint request.
#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<Atom>),
    Delete(Vec<Atom>),
    Checkpoint,
}

fn fact_strategy() -> impl Strategy<Value = Atom> {
    (
        prop::sample::select(vec!["edge", "node", "label"]),
        prop::sample::select(vec!["a", "b", "c", "d", "e"]),
        prop::sample::select(vec!["a", "b", "c", "d", "e"]),
    )
        .prop_map(|(p, x, y)| {
            if p == "node" {
                Atom::fact(p, &[x])
            } else {
                Atom::fact(p, &[x, y])
            }
        })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(fact_strategy(), 1..6).prop_map(Op::Insert),
        prop::collection::vec(fact_strategy(), 1..4).prop_map(Op::Delete),
        prop::strategy::Just(Op::Checkpoint),
    ]
}

/// The commit-path and checkpoint-path crash points a step can die at.
const COMMIT_POINTS: &[&str] = &["wal.append.before_write", "wal.append.before_sync"];
const CHECKPOINT_POINTS: &[&str] = &[
    "segment.write.before_write",
    "segment.write.before_sync",
    "manifest.write.before_rename",
    "wal.truncate.before_rewrite",
];

fn apply(store: &mut RelationalStore, kind: WalOpKind, facts: &[Atom]) {
    for fact in facts {
        match kind {
            WalOpKind::Insert => {
                store.insert_atom(fact);
            }
            WalOpKind::Delete => {
                store.remove_atom(fact);
            }
        }
    }
}

/// Drive `ops` against a durable tenant, optionally crashing at step
/// `crash_at` via the chosen failpoint, then recover and compare to the
/// oracle of acknowledged operations (or oracle + the in-flight op, the
/// at-least-once case).
fn run_workload(tag: &str, ops: &[Op], crash_at: Option<usize>, point_idx: usize, torn: usize) {
    let _serialize = failpoint::test_lock().lock();
    failpoint::clear_all();

    let root = temp_root(tag);
    let storage = TenantStorage::create(&root, "prop", "prop program", FsyncPolicy::Off).unwrap();
    let mut oracle = RelationalStore::new();
    let mut live = RelationalStore::new();
    let mut epoch = 0u64;
    // Set when a commit-path crash leaves one op neither acknowledged nor
    // impossible: recovery may legitimately land on either side.
    let mut in_flight: Option<(WalOpKind, Vec<Atom>)> = None;

    for (i, op) in ops.iter().enumerate() {
        let armed = crash_at == Some(i);
        let mut broke = false;
        match op {
            Op::Insert(facts) | Op::Delete(facts) => {
                let kind = if matches!(op, Op::Insert(_)) {
                    WalOpKind::Insert
                } else {
                    WalOpKind::Delete
                };
                if armed {
                    let point = COMMIT_POINTS[point_idx % COMMIT_POINTS.len()];
                    let action = if torn > 0 && point == "wal.append.before_write" {
                        FailAction::Torn(torn)
                    } else {
                        FailAction::Crash
                    };
                    failpoint::arm(point, action);
                }
                let record = WalRecord {
                    epoch: epoch + 1,
                    kind,
                    facts: facts.clone(),
                };
                match storage.log_commit(&record) {
                    Ok(()) => {
                        epoch += 1;
                        apply(&mut oracle, kind, facts);
                        apply(&mut live, kind, facts);
                    }
                    Err(_) => {
                        assert!(armed, "only the armed step may fail");
                        in_flight = Some((kind, facts.clone()));
                        broke = true;
                    }
                }
            }
            Op::Checkpoint => {
                if armed {
                    let point = CHECKPOINT_POINTS[point_idx % CHECKPOINT_POINTS.len()];
                    failpoint::arm(point, FailAction::Crash);
                }
                live.freeze();
                match storage.checkpoint(&live, epoch) {
                    Ok(_) => {}
                    Err(_) => {
                        assert!(armed, "only the armed step may fail");
                        broke = true;
                    }
                }
            }
        }
        if armed {
            // An armed point the step never reached (e.g. a segment-write
            // point during an empty checkpoint) must not leak into later
            // steps.
            failpoint::clear_all();
        }
        if broke {
            break;
        }
    }
    failpoint::clear_all();
    drop(storage);

    let recovered = TenantStorage::open(&root, "prop", FsyncPolicy::default())
        .unwrap()
        .expect("tenant recoverable");
    let got = recovered.store.to_instance();
    let acked = oracle.to_instance();
    let matches_oracle = got == acked;
    let matches_in_flight = in_flight.is_some_and(|(kind, facts)| {
        apply(&mut oracle, kind, &facts);
        got == oracle.to_instance()
    });
    assert!(
        matches_oracle || matches_in_flight,
        "recovered store is neither the acknowledged oracle nor oracle+in-flight:\n\
         got {} atoms, oracle {} atoms",
        got.atoms().count(),
        acked.atoms().count(),
    );
    assert_eq!(recovered.program_text, "prop program");
    let _ = std::fs::remove_dir_all(&root);
}

/// Drive `ops` with a *transient* I/O failure (the process keeps running)
/// injected into the commit at step `fail_at`: the failed commit is rolled
/// back, the workload continues through the remaining steps, and recovery
/// must match the acknowledged oracle exactly — no in-flight allowance,
/// because a still-running process never acknowledged the failed batch.
fn run_workload_io_error(tag: &str, ops: &[Op], fail_at: usize, point_idx: usize) {
    let _serialize = failpoint::test_lock().lock();
    failpoint::clear_all();

    let root = temp_root(tag);
    let storage = TenantStorage::create(&root, "prop", "prop program", FsyncPolicy::Off).unwrap();
    let mut oracle = RelationalStore::new();
    let mut live = RelationalStore::new();
    let mut epoch = 0u64;

    for (i, op) in ops.iter().enumerate() {
        let armed = fail_at == i;
        match op {
            Op::Insert(facts) | Op::Delete(facts) => {
                let kind = if matches!(op, Op::Insert(_)) {
                    WalOpKind::Insert
                } else {
                    WalOpKind::Delete
                };
                if armed {
                    let point = COMMIT_POINTS[point_idx % COMMIT_POINTS.len()];
                    failpoint::arm(point, FailAction::IoError);
                }
                let record = WalRecord {
                    epoch: epoch + 1,
                    kind,
                    facts: facts.clone(),
                };
                match storage.log_commit(&record) {
                    Ok(()) => {
                        epoch += 1;
                        apply(&mut oracle, kind, facts);
                        apply(&mut live, kind, facts);
                    }
                    Err(_) => {
                        assert!(armed, "only the armed step may fail");
                        // Aborted, not acknowledged: the workload goes on.
                    }
                }
            }
            Op::Checkpoint => {
                live.freeze();
                storage.checkpoint(&live, epoch).unwrap();
            }
        }
        if armed {
            failpoint::clear_all();
        }
    }
    failpoint::clear_all();
    drop(storage);

    let recovered = TenantStorage::open(&root, "prop", FsyncPolicy::default())
        .unwrap()
        .expect("tenant recoverable");
    assert_eq!(
        recovered.store.to_instance(),
        oracle.to_instance(),
        "a transient commit failure must be invisible after recovery"
    );
    let _ = std::fs::remove_dir_all(&root);
}

proptest! {
    /// Without any crash, recovery is an exact round-trip of the workload.
    #[test]
    fn clean_restart_recovers_exactly(ops in prop::collection::vec(op_strategy(), 1..20)) {
        run_workload("clean", &ops, None, 0, 0);
    }

    /// Crashing at any step, at any commit-path crash point (including torn
    /// writes of every prefix length), recovery is all-or-nothing.
    #[test]
    fn crash_on_the_commit_path_is_all_or_nothing(
        ops in prop::collection::vec(op_strategy(), 1..20),
        crash_at in 0usize..20,
        point in 0usize..2,
        torn in 0usize..48,
    ) {
        run_workload("commit-crash", &ops, Some(crash_at % ops.len()), point, torn);
    }

    /// A transient I/O failure on the commit path (failed write or fsync
    /// with the process still running) aborts only that commit: later
    /// commits — including the retry that reuses the aborted epoch number —
    /// all survive recovery.
    #[test]
    fn io_error_on_the_commit_path_is_invisible_after_recovery(
        ops in prop::collection::vec(op_strategy(), 1..20),
        fail_at in 0usize..20,
        point in 0usize..2,
    ) {
        run_workload_io_error("io-error", &ops, fail_at % ops.len(), point);
    }

    /// Crashing inside a checkpoint never loses an acknowledged commit.
    #[test]
    fn crash_in_the_checkpoint_path_loses_nothing(
        ops in prop::collection::vec(op_strategy(), 1..20),
        crash_at in 0usize..20,
        point in 0usize..4,
    ) {
        // Splice a checkpoint in and crash exactly there.
        let mut ops = ops;
        let idx = crash_at % (ops.len() + 1);
        ops.insert(idx, Op::Checkpoint);
        run_workload("ckpt-crash", &ops, Some(idx), point, 0);
    }
}
