//! Property-based tests for the relational store: the indexed join evaluator
//! must agree with the naive homomorphism-based evaluator on random data.

use ontorew_model::prelude::*;
use ontorew_storage::{evaluate_cq, evaluate_ucq, RelationalStore};
use ontorew_unify::all_homomorphisms;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn constant() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "c", "d", "e"]).prop_map(String::from)
}

/// A random instance over the fixed signature edge/2, node/1, label/2.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    prop::collection::vec(
        prop_oneof![
            (constant(), constant()).prop_map(|(x, y)| Atom::fact("edge", &[&x, &y])),
            constant().prop_map(|x| Atom::fact("node", &[&x])),
            (constant(), constant()).prop_map(|(x, y)| Atom::fact("label", &[&x, &y])),
        ],
        0..30,
    )
    .prop_map(Instance::from_atoms)
}

fn query_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    // A pool of query shapes over the same signature, from single-atom scans
    // to triangle-ish joins with constants and repeated variables.
    prop::sample::select(vec![
        "q(X) :- node(X)",
        "q(X, Y) :- edge(X, Y)",
        "q(X) :- edge(X, X)",
        "q(X) :- edge(X, Y), node(Y)",
        "q(X, Z) :- edge(X, Y), edge(Y, Z)",
        "q(X) :- edge(X, Y), label(Y, Z)",
        "q() :- edge(\"a\", X)",
        "q(Y) :- edge(\"a\", Y), node(Y)",
        "q(X) :- edge(X, Y), edge(Y, X)",
    ])
    .prop_map(|text| parse_query(text).expect("query parses"))
}

/// Reference evaluation: enumerate all homomorphisms of the body into the
/// instance and project onto the answer variables.
fn naive_answers(instance: &Instance, query: &ConjunctiveQuery) -> BTreeSet<Vec<Term>> {
    all_homomorphisms(&query.body, instance, &Substitution::new())
        .into_iter()
        .map(|h| {
            query
                .answer_vars
                .iter()
                .map(|v| h.apply_term(Term::Variable(*v)))
                .collect()
        })
        .collect()
}

proptest! {
    /// The indexed evaluator returns exactly the naive answers.
    #[test]
    fn indexed_join_matches_naive_evaluation(
        instance in instance_strategy(),
        query in query_strategy(),
    ) {
        let store = RelationalStore::from_instance(&instance);
        let fast: BTreeSet<Vec<Term>> = evaluate_cq(&store, &query).iter().cloned().collect();
        let slow = naive_answers(&instance, &query);
        prop_assert_eq!(fast, slow);
    }

    /// Store/instance conversions are lossless.
    #[test]
    fn store_round_trip(instance in instance_strategy()) {
        let store = RelationalStore::from_instance(&instance);
        prop_assert_eq!(store.len(), instance.len());
        prop_assert_eq!(store.to_instance(), instance);
    }

    /// UCQ evaluation equals the union of the disjuncts' answers.
    #[test]
    fn ucq_is_union_of_disjuncts(
        instance in instance_strategy(),
        q1 in query_strategy(),
        q2 in query_strategy(),
    ) {
        prop_assume!(q1.arity() == q2.arity());
        let store = RelationalStore::from_instance(&instance);
        let ucq = UnionOfConjunctiveQueries::new(vec![q1.clone(), q2.clone()]);
        let combined: BTreeSet<Vec<Term>> = evaluate_ucq(&store, &ucq).iter().cloned().collect();
        let mut expected: BTreeSet<Vec<Term>> =
            evaluate_cq(&store, &q1).iter().cloned().collect();
        expected.extend(evaluate_cq(&store, &q2).iter().cloned());
        prop_assert_eq!(combined, expected);
    }

    /// Evaluation is monotone: adding facts never removes answers.
    #[test]
    fn evaluation_is_monotone(
        smaller in instance_strategy(),
        extra in instance_strategy(),
        query in query_strategy(),
    ) {
        let mut bigger = smaller.clone();
        bigger.extend_from(&extra);
        let small_store = RelationalStore::from_instance(&smaller);
        let big_store = RelationalStore::from_instance(&bigger);
        let small: BTreeSet<Vec<Term>> =
            evaluate_cq(&small_store, &query).iter().cloned().collect();
        let big: BTreeSet<Vec<Term>> =
            evaluate_cq(&big_store, &query).iter().cloned().collect();
        prop_assert!(small.is_subset(&big));
    }
}
