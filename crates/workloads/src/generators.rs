//! Ontology (TGD set) generators.

use ontorew_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn var(name: &str) -> Term {
    Term::variable(name)
}

/// A linear chain of `n` rules `p0(X) -> p1(X) -> ... -> pn(X)` — the
/// simplest FO-rewritable (Linear, SWR) family; the rewriting of a query over
/// `pn` has exactly `n + 1` disjuncts.
pub fn chain_program(n: usize) -> TgdProgram {
    let mut rules = Vec::with_capacity(n);
    for i in 0..n {
        rules.push(Tgd::labelled(
            &format!("C{i}"),
            vec![Atom::new(&format!("p{i}"), vec![var("X")])],
            vec![Atom::new(&format!("p{}", i + 1), vec![var("X")])],
        ));
    }
    TgdProgram::from_rules(rules)
}

/// A class hierarchy shaped like a complete binary tree of depth `depth`:
/// every class `c_k` has two sub-classes whose members are members of `c_k`.
/// DL-Lite-style, Linear, SWR; the number of rules is `2^(depth+1) - 2`.
pub fn hierarchy_program(depth: usize) -> TgdProgram {
    let mut rules = Vec::new();
    let mut index = 0usize;
    // Node k has children 2k+1 and 2k+2 in a heap layout.
    let nodes_before_leaves = (1usize << depth).saturating_sub(1);
    for parent in 0..nodes_before_leaves {
        for child in [2 * parent + 1, 2 * parent + 2] {
            rules.push(Tgd::labelled(
                &format!("H{index}"),
                vec![Atom::new(&format!("c{child}"), vec![var("X")])],
                vec![Atom::new(&format!("c{parent}"), vec![var("X")])],
            ));
            index += 1;
        }
    }
    TgdProgram::from_rules(rules)
}

/// A star family: `n` rules, each joining a hub atom with a spoke atom on an
/// existential variable that is *dropped* from the head, i.e. rules of the
/// form `hub_i(X, Z), spoke_i(Z) -> out_i(X)`. Each rule on its own is
/// harmless, but the family exercises the m/s labelling of the position graph
/// (every rule produces both an m-edge and an s-edge out of `out_i[ ]`).
pub fn star_program(n: usize) -> TgdProgram {
    let mut rules = Vec::with_capacity(n);
    for i in 0..n {
        rules.push(Tgd::labelled(
            &format!("S{i}"),
            vec![
                Atom::new(&format!("hub{i}"), vec![var("X"), var("Z")]),
                Atom::new(&format!("spoke{i}"), vec![var("Z")]),
            ],
            vec![Atom::new(&format!("out{i}"), vec![var("X")])],
        ));
    }
    TgdProgram::from_rules(rules)
}

/// A sticky family of `n` rules `r_i(X, Y) -> r_{i+1}(X, Z)`: every rule
/// propagates its first argument and invents the second. Linear, Sticky, SWR;
/// not weakly acyclic once `n >= 1` and the chain is closed into a cycle
/// (`closed = true`).
pub fn sticky_family_program(n: usize, closed: bool) -> TgdProgram {
    let mut rules = Vec::with_capacity(n + 1);
    for i in 0..n {
        rules.push(Tgd::labelled(
            &format!("K{i}"),
            vec![Atom::new(&format!("r{i}"), vec![var("X"), var("Y")])],
            vec![Atom::new(&format!("r{}", i + 1), vec![var("X"), var("Z")])],
        ));
    }
    if closed && n > 0 {
        rules.push(Tgd::labelled(
            "Kclose",
            vec![Atom::new(&format!("r{n}"), vec![var("X"), var("Y")])],
            vec![Atom::new("r0", vec![var("X"), var("Z")])],
        ));
    }
    TgdProgram::from_rules(rules)
}

/// Configuration for [`random_program`].
#[derive(Clone, Copy, Debug)]
pub struct RandomProgramConfig {
    /// Number of rules to generate.
    pub rules: usize,
    /// Number of predicates to draw from.
    pub predicates: usize,
    /// Maximum predicate arity (at least 1).
    pub max_arity: usize,
    /// Maximum number of body atoms per rule (at least 1).
    pub max_body_atoms: usize,
    /// Probability that a head argument is a fresh existential variable.
    pub existential_probability: f64,
    /// RNG seed (runs are reproducible for a fixed configuration).
    pub seed: u64,
}

impl Default for RandomProgramConfig {
    fn default() -> Self {
        RandomProgramConfig {
            rules: 20,
            predicates: 10,
            max_arity: 3,
            max_body_atoms: 2,
            existential_probability: 0.3,
            seed: 42,
        }
    }
}

/// Generate a random TGD program. The generated rules are *simple* TGDs
/// (single head atom, no constants, no repeated variables inside an atom), so
/// the SWR test applies to them; whether a particular draw is SWR depends on
/// the rule structure, which is the point of the classification benchmarks.
pub fn random_program(config: &RandomProgramConfig) -> TgdProgram {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let max_arity = config.max_arity.max(1);
    let arities: Vec<usize> = (0..config.predicates.max(1))
        .map(|_| rng.gen_range(1..=max_arity))
        .collect();

    let mut rules = Vec::with_capacity(config.rules);
    for rule_index in 0..config.rules {
        let body_atoms = rng.gen_range(1..=config.max_body_atoms.max(1));
        let mut body = Vec::with_capacity(body_atoms);
        let mut variable_pool: Vec<String> = Vec::new();
        let mut next_var = 0usize;
        for _ in 0..body_atoms {
            let predicate = rng.gen_range(0..arities.len());
            let mut terms = Vec::with_capacity(arities[predicate]);
            let mut used_in_atom: Vec<String> = Vec::new();
            for _ in 0..arities[predicate] {
                // Reuse a pool variable (to create joins) or mint a new one;
                // never reuse a variable already used in this atom (simple
                // TGDs have no repeated variables inside an atom).
                let reusable: Vec<&String> = variable_pool
                    .iter()
                    .filter(|v| !used_in_atom.contains(v))
                    .collect();
                let name = if !reusable.is_empty() && rng.gen_bool(0.5) {
                    reusable[rng.gen_range(0..reusable.len())].clone()
                } else {
                    let name = format!("V{next_var}");
                    next_var += 1;
                    variable_pool.push(name.clone());
                    name
                };
                used_in_atom.push(name.clone());
                terms.push(var(&name));
            }
            body.push(Atom::new(&format!("q{predicate}"), terms));
        }

        // Head: one atom over a random predicate; arguments are either body
        // variables or fresh existentials, without repetitions.
        let head_predicate = rng.gen_range(0..arities.len());
        let mut head_terms = Vec::with_capacity(arities[head_predicate]);
        let mut used_in_head: Vec<String> = Vec::new();
        for _ in 0..arities[head_predicate] {
            let candidates: Vec<&String> = variable_pool
                .iter()
                .filter(|v| !used_in_head.contains(v))
                .collect();
            let name = if !candidates.is_empty() && !rng.gen_bool(config.existential_probability) {
                candidates[rng.gen_range(0..candidates.len())].clone()
            } else {
                let name = format!("E{next_var}");
                next_var += 1;
                name
            };
            used_in_head.push(name.clone());
            head_terms.push(var(&name));
        }
        let head = vec![Atom::new(&format!("q{head_predicate}"), head_terms)];
        rules.push(Tgd::labelled(&format!("G{rule_index}"), body, head));
    }
    TgdProgram::from_rules(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_program_shape() {
        let p = chain_program(5);
        assert_eq!(p.len(), 5);
        assert!(p.is_simple());
        assert!(p.iter().all(|r| r.body.len() == 1 && r.head.len() == 1));
    }

    #[test]
    fn hierarchy_program_size_is_exponential_in_depth() {
        assert_eq!(hierarchy_program(1).len(), 2);
        assert_eq!(hierarchy_program(2).len(), 6);
        assert_eq!(hierarchy_program(3).len(), 14);
        assert!(hierarchy_program(3).is_simple());
    }

    #[test]
    fn star_program_has_two_body_atoms_per_rule() {
        let p = star_program(4);
        assert_eq!(p.len(), 4);
        assert!(p.iter().all(|r| r.body.len() == 2));
        assert!(p.is_simple());
    }

    #[test]
    fn sticky_family_open_and_closed() {
        let open = sticky_family_program(3, false);
        let closed = sticky_family_program(3, true);
        assert_eq!(open.len(), 3);
        assert_eq!(closed.len(), 4);
        assert!(open.is_simple());
    }

    #[test]
    fn random_program_is_reproducible_and_simple() {
        let config = RandomProgramConfig::default();
        let a = random_program(&config);
        let b = random_program(&config);
        assert_eq!(a.len(), config.rules);
        assert_eq!(format!("{a}"), format!("{b}"));
        assert!(a.is_simple());
    }

    #[test]
    fn random_programs_differ_across_seeds() {
        let a = random_program(&RandomProgramConfig {
            seed: 1,
            ..RandomProgramConfig::default()
        });
        let b = random_program(&RandomProgramConfig {
            seed: 2,
            ..RandomProgramConfig::default()
        });
        assert_ne!(format!("{a}"), format!("{b}"));
    }

    #[test]
    fn random_program_respects_limits() {
        let config = RandomProgramConfig {
            rules: 50,
            predicates: 5,
            max_arity: 4,
            max_body_atoms: 3,
            ..RandomProgramConfig::default()
        };
        let p = random_program(&config);
        assert!(p.max_arity() <= 4);
        assert!(p.iter().all(|r| r.body.len() <= 3));
        assert!(p.predicates().len() <= 5);
    }
}
