//! # ontorew-workloads
//!
//! Synthetic TGD ontologies and data generators for the benchmark harness.
//!
//! The paper reports no datasets of its own (it is a PhD-symposium paper), so
//! the scaling experiments of EXPERIMENTS.md run on parameterised synthetic
//! families that exercise the relevant structure: linear chains and class
//! hierarchies (the DL-Lite-style workloads §1 motivates), star-shaped join
//! rules, sticky/non-sticky families, and random TGD sets. Every generator is
//! seeded, so runs are reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod abox;
pub mod generators;
pub mod suites;

pub use abox::{random_abox, university_abox, AboxConfig};
pub use generators::{
    chain_program, hierarchy_program, random_program, star_program, sticky_family_program,
    RandomProgramConfig,
};
pub use suites::{
    lubm_style_abox, lubm_style_ontology, lubm_style_queries, registrar_abox, registrar_ontology,
    registrar_queries, sensor_network_abox, sensor_network_ontology, sensor_network_queries,
    social_graph_abox, social_graph_ontology, social_graph_queries, supply_chain_abox,
    supply_chain_ontology,
};
