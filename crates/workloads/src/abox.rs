//! Data (ABox) generators: the extensional databases the OBDA benchmarks run
//! over.

use ontorew_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_abox`].
#[derive(Clone, Copy, Debug)]
pub struct AboxConfig {
    /// Number of facts to generate.
    pub facts: usize,
    /// Size of the constant pool.
    pub constants: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AboxConfig {
    fn default() -> Self {
        AboxConfig {
            facts: 1_000,
            constants: 200,
            seed: 7,
        }
    }
}

/// Generate a random database over the signature of `program`: facts are drawn
/// uniformly over the program's predicates with constants from a fixed pool.
///
/// The signature can hold only finitely many distinct facts
/// (`Σ constants^arity`), so the generator produces
/// `min(config.facts, capacity)` facts; a bound on the number of draws keeps
/// near-capacity requests from degenerating into a coupon-collector tail.
pub fn random_abox(program: &TgdProgram, config: &AboxConfig) -> Instance {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let predicates: Vec<Predicate> = program.predicates().into_iter().collect();
    let mut db = Instance::new();
    if predicates.is_empty() || config.facts == 0 {
        return db;
    }
    let pool = config.constants.max(1);
    let capacity: usize = predicates
        .iter()
        .map(|p| pool.saturating_pow(p.arity.min(u32::MAX as usize) as u32))
        .fold(0usize, usize::saturating_add);
    let target = config.facts.min(capacity);
    let max_draws = target.saturating_mul(64).max(1024);
    let mut draws = 0usize;
    while db.len() < target && draws < max_draws {
        draws += 1;
        let p = predicates[rng.gen_range(0..predicates.len())];
        let terms: Vec<Term> = (0..p.arity)
            .map(|_| Term::constant(&format!("c{}", rng.gen_range(0..pool))))
            .collect();
        db.insert(Atom::from_predicate(p, terms));
    }
    db
}

/// Generate a university-style database with `students` students, `professors`
/// professors and `courses` courses, shaped for the ontology of
/// `ontorew_core::examples::university_ontology`: professors teach courses,
/// students attend them, some students are PhD students advised by professors.
pub fn university_abox(students: usize, professors: usize, courses: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Instance::new();
    for c in 0..courses {
        db.insert_fact("course", &[&format!("course{c}")]);
    }
    for p in 0..professors {
        let name = format!("prof{p}");
        db.insert_fact("professor", &[&name]);
        // Each professor teaches one to three courses.
        for _ in 0..rng.gen_range(1..=3usize) {
            if courses > 0 {
                let c = rng.gen_range(0..courses);
                db.insert_fact("teaches", &[&name, &format!("course{c}")]);
            }
        }
    }
    for s in 0..students {
        let name = format!("student{s}");
        db.insert_fact("student", &[&name]);
        for _ in 0..rng.gen_range(1..=4usize) {
            if courses > 0 {
                let c = rng.gen_range(0..courses);
                db.insert_fact("attends", &[&name, &format!("course{c}")]);
            }
        }
        // Every tenth student is a PhD student with an advisor.
        if s % 10 == 0 && professors > 0 {
            db.insert_fact("phdStudent", &[&name]);
            let p = rng.gen_range(0..professors);
            db.insert_fact("advisedBy", &[&name, &format!("prof{p}")]);
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::chain_program;

    #[test]
    fn random_abox_has_the_requested_size_and_signature() {
        // star_program has binary hub predicates, so the signature capacity
        // (200^2 per predicate) comfortably exceeds the requested 1000 facts.
        let p = crate::generators::star_program(3);
        let db = random_abox(&p, &AboxConfig::default());
        assert_eq!(db.len(), 1_000);
        assert!(p.signature().contains_signature(&db.signature()));
    }

    #[test]
    fn random_abox_is_capped_by_the_signature_capacity() {
        // chain_program(3) has 4 unary predicates; with a 10-constant pool at
        // most 40 distinct facts exist, so asking for 1000 must terminate and
        // return at most 40.
        let p = chain_program(3);
        let db = random_abox(
            &p,
            &AboxConfig {
                facts: 1_000,
                constants: 10,
                seed: 3,
            },
        );
        assert!(db.len() <= 40);
        assert!(!db.is_empty());
    }

    #[test]
    fn random_abox_is_reproducible() {
        let p = chain_program(3);
        let a = random_abox(&p, &AboxConfig::default());
        let b = random_abox(&p, &AboxConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_program_yields_empty_abox() {
        let db = random_abox(&TgdProgram::new(), &AboxConfig::default());
        assert!(db.is_empty());
    }

    #[test]
    fn university_abox_is_populated_consistently() {
        let db = university_abox(100, 10, 20, 1);
        assert_eq!(db.relation_size(Predicate::new("student", 1)), 100);
        assert_eq!(db.relation_size(Predicate::new("professor", 1)), 10);
        assert_eq!(db.relation_size(Predicate::new("course", 1)), 20);
        assert_eq!(db.relation_size(Predicate::new("phdStudent", 1)), 10);
        assert!(db.relation_size(Predicate::new("teaches", 2)) >= 10);
        assert!(db.relation_size(Predicate::new("attends", 2)) >= 100);
        assert_eq!(db.relation_size(Predicate::new("advisedBy", 2)), 10);
    }

    #[test]
    fn university_abox_scales_with_parameters() {
        let small = university_abox(10, 2, 5, 1);
        let large = university_abox(1000, 20, 50, 1);
        assert!(large.len() > small.len());
    }
}
