//! Fixed ontology suites: realistic, hand-written TGD sets modelled on the
//! benchmark ontologies an OBDA evaluation would use.
//!
//! The paper reports no datasets (it is a PhD-symposium paper), but its
//! motivation — the Optique project, OBDA over enterprise relational data —
//! points at two families of workloads which we reconstruct here as TGD
//! programs over our own vocabulary:
//!
//! * [`lubm_style_ontology`] — a university-domain ontology in the spirit of
//!   LUBM: a class hierarchy, domain/range typing, mandatory participation
//!   axioms. Entirely Linear/SWR, i.e. the "easy" FO-rewritable case.
//! * [`sensor_network_ontology`] — an Optique-style measurement/equipment
//!   ontology: qualified joins, chained navigation and multi-atom bodies that
//!   leave the DL-Lite fragment while (mostly) staying FO-rewritable — the
//!   territory where SWR/WR earn their keep.
//! * [`supply_chain_ontology`] — a deliberately *non*-FO-rewritable workload
//!   (transitive part-of plus a feedback rule) used by the approximation and
//!   materialization experiments.
//! * [`registrar_ontology`] — a pure-Datalog curriculum workload (transitive
//!   prerequisite closure, so not FO-rewritable, but weakly acyclic): the
//!   chase-territory suite whose selective queries exercise the goal-driven
//!   (magic-sets) pipeline, where materializing the full model is the worst
//!   case the restriction avoids.
//!
//! Each suite comes with a data generator producing an ABox of a requested
//! size over the suite's vocabulary, so benchmarks can sweep data size with a
//! fixed ontology.

use ontorew_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn parse(text: &str) -> TgdProgram {
    parse_program(text).expect("suite ontology must parse")
}

/// A LUBM-style university ontology: 24 Linear TGDs (class hierarchy,
/// domain/range typing, mandatory participation).
pub fn lubm_style_ontology() -> TgdProgram {
    parse(
        "[L1] fullProfessor(X) -> professor(X).\n\
         [L2] associateProfessor(X) -> professor(X).\n\
         [L3] assistantProfessor(X) -> professor(X).\n\
         [L4] professor(X) -> faculty(X).\n\
         [L5] lecturer(X) -> faculty(X).\n\
         [L6] faculty(X) -> employee(X).\n\
         [L7] employee(X) -> person(X).\n\
         [L8] undergraduateStudent(X) -> student(X).\n\
         [L9] graduateStudent(X) -> student(X).\n\
         [L10] student(X) -> person(X).\n\
         [L11] teachingAssistant(X) -> graduateStudent(X).\n\
         [L12] researchAssistant(X) -> graduateStudent(X).\n\
         [L13] teaches(X, C) -> faculty(X).\n\
         [L14] teaches(X, C) -> course(C).\n\
         [L15] takesCourse(S, C) -> student(S).\n\
         [L16] takesCourse(S, C) -> course(C).\n\
         [L17] advisorOf(A, S) -> professor(A).\n\
         [L18] advisorOf(A, S) -> graduateStudent(S).\n\
         [L19] worksFor(X, D) -> employee(X).\n\
         [L20] worksFor(X, D) -> department(D).\n\
         [L21] department(D) -> subOrganizationOf(D, U).\n\
         [L22] subOrganizationOf(D, U) -> university(U).\n\
         [L23] professor(X) -> teaches(X, C).\n\
         [L24] graduateStudent(S) -> advisorOf(A, S).",
    )
}

/// A random ABox over the LUBM-style vocabulary with roughly
/// `students + professors + courses` individuals and a proportional number of
/// role assertions. Seeded and reproducible.
pub fn lubm_style_abox(students: usize, professors: usize, courses: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Instance::new();
    for c in 0..courses {
        db.insert_fact("course", &[&format!("course{c}")]);
    }
    for p in 0..professors {
        let name = format!("prof{p}");
        match p % 3 {
            0 => db.insert_fact("fullProfessor", &[&name]),
            1 => db.insert_fact("associateProfessor", &[&name]),
            _ => db.insert_fact("assistantProfessor", &[&name]),
        };
        db.insert_fact("worksFor", &[&name, &format!("dept{}", p % 8)]);
        if courses > 0 {
            for _ in 0..rng.gen_range(1..=2usize) {
                let c = rng.gen_range(0..courses);
                db.insert_fact("teaches", &[&name, &format!("course{c}")]);
            }
        }
    }
    for s in 0..students {
        let name = format!("student{s}");
        if s % 4 == 0 {
            db.insert_fact("graduateStudent", &[&name]);
            if professors > 0 {
                let p = rng.gen_range(0..professors);
                db.insert_fact("advisorOf", &[&format!("prof{p}"), &name]);
            }
        } else {
            db.insert_fact("undergraduateStudent", &[&name]);
        }
        if courses > 0 {
            for _ in 0..rng.gen_range(1..=3usize) {
                let c = rng.gen_range(0..courses);
                db.insert_fact("takesCourse", &[&name, &format!("course{c}")]);
            }
        }
    }
    db
}

/// The benchmark queries usually asked over the LUBM-style suite.
pub fn lubm_style_queries() -> Vec<ConjunctiveQuery> {
    [
        "q(X) :- person(X)",
        "q(X) :- faculty(X)",
        "q(X, C) :- teaches(X, C)",
        "q(S) :- graduateStudent(S), advisorOf(A, S)",
        "q(S, C) :- takesCourse(S, C), teaches(P, C), professor(P)",
        "q(U) :- worksFor(X, D), subOrganizationOf(D, U)",
    ]
    .iter()
    .map(|q| parse_query(q).expect("suite query must parse"))
    .collect()
}

/// An Optique-style sensor/measurement ontology: 14 TGDs with qualified joins
/// and navigation chains that leave the DL-Lite/Linear fragment.
pub fn sensor_network_ontology() -> TgdProgram {
    parse(
        "[S1] temperatureSensor(X) -> sensor(X).\n\
         [S2] pressureSensor(X) -> sensor(X).\n\
         [S3] sensor(X) -> device(X).\n\
         [S4] sensor(X) -> installedOn(X, E).\n\
         [S5] installedOn(X, E) -> equipment(E).\n\
         [S6] equipment(E) -> locatedIn(E, F).\n\
         [S7] locatedIn(E, F) -> facility(F).\n\
         [S8] measurement(M) -> producedBy(M, S).\n\
         [S9] producedBy(M, S) -> sensor(S).\n\
         [S10] producedBy(M, S), installedOn(S, E) -> monitors(M, E).\n\
         [S11] monitors(M, E), locatedIn(E, F) -> observedAt(M, F).\n\
         [S12] alarm(A), raisedBy(A, M) -> measurement(M).\n\
         [S13] criticalAlarm(A) -> alarm(A).\n\
         [S14] raisedBy(A, M), producedBy(M, S) -> implicates(A, S).",
    )
}

/// A random ABox over the sensor vocabulary: `sensors` sensors spread over
/// `equipment` pieces of equipment, `measurements` measurements and a 2%
/// alarm rate. Seeded and reproducible.
pub fn sensor_network_abox(
    sensors: usize,
    equipment: usize,
    measurements: usize,
    seed: u64,
) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Instance::new();
    for e in 0..equipment {
        db.insert_fact("equipment", &[&format!("eq{e}")]);
        db.insert_fact(
            "locatedIn",
            &[&format!("eq{e}"), &format!("plant{}", e % 4)],
        );
    }
    for s in 0..sensors {
        let name = format!("sensor{s}");
        if s % 2 == 0 {
            db.insert_fact("temperatureSensor", &[&name]);
        } else {
            db.insert_fact("pressureSensor", &[&name]);
        }
        if equipment > 0 {
            let e = rng.gen_range(0..equipment);
            db.insert_fact("installedOn", &[&name, &format!("eq{e}")]);
        }
    }
    for m in 0..measurements {
        let name = format!("m{m}");
        db.insert_fact("measurement", &[&name]);
        if sensors > 0 {
            let s = rng.gen_range(0..sensors);
            db.insert_fact("producedBy", &[&name, &format!("sensor{s}")]);
        }
        if m % 50 == 0 {
            let alarm = format!("alarm{m}");
            db.insert_fact("criticalAlarm", &[&alarm]);
            db.insert_fact("raisedBy", &[&alarm, &name]);
        }
    }
    db
}

/// The benchmark queries for the sensor suite.
pub fn sensor_network_queries() -> Vec<ConjunctiveQuery> {
    [
        "q(S) :- sensor(S)",
        "q(E) :- equipment(E)",
        "q(M, F) :- observedAt(M, F)",
        "q(A, S) :- implicates(A, S), criticalAlarm(A)",
        "q(M) :- monitors(M, E), locatedIn(E, F), facility(F)",
    ]
    .iter()
    .map(|q| parse_query(q).expect("suite query must parse"))
    .collect()
}

/// A supply-chain ontology that is *not* FO-rewritable: transitive part-of
/// plus a feedback rule. Used by the approximation (E10) and
/// materialization-fallback experiments.
pub fn supply_chain_ontology() -> TgdProgram {
    parse(
        "[P1] component(X) -> part(X).\n\
         [P2] assembly(X) -> part(X).\n\
         [P3] partOf(X, Y), partOf(Y, Z) -> partOf(X, Z).\n\
         [P4] partOf(X, Y), assembly(Y) -> component(X).\n\
         [P5] suppliedBy(X, S) -> supplier(S).\n\
         [P6] part(X) -> suppliedBy(X, S).",
    )
}

/// A random bill-of-materials ABox: a forest of part-of trees with `parts`
/// parts of fanout ~3, plus supplier assertions. Seeded and reproducible.
pub fn supply_chain_abox(parts: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Instance::new();
    for p in 0..parts {
        let name = format!("part{p}");
        if p < parts / 10 + 1 {
            db.insert_fact("assembly", &[&name]);
        } else {
            db.insert_fact("component", &[&name]);
        }
        if p > 0 {
            // Attach to a random earlier part: yields trees of bounded depth.
            let parent = rng.gen_range(0..p);
            db.insert_fact("partOf", &[&name, &format!("part{parent}")]);
        }
        if p % 5 == 0 {
            db.insert_fact("suppliedBy", &[&name, &format!("supplier{}", p % 7)]);
        }
    }
    db
}

/// A social-graph ontology: linear typing and endorsement rules over a
/// `follows` relation. FO-rewritable *and* weakly acyclic, so its queries
/// compile to hybrid plans — but unlike every other suite, its benchmark
/// queries are **cyclic** (triangles, cliques), the shape where the
/// worst-case-optimal generic join beats atom-at-a-time backtracking.
pub fn social_graph_ontology() -> TgdProgram {
    parse(
        "[F1] follows(X, Y) -> member(X).\n\
         [F2] follows(X, Y) -> member(Y).\n\
         [F3] influencer(X) -> member(X).\n\
         [F4] member(X) -> hasProfile(X, P).\n\
         [F5] endorses(X, Y) -> follows(X, Y).",
    )
}

/// A hub-heavy follower graph: `hubs` celebrity accounts forming a complete
/// directed graph, `users` regular accounts each following three hubs, their
/// ring successor and one random account, with the hubs following back every
/// tenth user. The celebrity follow-backs give hub vertices in- *and*
/// out-degree Θ(users), so enumerating 2-paths through a hub — what a
/// backtracking triangle join does — costs Θ(users²) while the triangle
/// count (and a worst-case-optimal join's work) stays near-linear. Seeded
/// and reproducible.
pub fn social_graph_abox(users: usize, hubs: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let hubs = hubs.max(2);
    let users = users.max(1);
    let hub_name = |h: usize| format!("hub{h}");
    let user_name = |u: usize| format!("user{u}");
    let mut db = Instance::new();
    for a in 0..hubs {
        db.insert_fact("influencer", &[&hub_name(a)]);
        for b in 0..hubs {
            if a != b {
                db.insert_fact("follows", &[&hub_name(a), &hub_name(b)]);
            }
        }
    }
    for u in 0..users {
        let name = user_name(u);
        for i in 0..3 {
            db.insert_fact("follows", &[&name, &hub_name((u + i) % hubs)]);
        }
        db.insert_fact("follows", &[&name, &user_name((u + 1) % users)]);
        let other = rng.gen_range(0..users);
        db.insert_fact("follows", &[&name, &user_name(other)]);
        if u % 10 == 0 {
            for h in 0..hubs {
                db.insert_fact("follows", &[&hub_name(h), &name]);
            }
        }
    }
    db
}

/// The benchmark queries for the social-graph suite: a triangle and a
/// (DAG-oriented) 4-clique — cyclic bodies where the generic join is
/// worst-case optimal and backtracking is not — plus an anchored 2-path as
/// the acyclic control the cost model should keep on backtracking.
pub fn social_graph_queries() -> Vec<ConjunctiveQuery> {
    [
        "q(X, Y, Z) :- follows(X, Y), follows(Y, Z), follows(Z, X)",
        "q(X, Y, Z, W) :- follows(X, Y), follows(X, Z), follows(X, W), \
         follows(Y, Z), follows(Y, W), follows(Z, W)",
        "q(Z) :- follows(\"user0\", Y), follows(Y, Z)",
    ]
    .iter()
    .map(|q| parse_query(q).expect("suite query must parse"))
    .collect()
}

/// A registrar (curriculum) ontology: pure Datalog, so the chase terminates
/// (weakly acyclic), but the transitive prerequisite closure `G4` keeps it
/// outside every FO-rewritable class — the planner's chase territory. The
/// interesting workload shape: `mustComplete` fans out to every transitively
/// required course of every enrollment, so the full universal model is large
/// while a per-student query touches a sliver of it.
pub fn registrar_ontology() -> TgdProgram {
    parse(
        "[G1] enrolled(S, C) -> student(S).\n\
         [G2] enrolled(S, C) -> course(C).\n\
         [G3] prereq(C1, C2) -> requires(C1, C2).\n\
         [G4] requires(C1, C2), prereq(C2, C3) -> requires(C1, C3).\n\
         [G5] enrolled(S, C), requires(C, P) -> mustComplete(S, P).",
    )
}

/// A random registrar ABox: `students` students with ~2 enrollments each
/// over `students / 4` courses, the courses organised into prerequisite
/// chains of length `chain` (so `requires` closes to ~`chain / 2` ancestors
/// per course). Seeded and reproducible.
pub fn registrar_abox(students: usize, chain: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let chain = chain.max(2);
    let courses = (students / 4).max(chain);
    let mut db = Instance::new();
    for c in 0..courses {
        // Consecutive courses within a block of `chain` form a prereq chain.
        if c % chain != 0 {
            db.insert_fact(
                "prereq",
                &[&format!("course{c}"), &format!("course{}", c - 1)],
            );
        }
    }
    for s in 0..students {
        let name = format!("student{s}");
        for _ in 0..2 {
            let c = rng.gen_range(0..courses);
            db.insert_fact("enrolled", &[&name, &format!("course{c}")]);
        }
    }
    db
}

/// The benchmark queries for the registrar suite: the first is the
/// *selective* one (a single student's transitive obligations — the
/// goal-driven pipeline's home turf), the second a broad scan that no goal
/// restriction can prune.
pub fn registrar_queries() -> Vec<ConjunctiveQuery> {
    [
        "q(P) :- mustComplete(\"student42\", P)",
        "q(S) :- student(S)",
    ]
    .iter()
    .map(|q| parse_query(q).expect("suite query must parse"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lubm_suite_parses_and_has_the_documented_size() {
        let p = lubm_style_ontology();
        assert_eq!(p.len(), 24);
        assert!(p.iter().all(|r| r.body.len() == 1), "LUBM suite is Linear");
        assert!(!lubm_style_queries().is_empty());
    }

    #[test]
    fn lubm_abox_scales_and_is_reproducible() {
        let small = lubm_style_abox(50, 5, 10, 7);
        let large = lubm_style_abox(500, 50, 100, 7);
        assert!(large.len() > small.len());
        assert_eq!(lubm_style_abox(50, 5, 10, 7), lubm_style_abox(50, 5, 10, 7));
        assert!(small.relation_size(Predicate::new("takesCourse", 2)) >= 50);
    }

    #[test]
    fn sensor_suite_leaves_the_linear_fragment() {
        let p = sensor_network_ontology();
        assert_eq!(p.len(), 14);
        assert!(p.iter().any(|r| r.body.len() >= 2));
    }

    #[test]
    fn sensor_abox_covers_the_vocabulary() {
        let db = sensor_network_abox(20, 5, 200, 3);
        assert_eq!(db.relation_size(Predicate::new("measurement", 1)), 200);
        assert_eq!(db.relation_size(Predicate::new("producedBy", 2)), 200);
        assert!(db.relation_size(Predicate::new("criticalAlarm", 1)) >= 1);
        assert!(!sensor_network_queries().is_empty());
    }

    #[test]
    fn registrar_suite_is_datalog_with_a_transitive_closure() {
        let p = registrar_ontology();
        assert_eq!(p.len(), 5);
        assert!(
            p.iter().all(|r| r.is_full() && r.head.len() == 1),
            "registrar suite is pure Datalog (chase-terminating)"
        );
        assert!(p
            .iter()
            .any(|r| r.body.len() == 2 && r.body[0].predicate == r.head[0].predicate));
        let db = registrar_abox(400, 8, 11);
        assert_eq!(registrar_abox(400, 8, 11), registrar_abox(400, 8, 11));
        let enrolled = db.relation_size(Predicate::new("enrolled", 2));
        assert!(
            (400..=800).contains(&enrolled),
            "~2 enrollments per student"
        );
        assert!(db.relation_size(Predicate::new("prereq", 2)) >= 80);
        assert!(!registrar_queries().is_empty());
    }

    #[test]
    fn social_graph_suite_is_cyclic_where_it_counts() {
        let p = social_graph_ontology();
        assert!(
            p.iter().all(|r| r.body.len() == 1),
            "social suite is Linear (FO-rewritable)"
        );
        let db = social_graph_abox(300, 8, 5);
        assert_eq!(social_graph_abox(300, 8, 5), social_graph_abox(300, 8, 5));
        let follows = db.relation_size(Predicate::new("follows", 2));
        // hubs² + ~5 per user + follow-backs.
        assert!(follows > 300 * 5, "hub graph must be dense: {follows}");
        let queries = social_graph_queries();
        assert_eq!(queries.len(), 3);
        assert!(
            ontorew_unify::is_cyclic(&queries[0].body),
            "triangle query must be GYO-cyclic"
        );
        assert!(
            ontorew_unify::is_cyclic(&queries[1].body),
            "clique query must be GYO-cyclic"
        );
        assert!(
            !ontorew_unify::is_cyclic(&queries[2].body),
            "anchored 2-path is the acyclic control"
        );
    }

    #[test]
    fn supply_chain_suite_contains_the_transitive_rule() {
        let p = supply_chain_ontology();
        assert!(p
            .iter()
            .any(|r| r.body.len() == 2 && r.body[0].predicate == r.head[0].predicate));
        let db = supply_chain_abox(100, 1);
        assert_eq!(db.relation_size(Predicate::new("partOf", 2)), 99);
    }
}
