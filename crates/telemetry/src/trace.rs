//! Zero-cost-when-disabled span tracing.
//!
//! A request that wants a trace installs a thread-local [`Collector`];
//! instrumented code opens spans with [`span`], which returns a guard that
//! records a [`FinishedSpan`] on drop. When no collector is installed
//! anywhere in the process, `span()` is a single relaxed atomic load and a
//! branch — the instrumentation stays in release builds at (measured)
//! negligible cost.
//!
//! The model is deliberately synchronous: the serve layer handles each
//! request start-to-finish on one worker thread, so a thread-local span
//! stack reconstructs the tree exactly. Work the chase engine fans out to
//! `crossbeam` scoped threads is *not* captured in the request's tree (the
//! aggregate still shows up in the parent span's duration and in the
//! metrics registry); that is a documented limitation, not a bug.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Count of currently-installed collectors across all threads. Zero means
/// every `span()` call takes the fast path.
static TRACING_ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// One completed span.
#[derive(Clone, Debug)]
pub struct FinishedSpan {
    /// Id unique within the trace (assignment order = start order).
    pub id: u32,
    /// Parent span id, or `None` for a root span.
    pub parent: Option<u32>,
    /// Static span name (the span taxonomy lives in the README).
    pub name: &'static str,
    /// Space-separated `key=value` attributes (empty when none).
    pub attrs: String,
    /// Start offset from the collector's install time, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

/// One request's completed trace: metadata plus spans in start order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// The request id the serve layer assigned.
    pub request_id: u64,
    /// Tenant the request ran against.
    pub tenant: String,
    /// Protocol verb of the request.
    pub verb: String,
    /// Total wall time of the traced section, microseconds.
    pub total_us: u64,
    /// Spans in start order (parents precede children).
    pub spans: Vec<FinishedSpan>,
}

struct Collector {
    start: Instant,
    spans: Vec<FinishedSpan>,
    stack: Vec<u32>,
    next_id: u32,
    limit: usize,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Install a collector on this thread, capturing at most `limit` spans
/// (further spans are counted into the roots' durations but dropped).
/// Replaces any previous collector on the thread.
pub fn install_collector(limit: usize) {
    COLLECTOR.with(|slot| {
        if slot
            .borrow_mut()
            .replace(Collector {
                start: Instant::now(),
                spans: Vec::new(),
                stack: Vec::new(),
                next_id: 0,
                limit: limit.max(1),
            })
            .is_none()
        {
            TRACING_ACTIVE.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Remove this thread's collector and return the spans it captured (empty
/// vec and zero total when none was installed).
pub fn take_collector() -> (Vec<FinishedSpan>, u64) {
    COLLECTOR.with(|slot| match slot.borrow_mut().take() {
        Some(mut c) => {
            TRACING_ACTIVE.fetch_sub(1, Ordering::Relaxed);
            // Guards record on drop, so children land before their parents;
            // re-sort into start order (parents precede children), which is
            // what `render_tree` expects.
            c.spans.sort_by_key(|s| s.id);
            (c.spans, c.start.elapsed().as_micros() as u64)
        }
        None => (Vec::new(), 0),
    })
}

/// Whether any thread currently has a collector installed. The fast path:
/// a single relaxed load.
#[inline]
pub fn tracing_active() -> bool {
    TRACING_ACTIVE.load(Ordering::Relaxed) != 0
}

/// Open a span. When tracing is disabled the guard is inert and the call
/// costs one atomic load; when enabled it pushes onto this thread's span
/// stack and records a [`FinishedSpan`] on drop.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !tracing_active() {
        return SpanGuard { live: None };
    }
    span_slow(name)
}

#[cold]
fn span_slow(name: &'static str) -> SpanGuard {
    COLLECTOR.with(|slot| {
        let mut slot = slot.borrow_mut();
        let Some(c) = slot.as_mut() else {
            // Another thread is tracing, not this one.
            return SpanGuard { live: None };
        };
        if c.spans.len() >= c.limit {
            return SpanGuard { live: None };
        }
        let id = c.next_id;
        c.next_id += 1;
        let parent = c.stack.last().copied();
        c.stack.push(id);
        SpanGuard {
            live: Some(LiveSpan {
                id,
                parent,
                name,
                attrs: String::new(),
                started: Instant::now(),
            }),
        }
    })
}

struct LiveSpan {
    id: u32,
    parent: Option<u32>,
    name: &'static str,
    attrs: String,
    started: Instant,
}

/// RAII guard for an open span; records the span when dropped.
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl SpanGuard {
    /// Attach a `key=value` attribute. A no-op (no formatting) when the
    /// span is inert, so callers can attach values unconditionally.
    pub fn attr(&mut self, key: &str, value: impl std::fmt::Display) {
        if let Some(live) = self.live.as_mut() {
            if !live.attrs.is_empty() {
                live.attrs.push(' ');
            }
            live.attrs.push_str(key);
            live.attrs.push('=');
            live.attrs.push_str(&value.to_string());
        }
    }

    /// Whether this guard is actually recording (useful to skip expensive
    /// attribute computation).
    pub fn recording(&self) -> bool {
        self.live.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let dur_us = live.started.elapsed().as_micros() as u64;
        COLLECTOR.with(|slot| {
            let mut slot = slot.borrow_mut();
            let Some(c) = slot.as_mut() else { return };
            // Unwind the stack to this span — guards drop in LIFO order on
            // a single thread, so this is normally a single pop.
            while let Some(top) = c.stack.pop() {
                if top == live.id {
                    break;
                }
            }
            let start_us = live.started.duration_since(c.start).as_micros() as u64;
            c.spans.push(FinishedSpan {
                id: live.id,
                parent: live.parent,
                name: live.name,
                attrs: live.attrs,
                start_us,
                dur_us,
            });
        });
    }
}

/// Where completed traces go. The default sink is the in-memory ring; a
/// test or an exporter can install its own.
pub trait TraceSink: Send + Sync {
    /// Accept one completed trace.
    fn accept(&self, trace: Trace);
}

/// Bounded in-memory ring of the most recent traces.
pub struct TraceRing {
    traces: Mutex<VecDeque<Trace>>,
    capacity: AtomicUsize,
}

impl TraceRing {
    /// A ring holding at most `capacity` traces.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            traces: Mutex::new(VecDeque::new()),
            capacity: AtomicUsize::new(capacity),
        }
    }

    /// Change the capacity (the server's `--trace-ring` flag), trimming
    /// oldest traces if needed.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
        let mut traces = self.traces.lock();
        while traces.len() > capacity {
            traces.pop_front();
        }
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        self.traces.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the held traces, oldest first.
    pub fn snapshot(&self) -> Vec<Trace> {
        self.traces.lock().iter().cloned().collect()
    }
}

impl TraceSink for TraceRing {
    fn accept(&self, trace: Trace) {
        let capacity = self.capacity.load(Ordering::Relaxed);
        if capacity == 0 {
            return;
        }
        let mut traces = self.traces.lock();
        while traces.len() >= capacity {
            traces.pop_front();
        }
        traces.push_back(trace);
    }
}

/// The process-global trace ring (default capacity 64; the server resizes
/// it from `--trace-ring`).
pub fn global_ring() -> &'static TraceRing {
    static RING: OnceLock<TraceRing> = OnceLock::new();
    RING.get_or_init(|| TraceRing::new(64))
}

/// Render a trace's span tree as indented text lines (the `TRACE` verb's
/// INFO payload and the slow-query log detail).
pub fn render_tree(trace: &Trace) -> Vec<String> {
    let mut lines = Vec::with_capacity(trace.spans.len());
    let mut depth_of: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for span in &trace.spans {
        let depth = span
            .parent
            .and_then(|p| depth_of.get(&p).copied())
            .map_or(0, |d| d + 1);
        depth_of.insert(span.id, depth);
        let mut line = format!(
            "{}{} {}us @{}us",
            "  ".repeat(depth),
            span.name,
            span.dur_us,
            span.start_us
        );
        if !span.attrs.is_empty() {
            line.push(' ');
            line.push_str(&span.attrs);
        }
        lines.push(line);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_inert_without_a_collector() {
        let (spans, _) = take_collector();
        assert!(spans.is_empty());
        {
            let mut g = span("noop");
            g.attr("k", 1);
            assert!(!g.recording());
        }
        let (spans, _) = take_collector();
        assert!(spans.is_empty());
    }

    #[test]
    fn collector_reconstructs_the_span_tree() {
        install_collector(100);
        {
            let mut root = span("request");
            root.attr("verb", "QUERY");
            {
                let _child = span("materialize");
                let _grandchild = span("chase.round");
            }
            let _sibling = span("evaluate");
        }
        let (spans, total) = take_collector();
        assert_eq!(spans.len(), 4);
        // Spans finish in drop order; ids are in start order.
        let by_name: std::collections::HashMap<&str, &FinishedSpan> =
            spans.iter().map(|s| (s.name, s)).collect();
        let root = by_name["request"];
        assert_eq!(root.parent, None);
        assert!(root.attrs.contains("verb=QUERY"));
        assert_eq!(by_name["materialize"].parent, Some(root.id));
        assert_eq!(
            by_name["chase.round"].parent,
            Some(by_name["materialize"].id)
        );
        assert_eq!(by_name["evaluate"].parent, Some(root.id));
        assert!(total >= root.dur_us);
        assert!(!tracing_active());
    }

    #[test]
    fn span_limit_bounds_memory() {
        install_collector(2);
        for _ in 0..10 {
            let _s = span("s");
        }
        let (spans, _) = take_collector();
        assert_eq!(spans.len(), 2);
    }

    #[test]
    fn trace_ring_evicts_oldest() {
        let ring = TraceRing::new(2);
        for i in 0..4u64 {
            ring.accept(Trace {
                request_id: i,
                ..Trace::default()
            });
        }
        let held = ring.snapshot();
        assert_eq!(held.len(), 2);
        assert_eq!(held[0].request_id, 2);
        assert_eq!(held[1].request_id, 3);
        ring.set_capacity(1);
        assert_eq!(ring.len(), 1);
        ring.set_capacity(0);
        ring.accept(Trace::default());
        assert!(ring.is_empty());
    }

    #[test]
    fn render_tree_indents_children() {
        let trace = Trace {
            request_id: 1,
            tenant: "default".into(),
            verb: "QUERY".into(),
            total_us: 10,
            spans: vec![
                FinishedSpan {
                    id: 0,
                    parent: None,
                    name: "request",
                    attrs: "verb=QUERY".into(),
                    start_us: 0,
                    dur_us: 10,
                },
                FinishedSpan {
                    id: 1,
                    parent: Some(0),
                    name: "evaluate",
                    attrs: String::new(),
                    start_us: 2,
                    dur_us: 5,
                },
            ],
        };
        let lines = render_tree(&trace);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("request "));
        assert!(lines[0].contains("verb=QUERY"));
        assert!(lines[1].starts_with("  evaluate "));
    }
}
