//! The metrics registry: named counters, gauges, and log2 histograms with
//! label dimensions.
//!
//! Recording is lock-free once a series handle exists — every series is a
//! set of relaxed atomics behind an `Arc`, so hot paths cache the handle in
//! a `OnceLock` and never touch the registry again. Looking a series up
//! takes a read lock on the family map (shared, uncontended in steady
//! state); only the first observation of a new label set takes the write
//! lock.
//!
//! Histograms use fixed log2 buckets: bucket `i` counts observations with
//! value `<= 2^i` (`i = 0..=30`), and bucket 31 is the overflow (+Inf)
//! bucket. That makes recording one `fetch_add` with no tuning and no
//! sorting — replacing the sort-the-window latency ring the serve layer
//! used before — at the cost of quantiles rounded up to a power of two.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Number of histogram buckets: 31 power-of-two bounds plus one +Inf bucket.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (possibly negative) to the gauge.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Index of the log2 bucket that holds `v`: the smallest `i` with
/// `v <= 2^i`, capped at the overflow bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Upper bound of bucket `i` (`u64::MAX` stands in for +Inf).
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// A fixed-bucket log2 histogram. All fields are relaxed atomics, so
/// concurrent writers never contend on a lock; readers see a near-point
/// snapshot (bucket counts and `sum` may be skewed by in-flight writes,
/// which is fine for monitoring).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation seen (exact, not bucket-rounded).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (non-cumulative).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`): the bound of
    /// the first bucket whose cumulative count covers rank `ceil(q*count)`.
    /// Returns 0 when empty. The answer is rounded up to a power of two —
    /// the price of O(1) lock-free recording.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                // Clamp the overflow bucket to the observed max so +Inf
                // never leaks into a report.
                return bucket_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// Fold another histogram's contents into this one (used by readers
    /// that aggregate per-label series, e.g. a per-tenant rollup).
    pub fn merge_from(&self, other: &Histogram) {
        for i in 0..HISTOGRAM_BUCKETS {
            let c = other.buckets[i].load(Ordering::Relaxed);
            if c > 0 {
                self.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }
}

/// What a family measures — fixes the exposition syntax.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter (`_total` naming convention).
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Log2 histogram (`_bucket`/`_sum`/`_count` exposition).
    Histogram,
}

impl MetricKind {
    fn exposition_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One concrete series inside a family (one label combination).
#[derive(Clone, Debug)]
pub enum Series {
    /// A counter series.
    Counter(Arc<Counter>),
    /// A gauge series.
    Gauge(Arc<Gauge>),
    /// A histogram series.
    Histogram(Arc<Histogram>),
}

/// Sorted label set identifying a series within its family.
pub type LabelSet = Vec<(String, String)>;

struct Family {
    kind: MetricKind,
    help: &'static str,
    /// Divide raw integer values by this when rendering (1.0 = verbatim).
    /// Histograms recorded in microseconds use `1e6` so the exposition
    /// reads in seconds, per Prometheus convention.
    scale: f64,
    series: BTreeMap<LabelSet, Series>,
}

/// A named collection of metric families. One process-global instance
/// (`global()`) backs the engine; tests build private instances.
pub struct Registry {
    families: RwLock<BTreeMap<&'static str, Family>>,
    start: Instant,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

fn labels_key(labels: &[(&str, &str)]) -> LabelSet {
    let mut key: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    key.sort();
    key
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Registry {
            families: RwLock::new(BTreeMap::new()),
            start: Instant::now(),
        }
    }

    /// Seconds since this registry was created (process uptime for the
    /// global registry).
    pub fn uptime_s(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    fn series(
        &self,
        name: &'static str,
        kind: MetricKind,
        help: &'static str,
        scale: f64,
        labels: &[(&str, &str)],
    ) -> Series {
        let key = labels_key(labels);
        {
            let families = self.families.read();
            if let Some(family) = families.get(name) {
                assert_eq!(
                    family.kind, kind,
                    "metric family {name} registered twice with different kinds"
                );
                if let Some(series) = family.series.get(&key) {
                    return series.clone();
                }
            }
        }
        let mut families = self.families.write();
        let family = families.entry(name).or_insert_with(|| Family {
            kind,
            help,
            scale,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric family {name} registered twice with different kinds"
        );
        family
            .series
            .entry(key)
            .or_insert_with(|| match kind {
                MetricKind::Counter => Series::Counter(Arc::new(Counter::default())),
                MetricKind::Gauge => Series::Gauge(Arc::new(Gauge::default())),
                MetricKind::Histogram => Series::Histogram(Arc::new(Histogram::new())),
            })
            .clone()
    }

    /// Get or create a counter series.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        match self.series(name, MetricKind::Counter, help, 1.0, labels) {
            Series::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Get or create a gauge series.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        match self.series(name, MetricKind::Gauge, help, 1.0, labels) {
            Series::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Get or create a histogram series recording plain integer values
    /// (sizes, counts).
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.series(name, MetricKind::Histogram, help, 1.0, labels) {
            Series::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Get or create a histogram series recording **microseconds**; the
    /// exposition divides by 1e6 so the family reads in seconds (name it
    /// `*_seconds`).
    pub fn histogram_us(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.series(name, MetricKind::Histogram, help, 1e6, labels) {
            Series::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Visit every series of the named family (used by `STATS` to build
    /// per-tenant rollups without parsing the exposition text).
    pub fn visit_family(&self, name: &str, mut f: impl FnMut(&LabelSet, &Series)) {
        let families = self.families.read();
        if let Some(family) = families.get(name) {
            for (labels, series) in &family.series {
                f(labels, series);
            }
        }
    }

    /// All distinct values of `label` across every series of the named
    /// family, in sorted order.
    pub fn label_values(&self, family: &str, label: &str) -> Vec<String> {
        let mut values = Vec::new();
        self.visit_family(family, |labels, _| {
            if let Some((_, v)) = labels.iter().find(|(k, _)| k == label) {
                if !values.contains(v) {
                    values.push(v.clone());
                }
            }
        });
        values.sort();
        values
    }

    /// Render the whole registry as Prometheus text exposition: one
    /// `# HELP` + `# TYPE` pair per family, then every series; histograms
    /// expand to cumulative `_bucket{le=...}` lines plus `_sum`/`_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let families = self.families.read();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!(
                "# TYPE {name} {}\n",
                family.kind.exposition_name()
            ));
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, None),
                            c.get()
                        ));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, None),
                            g.get()
                        ));
                    }
                    Series::Histogram(h) => {
                        render_histogram(&mut out, name, labels, h, family.scale);
                    }
                }
            }
        }
        out
    }

    /// Render the registry as newline-delimited JSON, one object per
    /// series — the `run_experiments --metrics` dump format.
    pub fn render_ndjson(&self) -> String {
        let mut out = String::new();
        let families = self.families.read();
        for (name, family) in families.iter() {
            for (labels, series) in &family.series {
                let labels_json: Vec<String> = labels
                    .iter()
                    .map(|(k, v)| format!("{}:{}", json_string(k), json_string(v)))
                    .collect();
                let value = match series {
                    Series::Counter(c) => format!("\"value\":{}", c.get()),
                    Series::Gauge(g) => format!("\"value\":{}", g.get()),
                    Series::Histogram(h) => format!(
                        "\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p99\":{}",
                        h.count(),
                        scale_value(h.sum(), family.scale),
                        scale_value(h.max(), family.scale),
                        scale_value(h.quantile(0.50), family.scale),
                        scale_value(h.quantile(0.99), family.scale),
                    ),
                };
                out.push_str(&format!(
                    "{{\"metric\":{},\"kind\":{},\"labels\":{{{}}},{value}}}\n",
                    json_string(name),
                    json_string(family.kind.exposition_name()),
                    labels_json.join(","),
                ));
            }
        }
        out
    }
}

fn scale_value(v: u64, scale: f64) -> String {
    if scale == 1.0 {
        format!("{v}")
    } else {
        format!("{}", v as f64 / scale)
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn render_labels(labels: &LabelSet, le: Option<String>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}={}", prom_quote(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le={}", prom_quote(&le)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn prom_quote(v: &str) -> String {
    format!(
        "\"{}\"",
        v.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    )
}

fn render_histogram(out: &mut String, name: &str, labels: &LabelSet, h: &Histogram, scale: f64) {
    let counts = h.bucket_counts();
    let mut cumulative = 0u64;
    for (i, c) in counts.iter().enumerate() {
        cumulative += c;
        // Skip interior empty buckets to keep the exposition small, but
        // always emit +Inf (required) and any bucket with mass below it.
        if cumulative == 0 && i < HISTOGRAM_BUCKETS - 1 {
            continue;
        }
        let le = if i >= HISTOGRAM_BUCKETS - 1 {
            "+Inf".to_string()
        } else if scale == 1.0 {
            format!("{}", bucket_bound(i))
        } else {
            format!("{}", bucket_bound(i) as f64 / scale)
        };
        out.push_str(&format!(
            "{name}_bucket{} {cumulative}\n",
            render_labels(labels, Some(le))
        ));
        if cumulative == h.count() && i < HISTOGRAM_BUCKETS - 1 {
            // All remaining buckets repeat the same cumulative value; jump
            // straight to +Inf.
            out.push_str(&format!(
                "{name}_bucket{} {cumulative}\n",
                render_labels(labels, Some("+Inf".to_string()))
            ));
            break;
        }
    }
    out.push_str(&format!(
        "{name}_sum{} {}\n",
        render_labels(labels, None),
        scale_value(h.sum(), scale)
    ));
    out.push_str(&format!(
        "{name}_count{} {}\n",
        render_labels(labels, None),
        h.count()
    ));
}

/// The process-global registry every engine layer records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bucket_index_matches_power_of_two_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every value lands in the first bucket whose bound covers it.
        for v in [1u64, 2, 3, 7, 8, 9, 100, 1 << 20, (1 << 30) + 1] {
            let i = bucket_index(v);
            assert!(v <= bucket_bound(i), "v={v} bound={}", bucket_bound(i));
            if i > 0 {
                assert!(v > bucket_bound(i - 1), "v={v} not in earlier bucket");
            }
        }
    }

    #[test]
    fn histogram_quantiles_round_up_to_bucket_bounds() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        // Rank 50 falls in the (32, 64] bucket; rank 99 in (64, 128], but
        // the overflow clamp keeps reports at the observed max ceiling.
        assert_eq!(h.quantile(0.50), 64);
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.quantile(1.0), 100);
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.observe(10);
        b.observe(1000);
        b.observe(2000);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 3010);
        assert_eq!(a.max(), 2000);
    }

    #[test]
    fn concurrent_writers_lose_no_observations() {
        let registry = Registry::new();
        let h = registry.histogram("t_hist", "test", &[]);
        let c = registry.counter("t_count", "test", &[]);
        thread::scope(|s| {
            for t in 0..8 {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                let registry = &registry;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.observe(i % 100);
                        c.inc();
                        // Also exercise the lookup path concurrently.
                        registry
                            .counter("t_labeled", "test", &[("writer", &format!("w{t}"))])
                            .inc();
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
        assert_eq!(c.get(), 8000);
        let mut labeled_total = 0;
        registry.visit_family("t_labeled", |_, s| {
            if let Series::Counter(c) = s {
                labeled_total += c.get();
            }
        });
        assert_eq!(labeled_total, 8000);
        assert_eq!(registry.label_values("t_labeled", "writer").len(), 8);
    }

    #[test]
    fn same_labels_in_any_order_share_a_series() {
        let registry = Registry::new();
        let a = registry.counter("t_ab", "test", &[("a", "1"), ("b", "2")]);
        let b = registry.counter("t_ab", "test", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn prometheus_exposition_has_one_type_line_per_family() {
        let registry = Registry::new();
        registry
            .counter("req_total", "requests", &[("verb", "QUERY")])
            .add(3);
        registry
            .counter("req_total", "requests", &[("verb", "INSERT")])
            .add(1);
        registry.gauge("depth", "queue depth", &[]).set(-2);
        let h = registry.histogram_us("lat_seconds", "latency", &[]);
        h.observe(1_000_000);
        let text = registry.render_prometheus();
        assert_eq!(text.matches("# TYPE req_total counter").count(), 1);
        assert_eq!(text.matches("# TYPE depth gauge").count(), 1);
        assert_eq!(text.matches("# TYPE lat_seconds histogram").count(), 1);
        assert!(text.contains("req_total{verb=\"QUERY\"} 3"));
        assert!(text.contains("req_total{verb=\"INSERT\"} 1"));
        assert!(text.contains("depth -2"));
        // Micro-valued histogram renders in seconds.
        assert!(text.contains("lat_seconds_sum 1\n"), "{text}");
        assert!(text.contains("lat_seconds_count 1"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn ndjson_dump_is_one_object_per_series() {
        let registry = Registry::new();
        registry.counter("c", "help", &[("tenant", "hr")]).add(7);
        registry.histogram("h", "help", &[]).observe(9);
        let dump = registry.render_ndjson();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"metric\":\"c\""));
        assert!(lines[0].contains("\"tenant\":\"hr\""));
        assert!(lines[0].contains("\"value\":7"));
        assert!(lines[1].contains("\"count\":1"));
    }
}
