//! Telemetry for the ontorew engine: a lock-light metrics registry
//! ([`metrics`]) and zero-cost-when-disabled span tracing ([`trace`]).
//!
//! Every engine layer (chase, rewrite, plan, storage, serve) records into
//! the process-global registry ([`metrics::global`]); the serve layer
//! exposes it on the wire as Prometheus text exposition (`METRICS` verb)
//! and NDJSON (`run_experiments --metrics`). Request-scoped traces are
//! collected per thread ([`trace::install_collector`]) and land in a
//! bounded ring ([`trace::global_ring`]) for the `TRACE` toggle and the
//! slow-query log.

pub mod metrics;
pub mod trace;

pub use metrics::{
    bucket_bound, bucket_index, global as global_registry, Counter, Gauge, Histogram, LabelSet,
    MetricKind, Registry, Series, HISTOGRAM_BUCKETS,
};
pub use trace::{
    global_ring, install_collector, render_tree, span, take_collector, tracing_active,
    FinishedSpan, SpanGuard, Trace, TraceRing, TraceSink,
};
