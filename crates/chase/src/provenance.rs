//! Derivation graphs: stable fact identity and the provenance of every
//! chase derivation.
//!
//! When [`crate::ChaseConfig::track_provenance`] is set, the engine assigns
//! every fact a stable [`FactId`] and records one [`DerivationEdge`] per
//! retired trigger key: a **fired edge** remembers which rule fired and
//! which premise facts supported the firing, and — under the restricted
//! variant — a **witness edge** remembers the head image that satisfied a
//! trigger which therefore never fired. Witness edges look redundant but are
//! load-bearing for deletion: they are the alternative derivations the
//! restricted chase silently skipped, exactly what delete-and-rederive
//! ([`crate::chase_retract`]) must consult to decide whether a fact survives
//! the loss of one of its derivations.
//!
//! The graph supports the two explanation queries the serving layer exposes:
//! [`DerivationGraph::why`] walks a well-founded derivation of a present
//! fact down to base facts, and [`explain_absent`] reports, for an absent
//! fact, which rules could produce it and which body premises block them.

use crate::trigger::TriggerKey;
use ontorew_model::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// The stable identity of a fact within one derivation graph. Ids are never
/// reused: a deleted fact keeps its id as a tombstone, so edges recorded
/// before a retraction stay valid afterwards.
pub type FactId = u32;

/// One recorded derivation step: rule `rule` with premises `premises`
/// produced (or, for a witness edge, was satisfied by) `conclusions`.
#[derive(Clone, Debug)]
pub struct DerivationEdge {
    /// Index of the rule in the program.
    pub rule: u32,
    /// The trigger key this edge retired — the (rule, frontier image) pair
    /// whose verdict it records.
    pub key: TriggerKey,
    /// The facts the rule body matched.
    pub premises: Vec<FactId>,
    /// The facts the firing produced, or the satisfying head image of a
    /// witness edge.
    pub conclusions: Vec<FactId>,
    /// `false` for a fired edge; `true` for a witness edge (restricted
    /// variant, head already satisfied — the trigger never fired).
    pub satisfied: bool,
}

/// One step of a [`DerivationGraph::why`] explanation.
#[derive(Clone, Debug)]
pub struct WhyStep {
    /// The fact being explained.
    pub fact: Atom,
    /// The rule that produced it (`None` for a base fact).
    pub rule: Option<usize>,
    /// True when the fact is supported through a witness edge: the rule's
    /// head was already satisfied by this fact rather than firing for it.
    pub satisfied: bool,
    /// The premise facts of the supporting derivation (empty for base facts).
    pub premises: Vec<Atom>,
}

/// Why an absent fact is absent: per candidate rule, the body premises that
/// have no match (see [`explain_absent`]).
#[derive(Clone, Debug, Default)]
pub struct WhyNot {
    /// Rules whose head unifies with the fact, with their blocked premises.
    pub candidates: Vec<WhyNotCandidate>,
}

/// One rule that could in principle produce an absent fact, and what blocks
/// it.
#[derive(Clone, Debug)]
pub struct WhyNotCandidate {
    /// Index of the rule in the program.
    pub rule: usize,
    /// The rule body under the head unifier (remaining variables unbound).
    pub body: Vec<Atom>,
    /// Body atoms with no matching fact in the instance — the blocked
    /// premises. Empty when every body atom matches in isolation (the body
    /// may still have no joint match, or the head may need an invented
    /// value).
    pub missing: Vec<Atom>,
    /// True when some head position unified an existential variable with a
    /// term of the fact: the chase would invent a fresh null there, so this
    /// exact fact can never be derived by this rule.
    pub needs_invented_value: bool,
}

/// The derivation graph of one chase run (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct DerivationGraph {
    /// Fact id → atom. Ids are dense and stable; dead facts remain as
    /// tombstones (`alive[id] == false`).
    pub(crate) atoms: Vec<Atom>,
    /// Atom → fact id (covers tombstones, so a re-inserted fact revives its
    /// old id instead of minting a new one).
    pub(crate) ids: HashMap<Atom, FactId>,
    /// True for facts of the input database (asserted, not derived).
    pub(crate) base: Vec<bool>,
    /// False for facts removed by a retraction.
    pub(crate) alive: Vec<bool>,
    /// The recorded derivation edges. Each trigger key has at most one edge.
    pub(crate) edges: Vec<DerivationEdge>,
    /// Memoized well-founded support: fact id → supporting edge index
    /// (`None` for base facts). The fixpoint is O(edges × rounds) and every
    /// `why` call needs it, so it is computed once per graph state and
    /// dropped by every mutation (`invalidate_support_cache`). `OnceLock`
    /// keeps `why` callable through `&self` from concurrent readers.
    support_cache: OnceLock<Arc<HashMap<FactId, Option<usize>>>>,
}

impl DerivationGraph {
    /// A graph seeded with every fact of `database` as a base fact.
    pub fn seeded(database: &Instance) -> Self {
        let mut graph = DerivationGraph::default();
        for atom in database.atoms() {
            graph.intern(&atom, true);
        }
        graph
    }

    /// Intern `atom`, returning its stable id. A tombstoned fact is revived.
    /// `base` marks the fact as asserted (sticky: a derived fact later
    /// asserted explicitly becomes a base fact, never the other way around).
    pub(crate) fn intern(&mut self, atom: &Atom, base: bool) -> FactId {
        self.invalidate_support_cache();
        match self.ids.get(atom) {
            Some(&id) => {
                self.alive[id as usize] = true;
                if base {
                    self.base[id as usize] = true;
                }
                id
            }
            None => {
                let id = self.atoms.len() as FactId;
                self.atoms.push(atom.clone());
                self.ids.insert(atom.clone(), id);
                self.base.push(base);
                self.alive.push(true);
                id
            }
        }
    }

    /// Record one derivation edge. Premises must already be interned (they
    /// are facts of the instance); conclusions are interned on the way in.
    pub(crate) fn add_edge(
        &mut self,
        rule: usize,
        key: TriggerKey,
        premises: &[Atom],
        conclusions: &[Atom],
        satisfied: bool,
    ) {
        self.invalidate_support_cache();
        let premises: Vec<FactId> = premises.iter().map(|a| self.intern(a, false)).collect();
        let conclusions: Vec<FactId> = conclusions.iter().map(|a| self.intern(a, false)).collect();
        self.edges.push(DerivationEdge {
            rule: rule as u32,
            key,
            premises,
            conclusions,
            satisfied,
        });
    }

    /// The id of a live fact, if the graph knows it.
    pub fn id_of(&self, atom: &Atom) -> Option<FactId> {
        self.ids
            .get(atom)
            .copied()
            .filter(|&id| self.alive[id as usize])
    }

    /// The atom with the given id (tombstones included).
    pub fn atom(&self, id: FactId) -> &Atom {
        &self.atoms[id as usize]
    }

    /// True if the fact is a live base (asserted) fact.
    pub fn is_base(&self, id: FactId) -> bool {
        self.base[id as usize] && self.alive[id as usize]
    }

    /// Number of live facts in the graph.
    pub fn node_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Number of recorded derivation edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The recorded edges (fired and witness).
    pub fn edges(&self) -> &[DerivationEdge] {
        &self.edges
    }

    /// A rough estimate of the graph's heap footprint in bytes, for `STATS`.
    pub fn bytes_estimate(&self) -> usize {
        let node_bytes: usize = self
            .atoms
            .iter()
            .map(|a| std::mem::size_of::<Atom>() + a.terms.len() * std::mem::size_of::<Term>())
            .sum();
        let edge_bytes: usize = self
            .edges
            .iter()
            .map(|e| {
                std::mem::size_of::<DerivationEdge>()
                    + (e.premises.len() + e.conclusions.len()) * std::mem::size_of::<FactId>()
                    + e.key.frontier_image.len() * std::mem::size_of::<Term>()
            })
            .sum();
        // The interner roughly doubles the node side (atom + map entry).
        node_bytes * 2 + edge_bytes + self.base.len() * 2
    }

    /// The live base (asserted) facts.
    pub fn base_facts(&self) -> impl Iterator<Item = &Atom> + '_ {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(id, _)| self.base[*id] && self.alive[*id])
            .map(|(_, atom)| atom)
    }

    /// Drop the memoized supported set. Every mutation calls this; the next
    /// [`DerivationGraph::why`] recomputes the fixpoint lazily.
    pub(crate) fn invalidate_support_cache(&mut self) {
        self.support_cache.take();
    }

    /// The well-founded supported set: for every explainable live fact, the
    /// edge supporting it (`None` for base facts). The supporting edge of
    /// every fact is found in derivation order, so the chosen support is
    /// well-founded (no cycles through mutually-derived facts). Computed
    /// once per graph state and memoized — E15 measured p50 ≈ 13 ms per
    /// recomputation on a 110k-node graph, paid by every `WHY` call before
    /// this cache existed.
    fn supported_set(&self) -> Arc<HashMap<FactId, Option<usize>>> {
        Arc::clone(self.support_cache.get_or_init(|| {
            let mut support: HashMap<FactId, Option<usize>> = HashMap::new();
            for (id, _) in self.atoms.iter().enumerate() {
                if self.base[id] && self.alive[id] {
                    support.insert(id as FactId, None);
                }
            }
            loop {
                let mut grew = false;
                for (edge_index, edge) in self.edges.iter().enumerate() {
                    if !edge.premises.iter().all(|p| support.contains_key(p)) {
                        continue;
                    }
                    for &c in &edge.conclusions {
                        if self.alive[c as usize] && !support.contains_key(&c) {
                            support.insert(c, Some(edge_index));
                            grew = true;
                        }
                    }
                }
                if !grew {
                    break;
                }
            }
            Arc::new(support)
        }))
    }

    /// A well-founded derivation of `fact` down to base facts: the returned
    /// steps list the fact itself first, followed by every supporting
    /// derivation in reverse-dependency order (premises appear after the
    /// facts they support). Returns `None` when the fact is not a live node
    /// of the graph or has no well-founded support (it should have been
    /// retracted — a graph invariant violation).
    pub fn why(&self, fact: &Atom) -> Option<Vec<WhyStep>> {
        let target = self.id_of(fact)?;
        let support = self.supported_set();
        support.get(&target)?;
        // Backward pass: collect the steps of the chosen derivation tree,
        // target first.
        let mut steps = Vec::new();
        let mut visited: HashMap<FactId, ()> = HashMap::new();
        let mut stack = vec![target];
        while let Some(id) = stack.pop() {
            if visited.insert(id, ()).is_some() {
                continue;
            }
            match support.get(&id) {
                Some(None) | None => {
                    steps.push(WhyStep {
                        fact: self.atom(id).clone(),
                        rule: None,
                        satisfied: false,
                        premises: Vec::new(),
                    });
                }
                Some(Some(edge_index)) => {
                    let edge = &self.edges[*edge_index];
                    steps.push(WhyStep {
                        fact: self.atom(id).clone(),
                        rule: Some(edge.rule as usize),
                        satisfied: edge.satisfied,
                        premises: edge
                            .premises
                            .iter()
                            .map(|&p| self.atom(p).clone())
                            .collect(),
                    });
                    stack.extend(edge.premises.iter().copied());
                }
            }
        }
        Some(steps)
    }
}

/// Explain why `fact` is **not** derivable: for every rule whose head
/// unifies with it, report the rule body under the head unifier and the
/// body atoms with no matching fact in `instance` (the blocked premises).
/// An empty `candidates` list means no rule head can produce the
/// predicate at all.
pub fn explain_absent(program: &TgdProgram, instance: &Instance, fact: &Atom) -> WhyNot {
    let mut report = WhyNot::default();
    for (rule_index, rule) in program.iter().enumerate() {
        let existentials = rule.existential_head_variables();
        for head_atom in &rule.head {
            if head_atom.predicate != fact.predicate {
                continue;
            }
            // Unify the head atom with the ground fact position by position.
            let mut unifier = Substitution::new();
            let mut ok = true;
            let mut needs_invented_value = false;
            for (head_term, ground) in head_atom.terms.iter().zip(fact.terms.iter()) {
                match head_term {
                    Term::Variable(v) => {
                        let bound = unifier.apply_term(Term::Variable(*v));
                        if bound == Term::Variable(*v) {
                            unifier.bind(*v, *ground);
                            if existentials.contains(v) {
                                needs_invented_value = true;
                            }
                        } else if bound != *ground {
                            ok = false;
                            break;
                        }
                    }
                    other => {
                        if other != ground {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if !ok {
                continue;
            }
            let body = unifier.apply_atoms(&rule.body);
            let missing: Vec<Atom> = body
                .iter()
                .filter(|atom| {
                    ontorew_unify::find_homomorphism(
                        std::slice::from_ref(*atom),
                        instance,
                        &Substitution::new(),
                    )
                    .is_none()
                })
                .cloned()
                .collect();
            report.candidates.push(WhyNotCandidate {
                rule: rule_index,
                body,
                missing,
                needs_invented_value,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{chase, ChaseConfig};
    use ontorew_model::parse_program;

    #[test]
    fn seeded_graphs_hold_base_facts() {
        let mut db = Instance::new();
        db.insert_fact("r", &["a"]);
        db.insert_fact("s", &["b"]);
        let graph = DerivationGraph::seeded(&db);
        assert_eq!(graph.node_count(), 2);
        assert_eq!(graph.edge_count(), 0);
        assert_eq!(graph.base_facts().count(), 2);
        assert!(graph.bytes_estimate() > 0);
        let id = graph.id_of(&Atom::fact("r", &["a"])).unwrap();
        assert!(graph.is_base(id));
        assert!(graph.id_of(&Atom::fact("r", &["zzz"])).is_none());
    }

    #[test]
    fn why_walks_a_derivation_to_base_facts() {
        let p = parse_program(
            "[R1] edge(X, Y) -> path(X, Y).\n\
             [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("edge", &["a", "b"]);
        db.insert_fact("edge", &["b", "c"]);
        let result = chase(&p, &db, &ChaseConfig::default().with_provenance(true));
        let graph = result.provenance.as_ref().expect("provenance recorded");
        let steps = graph.why(&Atom::fact("path", &["a", "c"])).unwrap();
        // Target first, derived via R2 from path(a,b) and edge(b,c).
        assert_eq!(steps[0].fact, Atom::fact("path", &["a", "c"]));
        assert_eq!(steps[0].rule, Some(1));
        assert!(steps[0].premises.contains(&Atom::fact("path", &["a", "b"])));
        assert!(steps[0].premises.contains(&Atom::fact("edge", &["b", "c"])));
        // Base facts appear as rule-less steps.
        assert!(steps
            .iter()
            .any(|s| s.rule.is_none() && s.fact == Atom::fact("edge", &["a", "b"])));
        // A base fact explains itself.
        let base_steps = graph.why(&Atom::fact("edge", &["a", "b"])).unwrap();
        assert_eq!(base_steps.len(), 1);
        assert_eq!(base_steps[0].rule, None);
        // Absent facts have no why.
        assert!(graph.why(&Atom::fact("path", &["c", "a"])).is_none());
    }

    #[test]
    fn why_memoizes_the_supported_set_and_mutations_invalidate_it() {
        let p = parse_program(
            "[R1] edge(X, Y) -> path(X, Y).\n\
             [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("edge", &["a", "b"]);
        db.insert_fact("edge", &["b", "c"]);
        let result = chase(&p, &db, &ChaseConfig::default().with_provenance(true));
        let mut graph = result.provenance.clone().expect("provenance recorded");
        assert!(
            graph.support_cache.get().is_none(),
            "the chase run's interning leaves no stale cache behind"
        );
        // The first why populates the cache; the second reuses it (same Arc).
        graph.why(&Atom::fact("path", &["a", "c"])).unwrap();
        let first = graph.supported_set();
        graph.why(&Atom::fact("path", &["a", "b"])).unwrap();
        assert!(Arc::ptr_eq(&first, &graph.supported_set()));
        // A mutation invalidates: the recomputed set covers the new fact.
        let id = graph.intern(&Atom::fact("edge", &["c", "d"]), true);
        assert!(graph.support_cache.get().is_none());
        assert!(!Arc::ptr_eq(&first, &graph.supported_set()));
        assert!(graph.supported_set().contains_key(&id));
        // A clone carries the memo but invalidates independently.
        let clone = graph.clone();
        assert!(clone.support_cache.get().is_some());
    }

    #[test]
    fn explain_absent_reports_blocked_premises() {
        let p = parse_program(
            "[R1] student(X), enrolled(X, C) -> attends(X, C).\n\
             [R2] person(X) -> hasParent(X, Y).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("student", &["zoe"]);
        let report = explain_absent(&p, &db, &Atom::fact("attends", &["zoe", "db101"]));
        assert_eq!(report.candidates.len(), 1);
        let c = &report.candidates[0];
        assert_eq!(c.rule, 0);
        assert!(!c.needs_invented_value);
        assert_eq!(c.missing, vec![Atom::fact("enrolled", &["zoe", "db101"])]);
        // An existential head position can never produce a named constant.
        let report = explain_absent(&p, &db, &Atom::fact("hasParent", &["zoe", "max"]));
        assert_eq!(report.candidates.len(), 1);
        assert!(report.candidates[0].needs_invented_value);
        // No rule produces the predicate at all.
        let report = explain_absent(&p, &db, &Atom::fact("teaches", &["zoe", "db101"]));
        assert!(report.candidates.is_empty());
    }
}
