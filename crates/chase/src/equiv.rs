//! Comparing chased instances up to the renaming of labelled nulls.
//!
//! Two chase runs of the same program and database may number their invented
//! nulls differently (null ids come from a process-global counter, and the
//! semi-naive engine fires triggers in a different order than the naive
//! one). [`equivalent_up_to_null_renaming`] is the equality notion the
//! equivalence tests use: same cardinalities per predicate, same number of
//! nulls, and a homomorphism in both directions treating nulls as variables.
//! For instances produced by chase variants that agree round-by-round (as
//! the naive and semi-naive engines do) this coincides with isomorphism.

use ontorew_model::prelude::*;
use ontorew_unify::find_homomorphism;

/// True if `a` and `b` contain the same facts up to a renaming of their
/// labelled nulls.
pub fn equivalent_up_to_null_renaming(a: &Instance, b: &Instance) -> bool {
    if a.len() != b.len() || a.nulls().len() != b.nulls().len() {
        return false;
    }
    if a.predicates().count() != b.predicates().count() {
        return false;
    }
    for p in a.predicates() {
        if a.relation_size(p) != b.relation_size(p) {
            return false;
        }
    }
    maps_into(a, b) && maps_into(b, a)
}

/// True if `a` and `b` are *homomorphically equivalent*: each maps into the
/// other with nulls read as variables, with no cardinality requirements.
/// This is the right equality notion for comparing two universal models that
/// may differ in how many (redundant) nulls they keep — e.g. the result of
/// [`crate::chase_retract`] versus a scratch re-chase under the restricted
/// variant, whose firing order is deletion-history dependent. Two
/// homomorphically equivalent instances have the same certain answers.
pub fn homomorphically_equivalent(a: &Instance, b: &Instance) -> bool {
    maps_into(a, b) && maps_into(b, a)
}

/// True if the atoms of `src`, with nulls read as variables, have a
/// homomorphism into `dst`.
fn maps_into(src: &Instance, dst: &Instance) -> bool {
    let pattern: Vec<Atom> = src.atoms().map(nulls_to_variables).collect();
    find_homomorphism(&pattern, dst, &Substitution::new()).is_some()
}

/// Replace every labelled null of the atom with a variable named after it,
/// so that a homomorphism search can rename nulls freely while keeping
/// repeated nulls consistent.
fn nulls_to_variables(atom: Atom) -> Atom {
    Atom {
        predicate: atom.predicate,
        terms: atom
            .terms
            .into_iter()
            .map(|t| match t {
                Term::Null(n) => Term::variable(&format!("__null_{}", n.id())),
                other => other,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::atom::Predicate;
    use ontorew_model::term::Null;

    fn with_null(pred: &str, constant: &str, null: u64) -> Atom {
        Atom {
            predicate: Predicate::new(pred, 2),
            terms: vec![Term::constant(constant), Term::Null(Null(null))],
        }
    }

    #[test]
    fn identical_instances_are_equivalent() {
        let mut a = Instance::new();
        a.insert_fact("r", &["x", "y"]);
        assert!(equivalent_up_to_null_renaming(&a, &a.clone()));
    }

    #[test]
    fn renamed_nulls_are_equivalent() {
        let a = Instance::from_atoms([with_null("p", "a", 1), with_null("q", "a", 1)]);
        let b = Instance::from_atoms([with_null("p", "a", 77), with_null("q", "a", 77)]);
        assert!(equivalent_up_to_null_renaming(&a, &b));
    }

    #[test]
    fn different_null_sharing_is_not_equivalent() {
        // a shares one null between p and q; b uses two distinct nulls.
        let a = Instance::from_atoms([with_null("p", "a", 1), with_null("q", "a", 1)]);
        let b = Instance::from_atoms([with_null("p", "a", 2), with_null("q", "a", 3)]);
        assert!(!equivalent_up_to_null_renaming(&a, &b));
    }

    #[test]
    fn different_facts_are_not_equivalent() {
        let mut a = Instance::new();
        a.insert_fact("r", &["x", "y"]);
        let mut b = Instance::new();
        b.insert_fact("r", &["x", "z"]);
        assert!(!equivalent_up_to_null_renaming(&a, &b));
        let mut c = Instance::new();
        c.insert_fact("s", &["x", "y"]);
        assert!(!equivalent_up_to_null_renaming(&a, &c));
    }

    #[test]
    fn constants_are_not_renamed() {
        let mut a = Instance::new();
        a.insert_fact("r", &["x"]);
        let mut b = Instance::new();
        b.insert_fact("r", &["y"]);
        assert!(!equivalent_up_to_null_renaming(&a, &b));
    }
}
