//! The chase engine: oblivious (semi-oblivious) and restricted variants.
//!
//! The chase expands a database `D` with the consequences of a TGD program
//! `P`, inventing labelled nulls for existential head variables. Its result
//! is a *universal model* of `(P, D)`: a database that satisfies `(P, D)` and
//! maps homomorphically into every other database satisfying it, which is why
//! evaluating a CQ over the chase (and discarding tuples with nulls) yields
//! exactly the certain answers.
//!
//! Two firing policies are provided:
//!
//! * **Semi-oblivious** ([`ChaseVariant::Oblivious`]): every trigger is fired
//!   once per frontier image, whether or not its head is already satisfied.
//!   Simple and insensitive to firing order, but produces larger instances.
//! * **Restricted / standard** ([`ChaseVariant::Restricted`]): a trigger is
//!   fired only if its head cannot already be satisfied in the current
//!   instance; produces smaller instances.
//!
//! Orthogonally, two evaluation strategies are provided:
//!
//! * **Semi-naive** ([`ChaseStrategy::SemiNaive`], the default): each round
//!   only searches for triggers whose body uses at least one fact derived in
//!   the previous round (the *delta*), probing the instance's per-column
//!   hash indexes. The delta invariant — every trigger is enumerated exactly
//!   once, in the first round in which its body image exists — eliminates
//!   both the full-instance rescan and the replay of previously fired
//!   triggers that make the naive loop superlinear.
//! * **Naive** ([`ChaseStrategy::Naive`]): re-runs the full trigger search
//!   every round and skips already-fired triggers through their keys. Kept
//!   as the reference implementation; the equivalence property tests check
//!   that both strategies produce the same result up to null renaming.
//!
//! Neither variant terminates on every program (the problem is undecidable);
//! the engine therefore runs under a budget ([`ChaseConfig`]) and reports how
//! it stopped ([`ChaseOutcome`]).

use crate::provenance::DerivationGraph;
use crate::trigger::{
    find_rule_triggers, find_rule_triggers_delta_with, find_rule_triggers_with, RulePlan,
    StagedEdge, Trigger, TriggerKey,
};
use ontorew_model::prelude::*;
use ontorew_telemetry::{global_registry, span, Counter, Gauge, Histogram};
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

/// Cached handles into the global metrics registry for the chase's hot
/// loop — looked up once, then recording is a relaxed atomic per event.
struct ChaseMetrics {
    rounds: Arc<Counter>,
    triggers_found: Arc<Counter>,
    triggers_fired: Arc<Counter>,
    facts_derived: Arc<Counter>,
    delta_size: Arc<Histogram>,
    rules_active: Arc<Gauge>,
}

fn chase_metrics() -> &'static ChaseMetrics {
    static METRICS: OnceLock<ChaseMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global_registry();
        ChaseMetrics {
            rounds: r.counter("chase_rounds_total", "Chase rounds executed.", &[]),
            triggers_found: r.counter(
                "chase_triggers_found_total",
                "Triggers returned by round searches.",
                &[],
            ),
            triggers_fired: r.counter(
                "chase_triggers_fired_total",
                "Triggers actually fired (head instantiated).",
                &[],
            ),
            facts_derived: r.counter(
                "chase_facts_derived_total",
                "New facts inserted by chase rounds.",
                &[],
            ),
            delta_size: r.histogram(
                "chase_round_delta_size",
                "Facts derived per chase round (the next round's delta).",
                &[],
            ),
            rules_active: r.gauge(
                "chase_rules_active",
                "Rules in the program of the most recent chase run.",
                &[],
            ),
        }
    })
}

/// Which chase variant to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaseVariant {
    /// Fire every trigger (once per rule + frontier image).
    Oblivious,
    /// Fire only triggers whose head is not yet satisfied.
    Restricted,
}

/// How trigger search is evaluated across rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaseStrategy {
    /// Full trigger search every round, deduplicated by trigger key. The
    /// reference implementation — quadratic in practice.
    Naive,
    /// Delta-driven rounds: only triggers using at least one fact from the
    /// previous round's delta are searched (index-backed). The default.
    SemiNaive,
}

/// Budget and policy for a chase run.
#[derive(Clone, Copy, Debug)]
pub struct ChaseConfig {
    /// The firing policy.
    pub variant: ChaseVariant,
    /// The evaluation strategy (semi-naive by default).
    pub strategy: ChaseStrategy,
    /// Maximum number of rounds (breadth-first levels). Each round fires all
    /// triggers found on the instance produced by the previous round.
    pub max_rounds: usize,
    /// Maximum number of facts in the chased instance; the run stops once the
    /// instance grows beyond this bound.
    pub max_facts: usize,
    /// Record a [`DerivationGraph`] during the run: stable fact ids plus one
    /// edge per retired trigger key (fired or, under the restricted variant,
    /// found satisfied). Off by default — the insert-only fast path pays
    /// nothing for provenance it will never consult. Required by
    /// [`crate::chase_retract`] and the `WHY` explanation walk.
    pub track_provenance: bool,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            variant: ChaseVariant::Restricted,
            strategy: ChaseStrategy::SemiNaive,
            max_rounds: 64,
            max_facts: 1_000_000,
            track_provenance: false,
        }
    }
}

impl ChaseConfig {
    /// A restricted chase with the given round budget.
    pub fn restricted(max_rounds: usize) -> Self {
        ChaseConfig {
            variant: ChaseVariant::Restricted,
            max_rounds,
            ..ChaseConfig::default()
        }
    }

    /// A semi-oblivious chase with the given round budget.
    pub fn oblivious(max_rounds: usize) -> Self {
        ChaseConfig {
            variant: ChaseVariant::Oblivious,
            max_rounds,
            ..ChaseConfig::default()
        }
    }

    /// Set the fact budget.
    pub fn with_max_facts(mut self, max_facts: usize) -> Self {
        self.max_facts = max_facts;
        self
    }

    /// Set the evaluation strategy.
    pub fn with_strategy(mut self, strategy: ChaseStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The default configuration with the naive reference strategy.
    pub fn naive() -> Self {
        ChaseConfig::default().with_strategy(ChaseStrategy::Naive)
    }

    /// Enable or disable derivation-graph recording.
    pub fn with_provenance(mut self, track: bool) -> Self {
        self.track_provenance = track;
        self
    }
}

/// How a chase run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// A fixpoint was reached: no (active) trigger remained.
    Terminated,
    /// The round budget was exhausted before reaching a fixpoint.
    RoundBudgetExhausted,
    /// The fact budget was exhausted before reaching a fixpoint.
    FactBudgetExhausted,
}

/// The result of running the chase.
#[derive(Clone, Debug)]
pub struct ChaseResult {
    /// The chased instance (a universal model when `outcome == Terminated`).
    pub instance: Instance,
    /// Number of rounds executed.
    pub rounds: usize,
    /// Number of triggers fired.
    pub fired: usize,
    /// How the run ended.
    pub outcome: ChaseOutcome,
    /// The (rule, frontier image) keys of every trigger this run fired *or*
    /// (under the restricted variant) found already satisfied. This is the
    /// run's per-key satisfaction cache — at most one head-homomorphism
    /// search per key, within a round and across rounds — and the state an
    /// incremental continuation ([`chase_incremental`]) seeds from so it
    /// neither re-fires a frontier image nor re-checks a retired head.
    pub fired_keys: HashSet<TriggerKey>,
    /// The derivation graph of the run, recorded when
    /// [`ChaseConfig::track_provenance`] is set (`None` otherwise). Base
    /// facts are the input database; each edge records one retired trigger
    /// key with its premises and conclusions (see [`DerivationGraph`]).
    pub provenance: Option<DerivationGraph>,
}

impl ChaseResult {
    /// True if the chase reached a fixpoint (its instance is a universal
    /// model).
    pub fn is_universal_model(&self) -> bool {
        self.outcome == ChaseOutcome::Terminated
    }
}

/// Run the chase of `program` on `database` under `config`.
///
/// Both strategies share one breadth-first round driver; they differ only in
/// how a round enumerates triggers. The naive strategy re-runs the full
/// search and relies on the trigger keys to skip replays; the semi-naive
/// strategy searches only for triggers whose body uses at least one fact of
/// the previous round's delta (round 1 treats the whole input database as
/// the delta). **Delta invariant:** under the semi-naive strategy every
/// trigger is enumerated in exactly one round — the first in which its whole
/// body image exists — so the keys only deduplicate distinct homomorphisms
/// sharing a frontier image (the semi-oblivious firing policy), never
/// replays: there are none.
pub fn chase(program: &TgdProgram, database: &Instance, config: &ChaseConfig) -> ChaseResult {
    let plans: Vec<RulePlan> = program.iter().map(RulePlan::new).collect();
    let graph = config
        .track_provenance
        .then(|| DerivationGraph::seeded(database));
    let (result, _added) = run_chase_rounds(
        program,
        &plans,
        database.clone(),
        None,
        HashSet::new(),
        graph,
        false,
        config,
        sequential_round_search(program, &plans, config),
    );
    result
}

/// The sequential per-round trigger search shared by [`chase`] and
/// [`chase_incremental`]: a full search when there is no delta to restrict
/// to (the naive strategy always; the semi-naive one in a round whose delta
/// would be the whole instance), the delta-restricted index-backed search
/// otherwise.
pub(crate) fn sequential_round_search<'a>(
    program: &'a TgdProgram,
    plans: &'a [RulePlan],
    config: &'a ChaseConfig,
) -> impl FnMut(&Instance, Option<&Instance>) -> Vec<Trigger> + 'a {
    move |instance, delta| {
        let mut triggers = Vec::new();
        for (rule_index, rule) in program.iter().enumerate() {
            // Per-rule, per-round strategy: generic join for cyclic bodies
            // over enough facts, backtracking otherwise.
            let strategy = plans[rule_index].join_strategy(instance);
            match (config.strategy, delta) {
                (ChaseStrategy::Naive, _) | (ChaseStrategy::SemiNaive, None) => {
                    triggers.extend(find_rule_triggers_with(
                        rule_index, rule, instance, strategy,
                    ));
                }
                (ChaseStrategy::SemiNaive, Some(delta)) => {
                    if plans[rule_index].body_touches(delta) {
                        triggers.extend(find_rule_triggers_delta_with(
                            rule_index, rule, instance, delta, strategy,
                        ));
                    }
                }
            }
        }
        triggers
    }
}

/// The result of an incremental chase continuation (see
/// [`chase_incremental`]).
#[derive(Clone, Debug)]
pub struct IncrementalChase {
    /// The updated chase state over the merged database: `base ∪ delta`
    /// closed under the program (a universal model of the merged database
    /// when `result.outcome == Terminated` and the base was a fixpoint).
    pub result: ChaseResult,
    /// Exactly the facts of `result.instance` that are **not** in the base
    /// instance: the new delta facts plus everything derived from them.
    /// Callers maintaining a copy-on-write store extend it with these facts
    /// instead of rebuilding from the full instance — O(closure of the
    /// delta), not O(store).
    pub added: Instance,
}

/// Continue a finished chase over the facts of `delta`, reusing the
/// semi-naive delta machinery: instead of re-chasing `base ∪ delta` from
/// scratch, round 1 searches only for triggers whose body uses at least one
/// *inserted* fact, and the base's fired-key set guarantees no frontier
/// image fires twice across the two runs.
///
/// Guarantees, assuming `base` is a fixpoint of `program`
/// (`base.outcome == Terminated`):
///
/// * the continuation enumerates exactly the triggers that exist on
///   `base.instance ∪ delta` but not on `base.instance` (the delta
///   invariant), so when it terminates, `result.instance` is a universal
///   model of `(program, base-database ∪ delta)` — certain answers computed
///   over it equal those of a scratch chase of the merged database;
/// * under the semi-oblivious variant the result is moreover isomorphic
///   (equal up to null renaming) to the scratch chase, because firing is
///   determined per frontier image;
/// * under the restricted variant the result may keep nulls a scratch chase
///   would avoid (the base fired triggers before the delta could satisfy
///   them) — still a universal model, just not always a core.
///
/// If `base` was *not* a fixpoint the continuation is still sound (it only
/// fires genuine triggers) but inherits the base's incompleteness.
///
/// The evaluation strategy is forced to semi-naive; the variant and budgets
/// of `config` apply to the continuation itself.
pub fn chase_incremental(
    program: &TgdProgram,
    base: &ChaseResult,
    delta: &Instance,
    config: &ChaseConfig,
) -> IncrementalChase {
    let config = ChaseConfig {
        strategy: ChaseStrategy::SemiNaive,
        ..*config
    };
    let plans: Vec<RulePlan> = program.iter().map(RulePlan::new).collect();
    // O(#segments) when the base instance is frozen — the planner freezes
    // cached materializations for exactly this reason.
    let mut instance = base.instance.clone();
    // The continuation extends the base's derivation graph (when both the
    // config asks for provenance and the base recorded one): inserted delta
    // facts become base (asserted) facts, revived if they were tombstoned by
    // an earlier retraction.
    let mut graph = if config.track_provenance {
        base.provenance.clone()
    } else {
        None
    };
    let mut seed = Instance::new();
    for atom in delta.atoms() {
        if instance.insert(atom.clone()) {
            seed.insert(atom.clone());
        }
        if let Some(g) = graph.as_mut() {
            g.intern(&atom, true);
        }
    }
    if seed.is_empty() {
        // Every delta fact was already present: the base state is final.
        return IncrementalChase {
            result: ChaseResult {
                instance,
                rounds: 0,
                fired: 0,
                outcome: base.outcome,
                fired_keys: base.fired_keys.clone(),
                provenance: graph.or_else(|| base.provenance.clone()),
            },
            added: Instance::new(),
        };
    }
    let mut added = seed.clone();
    let (result, derived) = run_chase_rounds(
        program,
        &plans,
        instance,
        Some(seed),
        base.fired_keys.clone(),
        graph,
        true,
        &config,
        sequential_round_search(program, &plans, &config),
    );
    added.extend_from(&derived);
    IncrementalChase { result, added }
}

/// The breadth-first round driver shared by [`chase`], [`chase_incremental`]
/// and [`crate::chase_parallel`]: budget checks, trigger-key deduplication,
/// the firing policy, and delta maintenance all live here, so the sequential
/// and parallel engines cannot drift apart. `search_round(instance, delta)`
/// supplies one round's triggers in rule order — the full search for the
/// naive strategy, the delta-restricted search for the semi-naive one.
///
/// `initial_delta` controls round 1: `None` means "the delta is the whole
/// instance" (a fresh chase, where a plain full search finds the same
/// triggers cheaper), `Some(seed)` restricts even the first round to
/// triggers using the seed (an incremental continuation). `fired_keys`
/// seeds the per-(rule, frontier image) verdict cache: a key in the set has
/// fired or been found satisfied before — within a round, across rounds, or
/// in the base run a continuation extends — and is never checked again
/// (satisfaction is monotone: the instance only grows). Returns the result
/// together with the instance of facts inserted during this run — tracked
/// only when `track_added` is set (the incremental continuation needs it;
/// a fresh chase should not pay the extra copy per derived fact).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_chase_rounds(
    program: &TgdProgram,
    plans: &[RulePlan],
    initial: Instance,
    initial_delta: Option<Instance>,
    mut fired_keys: HashSet<TriggerKey>,
    mut graph: Option<DerivationGraph>,
    track_added: bool,
    config: &ChaseConfig,
    mut search_round: impl FnMut(&Instance, Option<&Instance>) -> Vec<Trigger>,
) -> (ChaseResult, Instance) {
    let metrics = chase_metrics();
    metrics.rules_active.set(plans.len() as i64);
    let mut instance = initial;
    let mut fired = 0usize;
    let mut rounds = 0usize;
    let mut added = Instance::new();
    // `None` means "the delta is the whole instance" (round 1 of a fresh
    // chase); afterwards the delta is the set of facts the previous round
    // derived. Only the semi-naive strategy reads it.
    let mut delta: Option<Instance> = initial_delta;

    loop {
        if rounds >= config.max_rounds {
            return (
                ChaseResult {
                    instance,
                    rounds,
                    fired,
                    outcome: ChaseOutcome::RoundBudgetExhausted,
                    fired_keys,
                    provenance: graph,
                },
                added,
            );
        }
        rounds += 1;

        // Collect the facts produced in this round, firing against the
        // instance as it stood at the beginning of the round (breadth-first,
        // level-saturating strategy — a fair firing order). When provenance
        // is on, the round's edges are staged here and committed to the
        // graph only after the insert loop below survives the fact budget —
        // a budget-exhausted run keeps `outcome != Terminated`, which is
        // what tells `chase_retract` the graph cannot be trusted as a full
        // account of the instance.
        let mut round_span = span("chase.round");
        let triggers = search_round(&instance, delta.as_ref());
        metrics.rounds.inc();
        metrics.triggers_found.add(triggers.len() as u64);
        round_span.attr("round", rounds);
        round_span.attr("found", triggers.len());
        let fired_before = fired;
        let len_before = instance.len();
        let mut new_facts: Vec<Atom> = Vec::new();
        let mut pending_edges: Vec<StagedEdge> = Vec::new();
        for trigger in triggers {
            let rule = &program.rules()[trigger.rule_index];
            let plan = &plans[trigger.rule_index];
            let key = trigger.key_with(&plan.frontier);
            // The per-key cache: triggers sharing a (rule, frontier image)
            // — several homomorphisms differing only in non-frontier
            // variables, possibly returned by different chunks of the
            // partitioned parallel search — get exactly one satisfaction
            // check and one firing between them.
            if fired_keys.contains(&key) {
                continue;
            }
            // A satisfied restricted trigger never fires, but with
            // provenance on its satisfying head image is recorded as a
            // *witness edge*: the alternative derivation a later retraction
            // must know about before deleting one of the head facts.
            let (fire, witness) = match (config.variant, graph.is_some()) {
                (ChaseVariant::Oblivious, _) => (true, None),
                (ChaseVariant::Restricted, false) => {
                    (trigger.is_active_planned(plan, &instance), None)
                }
                (ChaseVariant::Restricted, true) => {
                    match trigger.satisfying_image(plan, &instance) {
                        None => (true, None),
                        Some(image) => (false, Some(image)),
                    }
                }
            };
            if fire {
                let produced = trigger.fire_with(&rule.head, &plan.existentials);
                if graph.is_some() {
                    pending_edges.push((
                        trigger.rule_index,
                        key.clone(),
                        trigger.homomorphism.apply_atoms(&rule.body),
                        produced.clone(),
                        false,
                    ));
                }
                new_facts.extend(produced);
                fired += 1;
            } else if let Some(image) = witness {
                pending_edges.push((
                    trigger.rule_index,
                    key.clone(),
                    trigger.homomorphism.apply_atoms(&rule.body),
                    image,
                    true,
                ));
            }
            // For the restricted chase, a satisfied trigger is recorded as
            // fired as well: its head is already entailed, so it never
            // needs to fire later (the instance only grows).
            fired_keys.insert(key);
        }

        metrics.triggers_fired.add((fired - fired_before) as u64);
        round_span.attr("fired", fired - fired_before);

        // The naive strategy never reads the delta, so it skips the
        // bookkeeping and only tracks growth.
        let mut next_delta = Instance::new();
        let mut grew = false;
        for fact in new_facts {
            match config.strategy {
                ChaseStrategy::SemiNaive => {
                    // Duplicate derivations dominate late rounds; test
                    // membership first so only genuinely new facts pay the
                    // clone into the delta.
                    if !instance.contains(&fact) {
                        instance.insert(fact.clone());
                        if track_added {
                            added.insert(fact.clone());
                        }
                        next_delta.insert(fact);
                        grew = true;
                    }
                }
                ChaseStrategy::Naive => {
                    if track_added {
                        if instance.insert(fact.clone()) {
                            added.insert(fact);
                            grew = true;
                        }
                    } else if instance.insert(fact) {
                        grew = true;
                    }
                }
            }
            if instance.len() > config.max_facts {
                // This round's pending edges are dropped; the non-Terminated
                // outcome marks the graph as a partial account.
                return (
                    ChaseResult {
                        instance,
                        rounds,
                        fired,
                        outcome: ChaseOutcome::FactBudgetExhausted,
                        fired_keys,
                        provenance: graph,
                    },
                    added,
                );
            }
        }

        // The whole round was inserted within budget: commit its edges.
        if let Some(g) = graph.as_mut() {
            for (rule_index, key, premises, conclusions, satisfied) in pending_edges.drain(..) {
                g.add_edge(rule_index, key, &premises, &conclusions, satisfied);
            }
        }

        let derived = (instance.len() - len_before) as u64;
        metrics.facts_derived.add(derived);
        metrics.delta_size.observe(derived);
        round_span.attr("derived", derived);

        if !grew {
            return (
                ChaseResult {
                    instance,
                    rounds,
                    fired,
                    outcome: ChaseOutcome::Terminated,
                    fired_keys,
                    provenance: graph,
                },
                added,
            );
        }
        delta = Some(next_delta);
    }
}

/// Check whether `instance` satisfies every TGD of `program` (i.e. it is a
/// model of the program). Used by tests and by the consistency cross-checks.
///
/// Triggers sharing a (rule, frontier image) have the same satisfaction
/// verdict, so each key is head-checked at most once.
pub fn is_model(program: &TgdProgram, instance: &Instance) -> bool {
    for rule in program.iter() {
        let plan = RulePlan::new(rule);
        let mut checked: HashSet<TriggerKey> = HashSet::new();
        for trigger in find_rule_triggers(0, rule, instance) {
            if !checked.insert(trigger.key_with(&plan.frontier)) {
                continue;
            }
            if trigger.is_active_planned(&plan, instance) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::parse_program;

    fn person_db() -> Instance {
        let mut db = Instance::new();
        db.insert_fact("person", &["alice"]);
        db
    }

    /// Run a closure over both strategies, so every engine test covers the
    /// semi-naive default and the naive reference.
    fn for_both_strategies(test: impl Fn(ChaseStrategy)) {
        test(ChaseStrategy::SemiNaive);
        test(ChaseStrategy::Naive);
    }

    #[test]
    fn default_config_is_semi_naive_restricted() {
        let config = ChaseConfig::default();
        assert_eq!(config.strategy, ChaseStrategy::SemiNaive);
        assert_eq!(config.variant, ChaseVariant::Restricted);
        assert_eq!(ChaseConfig::naive().strategy, ChaseStrategy::Naive);
    }

    #[test]
    fn datalog_program_reaches_fixpoint() {
        // Transitive closure — a full (Datalog) program always terminates.
        let p = parse_program(
            "[R1] edge(X, Y) -> path(X, Y).\n\
             [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("edge", &["a", "b"]);
        db.insert_fact("edge", &["b", "c"]);
        db.insert_fact("edge", &["c", "d"]);
        for_both_strategies(|strategy| {
            let result = chase(&p, &db, &ChaseConfig::default().with_strategy(strategy));
            assert!(result.is_universal_model());
            assert!(result.instance.contains(&Atom::fact("path", &["a", "d"])));
            assert_eq!(result.instance.relation_size(Predicate::new("path", 2)), 6);
            assert!(is_model(&p, &result.instance));
        });
    }

    #[test]
    fn restricted_chase_terminates_when_witnesses_exist() {
        // person(X) -> hasParent(X, Y) would diverge obliviously, but with a
        // known parent the restricted chase has nothing to do.
        let p = parse_program("[R1] person(X) -> hasParent(X, Y).").unwrap();
        let mut db = person_db();
        db.insert_fact("hasParent", &["alice", "zoe"]);
        for_both_strategies(|strategy| {
            let result = chase(
                &p,
                &db,
                &ChaseConfig::restricted(16).with_strategy(strategy),
            );
            assert!(result.is_universal_model());
            assert_eq!(result.fired, 0);
            assert_eq!(result.instance.len(), db.len());
        });
    }

    #[test]
    fn restricted_chase_invents_nulls_when_needed() {
        let p = parse_program("[R1] person(X) -> hasParent(X, Y).").unwrap();
        for_both_strategies(|strategy| {
            let result = chase(
                &p,
                &person_db(),
                &ChaseConfig::restricted(16).with_strategy(strategy),
            );
            assert!(result.is_universal_model());
            assert_eq!(result.instance.nulls().len(), 1);
            assert!(is_model(&p, &result.instance));
        });
    }

    #[test]
    fn oblivious_chase_fires_even_satisfied_triggers() {
        let p = parse_program("[R1] person(X) -> hasParent(X, Y).").unwrap();
        let mut db = person_db();
        db.insert_fact("hasParent", &["alice", "zoe"]);
        for_both_strategies(|strategy| {
            let result = chase(&p, &db, &ChaseConfig::oblivious(16).with_strategy(strategy));
            assert!(result.is_universal_model());
            // The trigger fired although alice already had a parent.
            assert_eq!(result.fired, 1);
            assert_eq!(result.instance.nulls().len(), 1);
        });
    }

    #[test]
    fn diverging_program_hits_round_budget() {
        // person(X) -> hasParent(X, Y); hasParent(X, Y) -> person(Y)
        // generates an infinite ancestor chain.
        let p = parse_program(
            "[R1] person(X) -> hasParent(X, Y).\n\
             [R2] hasParent(X, Y) -> person(Y).",
        )
        .unwrap();
        for_both_strategies(|strategy| {
            let result = chase(
                &p,
                &person_db(),
                &ChaseConfig::restricted(5).with_strategy(strategy),
            );
            assert_eq!(result.outcome, ChaseOutcome::RoundBudgetExhausted);
            assert!(result.instance.len() > 5);
        });
    }

    #[test]
    fn fact_budget_is_honoured() {
        let p = parse_program(
            "[R1] person(X) -> hasParent(X, Y).\n\
             [R2] hasParent(X, Y) -> person(Y).",
        )
        .unwrap();
        for_both_strategies(|strategy| {
            let config = ChaseConfig::restricted(1000)
                .with_max_facts(20)
                .with_strategy(strategy);
            let result = chase(&p, &person_db(), &config);
            assert_eq!(result.outcome, ChaseOutcome::FactBudgetExhausted);
            assert!(result.instance.len() <= 22); // budget plus the last fired head
        });
    }

    #[test]
    fn semi_oblivious_does_not_refire_same_frontier_image() {
        // r(X, Y) -> s(X, Z): two facts with the same X must fire only once
        // under the semi-oblivious policy (frontier is {X}).
        let p = parse_program("[R1] r(X, Y) -> s(X, Z).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("r", &["a", "b1"]);
        db.insert_fact("r", &["a", "b2"]);
        for_both_strategies(|strategy| {
            let result = chase(&p, &db, &ChaseConfig::oblivious(16).with_strategy(strategy));
            assert!(result.is_universal_model());
            assert_eq!(result.fired, 1);
            assert_eq!(result.instance.relation_size(Predicate::new("s", 2)), 1);
        });
    }

    #[test]
    fn multi_head_rules_fire_atomically() {
        let p = parse_program("[R1] emp(X) -> works(X, D), dept(D).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("emp", &["alice"]);
        for_both_strategies(|strategy| {
            let result = chase(&p, &db, &ChaseConfig::restricted(8).with_strategy(strategy));
            assert!(result.is_universal_model());
            // One null shared between works and dept.
            assert_eq!(result.instance.nulls().len(), 1);
            assert_eq!(result.instance.relation_size(Predicate::new("works", 2)), 1);
            assert_eq!(result.instance.relation_size(Predicate::new("dept", 1)), 1);
        });
    }

    #[test]
    fn chase_of_empty_database_is_empty() {
        let p = parse_program("[R1] person(X) -> hasParent(X, Y).").unwrap();
        for_both_strategies(|strategy| {
            let result = chase(
                &p,
                &Instance::new(),
                &ChaseConfig::default().with_strategy(strategy),
            );
            assert!(result.is_universal_model());
            assert!(result.instance.is_empty());
            assert_eq!(result.rounds, 1);
        });
    }

    #[test]
    fn late_joining_facts_still_trigger_rules() {
        // A two-atom body whose second atom is only derived in a later round:
        // the semi-naive search must find the join when either side is new.
        let p = parse_program(
            "[R1] a(X) -> b(X).\n\
             [R2] b(X), c(X) -> d(X).\n\
             [R3] a(X) -> c(X).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("a", &["x"]);
        db.insert_fact("c", &["y"]);
        let result = chase(&p, &db, &ChaseConfig::default());
        assert!(result.is_universal_model());
        assert!(result.instance.contains(&Atom::fact("d", &["x"])));
        assert!(!result.instance.contains(&Atom::fact("d", &["y"])));
    }

    #[test]
    fn incremental_chase_matches_scratch_on_datalog() {
        let p = parse_program(
            "[R1] edge(X, Y) -> path(X, Y).\n\
             [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("edge", &["a", "b"]);
        db.insert_fact("edge", &["b", "c"]);
        let base = chase(&p, &db, &ChaseConfig::default());
        assert!(base.is_universal_model());

        let mut delta = Instance::new();
        delta.insert_fact("edge", &["c", "d"]);
        let incremental = chase_incremental(&p, &base, &delta, &ChaseConfig::default());

        let mut merged = db.clone();
        merged.extend_from(&delta);
        let scratch = chase(&p, &merged, &ChaseConfig::default());
        // Datalog invents no nulls: the instances must be literally equal.
        assert!(incremental.result.is_universal_model());
        assert_eq!(incremental.result.instance, scratch.instance);
        // `added` is exactly the difference to the base.
        assert!(incremental.added.contains(&Atom::fact("edge", &["c", "d"])));
        assert!(incremental.added.contains(&Atom::fact("path", &["a", "d"])));
        assert_eq!(
            incremental.added.len(),
            scratch.instance.len() - base.instance.len()
        );
        // The continuation fired only delta-driven triggers, far fewer than
        // the scratch run enumerated.
        assert!(incremental.result.fired < scratch.fired);
    }

    #[test]
    fn incremental_oblivious_chase_is_isomorphic_to_scratch() {
        // Semi-oblivious firing is determined per frontier image, so the
        // incremental result must equal the scratch chase up to null
        // renaming — the seeded fired-key set prevents an old frontier image
        // from re-firing on a delta-driven re-match.
        let p = parse_program("[R1] r(X, Y) -> s(X, Z).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("r", &["a", "b1"]);
        let base = chase(&p, &db, &ChaseConfig::oblivious(16));
        assert_eq!(base.fired, 1);

        // The delta re-matches the same frontier image {a} and adds a new
        // one {c}.
        let mut delta = Instance::new();
        delta.insert_fact("r", &["a", "b2"]);
        delta.insert_fact("r", &["c", "b3"]);
        let incremental = chase_incremental(&p, &base, &delta, &ChaseConfig::oblivious(16));
        let mut merged = db.clone();
        merged.extend_from(&delta);
        let scratch = chase(&p, &merged, &ChaseConfig::oblivious(16));
        assert!(incremental.result.is_universal_model());
        // The continuation's own stats: only the new frontier image {c}
        // fires; {a} is retired by the seeded key set.
        assert_eq!(incremental.result.fired, 1, "only {{c}} fires");
        assert!(crate::equiv::equivalent_up_to_null_renaming(
            &incremental.result.instance,
            &scratch.instance
        ));
    }

    #[test]
    fn incremental_restricted_chase_is_a_universal_model() {
        // The restricted continuation may keep nulls a scratch chase would
        // avoid (the base fired before the delta could satisfy its head),
        // but it must still be a model of the merged database with the same
        // certain answers.
        let p = parse_program("[R1] person(X) -> hasParent(X, Y).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("person", &["alice"]);
        let base = chase(&p, &db, &ChaseConfig::default());
        assert_eq!(base.instance.nulls().len(), 1);

        let mut delta = Instance::new();
        delta.insert_fact("hasParent", &["alice", "zoe"]);
        delta.insert_fact("person", &["bob"]);
        let incremental = chase_incremental(&p, &base, &delta, &ChaseConfig::default());
        assert!(incremental.result.is_universal_model());
        let mut merged = db.clone();
        merged.extend_from(&delta);
        assert!(incremental.result.instance.contains_instance(&merged));
        assert!(is_model(&p, &incremental.result.instance));
        // bob still needs an invented parent; alice's witness predates the
        // delta and legitimately remains.
        assert_eq!(incremental.result.instance.nulls().len(), 2);
    }

    #[test]
    fn incremental_chase_with_known_delta_is_a_no_op() {
        let p = parse_program("[R1] a(X) -> b(X).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("a", &["x"]);
        let base = chase(&p, &db, &ChaseConfig::default());
        // Every delta fact already present (including a derived one).
        let mut delta = Instance::new();
        delta.insert_fact("a", &["x"]);
        delta.insert_fact("b", &["x"]);
        let incremental = chase_incremental(&p, &base, &delta, &ChaseConfig::default());
        assert_eq!(incremental.result.rounds, 0);
        assert_eq!(incremental.result.fired, 0);
        assert!(incremental.added.is_empty());
        assert_eq!(incremental.result.instance, base.instance);
        assert!(incremental.result.is_universal_model());
    }

    #[test]
    fn incremental_chase_joins_delta_facts_with_old_facts() {
        // A two-atom body joining an old fact with a delta fact: the
        // continuation must find the cross trigger.
        let p = parse_program("[R1] b(X), c(X) -> d(X).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("b", &["x"]);
        let base = chase(&p, &db, &ChaseConfig::default());
        let mut delta = Instance::new();
        delta.insert_fact("c", &["x"]);
        let incremental = chase_incremental(&p, &base, &delta, &ChaseConfig::default());
        assert!(incremental
            .result
            .instance
            .contains(&Atom::fact("d", &["x"])));
        assert!(incremental.added.contains(&Atom::fact("d", &["x"])));
    }

    #[test]
    fn repeated_incremental_commits_converge_to_the_scratch_chase() {
        // A commit loop: extend the chase state one batch at a time and
        // compare against chasing the accumulated database from scratch.
        let p = parse_program(
            "[R1] edge(X, Y) -> path(X, Y).\n\
             [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("edge", &["n0", "n1"]);
        let mut state = chase(&p, &db, &ChaseConfig::default());
        for i in 1..8 {
            let mut delta = Instance::new();
            delta.insert_fact("edge", &[&format!("n{i}"), &format!("n{}", i + 1)]);
            db.extend_from(&delta);
            state = chase_incremental(&p, &state, &delta, &ChaseConfig::default()).result;
            assert!(state.is_universal_model());
        }
        let scratch = chase(&p, &db, &ChaseConfig::default());
        assert_eq!(state.instance, scratch.instance);
    }

    #[test]
    fn is_model_detects_violations() {
        let p = parse_program("[R1] person(X) -> agent(X).").unwrap();
        let mut db = person_db();
        assert!(!is_model(&p, &db));
        db.insert_fact("agent", &["alice"]);
        assert!(is_model(&p, &db));
    }
}
