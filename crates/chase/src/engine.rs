//! The chase engine: oblivious (semi-oblivious) and restricted variants.
//!
//! The chase expands a database `D` with the consequences of a TGD program
//! `P`, inventing labelled nulls for existential head variables. Its result
//! is a *universal model* of `(P, D)`: a database that satisfies `(P, D)` and
//! maps homomorphically into every other database satisfying it, which is why
//! evaluating a CQ over the chase (and discarding tuples with nulls) yields
//! exactly the certain answers.
//!
//! Two firing policies are provided:
//!
//! * **Semi-oblivious** ([`ChaseVariant::Oblivious`]): every trigger is fired
//!   once per frontier image, whether or not its head is already satisfied.
//!   Simple and insensitive to firing order, but produces larger instances.
//! * **Restricted / standard** ([`ChaseVariant::Restricted`]): a trigger is
//!   fired only if its head cannot already be satisfied in the current
//!   instance; produces smaller instances.
//!
//! Neither variant terminates on every program (the problem is undecidable);
//! the engine therefore runs under a budget ([`ChaseConfig`]) and reports how
//! it stopped ([`ChaseOutcome`]).

use crate::trigger::{find_rule_triggers, TriggerKey};
use ontorew_model::prelude::*;
use std::collections::HashSet;

/// Which chase variant to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaseVariant {
    /// Fire every trigger (once per rule + frontier image).
    Oblivious,
    /// Fire only triggers whose head is not yet satisfied.
    Restricted,
}

/// Budget and policy for a chase run.
#[derive(Clone, Copy, Debug)]
pub struct ChaseConfig {
    /// The firing policy.
    pub variant: ChaseVariant,
    /// Maximum number of rounds (breadth-first levels). Each round fires all
    /// triggers found on the instance produced by the previous round.
    pub max_rounds: usize,
    /// Maximum number of facts in the chased instance; the run stops once the
    /// instance grows beyond this bound.
    pub max_facts: usize,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            variant: ChaseVariant::Restricted,
            max_rounds: 64,
            max_facts: 1_000_000,
        }
    }
}

impl ChaseConfig {
    /// A restricted chase with the given round budget.
    pub fn restricted(max_rounds: usize) -> Self {
        ChaseConfig {
            variant: ChaseVariant::Restricted,
            max_rounds,
            ..ChaseConfig::default()
        }
    }

    /// A semi-oblivious chase with the given round budget.
    pub fn oblivious(max_rounds: usize) -> Self {
        ChaseConfig {
            variant: ChaseVariant::Oblivious,
            max_rounds,
            ..ChaseConfig::default()
        }
    }

    /// Set the fact budget.
    pub fn with_max_facts(mut self, max_facts: usize) -> Self {
        self.max_facts = max_facts;
        self
    }
}

/// How a chase run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// A fixpoint was reached: no (active) trigger remained.
    Terminated,
    /// The round budget was exhausted before reaching a fixpoint.
    RoundBudgetExhausted,
    /// The fact budget was exhausted before reaching a fixpoint.
    FactBudgetExhausted,
}

/// The result of running the chase.
#[derive(Clone, Debug)]
pub struct ChaseResult {
    /// The chased instance (a universal model when `outcome == Terminated`).
    pub instance: Instance,
    /// Number of rounds executed.
    pub rounds: usize,
    /// Number of triggers fired.
    pub fired: usize,
    /// How the run ended.
    pub outcome: ChaseOutcome,
}

impl ChaseResult {
    /// True if the chase reached a fixpoint (its instance is a universal
    /// model).
    pub fn is_universal_model(&self) -> bool {
        self.outcome == ChaseOutcome::Terminated
    }
}

/// Run the chase of `program` on `database` under `config`.
pub fn chase(program: &TgdProgram, database: &Instance, config: &ChaseConfig) -> ChaseResult {
    let mut instance = database.clone();
    let mut fired_keys: HashSet<TriggerKey> = HashSet::new();
    let mut fired = 0usize;
    let mut rounds = 0usize;

    loop {
        if rounds >= config.max_rounds {
            return ChaseResult {
                instance,
                rounds,
                fired,
                outcome: ChaseOutcome::RoundBudgetExhausted,
            };
        }
        rounds += 1;

        // Collect the facts produced in this round, firing against the
        // instance as it stood at the beginning of the round (breadth-first,
        // level-saturating strategy — a fair firing order).
        let mut new_facts: Vec<Atom> = Vec::new();
        for (rule_index, rule) in program.iter().enumerate() {
            for trigger in find_rule_triggers(rule_index, rule, &instance) {
                let key = trigger.key(rule);
                if fired_keys.contains(&key) {
                    continue;
                }
                let fire = match config.variant {
                    ChaseVariant::Oblivious => true,
                    ChaseVariant::Restricted => trigger.is_active(rule, &instance),
                };
                if fire {
                    new_facts.extend(trigger.fire(rule));
                    fired += 1;
                }
                // For the restricted chase, a satisfied trigger is recorded as
                // fired as well: its head is already entailed, so it never
                // needs to fire later (the instance only grows).
                fired_keys.insert(key);
            }
        }

        let mut grew = false;
        for fact in new_facts {
            if instance.insert(fact) {
                grew = true;
            }
            if instance.len() > config.max_facts {
                return ChaseResult {
                    instance,
                    rounds,
                    fired,
                    outcome: ChaseOutcome::FactBudgetExhausted,
                };
            }
        }

        if !grew {
            return ChaseResult {
                instance,
                rounds,
                fired,
                outcome: ChaseOutcome::Terminated,
            };
        }
    }
}

/// Check whether `instance` satisfies every TGD of `program` (i.e. it is a
/// model of the program). Used by tests and by the consistency cross-checks.
pub fn is_model(program: &TgdProgram, instance: &Instance) -> bool {
    for rule in program.iter() {
        for trigger in find_rule_triggers(0, rule, instance) {
            if trigger.is_active(rule, instance) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::parse_program;

    fn person_db() -> Instance {
        let mut db = Instance::new();
        db.insert_fact("person", &["alice"]);
        db
    }

    #[test]
    fn datalog_program_reaches_fixpoint() {
        // Transitive closure — a full (Datalog) program always terminates.
        let p = parse_program(
            "[R1] edge(X, Y) -> path(X, Y).\n\
             [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("edge", &["a", "b"]);
        db.insert_fact("edge", &["b", "c"]);
        db.insert_fact("edge", &["c", "d"]);
        let result = chase(&p, &db, &ChaseConfig::default());
        assert!(result.is_universal_model());
        assert!(result.instance.contains(&Atom::fact("path", &["a", "d"])));
        assert_eq!(result.instance.relation_size(Predicate::new("path", 2)), 6);
        assert!(is_model(&p, &result.instance));
    }

    #[test]
    fn restricted_chase_terminates_when_witnesses_exist() {
        // person(X) -> hasParent(X, Y), person(Y) would diverge obliviously,
        // but with a loop back to an existing person the restricted chase can
        // reuse witnesses... here we give alice a known parent so the first
        // rule is satisfied without inventing anything.
        let p = parse_program("[R1] person(X) -> hasParent(X, Y).").unwrap();
        let mut db = person_db();
        db.insert_fact("hasParent", &["alice", "zoe"]);
        let result = chase(&p, &db, &ChaseConfig::restricted(16));
        assert!(result.is_universal_model());
        assert_eq!(result.fired, 0);
        assert_eq!(result.instance.len(), db.len());
    }

    #[test]
    fn restricted_chase_invents_nulls_when_needed() {
        let p = parse_program("[R1] person(X) -> hasParent(X, Y).").unwrap();
        let result = chase(&p, &person_db(), &ChaseConfig::restricted(16));
        assert!(result.is_universal_model());
        assert_eq!(result.instance.nulls().len(), 1);
        assert!(is_model(&p, &result.instance));
    }

    #[test]
    fn oblivious_chase_fires_even_satisfied_triggers() {
        let p = parse_program("[R1] person(X) -> hasParent(X, Y).").unwrap();
        let mut db = person_db();
        db.insert_fact("hasParent", &["alice", "zoe"]);
        let result = chase(&p, &db, &ChaseConfig::oblivious(16));
        assert!(result.is_universal_model());
        // The trigger fired although alice already had a parent.
        assert_eq!(result.fired, 1);
        assert_eq!(result.instance.nulls().len(), 1);
    }

    #[test]
    fn diverging_program_hits_round_budget() {
        // person(X) -> hasParent(X, Y); hasParent(X, Y) -> person(Y)
        // generates an infinite ancestor chain.
        let p = parse_program(
            "[R1] person(X) -> hasParent(X, Y).\n\
             [R2] hasParent(X, Y) -> person(Y).",
        )
        .unwrap();
        let result = chase(&p, &person_db(), &ChaseConfig::restricted(5));
        assert_eq!(result.outcome, ChaseOutcome::RoundBudgetExhausted);
        assert!(result.instance.len() > 5);
    }

    #[test]
    fn fact_budget_is_honoured() {
        let p = parse_program(
            "[R1] person(X) -> hasParent(X, Y).\n\
             [R2] hasParent(X, Y) -> person(Y).",
        )
        .unwrap();
        let config = ChaseConfig::restricted(1000).with_max_facts(20);
        let result = chase(&p, &person_db(), &config);
        assert_eq!(result.outcome, ChaseOutcome::FactBudgetExhausted);
        assert!(result.instance.len() <= 22); // budget plus the last fired head
    }

    #[test]
    fn semi_oblivious_does_not_refire_same_frontier_image() {
        // r(X, Y) -> s(X, Z): two facts with the same X must fire only once
        // under the semi-oblivious policy (frontier is {X}).
        let p = parse_program("[R1] r(X, Y) -> s(X, Z).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("r", &["a", "b1"]);
        db.insert_fact("r", &["a", "b2"]);
        let result = chase(&p, &db, &ChaseConfig::oblivious(16));
        assert!(result.is_universal_model());
        assert_eq!(result.fired, 1);
        assert_eq!(result.instance.relation_size(Predicate::new("s", 2)), 1);
    }

    #[test]
    fn multi_head_rules_fire_atomically() {
        let p = parse_program("[R1] emp(X) -> works(X, D), dept(D).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("emp", &["alice"]);
        let result = chase(&p, &db, &ChaseConfig::restricted(8));
        assert!(result.is_universal_model());
        // One null shared between works and dept.
        assert_eq!(result.instance.nulls().len(), 1);
        assert_eq!(result.instance.relation_size(Predicate::new("works", 2)), 1);
        assert_eq!(result.instance.relation_size(Predicate::new("dept", 1)), 1);
    }

    #[test]
    fn chase_of_empty_database_is_empty() {
        let p = parse_program("[R1] person(X) -> hasParent(X, Y).").unwrap();
        let result = chase(&p, &Instance::new(), &ChaseConfig::default());
        assert!(result.is_universal_model());
        assert!(result.instance.is_empty());
        assert_eq!(result.rounds, 1);
    }

    #[test]
    fn is_model_detects_violations() {
        let p = parse_program("[R1] person(X) -> agent(X).").unwrap();
        let mut db = person_db();
        assert!(!is_model(&p, &db));
        db.insert_fact("agent", &["alice"]);
        assert!(is_model(&p, &db));
    }
}
