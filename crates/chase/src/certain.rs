//! Certain answers by chase materialization.
//!
//! `cert(q, P, D)` is the set of tuples of constants that belong to `q(B)`
//! for every database `B ⊇ D` satisfying `P` (§3 of the paper). Because the
//! chase of `(P, D)` is a universal model, evaluating `q` over the chased
//! instance and keeping only null-free tuples computes exactly `cert(q, P, D)`
//! — provided the chase terminated. When the chase is cut off by its budget
//! the same procedure still returns a *sound* under-approximation (query
//! evaluation is monotone and the partial chase is contained in the full
//! chase), which the result reports through [`CertainAnswers::complete`].

use crate::engine::{chase, ChaseConfig, ChaseResult};
use ontorew_model::prelude::*;
use ontorew_storage::{evaluate_cq, evaluate_ucq, AnswerSet, RelationalStore};

/// The result of a certain-answer computation.
#[derive(Clone, Debug)]
pub struct CertainAnswers {
    /// The null-free answer tuples.
    pub answers: AnswerSet,
    /// True if the chase reached a fixpoint, making `answers` exactly the
    /// certain answers (otherwise they are a sound under-approximation).
    pub complete: bool,
    /// Statistics of the underlying chase run.
    pub chase: ChaseStats,
}

/// Summary statistics of a chase run.
#[derive(Clone, Copy, Debug)]
pub struct ChaseStats {
    /// Facts in the chased instance.
    pub facts: usize,
    /// Labelled nulls invented.
    pub nulls: usize,
    /// Rounds executed.
    pub rounds: usize,
    /// Triggers fired.
    pub fired: usize,
}

impl ChaseStats {
    fn from_result(result: &ChaseResult) -> Self {
        ChaseStats {
            facts: result.instance.len(),
            nulls: result.instance.nulls().len(),
            rounds: result.rounds,
            fired: result.fired,
        }
    }
}

/// Compute (a sound approximation of) the certain answers of a CQ by chasing
/// the database and evaluating the query over the chased instance.
pub fn certain_answers(
    program: &TgdProgram,
    database: &Instance,
    query: &ConjunctiveQuery,
    config: &ChaseConfig,
) -> CertainAnswers {
    let result = chase(program, database, config);
    let store = RelationalStore::from_instance(&result.instance);
    let answers = evaluate_cq(&store, query).without_nulls();
    CertainAnswers {
        answers,
        complete: result.is_universal_model(),
        chase: ChaseStats::from_result(&result),
    }
}

/// Compute (a sound approximation of) the certain answers of a UCQ.
pub fn certain_answers_ucq(
    program: &TgdProgram,
    database: &Instance,
    query: &UnionOfConjunctiveQueries,
    config: &ChaseConfig,
) -> CertainAnswers {
    let result = chase(program, database, config);
    let store = RelationalStore::from_instance(&result.instance);
    let answers = evaluate_ucq(&store, query).without_nulls();
    CertainAnswers {
        answers,
        complete: result.is_universal_model(),
        chase: ChaseStats::from_result(&result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::{parse_program, parse_query};

    #[test]
    fn certain_answers_include_derived_facts() {
        let p = parse_program(
            "[R1] professor(X) -> teaches(X, C).\n\
             [R2] teaches(X, C) -> course(C).\n\
             [R3] assistant(X, P) -> teaches(P, C).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("professor", &["alice"]);
        db.insert_fact("teaches", &["bob", "ai102"]);
        let q = parse_query("q(X) :- teaches(X, Y)").unwrap();
        let result = certain_answers(&p, &db, &q, &ChaseConfig::default());
        assert!(result.complete);
        // alice teaches *something* (an invented course), bob teaches ai102.
        assert!(result.answers.contains_constants(&["alice"]));
        assert!(result.answers.contains_constants(&["bob"]));
        assert_eq!(result.answers.len(), 2);
    }

    #[test]
    fn nulls_never_appear_in_answers() {
        let p = parse_program("[R1] professor(X) -> teaches(X, C).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("professor", &["alice"]);
        let q = parse_query("q(X, C) :- teaches(X, C)").unwrap();
        let result = certain_answers(&p, &db, &q, &ChaseConfig::default());
        assert!(result.complete);
        // The only teaches-fact pairs alice with a labelled null, which must
        // not surface as a certain answer.
        assert!(result.answers.is_empty());
        assert_eq!(result.chase.nulls, 1);
    }

    #[test]
    fn boolean_query_over_invented_values() {
        let p = parse_program("[R1] professor(X) -> teaches(X, C).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("professor", &["alice"]);
        let q = parse_query("q() :- teaches(X, C)").unwrap();
        let result = certain_answers(&p, &db, &q, &ChaseConfig::default());
        // The boolean query is certain: in every model alice teaches something.
        assert!(result.answers.as_boolean());
    }

    #[test]
    fn incomplete_chase_is_flagged_and_sound() {
        let p = parse_program(
            "[R1] person(X) -> hasParent(X, Y).\n\
             [R2] hasParent(X, Y) -> person(Y).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("person", &["alice"]);
        db.insert_fact("hasParent", &["alice", "bob"]);
        let q = parse_query("q(X) :- person(X)").unwrap();
        let result = certain_answers(&p, &db, &q, &ChaseConfig::restricted(3));
        assert!(!result.complete);
        // Sound: both constants are genuinely certain answers.
        assert!(result.answers.contains_constants(&["alice"]));
        assert!(result.answers.contains_constants(&["bob"]));
    }

    #[test]
    fn ucq_certain_answers() {
        let p = parse_program("[R1] ta(X) -> staff(X).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("ta", &["carol"]);
        db.insert_fact("prof", &["alice"]);
        let q1 = parse_query("q(X) :- staff(X)").unwrap();
        let q2 = parse_query("q(X) :- prof(X)").unwrap();
        let ucq = UnionOfConjunctiveQueries::new(vec![q1, q2]);
        let result = certain_answers_ucq(&p, &db, &ucq, &ChaseConfig::default());
        assert!(result.complete);
        assert_eq!(result.answers.len(), 2);
    }

    #[test]
    fn stats_reflect_the_run() {
        let p = parse_program("[R1] a(X) -> b(X).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("a", &["x"]);
        let q = parse_query("q(X) :- b(X)").unwrap();
        let result = certain_answers(&p, &db, &q, &ChaseConfig::default());
        assert_eq!(result.chase.fired, 1);
        assert_eq!(result.chase.facts, 2);
        assert_eq!(result.chase.nulls, 0);
        assert!(result.chase.rounds >= 1);
    }
}
