//! Triggers: matches of rule bodies into an instance.

use ontorew_model::prelude::*;
use ontorew_unify::{
    all_homomorphisms, all_homomorphisms_delta, all_homomorphisms_delta_chunk, find_homomorphism,
    find_homomorphism_ordered, generic_join_all, generic_join_delta, generic_join_delta_pivot,
    is_cyclic, plan_match_order, JoinStrategy, GENERIC_JOIN_MIN_FACTS,
};
use std::collections::BTreeSet;

/// Per-rule metadata the chase needs for every trigger, computed once per
/// chase run instead of once per trigger: the frontier, the existential head
/// variables, the set of body predicates (used to skip rules whose body
/// cannot touch a round's delta), and the pre-planned match order of the
/// head atoms for the restricted chase's satisfaction check.
#[derive(Clone, Debug)]
pub struct RulePlan {
    /// The rule's frontier (distinguished variables), in head order.
    pub frontier: Vec<Variable>,
    /// The rule's existential head variables.
    pub existentials: Vec<Variable>,
    /// The predicates occurring in the rule body.
    pub body_predicates: BTreeSet<Predicate>,
    /// The head atoms in the greedy match order the satisfaction check uses,
    /// planned once per rule (the seed domain — the frontier — is the same
    /// for every trigger of the rule, so the order never changes).
    pub head_order: Vec<Atom>,
    /// True if the body's variable hypergraph is cyclic (GYO test) — the
    /// shapes on which the worst-case-optimal generic join beats the
    /// backtracking trigger search.
    pub cyclic: bool,
}

impl RulePlan {
    /// Precompute the plan of one rule.
    pub fn new(rule: &Tgd) -> Self {
        let frontier = rule.frontier();
        let head_order = plan_match_order(&rule.head, frontier.iter().copied());
        RulePlan {
            frontier,
            existentials: rule.existential_head_variables(),
            body_predicates: predicates_of(&rule.body),
            head_order,
            cyclic: is_cyclic(&rule.body),
        }
    }

    /// True if some body predicate has at least one fact in `delta` — i.e.
    /// the rule can have a trigger that uses the delta.
    pub fn body_touches(&self, delta: &Instance) -> bool {
        self.body_predicates
            .iter()
            .any(|p| delta.relation_size(*p) > 0)
    }

    /// The per-rule join strategy on `instance`: generic join when the body
    /// is cyclic and the touched relations hold enough facts for the
    /// variable-at-a-time overhead to pay, backtracking otherwise. Evaluated
    /// per round — a rule can graduate to the generic join as the chase
    /// grows the instance.
    pub fn join_strategy(&self, instance: &Instance) -> JoinStrategy {
        if !self.cyclic {
            return JoinStrategy::Backtracking;
        }
        let total: usize = self
            .body_predicates
            .iter()
            .map(|p| instance.relation_size(*p))
            .sum();
        if total >= GENERIC_JOIN_MIN_FACTS {
            JoinStrategy::GenericJoin
        } else {
            JoinStrategy::Backtracking
        }
    }
}

/// A trigger for a TGD on an instance: a homomorphism from the rule body into
/// the instance.
#[derive(Clone, Debug)]
pub struct Trigger {
    /// Index of the rule in the program.
    pub rule_index: usize,
    /// The homomorphism from the rule body into the instance, restricted to
    /// the body variables.
    pub homomorphism: Substitution,
}

impl Trigger {
    /// A canonical key identifying the trigger: the rule index together with
    /// the image of the rule's *frontier* under the homomorphism.
    ///
    /// Two triggers with the same key generate head atoms that are identical
    /// up to the renaming of invented nulls, so the oblivious chase fires each
    /// key at most once (this is the "semi-oblivious"/skolem chase policy,
    /// which produces the same certain answers as the fully oblivious chase).
    pub fn key(&self, rule: &Tgd) -> TriggerKey {
        self.key_with(&rule.frontier())
    }

    /// [`Trigger::key`] with a precomputed frontier (see [`RulePlan`]).
    pub fn key_with(&self, frontier: &[Variable]) -> TriggerKey {
        let frontier_image: Vec<Term> = frontier
            .iter()
            .map(|v| self.homomorphism.apply_term(Term::Variable(*v)))
            .collect();
        TriggerKey {
            rule_index: self.rule_index,
            frontier_image,
        }
    }

    /// True if the trigger is *active* on `instance` for the restricted
    /// (standard) chase: the homomorphism of the body cannot be extended to a
    /// homomorphism of the head into `instance`.
    pub fn is_active(&self, rule: &Tgd, instance: &Instance) -> bool {
        self.is_active_with(&rule.head, &rule.frontier(), instance)
    }

    /// [`Trigger::is_active`] with a precomputed frontier (see [`RulePlan`]).
    pub fn is_active_with(
        &self,
        head: &[Atom],
        frontier: &[Variable],
        instance: &Instance,
    ) -> bool {
        let seed = self.homomorphism.restrict(frontier);
        find_homomorphism(head, instance, &seed).is_none()
    }

    /// The satisfaction check of the restricted chase with the whole
    /// [`RulePlan`]: reuses the rule's pre-planned head match order, so each
    /// check is a plain backtracking search with no per-trigger planning.
    pub fn is_active_planned(&self, plan: &RulePlan, instance: &Instance) -> bool {
        let seed = self.homomorphism.restrict(&plan.frontier);
        find_homomorphism_ordered(&plan.head_order, instance, &seed).is_none()
    }

    /// The satisfying head image of a non-active trigger: when the head can
    /// already be mapped into `instance` (the trigger is *satisfied*, not
    /// active), returns the image atoms of that homomorphism — the existing
    /// facts that witness satisfaction. Returns `None` for an active trigger.
    /// Provenance tracking records these as *witness edges*: the alternative
    /// derivations the restricted chase skipped, which deletion must consult.
    pub fn satisfying_image(&self, plan: &RulePlan, instance: &Instance) -> Option<Vec<Atom>> {
        let seed = self.homomorphism.restrict(&plan.frontier);
        find_homomorphism_ordered(&plan.head_order, instance, &seed)
            .map(|sub| sub.apply_atoms(&plan.head_order))
    }

    /// The head atoms generated by firing this trigger: frontier variables are
    /// replaced by their image, every existential head variable by a fresh
    /// labelled null.
    pub fn fire(&self, rule: &Tgd) -> Vec<Atom> {
        self.fire_with(&rule.head, &rule.existential_head_variables())
    }

    /// [`Trigger::fire`] with precomputed existential head variables (see
    /// [`RulePlan`]).
    pub fn fire_with(&self, head: &[Atom], existentials: &[Variable]) -> Vec<Atom> {
        let mut assignment = self.homomorphism.clone();
        for z in existentials {
            assignment.bind(*z, Term::fresh_null());
        }
        assignment.apply_atoms(head)
    }
}

/// Canonical identity of a trigger (see [`Trigger::key`]).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TriggerKey {
    /// Index of the rule in the program.
    pub rule_index: usize,
    /// Image of the rule frontier under the trigger homomorphism.
    pub frontier_image: Vec<Term>,
}

/// A derivation edge staged during a chase round and committed to the
/// [`DerivationGraph`](crate::provenance::DerivationGraph) only once the
/// round survives the fact budget: `(rule index, trigger key, premise
/// atoms, conclusion atoms, witness-edge flag)`.
pub(crate) type StagedEdge = (usize, TriggerKey, Vec<Atom>, Vec<Atom>, bool);

/// Enumerate every trigger of `program` on `instance`.
pub fn find_triggers(program: &TgdProgram, instance: &Instance) -> Vec<Trigger> {
    let mut triggers = Vec::new();
    for (rule_index, rule) in program.iter().enumerate() {
        for homomorphism in all_homomorphisms(&rule.body, instance, &Substitution::new()) {
            triggers.push(Trigger {
                rule_index,
                homomorphism,
            });
        }
    }
    triggers
}

/// Enumerate the triggers of a single rule on `instance`.
pub fn find_rule_triggers(rule_index: usize, rule: &Tgd, instance: &Instance) -> Vec<Trigger> {
    find_rule_triggers_with(rule_index, rule, instance, JoinStrategy::Backtracking)
}

/// [`find_rule_triggers`] with an explicit join strategy (see
/// [`RulePlan::join_strategy`]). Both strategies enumerate exactly the same
/// triggers; only the search order and cost differ.
pub fn find_rule_triggers_with(
    rule_index: usize,
    rule: &Tgd,
    instance: &Instance,
    strategy: JoinStrategy,
) -> Vec<Trigger> {
    let homomorphisms = match strategy {
        JoinStrategy::Backtracking => all_homomorphisms(&rule.body, instance, &Substitution::new()),
        JoinStrategy::GenericJoin => generic_join_all(&rule.body, instance, &Substitution::new()),
    };
    homomorphisms
        .into_iter()
        .map(|homomorphism| Trigger {
            rule_index,
            homomorphism,
        })
        .collect()
}

/// Enumerate the triggers of a single rule whose body uses **at least one
/// fact of `delta`** (where `delta ⊆ full`): exactly the triggers that did
/// not exist on `full \ delta`. This is the semi-naive work-horse — a chase
/// round passes the previous round's newly derived facts as `delta` and
/// never re-enumerates old triggers.
pub fn find_rule_triggers_delta(
    rule_index: usize,
    rule: &Tgd,
    full: &Instance,
    delta: &Instance,
) -> Vec<Trigger> {
    find_rule_triggers_delta_with(rule_index, rule, full, delta, JoinStrategy::Backtracking)
}

/// [`find_rule_triggers_delta`] with an explicit join strategy (see
/// [`RulePlan::join_strategy`]). Both strategies enumerate exactly the same
/// delta triggers.
pub fn find_rule_triggers_delta_with(
    rule_index: usize,
    rule: &Tgd,
    full: &Instance,
    delta: &Instance,
    strategy: JoinStrategy,
) -> Vec<Trigger> {
    let homomorphisms = match strategy {
        JoinStrategy::Backtracking => {
            all_homomorphisms_delta(&rule.body, full, delta, &Substitution::new())
        }
        JoinStrategy::GenericJoin => {
            generic_join_delta(&rule.body, full, delta, &Substitution::new())
        }
    };
    homomorphisms
        .into_iter()
        .map(|homomorphism| Trigger {
            rule_index,
            homomorphism,
        })
        .collect()
}

/// One pivot's share of the generic-join delta trigger search (see
/// [`ontorew_unify::generic_join_delta_pivot`]): the parallel engine's work
/// unit for cyclic rules, where intra-pivot chunking is not available but
/// the per-pivot searches are already independent.
pub fn find_rule_triggers_delta_pivot_generic(
    rule_index: usize,
    rule: &Tgd,
    full: &Instance,
    delta: &Instance,
    pivot: usize,
) -> Vec<Trigger> {
    generic_join_delta_pivot(&rule.body, full, delta, &Substitution::new(), pivot)
        .into_iter()
        .map(|homomorphism| Trigger {
            rule_index,
            homomorphism,
        })
        .collect()
}

/// One slice of [`find_rule_triggers_delta`]'s work: the triggers whose
/// pivot is body atom `pivot` and whose pivot match falls in the `chunk`-th
/// residue class of the pivot's delta candidates (see
/// [`ontorew_unify::all_homomorphisms_delta_chunk`]). The union over all
/// `(pivot, chunk)` pairs is exactly the rule's delta triggers, each
/// produced once — how the parallel engine splits a single rule's trigger
/// search across threads.
pub fn find_rule_triggers_delta_chunk(
    rule_index: usize,
    rule: &Tgd,
    full: &Instance,
    delta: &Instance,
    pivot: usize,
    chunk: usize,
    chunk_count: usize,
) -> Vec<Trigger> {
    all_homomorphisms_delta_chunk(
        &rule.body,
        full,
        delta,
        &Substitution::new(),
        pivot,
        chunk,
        chunk_count,
    )
    .into_iter()
    .map(|homomorphism| Trigger {
        rule_index,
        homomorphism,
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::parse_program;

    fn program() -> TgdProgram {
        parse_program(
            "[R1] person(X) -> hasParent(X, Y).\n\
             [R2] hasParent(X, Y) -> person(Y).",
        )
        .unwrap()
    }

    fn db() -> Instance {
        let mut db = Instance::new();
        db.insert_fact("person", &["alice"]);
        db.insert_fact("hasParent", &["bob", "carol"]);
        db
    }

    #[test]
    fn triggers_are_found_for_every_body_match() {
        let triggers = find_triggers(&program(), &db());
        // R1 matches person(alice); R2 matches hasParent(bob, carol).
        assert_eq!(triggers.len(), 2);
        let rules: Vec<usize> = triggers.iter().map(|t| t.rule_index).collect();
        assert!(rules.contains(&0));
        assert!(rules.contains(&1));
    }

    #[test]
    fn firing_invents_nulls_for_existentials() {
        let p = program();
        let triggers = find_triggers(&p, &db());
        let t = triggers.iter().find(|t| t.rule_index == 0).unwrap();
        let produced = t.fire(&p.rules()[0]);
        assert_eq!(produced.len(), 1);
        assert_eq!(produced[0].predicate, Predicate::new("hasParent", 2));
        assert_eq!(produced[0].terms[0], Term::constant("alice"));
        assert!(produced[0].terms[1].is_null());
    }

    #[test]
    fn firing_full_rules_uses_only_the_homomorphism() {
        let p = program();
        let triggers = find_triggers(&p, &db());
        let t = triggers.iter().find(|t| t.rule_index == 1).unwrap();
        let produced = t.fire(&p.rules()[1]);
        assert_eq!(produced, vec![Atom::fact("person", &["carol"])]);
    }

    #[test]
    fn restricted_activity_check() {
        let p = program();
        let mut instance = db();
        let triggers = find_triggers(&p, &instance);
        let r1_trigger = triggers.iter().find(|t| t.rule_index == 0).unwrap().clone();
        // No parent of alice yet: the trigger is active.
        assert!(r1_trigger.is_active(&p.rules()[0], &instance));
        // Once alice has some parent, the trigger is no longer active.
        instance.insert_fact("hasParent", &["alice", "zoe"]);
        assert!(!r1_trigger.is_active(&p.rules()[0], &instance));
    }

    #[test]
    fn satisfying_image_returns_the_witness_facts() {
        let p = program();
        let mut instance = db();
        let plan = RulePlan::new(&p.rules()[0]);
        let triggers = find_triggers(&p, &instance);
        let r1_trigger = triggers.iter().find(|t| t.rule_index == 0).unwrap().clone();
        // Active trigger: no satisfying image.
        assert!(r1_trigger.satisfying_image(&plan, &instance).is_none());
        // Satisfied trigger: the image is the existing witness fact.
        instance.insert_fact("hasParent", &["alice", "zoe"]);
        let image = r1_trigger.satisfying_image(&plan, &instance).unwrap();
        assert_eq!(image, vec![Atom::fact("hasParent", &["alice", "zoe"])]);
    }

    #[test]
    fn trigger_keys_identify_frontier_images() {
        let p = program();
        let triggers = find_triggers(&p, &db());
        let t = triggers.iter().find(|t| t.rule_index == 0).unwrap();
        let key = t.key(&p.rules()[0]);
        assert_eq!(key.rule_index, 0);
        assert_eq!(key.frontier_image, vec![Term::constant("alice")]);
    }

    #[test]
    fn rule_triggers_match_global_triggers() {
        let p = program();
        let instance = db();
        let all = find_triggers(&p, &instance);
        let per_rule: usize = p
            .iter()
            .enumerate()
            .map(|(i, r)| find_rule_triggers(i, r, &instance).len())
            .sum();
        assert_eq!(all.len(), per_rule);
    }
}
