//! Incremental deletion by delete-and-rederive (DRed) over the derivation
//! graph.
//!
//! [`chase_retract`] removes a set of asserted (base) facts from a finished,
//! provenance-tracked chase and repairs the materialization without
//! re-chasing from scratch:
//!
//! 1. **Overdelete** — the downward closure of the removed facts through the
//!    *fired* edges of the [`crate::DerivationGraph`] is marked doomed (a
//!    deliberate overapproximation: a doomed fact may have other support).
//! 2. **Rederive** — a well-founded fixpoint revives doomed facts with a
//!    surviving alternative derivation. Reviver edges are all fired edges
//!    (replaying an existential firing keeps its recorded nulls — sound, the
//!    result stays a universal model) plus the *witness* edges of
//!    existential-free rules (their head image is exactly what firing would
//!    produce). Witness edges of existential rules never revive directly:
//!    their image may contain terms the premises do not justify.
//! 3. **Reprocess dropped keys** — every trigger key whose recorded edge
//!    died is re-examined against the repaired instance: if the rule body
//!    still matches the key's frontier image, the trigger is re-fired (or a
//!    new witness is recorded under the restricted variant). This covers the
//!    derivations the original run never recorded — e.g. a second body
//!    homomorphism sharing the frontier image of an edge that died, or a
//!    restricted trigger whose satisfying witness was deleted.
//! 4. **Continue** — the refired facts seed an ordinary semi-naive
//!    continuation (`crate::engine::run_chase_rounds`), closing the
//!    instance under the program again.
//!
//! Equivalence to a scratch chase over (inputs − removed): exact up to null
//! renaming for Datalog programs and for the semi-oblivious variant (firing
//! there is determined per frontier image). Under the restricted variant
//! with existential rules the firing *order* is deletion-history dependent,
//! so the result may keep redundant nulls a scratch chase would avoid (or
//! vice versa) — it is still a universal model of the surviving database,
//! homomorphically equivalent to the scratch chase, hence with identical
//! certain answers. The property tests pin exactly this contract.

use crate::engine::{
    chase, run_chase_rounds, sequential_round_search, ChaseConfig, ChaseOutcome, ChaseResult,
    ChaseStrategy, ChaseVariant,
};
use crate::provenance::FactId;
use crate::trigger::{RulePlan, StagedEdge, Trigger, TriggerKey};
use ontorew_model::prelude::*;
use ontorew_unify::find_homomorphism;
use std::collections::HashSet;

/// The result of an incremental retraction (see [`chase_retract`]).
#[derive(Clone, Debug)]
pub struct RetractedChase {
    /// The repaired chase state over `base − removed`, closed under the
    /// program, with an updated derivation graph.
    pub result: ChaseResult,
    /// Facts actually removed from the instance (requested base facts plus
    /// cascaded derived facts, minus everything rederived).
    pub removed: usize,
    /// Size of the overdeleted downward closure (before rederivation).
    pub overdeleted: usize,
    /// Doomed facts revived because an alternative derivation survived.
    pub rederived: usize,
    /// Triggers re-fired while reprocessing dropped keys.
    pub refired: usize,
    /// True when the base was not a terminated fixpoint and the retraction
    /// fell back to a scratch chase of the surviving base facts.
    pub scratch: bool,
}

/// Incrementally retract the base facts of `removed` from a finished chase.
///
/// `base` must have been produced with [`ChaseConfig::track_provenance`]
/// (this function panics otherwise — without the derivation graph there is
/// nothing to walk). Facts of `removed` that are unknown, already dead, or
/// derived-only (never asserted) are ignored: retraction withdraws
/// assertions, and a fact that is still derivable stays derivable.
///
/// If `base.outcome` is not [`ChaseOutcome::Terminated`] the recorded graph
/// is only a partial account of the instance, so the function falls back to
/// a scratch chase over (base facts − removed) — sound, just not
/// incremental.
pub fn chase_retract(
    program: &TgdProgram,
    base: &ChaseResult,
    removed: &Instance,
    config: &ChaseConfig,
) -> RetractedChase {
    let base_graph = base.provenance.as_ref().expect(
        "chase_retract requires a derivation graph: run the base chase with \
         ChaseConfig::track_provenance enabled (with_provenance(true))",
    );
    let config = ChaseConfig {
        strategy: ChaseStrategy::SemiNaive,
        track_provenance: true,
        ..*config
    };
    if base.outcome != ChaseOutcome::Terminated {
        // The graph may be missing the edges of a budget-truncated round:
        // rebuild from the surviving asserted facts instead.
        let mut db = Instance::new();
        for atom in base_graph.base_facts() {
            if !removed.contains(atom) {
                db.insert(atom.clone());
            }
        }
        let result = chase(program, &db, &config);
        return RetractedChase {
            result,
            removed: removed.len(),
            overdeleted: 0,
            rederived: 0,
            refired: 0,
            scratch: true,
        };
    }

    let mut graph = base_graph.clone();
    let plans: Vec<RulePlan> = program.iter().map(RulePlan::new).collect();
    let n = graph.atoms.len();

    // 1. Withdraw the assertions. Only live base facts seed the overdelete;
    // a derived-only fact cannot be retracted (it is entailed regardless).
    let mut doomed = vec![false; n];
    for atom in removed.atoms() {
        if let Some(id) = graph.id_of(&atom) {
            if graph.base[id as usize] {
                graph.base[id as usize] = false;
                doomed[id as usize] = true;
            }
        }
    }

    // 2. Overdelete: close doomed downward through every edge — fired edges
    // because their conclusions were genuinely derived from the premises,
    // and witness edges because an earlier retraction may have left one as a
    // fact's only recorded support (a withdrawn assertion that stayed
    // because the witness rederived it). Overdeleting through a witness edge
    // is only ever an overapproximation: its conclusions all have their own
    // legitimate edges, which the rederivation pass consults. Facts still
    // asserted (base) are never doomed by cascade.
    loop {
        let mut grew = false;
        for edge in &graph.edges {
            if !edge.premises.iter().any(|&p| doomed[p as usize]) {
                continue;
            }
            for &c in &edge.conclusions {
                if graph.alive[c as usize] && !graph.base[c as usize] && !doomed[c as usize] {
                    doomed[c as usize] = true;
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    let overdeleted = doomed.iter().filter(|&&d| d).count();

    // 3. Rederive: a well-founded support fixpoint from the undoomed facts.
    // An edge revives its doomed conclusions when all its premises are
    // supported; growth is monotone from the undoomed base, so no doomed
    // fact can support itself through a cycle.
    let mut supported: Vec<bool> = (0..n).map(|id| graph.alive[id] && !doomed[id]).collect();
    let mut rederived = 0usize;
    loop {
        let mut grew = false;
        for edge in &graph.edges {
            let revivable = !edge.satisfied || plans[edge.rule as usize].existentials.is_empty();
            if !revivable || !edge.premises.iter().all(|&p| supported[p as usize]) {
                continue;
            }
            for &c in &edge.conclusions {
                if graph.alive[c as usize] && doomed[c as usize] && !supported[c as usize] {
                    supported[c as usize] = true;
                    rederived += 1;
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }

    // 4. Tombstone the dead facts and remove them from the instance.
    let dead_ids: Vec<FactId> = (0..n)
        .filter(|&id| graph.alive[id] && doomed[id] && !supported[id])
        .map(|id| id as FactId)
        .collect();
    let dead_atoms: Vec<Atom> = dead_ids.iter().map(|&id| graph.atom(id).clone()).collect();
    for &id in &dead_ids {
        graph.alive[id as usize] = false;
    }
    let mut instance = base.instance.clone();
    let removed_facts = instance.remove_atoms(dead_atoms.iter());

    // 5. Prune the graph: an edge survives only if every premise and every
    // conclusion is still alive. The keys of dead edges are *dropped* —
    // their verdict is stale — and the surviving edges rebuild the retired
    // key set (key ↔ edge is one-to-one in a provenance-tracked run).
    let mut dropped: Vec<TriggerKey> = Vec::new();
    let mut kept = Vec::with_capacity(graph.edges.len());
    for edge in graph.edges.drain(..) {
        let intact = edge
            .premises
            .iter()
            .chain(edge.conclusions.iter())
            .all(|&id| graph.alive[id as usize]);
        if intact {
            kept.push(edge);
        } else {
            dropped.push(edge.key.clone());
        }
    }
    graph.edges = kept;
    // Steps 1–5 mutated base/alive/edges directly: the memoized supported
    // set (if the cloned source graph carried one) is stale.
    graph.invalidate_support_cache();
    let mut fired_keys: HashSet<TriggerKey> = graph.edges.iter().map(|e| e.key.clone()).collect();
    dropped.sort();
    dropped.dedup();
    dropped.retain(|key| !fired_keys.contains(key));

    // 6. Reprocess the dropped keys against the repaired instance. The
    // original run may have skipped alternative derivations sharing a key
    // (the per-key dedup) or satisfied a trigger against a now-deleted
    // witness; re-matching the body seeded with the frontier image recovers
    // exactly those triggers. Round semantics: every key is judged against
    // the stage-start instance, insertions land afterwards.
    let mut refired = 0usize;
    let mut new_facts: Vec<Atom> = Vec::new();
    let mut pending: Vec<StagedEdge> = Vec::new();
    for key in dropped {
        let rule = &program.rules()[key.rule_index];
        let plan = &plans[key.rule_index];
        let mut seed = Substitution::new();
        for (v, t) in plan.frontier.iter().zip(key.frontier_image.iter()) {
            seed.bind(*v, *t);
        }
        let Some(homomorphism) = find_homomorphism(&rule.body, &instance, &seed) else {
            // No surviving body match: the trigger is gone for good.
            continue;
        };
        let trigger = Trigger {
            rule_index: key.rule_index,
            homomorphism,
        };
        let witness = match config.variant {
            ChaseVariant::Oblivious => None,
            ChaseVariant::Restricted => trigger.satisfying_image(plan, &instance),
        };
        match witness {
            Some(image) => {
                pending.push((
                    key.rule_index,
                    key.clone(),
                    trigger.homomorphism.apply_atoms(&rule.body),
                    image,
                    true,
                ));
            }
            None => {
                let produced = trigger.fire_with(&rule.head, &plan.existentials);
                pending.push((
                    key.rule_index,
                    key.clone(),
                    trigger.homomorphism.apply_atoms(&rule.body),
                    produced.clone(),
                    false,
                ));
                new_facts.extend(produced);
                refired += 1;
            }
        }
        fired_keys.insert(key);
    }
    for (rule_index, key, premises, conclusions, satisfied) in pending {
        graph.add_edge(rule_index, key, &premises, &conclusions, satisfied);
    }
    let mut refired_delta = Instance::new();
    for fact in new_facts {
        if instance.insert(fact.clone()) {
            refired_delta.insert(fact);
        }
    }

    // 7. Close under the program again: the refired facts are the seed of an
    // ordinary semi-naive continuation.
    let mut result = if refired_delta.is_empty() {
        ChaseResult {
            instance,
            rounds: 0,
            fired: 0,
            outcome: ChaseOutcome::Terminated,
            fired_keys,
            provenance: Some(graph),
        }
    } else {
        let (result, _derived) = run_chase_rounds(
            program,
            &plans,
            instance,
            Some(refired_delta),
            fired_keys,
            Some(graph),
            false,
            &config,
            sequential_round_search(program, &plans, &config),
        );
        result
    };
    result.fired += refired;
    RetractedChase {
        result,
        removed: removed_facts,
        overdeleted,
        rederived,
        refired,
        scratch: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::is_model;
    use crate::equiv::{equivalent_up_to_null_renaming, homomorphically_equivalent};
    use ontorew_model::parse_program;

    fn tracked() -> ChaseConfig {
        ChaseConfig::default().with_provenance(true)
    }

    fn retract_facts(
        program: &TgdProgram,
        base: &ChaseResult,
        facts: &[Atom],
        config: &ChaseConfig,
    ) -> RetractedChase {
        let removed = Instance::from_atoms(facts.iter().cloned());
        chase_retract(program, base, &removed, config)
    }

    #[test]
    fn datalog_retraction_matches_scratch_exactly() {
        let p = parse_program(
            "[R1] edge(X, Y) -> path(X, Y).\n\
             [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("edge", &["a", "b"]);
        db.insert_fact("edge", &["b", "c"]);
        db.insert_fact("edge", &["c", "d"]);
        let base = chase(&p, &db, &tracked());
        let out = retract_facts(&p, &base, &[Atom::fact("edge", &["b", "c"])], &tracked());
        assert!(!out.scratch);
        assert!(out.result.is_universal_model());
        // Scratch oracle over the surviving database.
        let mut survivors = db.clone();
        survivors.remove(&Atom::fact("edge", &["b", "c"]));
        let oracle = chase(&p, &survivors, &tracked());
        assert_eq!(out.result.instance, oracle.instance);
        // path(a,b) and path(c,d) survive; the b→c bridge is gone.
        assert!(out
            .result
            .instance
            .contains(&Atom::fact("path", &["a", "b"])));
        assert!(!out
            .result
            .instance
            .contains(&Atom::fact("path", &["a", "c"])));
        assert!(!out
            .result
            .instance
            .contains(&Atom::fact("path", &["a", "d"])));
        assert!(out.removed >= 4); // edge(b,c), path(b,c), path(b,d), path(a,c), path(a,d)
        assert!(is_model(&p, &out.result.instance));
    }

    #[test]
    fn alternative_derivations_are_rederived() {
        // d(x) holds through two independent rules; deleting one premise
        // must keep it.
        let p = parse_program(
            "[R1] a(X) -> d(X).\n\
             [R2] b(X) -> d(X).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("a", &["x"]);
        db.insert_fact("b", &["x"]);
        let base = chase(&p, &db, &tracked());
        let out = retract_facts(&p, &base, &[Atom::fact("a", &["x"])], &tracked());
        assert!(out.result.instance.contains(&Atom::fact("d", &["x"])));
        assert!(!out.result.instance.contains(&Atom::fact("a", &["x"])));
        assert!(out.rederived >= 1 || out.refired >= 1);
        assert!(is_model(&p, &out.result.instance));
    }

    #[test]
    fn same_key_alternative_homomorphisms_are_recovered() {
        // Two body matches share the frontier image {a}; the recorded edge
        // used one of them. Deleting that premise must re-fire from the
        // surviving alternative instead of killing s(a, _).
        let p = parse_program("[R1] r(X, Y) -> s(X, Z).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("r", &["a", "b1"]);
        db.insert_fact("r", &["a", "b2"]);
        for config in [tracked(), ChaseConfig::oblivious(64).with_provenance(true)] {
            let base = chase(&p, &db, &config);
            for doomed in ["b1", "b2"] {
                let out = retract_facts(&p, &base, &[Atom::fact("r", &["a", doomed])], &config);
                assert_eq!(
                    out.result.instance.relation_size(Predicate::new("s", 2)),
                    1,
                    "s(a, _) must survive deleting r(a, {doomed})"
                );
                assert!(out.result.is_universal_model());
                assert!(is_model(&p, &out.result.instance));
            }
        }
    }

    #[test]
    fn deleting_a_restricted_witness_refires_the_trigger() {
        // The restricted chase never fired person(alice)'s trigger: the
        // asserted parent satisfied it (a witness edge). Deleting the
        // witness must re-activate and fire the trigger with a fresh null.
        let p = parse_program("[R1] person(X) -> hasParent(X, Y).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("person", &["alice"]);
        db.insert_fact("hasParent", &["alice", "zoe"]);
        let base = chase(&p, &db, &tracked());
        assert_eq!(base.fired, 0);
        let out = retract_facts(
            &p,
            &base,
            &[Atom::fact("hasParent", &["alice", "zoe"])],
            &tracked(),
        );
        assert!(out.result.is_universal_model());
        assert_eq!(out.refired, 1);
        assert_eq!(out.result.instance.nulls().len(), 1);
        assert!(is_model(&p, &out.result.instance));
        // And equivalent to the scratch oracle.
        let mut survivors = db.clone();
        survivors.remove(&Atom::fact("hasParent", &["alice", "zoe"]));
        let oracle = chase(&p, &survivors, &tracked());
        assert!(equivalent_up_to_null_renaming(
            &out.result.instance,
            &oracle.instance
        ));
    }

    #[test]
    fn existential_witness_edges_do_not_resurrect_deleted_facts() {
        // hasParent(alice, zoe) witnessed R1's trigger. zoe is *not*
        // justified by person(alice); deleting the witness must not use the
        // witness edge to revive it.
        let p = parse_program("[R1] person(X) -> hasParent(X, Y).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("person", &["alice"]);
        db.insert_fact("hasParent", &["alice", "zoe"]);
        let base = chase(&p, &db, &tracked());
        let out = retract_facts(
            &p,
            &base,
            &[Atom::fact("hasParent", &["alice", "zoe"])],
            &tracked(),
        );
        assert!(!out
            .result
            .instance
            .contains(&Atom::fact("hasParent", &["alice", "zoe"])));
    }

    #[test]
    fn oblivious_retraction_is_isomorphic_to_scratch() {
        let p = parse_program(
            "[R1] r(X, Y) -> s(X, Z).\n\
             [R2] s(X, Z) -> t(Z).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("r", &["a", "b"]);
        db.insert_fact("r", &["c", "d"]);
        let config = ChaseConfig::oblivious(64).with_provenance(true);
        let base = chase(&p, &db, &config);
        let out = retract_facts(&p, &base, &[Atom::fact("r", &["a", "b"])], &config);
        let mut survivors = db.clone();
        survivors.remove(&Atom::fact("r", &["a", "b"]));
        let oracle = chase(&p, &survivors, &config);
        assert!(out.result.is_universal_model());
        assert!(equivalent_up_to_null_renaming(
            &out.result.instance,
            &oracle.instance
        ));
    }

    #[test]
    fn retracting_a_derived_only_fact_is_a_no_op() {
        let p = parse_program("[R1] a(X) -> b(X).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("a", &["x"]);
        let base = chase(&p, &db, &tracked());
        // b(x) is derived, never asserted: the retraction withdraws nothing.
        let out = retract_facts(&p, &base, &[Atom::fact("b", &["x"])], &tracked());
        assert_eq!(out.removed, 0);
        assert_eq!(out.result.instance, base.instance);
        // Unknown facts are ignored too.
        let out = retract_facts(&p, &base, &[Atom::fact("zzz", &["q"])], &tracked());
        assert_eq!(out.removed, 0);
    }

    #[test]
    fn retracting_an_asserted_and_derived_fact_keeps_it_derivable() {
        // b(x) is both asserted and derivable from a(x): withdrawing the
        // assertion keeps the fact (with derived status).
        let p = parse_program("[R1] a(X) -> b(X).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("a", &["x"]);
        db.insert_fact("b", &["x"]);
        let base = chase(&p, &db, &tracked());
        let out = retract_facts(&p, &base, &[Atom::fact("b", &["x"])], &tracked());
        assert!(out.result.instance.contains(&Atom::fact("b", &["x"])));
        assert_eq!(out.removed, 0);
        assert!(out.rederived >= 1 || out.refired >= 1);
        // But now deleting a(x) takes b(x) with it.
        let out2 = chase_retract(
            &p,
            &out.result,
            &Instance::from_atoms([Atom::fact("a", &["x"])]),
            &tracked(),
        );
        assert!(out2.result.instance.is_empty());
    }

    #[test]
    fn chained_retractions_stay_consistent() {
        // Alternate deletes over a transitive closure and compare against
        // the scratch oracle after each step.
        let p = parse_program(
            "[R1] edge(X, Y) -> path(X, Y).\n\
             [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
        )
        .unwrap();
        let mut db = Instance::new();
        for i in 0..6u32 {
            db.insert_fact("edge", &[&format!("n{i}"), &format!("n{}", i + 1)]);
        }
        let mut state = chase(&p, &db, &tracked());
        for i in [1u32, 4, 2] {
            let doomed = Atom::fact("edge", &[&format!("n{i}"), &format!("n{}", i + 1)]);
            db.remove(&doomed);
            state = chase_retract(&p, &state, &Instance::from_atoms([doomed]), &tracked()).result;
            let oracle = chase(&p, &db, &tracked());
            assert_eq!(state.instance, oracle.instance);
            assert!(state.is_universal_model());
        }
    }

    #[test]
    fn retraction_composes_with_incremental_insertion() {
        // delete then insert then delete, via the incremental paths only,
        // against a scratch oracle at the end.
        let p = parse_program(
            "[R1] edge(X, Y) -> path(X, Y).\n\
             [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("edge", &["a", "b"]);
        db.insert_fact("edge", &["b", "c"]);
        let mut state = chase(&p, &db, &tracked());

        let doomed = Atom::fact("edge", &["a", "b"]);
        db.remove(&doomed);
        state = chase_retract(&p, &state, &Instance::from_atoms([doomed]), &tracked()).result;

        let mut delta = Instance::new();
        delta.insert_fact("edge", &["c", "d"]);
        db.extend_from(&delta);
        state = crate::engine::chase_incremental(&p, &state, &delta, &tracked()).result;
        assert!(state.provenance.is_some());

        let doomed = Atom::fact("edge", &["c", "d"]);
        db.remove(&doomed);
        state = chase_retract(&p, &state, &Instance::from_atoms([doomed]), &tracked()).result;

        let oracle = chase(&p, &db, &tracked());
        assert_eq!(state.instance, oracle.instance);
    }

    #[test]
    fn restricted_existential_retraction_is_homomorphically_equivalent() {
        let p = parse_program(
            "[R1] emp(X) -> works(X, D), dept(D).\n\
             [R2] works(X, D) -> emp(X).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("emp", &["alice"]);
        db.insert_fact("emp", &["bob"]);
        db.insert_fact("works", &["bob", "sales"]);
        let base = chase(&p, &db, &tracked());
        let out = retract_facts(
            &p,
            &base,
            &[Atom::fact("works", &["bob", "sales"])],
            &tracked(),
        );
        assert!(out.result.is_universal_model());
        assert!(is_model(&p, &out.result.instance));
        let mut survivors = db.clone();
        survivors.remove(&Atom::fact("works", &["bob", "sales"]));
        let oracle = chase(&p, &survivors, &tracked());
        // Restricted + existentials: firing order is history dependent, so
        // only homomorphic equivalence (= same certain answers) is promised.
        assert!(homomorphically_equivalent(
            &out.result.instance,
            &oracle.instance
        ));
    }

    #[test]
    fn non_terminated_base_falls_back_to_scratch() {
        let p = parse_program(
            "[R1] person(X) -> hasParent(X, Y).\n\
             [R2] hasParent(X, Y) -> person(Y).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("person", &["alice"]);
        db.insert_fact("person", &["bob"]);
        let base = chase(&p, &db, &ChaseConfig::restricted(3).with_provenance(true));
        assert_ne!(base.outcome, ChaseOutcome::Terminated);
        let out = retract_facts(
            &p,
            &base,
            &[Atom::fact("person", &["bob"])],
            &ChaseConfig::restricted(3).with_provenance(true),
        );
        assert!(out.scratch);
        assert!(!out
            .result
            .instance
            .contains(&Atom::fact("person", &["bob"])));
        assert!(out
            .result
            .instance
            .contains(&Atom::fact("person", &["alice"])));
    }

    #[test]
    #[should_panic(expected = "requires a derivation graph")]
    fn retraction_without_provenance_panics() {
        let p = parse_program("[R1] a(X) -> b(X).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("a", &["x"]);
        let base = chase(&p, &db, &ChaseConfig::default());
        let _ = retract_facts(
            &p,
            &base,
            &[Atom::fact("a", &["x"])],
            &ChaseConfig::default(),
        );
    }

    #[test]
    fn graph_stays_queryable_after_retraction() {
        let p = parse_program(
            "[R1] edge(X, Y) -> path(X, Y).\n\
             [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert_fact("edge", &["a", "b"]);
        db.insert_fact("edge", &["b", "c"]);
        let base = chase(&p, &db, &tracked());
        let out = retract_facts(&p, &base, &[Atom::fact("edge", &["a", "b"])], &tracked());
        let graph = out.result.provenance.as_ref().unwrap();
        // Dead facts are no longer explainable; survivors still are.
        assert!(graph.why(&Atom::fact("path", &["a", "b"])).is_none());
        let steps = graph.why(&Atom::fact("path", &["b", "c"])).unwrap();
        assert_eq!(steps[0].rule, Some(0));
        // Node count reflects the retraction.
        assert_eq!(graph.node_count(), out.result.instance.len());
    }
}
