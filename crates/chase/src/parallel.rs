//! Parallel trigger search.
//!
//! Trigger enumeration (homomorphism search per rule) dominates chase time on
//! large instances and is embarrassingly parallel: every search task only
//! reads the shared instance. This module partitions the work across a scoped
//! thread pool (crossbeam) and merges the per-task trigger lists, and offers
//! [`chase_parallel`], a drop-in variant of [`crate::chase`] that uses the
//! parallel search inside each round. Like the sequential engine it is
//! semi-naive by default: each worker only searches for triggers whose body
//! uses the previous round's delta.
//!
//! Work is split at **two** granularities. Across rules, as before — but
//! also *within* a rule: the semi-naive pivot decomposition enumerates each
//! rule's triggers as a disjoint union over (pivot atom, pivot match), so a
//! rule whose pivot can draw from a large delta is split into `(pivot,
//! chunk)` slices ([`find_rule_triggers_delta_chunk`]) that different
//! threads search independently. Single-rule recursive programs (transitive
//! closure) — where the rule-level split left every thread but one idle —
//! now use the whole pool.

use crate::engine::{ChaseConfig, ChaseResult, ChaseStrategy};
use crate::trigger::{
    find_rule_triggers, find_rule_triggers_delta_chunk, find_rule_triggers_delta_pivot_generic,
    find_rule_triggers_with, RulePlan, Trigger,
};
use ontorew_model::prelude::*;
use ontorew_telemetry::{global_registry, Histogram};
use ontorew_unify::JoinStrategy;
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

/// Slices produced per parallel delta search — how finely the round's work
/// split across the pool.
fn parallel_chunk_histogram() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        global_registry().histogram(
            "chase_parallel_chunks",
            "Work slices per parallel delta trigger search.",
            &[],
        )
    })
}

/// Enumerate every trigger of `program` on `instance`, searching rules in
/// parallel across `threads` worker threads.
pub fn find_triggers_parallel(
    program: &TgdProgram,
    instance: &Instance,
    threads: usize,
) -> Vec<Trigger> {
    let rules: Vec<(usize, &Tgd)> = program.iter().enumerate().collect();
    run_partitioned(&rules, threads, |(rule_index, rule)| {
        find_rule_triggers(rule_index, rule, instance)
    })
}

/// [`find_triggers_parallel`] with per-rule join strategies taken from
/// `plans` (see [`RulePlan::join_strategy`]): cyclic rules over enough facts
/// search with the generic join, the rest backtrack.
pub fn find_triggers_parallel_with(
    program: &TgdProgram,
    plans: &[RulePlan],
    instance: &Instance,
    threads: usize,
) -> Vec<Trigger> {
    let rules: Vec<(usize, &Tgd)> = program.iter().enumerate().collect();
    run_partitioned(&rules, threads, |(rule_index, rule)| {
        find_rule_triggers_with(
            rule_index,
            rule,
            instance,
            plans[rule_index].join_strategy(instance),
        )
    })
}

/// A delta chunk below this many pivot rows is not worth a dedicated slice:
/// the spawn/merge overhead would exceed the search it parallelises.
const MIN_DELTA_ROWS_PER_CHUNK: usize = 32;

/// One slice of a round's delta-restricted trigger search: rule
/// `rule_index`, pivot atom `pivot`, residue class `chunk` of
/// `chunk_count`.
#[derive(Clone, Copy)]
struct DeltaSlice {
    rule_index: usize,
    pivot: usize,
    chunk: usize,
    chunk_count: usize,
    /// Search this slice with the generic join instead of backtracking.
    /// Generic-join slices are always whole pivots (`chunk_count == 1`):
    /// the variable-at-a-time search has no row-stride to split on, but the
    /// per-pivot searches are already independent work units.
    generic: bool,
}

/// Enumerate every trigger of `program` on `instance` whose body uses at
/// least one fact of `delta` (see
/// [`crate::trigger::find_rule_triggers_delta`]), searching in parallel.
/// Rules whose body predicates miss the delta entirely are skipped without
/// a search; rules whose pivot draws from a large delta are split into
/// per-pivot chunks so even a single eligible rule saturates the pool.
pub fn find_triggers_delta_parallel(
    program: &TgdProgram,
    plans: &[RulePlan],
    instance: &Instance,
    delta: &Instance,
    threads: usize,
) -> Vec<Trigger> {
    let threads = threads.max(1);
    let mut slices: Vec<DeltaSlice> = Vec::new();
    for (rule_index, rule) in program.iter().enumerate() {
        if !plans[rule_index].body_touches(delta) {
            continue;
        }
        let generic = plans[rule_index].join_strategy(instance) == JoinStrategy::GenericJoin;
        for (pivot, atom) in rule.body.iter().enumerate() {
            // The pivot atom is matched against the delta first; the number
            // of delta rows under its predicate bounds that enumeration and
            // decides how many ways to split it (generic-join slices are
            // whole pivots).
            let pivot_rows = delta.relation_size(atom.predicate);
            let chunk_count = if generic {
                1
            } else {
                (pivot_rows / MIN_DELTA_ROWS_PER_CHUNK).clamp(1, threads)
            };
            for chunk in 0..chunk_count {
                slices.push(DeltaSlice {
                    rule_index,
                    pivot,
                    chunk,
                    chunk_count,
                    generic,
                });
            }
        }
    }
    parallel_chunk_histogram().observe(slices.len() as u64);
    let rules = program.rules();
    run_partitioned(&slices, threads, |slice| {
        if slice.generic {
            find_rule_triggers_delta_pivot_generic(
                slice.rule_index,
                &rules[slice.rule_index],
                instance,
                delta,
                slice.pivot,
            )
        } else {
            find_rule_triggers_delta_chunk(
                slice.rule_index,
                &rules[slice.rule_index],
                instance,
                delta,
                slice.pivot,
                slice.chunk,
                slice.chunk_count,
            )
        }
    })
}

/// Partition `items` into `threads` contiguous runs and run `search` over
/// each run on its own scoped thread, concatenating the per-item trigger
/// lists in item order (so the merged list is deterministic for a given
/// slicing).
fn run_partitioned<T: Copy + Sync>(
    items: &[T],
    threads: usize,
    search: impl Fn(T) -> Vec<Trigger> + Sync,
) -> Vec<Trigger> {
    let threads = threads.max(1);
    if items.is_empty() {
        return Vec::new();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut all = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in items.chunks(chunk_size) {
            let search = &search;
            handles.push(scope.spawn(move |_| {
                let mut local = Vec::new();
                for entry in chunk {
                    local.extend(search(*entry));
                }
                local
            }));
        }
        for h in handles {
            all.extend(h.join().expect("trigger worker panicked"));
        }
    })
    .expect("crossbeam scope failed");
    all
}

/// Run the chase using parallel trigger search inside each round.
///
/// Produces the same result as [`crate::chase`] (up to the naming of invented
/// nulls) because it shares the sequential engine's round driver — only the
/// per-round trigger search is parallelised. Honours `config.strategy`
/// exactly like the sequential engine.
pub fn chase_parallel(
    program: &TgdProgram,
    database: &Instance,
    config: &ChaseConfig,
    threads: usize,
) -> ChaseResult {
    let plans: Vec<RulePlan> = program.iter().map(RulePlan::new).collect();
    let graph = config
        .track_provenance
        .then(|| crate::provenance::DerivationGraph::seeded(database));
    let (result, _added) = crate::engine::run_chase_rounds(
        program,
        &plans,
        database.clone(),
        None,
        HashSet::new(),
        graph,
        false,
        config,
        |instance, delta| match (config.strategy, delta) {
            // Full parallel search when there is no delta to restrict to
            // (the naive strategy, or the semi-naive strategy's round 1).
            (ChaseStrategy::Naive, _) | (ChaseStrategy::SemiNaive, None) => {
                find_triggers_parallel_with(program, &plans, instance, threads)
            }
            (ChaseStrategy::SemiNaive, Some(delta)) => {
                find_triggers_delta_parallel(program, &plans, instance, delta, threads)
            }
        },
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::chase;
    use crate::equiv::equivalent_up_to_null_renaming;
    use ontorew_model::parse_program;

    fn transitive_closure_setup() -> (TgdProgram, Instance) {
        let p = parse_program(
            "[R1] edge(X, Y) -> path(X, Y).\n\
             [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
        )
        .unwrap();
        let mut db = Instance::new();
        for i in 0..10u32 {
            db.insert_fact("edge", &[&format!("n{i}"), &format!("n{}", i + 1)]);
        }
        (p, db)
    }

    #[test]
    fn parallel_trigger_search_matches_sequential() {
        let (p, db) = transitive_closure_setup();
        let sequential = crate::trigger::find_triggers(&p, &db);
        let parallel = find_triggers_parallel(&p, &db, 4);
        assert_eq!(sequential.len(), parallel.len());
    }

    #[test]
    fn parallel_delta_search_matches_sequential_delta_search() {
        let (p, db) = transitive_closure_setup();
        let plans: Vec<RulePlan> = p.iter().map(RulePlan::new).collect();
        let mut delta = Instance::new();
        delta.insert_fact("edge", &["n0", "n1"]);
        let sequential: usize = p
            .iter()
            .enumerate()
            .map(|(i, r)| crate::trigger::find_rule_triggers_delta(i, r, &db, &delta).len())
            .sum();
        let parallel = find_triggers_delta_parallel(&p, &plans, &db, &delta, 4);
        assert_eq!(sequential, parallel.len());
    }

    #[test]
    fn chunked_delta_search_matches_sequential_on_large_deltas() {
        // A delta big enough to be split within the single recursive rule:
        // the partitioned search must return exactly the sequential trigger
        // set (same homomorphisms, no duplicates).
        let (p, _) = transitive_closure_setup();
        let plans: Vec<RulePlan> = p.iter().map(RulePlan::new).collect();
        let mut db = Instance::new();
        let mut delta = Instance::new();
        for i in 0..200u32 {
            db.insert_fact("edge", &[&format!("n{i}"), &format!("n{}", i + 1)]);
            db.insert_fact("path", &[&format!("n{i}"), &format!("n{}", i + 1)]);
            delta.insert_fact("path", &[&format!("n{i}"), &format!("n{}", i + 1)]);
        }
        let sequential: Vec<Trigger> = p
            .iter()
            .enumerate()
            .flat_map(|(i, r)| crate::trigger::find_rule_triggers_delta(i, r, &db, &delta))
            .collect();
        let parallel = find_triggers_delta_parallel(&p, &plans, &db, &delta, 8);
        assert_eq!(sequential.len(), parallel.len());
        // Same multiset of (rule, homomorphism) pairs.
        let key = |t: &Trigger| (t.rule_index, format!("{:?}", t.homomorphism));
        let mut seq_keys: Vec<_> = sequential.iter().map(key).collect();
        let mut par_keys: Vec<_> = parallel.iter().map(key).collect();
        seq_keys.sort();
        par_keys.sort();
        assert_eq!(seq_keys, par_keys);
    }

    #[test]
    fn parallel_chase_matches_sequential_on_datalog() {
        let (p, db) = transitive_closure_setup();
        let seq = chase(&p, &db, &ChaseConfig::default());
        let par = chase_parallel(&p, &db, &ChaseConfig::default(), 4);
        assert!(seq.is_universal_model());
        assert!(par.is_universal_model());
        // Datalog programs invent no nulls, so the instances must be equal.
        assert_eq!(seq.instance, par.instance);
    }

    #[test]
    fn parallel_chase_matches_sequential_on_wide_datalog_rounds() {
        // Large per-round deltas exercise the within-rule chunk split end to
        // end (200 path-facts per round from one recursive rule).
        let p = parse_program(
            "[R1] edge(X, Y) -> path(X, Y).\n\
             [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
        )
        .unwrap();
        let mut db = Instance::new();
        for i in 0..200u32 {
            db.insert_fact("edge", &[&format!("m{i}"), &format!("m{}", i + 1)]);
        }
        let config = ChaseConfig::restricted(8);
        let seq = chase(&p, &db, &config);
        let par = chase_parallel(&p, &db, &config, 8);
        assert_eq!(seq.instance, par.instance);
        assert_eq!(seq.fired, par.fired);
        assert_eq!(seq.outcome, par.outcome);
    }

    #[test]
    fn parallel_naive_strategy_matches_semi_naive() {
        let (p, db) = transitive_closure_setup();
        let naive = chase_parallel(&p, &db, &ChaseConfig::naive(), 4);
        let semi = chase_parallel(&p, &db, &ChaseConfig::default(), 4);
        assert!(naive.is_universal_model());
        assert!(semi.is_universal_model());
        assert_eq!(naive.instance, semi.instance);
        assert_eq!(naive.fired, semi.fired);
    }

    #[test]
    fn parallel_chase_with_existentials_is_isomorphic_in_size() {
        let p = parse_program("[R1] person(X) -> hasParent(X, Y).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("person", &["alice"]);
        db.insert_fact("person", &["bob"]);
        let seq = chase(&p, &db, &ChaseConfig::default());
        let par = chase_parallel(&p, &db, &ChaseConfig::default(), 2);
        assert_eq!(seq.instance.len(), par.instance.len());
        assert_eq!(seq.instance.nulls().len(), par.instance.nulls().len());
        assert!(equivalent_up_to_null_renaming(&seq.instance, &par.instance));
    }

    #[test]
    fn cyclic_rule_chase_uses_generic_join_and_matches_sequential() {
        // Triangle-closing rule over enough edges that the per-rule strategy
        // graduates to the generic join (both sequentially and in the
        // parallel engine's whole-pivot slices).
        let p =
            parse_program("[R1] follows(X, Y), follows(Y, Z), follows(Z, X) -> triangle(X, Y, Z).")
                .unwrap();
        let mut db = Instance::new();
        for i in 0..80u32 {
            db.insert_fact(
                "follows",
                &[&format!("u{i}"), &format!("u{}", (i * 7 + 1) % 80)],
            );
            db.insert_fact(
                "follows",
                &[&format!("u{i}"), &format!("u{}", (i + 1) % 80)],
            );
        }
        let plans: Vec<RulePlan> = p.iter().map(RulePlan::new).collect();
        assert!(plans[0].cyclic);
        assert_eq!(plans[0].join_strategy(&db), JoinStrategy::GenericJoin);
        let seq = chase(&p, &db, &ChaseConfig::default());
        let par = chase_parallel(&p, &db, &ChaseConfig::default(), 4);
        assert!(seq.is_universal_model());
        assert_eq!(seq.instance, par.instance);
        assert_eq!(seq.fired, par.fired);
        // And the trigger sets match the backtracking search exactly.
        let bt = crate::trigger::find_rule_triggers(0, &p.rules()[0], &db);
        let gj = find_rule_triggers_with(0, &p.rules()[0], &db, JoinStrategy::GenericJoin);
        let key = |t: &Trigger| format!("{:?}", t.homomorphism);
        let mut bt_keys: Vec<_> = bt.iter().map(key).collect();
        let mut gj_keys: Vec<_> = gj.iter().map(key).collect();
        bt_keys.sort();
        gj_keys.sort();
        assert_eq!(bt_keys, gj_keys);
    }

    #[test]
    fn single_thread_degenerates_gracefully() {
        let (p, db) = transitive_closure_setup();
        let par = chase_parallel(&p, &db, &ChaseConfig::default(), 1);
        assert!(par.is_universal_model());
    }

    #[test]
    fn more_threads_than_rules_is_fine() {
        let (p, db) = transitive_closure_setup();
        let par = find_triggers_parallel(&p, &db, 64);
        assert!(!par.is_empty());
    }
}
