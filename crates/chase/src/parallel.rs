//! Parallel trigger search.
//!
//! Trigger enumeration (homomorphism search per rule) dominates chase time on
//! large instances and is embarrassingly parallel across rules: every rule
//! only reads the shared instance. This module partitions the rules across a
//! scoped thread pool (crossbeam) and merges the per-rule trigger lists, and
//! offers [`chase_parallel`], a drop-in variant of [`crate::chase`] that uses
//! the parallel search inside each round. Like the sequential engine it is
//! semi-naive by default: each worker only searches for triggers whose body
//! uses the previous round's delta.

use crate::engine::{ChaseConfig, ChaseResult, ChaseStrategy};
use crate::trigger::{find_rule_triggers, find_rule_triggers_delta, RulePlan, Trigger};
use ontorew_model::prelude::*;

/// Enumerate every trigger of `program` on `instance`, searching rules in
/// parallel across `threads` worker threads.
pub fn find_triggers_parallel(
    program: &TgdProgram,
    instance: &Instance,
    threads: usize,
) -> Vec<Trigger> {
    let rules: Vec<(usize, &Tgd)> = program.iter().enumerate().collect();
    run_partitioned(&rules, threads, |(rule_index, rule)| {
        find_rule_triggers(rule_index, rule, instance)
    })
}

/// Enumerate every trigger of `program` on `instance` whose body uses at
/// least one fact of `delta` (see
/// [`crate::trigger::find_rule_triggers_delta`]), searching rules in
/// parallel. Rules whose body predicates miss the delta entirely are skipped
/// without a search.
pub fn find_triggers_delta_parallel(
    program: &TgdProgram,
    plans: &[RulePlan],
    instance: &Instance,
    delta: &Instance,
    threads: usize,
) -> Vec<Trigger> {
    let rules: Vec<(usize, &Tgd)> = program
        .iter()
        .enumerate()
        .filter(|(i, _)| plans[*i].body_touches(delta))
        .collect();
    run_partitioned(&rules, threads, |(rule_index, rule)| {
        find_rule_triggers_delta(rule_index, rule, instance, delta)
    })
}

/// Partition `rules` into `threads` chunks and run `search` over each chunk
/// on its own scoped thread, concatenating the per-rule trigger lists in
/// rule order.
fn run_partitioned<'a>(
    rules: &[(usize, &'a Tgd)],
    threads: usize,
    search: impl Fn((usize, &'a Tgd)) -> Vec<Trigger> + Sync,
) -> Vec<Trigger> {
    let threads = threads.max(1);
    if rules.is_empty() {
        return Vec::new();
    }
    let chunk_size = rules.len().div_ceil(threads);
    let mut all = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in rules.chunks(chunk_size) {
            let search = &search;
            handles.push(scope.spawn(move |_| {
                let mut local = Vec::new();
                for entry in chunk {
                    local.extend(search(*entry));
                }
                local
            }));
        }
        for h in handles {
            all.extend(h.join().expect("trigger worker panicked"));
        }
    })
    .expect("crossbeam scope failed");
    all
}

/// Run the chase using parallel trigger search inside each round.
///
/// Produces the same result as [`crate::chase`] (up to the naming of invented
/// nulls) because it shares the sequential engine's round driver — only the
/// per-round trigger search is parallelised. Honours `config.strategy`
/// exactly like the sequential engine.
pub fn chase_parallel(
    program: &TgdProgram,
    database: &Instance,
    config: &ChaseConfig,
    threads: usize,
) -> ChaseResult {
    let plans: Vec<RulePlan> = program.iter().map(RulePlan::new).collect();
    crate::engine::run_chase_rounds(program, &plans, database, config, |instance, delta| {
        match (config.strategy, delta) {
            // Full parallel search when there is no delta to restrict to
            // (the naive strategy, or the semi-naive strategy's round 1).
            (ChaseStrategy::Naive, _) | (ChaseStrategy::SemiNaive, None) => {
                find_triggers_parallel(program, instance, threads)
            }
            (ChaseStrategy::SemiNaive, Some(delta)) => {
                find_triggers_delta_parallel(program, &plans, instance, delta, threads)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::chase;
    use crate::equiv::equivalent_up_to_null_renaming;
    use ontorew_model::parse_program;

    fn transitive_closure_setup() -> (TgdProgram, Instance) {
        let p = parse_program(
            "[R1] edge(X, Y) -> path(X, Y).\n\
             [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
        )
        .unwrap();
        let mut db = Instance::new();
        for i in 0..10u32 {
            db.insert_fact("edge", &[&format!("n{i}"), &format!("n{}", i + 1)]);
        }
        (p, db)
    }

    #[test]
    fn parallel_trigger_search_matches_sequential() {
        let (p, db) = transitive_closure_setup();
        let sequential = crate::trigger::find_triggers(&p, &db);
        let parallel = find_triggers_parallel(&p, &db, 4);
        assert_eq!(sequential.len(), parallel.len());
    }

    #[test]
    fn parallel_delta_search_matches_sequential_delta_search() {
        let (p, db) = transitive_closure_setup();
        let plans: Vec<RulePlan> = p.iter().map(RulePlan::new).collect();
        let mut delta = Instance::new();
        delta.insert_fact("edge", &["n0", "n1"]);
        let sequential: usize = p
            .iter()
            .enumerate()
            .map(|(i, r)| crate::trigger::find_rule_triggers_delta(i, r, &db, &delta).len())
            .sum();
        let parallel = find_triggers_delta_parallel(&p, &plans, &db, &delta, 4);
        assert_eq!(sequential, parallel.len());
    }

    #[test]
    fn parallel_chase_matches_sequential_on_datalog() {
        let (p, db) = transitive_closure_setup();
        let seq = chase(&p, &db, &ChaseConfig::default());
        let par = chase_parallel(&p, &db, &ChaseConfig::default(), 4);
        assert!(seq.is_universal_model());
        assert!(par.is_universal_model());
        // Datalog programs invent no nulls, so the instances must be equal.
        assert_eq!(seq.instance, par.instance);
    }

    #[test]
    fn parallel_naive_strategy_matches_semi_naive() {
        let (p, db) = transitive_closure_setup();
        let naive = chase_parallel(&p, &db, &ChaseConfig::naive(), 4);
        let semi = chase_parallel(&p, &db, &ChaseConfig::default(), 4);
        assert!(naive.is_universal_model());
        assert!(semi.is_universal_model());
        assert_eq!(naive.instance, semi.instance);
        assert_eq!(naive.fired, semi.fired);
    }

    #[test]
    fn parallel_chase_with_existentials_is_isomorphic_in_size() {
        let p = parse_program("[R1] person(X) -> hasParent(X, Y).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("person", &["alice"]);
        db.insert_fact("person", &["bob"]);
        let seq = chase(&p, &db, &ChaseConfig::default());
        let par = chase_parallel(&p, &db, &ChaseConfig::default(), 2);
        assert_eq!(seq.instance.len(), par.instance.len());
        assert_eq!(seq.instance.nulls().len(), par.instance.nulls().len());
        assert!(equivalent_up_to_null_renaming(&seq.instance, &par.instance));
    }

    #[test]
    fn single_thread_degenerates_gracefully() {
        let (p, db) = transitive_closure_setup();
        let par = chase_parallel(&p, &db, &ChaseConfig::default(), 1);
        assert!(par.is_universal_model());
    }

    #[test]
    fn more_threads_than_rules_is_fine() {
        let (p, db) = transitive_closure_setup();
        let par = find_triggers_parallel(&p, &db, 64);
        assert!(!par.is_empty());
    }
}
