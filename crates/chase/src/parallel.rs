//! Parallel trigger search.
//!
//! Trigger enumeration (homomorphism search per rule) dominates chase time on
//! large instances and is embarrassingly parallel across rules: every rule
//! only reads the shared instance. This module partitions the rules across a
//! scoped thread pool (crossbeam) and merges the per-rule trigger lists, and
//! offers [`chase_parallel`], a drop-in variant of [`crate::chase`] that uses
//! the parallel search inside each round.

use crate::engine::{ChaseConfig, ChaseOutcome, ChaseResult, ChaseVariant};
use crate::trigger::{find_rule_triggers, Trigger, TriggerKey};
use ontorew_model::prelude::*;
use std::collections::HashSet;

/// Enumerate every trigger of `program` on `instance`, searching rules in
/// parallel across `threads` worker threads.
pub fn find_triggers_parallel(
    program: &TgdProgram,
    instance: &Instance,
    threads: usize,
) -> Vec<Trigger> {
    let threads = threads.max(1);
    let rules: Vec<(usize, &Tgd)> = program.iter().enumerate().collect();
    if rules.is_empty() {
        return Vec::new();
    }
    let chunk_size = rules.len().div_ceil(threads);
    let mut all = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in rules.chunks(chunk_size) {
            let chunk: Vec<(usize, &Tgd)> = chunk.to_vec();
            handles.push(scope.spawn(move |_| {
                let mut local = Vec::new();
                for (rule_index, rule) in chunk {
                    local.extend(find_rule_triggers(rule_index, rule, instance));
                }
                local
            }));
        }
        for h in handles {
            all.extend(h.join().expect("trigger worker panicked"));
        }
    })
    .expect("crossbeam scope failed");
    all
}

/// Run the chase using parallel trigger search inside each round.
///
/// Produces the same result as [`crate::chase`] (up to the naming of invented
/// nulls) because firing still happens sequentially against a per-round
/// snapshot of the instance.
pub fn chase_parallel(
    program: &TgdProgram,
    database: &Instance,
    config: &ChaseConfig,
    threads: usize,
) -> ChaseResult {
    let mut instance = database.clone();
    let mut fired_keys: HashSet<TriggerKey> = HashSet::new();
    let mut fired = 0usize;
    let mut rounds = 0usize;

    loop {
        if rounds >= config.max_rounds {
            return ChaseResult {
                instance,
                rounds,
                fired,
                outcome: ChaseOutcome::RoundBudgetExhausted,
            };
        }
        rounds += 1;

        let triggers = find_triggers_parallel(program, &instance, threads);
        let mut new_facts: Vec<Atom> = Vec::new();
        for trigger in triggers {
            let rule = &program.rules()[trigger.rule_index];
            let key = trigger.key(rule);
            if fired_keys.contains(&key) {
                continue;
            }
            let fire = match config.variant {
                ChaseVariant::Oblivious => true,
                ChaseVariant::Restricted => trigger.is_active(rule, &instance),
            };
            if fire {
                new_facts.extend(trigger.fire(rule));
                fired += 1;
            }
            fired_keys.insert(key);
        }

        let mut grew = false;
        for fact in new_facts {
            if instance.insert(fact) {
                grew = true;
            }
            if instance.len() > config.max_facts {
                return ChaseResult {
                    instance,
                    rounds,
                    fired,
                    outcome: ChaseOutcome::FactBudgetExhausted,
                };
            }
        }
        if !grew {
            return ChaseResult {
                instance,
                rounds,
                fired,
                outcome: ChaseOutcome::Terminated,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::chase;
    use ontorew_model::parse_program;

    fn transitive_closure_setup() -> (TgdProgram, Instance) {
        let p = parse_program(
            "[R1] edge(X, Y) -> path(X, Y).\n\
             [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
        )
        .unwrap();
        let mut db = Instance::new();
        for i in 0..10u32 {
            db.insert_fact("edge", &[&format!("n{i}"), &format!("n{}", i + 1)]);
        }
        (p, db)
    }

    #[test]
    fn parallel_trigger_search_matches_sequential() {
        let (p, db) = transitive_closure_setup();
        let sequential = crate::trigger::find_triggers(&p, &db);
        let parallel = find_triggers_parallel(&p, &db, 4);
        assert_eq!(sequential.len(), parallel.len());
    }

    #[test]
    fn parallel_chase_matches_sequential_on_datalog() {
        let (p, db) = transitive_closure_setup();
        let seq = chase(&p, &db, &ChaseConfig::default());
        let par = chase_parallel(&p, &db, &ChaseConfig::default(), 4);
        assert!(seq.is_universal_model());
        assert!(par.is_universal_model());
        // Datalog programs invent no nulls, so the instances must be equal.
        assert_eq!(seq.instance, par.instance);
    }

    #[test]
    fn parallel_chase_with_existentials_is_isomorphic_in_size() {
        let p = parse_program("[R1] person(X) -> hasParent(X, Y).").unwrap();
        let mut db = Instance::new();
        db.insert_fact("person", &["alice"]);
        db.insert_fact("person", &["bob"]);
        let seq = chase(&p, &db, &ChaseConfig::default());
        let par = chase_parallel(&p, &db, &ChaseConfig::default(), 2);
        assert_eq!(seq.instance.len(), par.instance.len());
        assert_eq!(seq.instance.nulls().len(), par.instance.nulls().len());
    }

    #[test]
    fn single_thread_degenerates_gracefully() {
        let (p, db) = transitive_closure_setup();
        let par = chase_parallel(&p, &db, &ChaseConfig::default(), 1);
        assert!(par.is_universal_model());
    }

    #[test]
    fn more_threads_than_rules_is_fine() {
        let (p, db) = transitive_closure_setup();
        let par = find_triggers_parallel(&p, &db, 64);
        assert!(!par.is_empty());
    }
}
