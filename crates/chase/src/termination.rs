//! Chase termination analysis: weak acyclicity.
//!
//! Weak acyclicity (Fagin et al., data exchange) is the classical sufficient
//! condition for the chase to terminate on every database. It is checked on
//! the *dependency graph* of the program, whose nodes are positions `r[i]`
//! and whose edges are:
//!
//! * a **normal edge** `r[i] → s[j]` whenever a frontier variable occurs at
//!   `r[i]` in the body of a rule and at `s[j]` in its head;
//! * a **special edge** `r[i] ⇒ s[j]` whenever a frontier variable occurs at
//!   `r[i]` in the body of a rule whose head contains an existential variable
//!   at position `s[j]`.
//!
//! The program is weakly acyclic iff no cycle of the dependency graph goes
//! through a special edge. Weak acyclicity is orthogonal to the paper's
//! FO-rewritability classes (a weakly-acyclic program need not be
//! FO-rewritable and vice versa), but it tells us when chase materialization
//! is a safe answering strategy — which the OBDA facade uses when picking a
//! strategy.

use ontorew_model::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// A position `r[i]` (0-based internally, displayed 1-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DependencyPosition {
    /// The relation symbol.
    pub predicate: Predicate,
    /// The 0-based argument position.
    pub index: usize,
}

/// The dependency graph used by the weak-acyclicity test.
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    /// Normal edges.
    pub edges: BTreeSet<(DependencyPosition, DependencyPosition)>,
    /// Special edges (towards positions that receive existential variables).
    pub special_edges: BTreeSet<(DependencyPosition, DependencyPosition)>,
}

impl DependencyGraph {
    /// Build the dependency graph of a program.
    pub fn build(program: &TgdProgram) -> Self {
        let mut graph = DependencyGraph::default();
        for rule in program.iter() {
            let frontier: BTreeSet<Variable> = rule.frontier().into_iter().collect();
            let existentials: BTreeSet<Variable> =
                rule.existential_head_variables().into_iter().collect();
            for body_atom in &rule.body {
                for (i, body_term) in body_atom.terms.iter().enumerate() {
                    let x = match body_term.as_variable() {
                        Some(v) if frontier.contains(&v) => v,
                        _ => continue,
                    };
                    let from = DependencyPosition {
                        predicate: body_atom.predicate,
                        index: i,
                    };
                    for head_atom in &rule.head {
                        for (j, head_term) in head_atom.terms.iter().enumerate() {
                            let to = DependencyPosition {
                                predicate: head_atom.predicate,
                                index: j,
                            };
                            match head_term.as_variable() {
                                Some(y) if y == x => {
                                    graph.edges.insert((from, to));
                                }
                                Some(y) if existentials.contains(&y) => {
                                    graph.special_edges.insert((from, to));
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
        graph
    }

    /// All nodes mentioned by some edge.
    pub fn nodes(&self) -> BTreeSet<DependencyPosition> {
        self.edges
            .iter()
            .chain(self.special_edges.iter())
            .flat_map(|(a, b)| [*a, *b])
            .collect()
    }

    /// True if no cycle of the graph traverses a special edge.
    pub fn is_weakly_acyclic(&self) -> bool {
        // A cycle through a special edge (u ⇒ v) exists iff v can reach u
        // using any edges. Check each special edge with a DFS/BFS.
        let mut successors: BTreeMap<DependencyPosition, Vec<DependencyPosition>> = BTreeMap::new();
        for (a, b) in self.edges.iter().chain(self.special_edges.iter()) {
            successors.entry(*a).or_default().push(*b);
        }
        for (u, v) in &self.special_edges {
            if reaches(&successors, *v, *u) {
                return false;
            }
        }
        true
    }
}

fn reaches(
    successors: &BTreeMap<DependencyPosition, Vec<DependencyPosition>>,
    from: DependencyPosition,
    to: DependencyPosition,
) -> bool {
    if from == to {
        return true;
    }
    let mut seen = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(node) = stack.pop() {
        if !seen.insert(node) {
            continue;
        }
        if let Some(next) = successors.get(&node) {
            for n in next {
                if *n == to {
                    return true;
                }
                stack.push(*n);
            }
        }
    }
    false
}

/// True if the program is weakly acyclic (the chase terminates on every
/// database).
pub fn is_weakly_acyclic(program: &TgdProgram) -> bool {
    DependencyGraph::build(program).is_weakly_acyclic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::parse_program;

    #[test]
    fn datalog_programs_are_weakly_acyclic() {
        let p = parse_program(
            "[R1] edge(X, Y) -> path(X, Y).\n\
             [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
        )
        .unwrap();
        assert!(is_weakly_acyclic(&p));
    }

    #[test]
    fn ancestor_generation_is_not_weakly_acyclic() {
        let p = parse_program(
            "[R1] person(X) -> hasParent(X, Y).\n\
             [R2] hasParent(X, Y) -> person(Y).",
        )
        .unwrap();
        assert!(!is_weakly_acyclic(&p));
    }

    #[test]
    fn self_feeding_existential_is_not_weakly_acyclic() {
        let p = parse_program("[R1] r(X, Y) -> r(Y, Z).").unwrap();
        assert!(!is_weakly_acyclic(&p));
    }

    #[test]
    fn acyclic_existentials_are_fine() {
        let p = parse_program(
            "[R1] employee(X) -> worksFor(X, D).\n\
             [R2] worksFor(X, D) -> department(D).",
        )
        .unwrap();
        assert!(is_weakly_acyclic(&p));
    }

    #[test]
    fn graph_structure_of_simple_rule() {
        let p = parse_program("[R1] r(X, Y) -> s(X, Z).").unwrap();
        let g = DependencyGraph::build(&p);
        // Normal edge r[0] -> s[0]; special edges r[0] => s[1].
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.special_edges.len(), 1);
        assert_eq!(g.nodes().len(), 3);
        assert!(g.is_weakly_acyclic());
    }

    #[test]
    fn example1_of_the_paper_is_weakly_acyclic() {
        let p = parse_program(
            "[R1] s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).\n\
             [R2] v(Y1, Y2), q(Y2) -> s(Y1, Y3, Y2).\n\
             [R3] r(Y1, Y2) -> v(Y1, Y2).",
        )
        .unwrap();
        // The existential Y3 of R2 lands in s[2], which feeds r[2]... the
        // cycle r -> v -> s -> r never goes through the special edge's target
        // in a way that returns to its source, so the program is WA.
        assert!(is_weakly_acyclic(&p));
    }

    #[test]
    fn example2_of_the_paper_is_weakly_acyclic_despite_not_being_fo_rewritable() {
        let p = parse_program(
            "[R1] t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n\
             [R2] s(Y1, Y1, Y2) -> r(Y2, Y3).",
        )
        .unwrap();
        // The existential Y3 of R2 lands in r[1], and r[1] never feeds a head
        // position (Y4 of R1 is not a frontier variable), so the chase always
        // terminates. The paper shows the same program is nevertheless *not*
        // FO-rewritable: weak acyclicity and FO-rewritability are orthogonal.
        assert!(is_weakly_acyclic(&p));
    }
}
