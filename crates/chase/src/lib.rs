//! # ontorew-chase
//!
//! The chase procedure for TGD programs and the certain-answer semantics it
//! induces (§3 of the paper):
//!
//! * [`trigger`] — rule-body matches on an instance and their firing;
//! * [`engine`] — the semi-oblivious and restricted chase under a budget;
//! * [`termination`] — weak acyclicity, the classical chase-termination test;
//! * [`certain`] — certain answers by chase materialization (the ground truth
//!   the rewriting engine is validated against);
//! * [`parallel`] — crossbeam-parallel trigger search for large instances.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod certain;
pub mod engine;
pub mod parallel;
pub mod termination;
pub mod trigger;

pub use certain::{certain_answers, certain_answers_ucq, CertainAnswers, ChaseStats};
pub use engine::{chase, is_model, ChaseConfig, ChaseOutcome, ChaseResult, ChaseVariant};
pub use parallel::{chase_parallel, find_triggers_parallel};
pub use termination::{is_weakly_acyclic, DependencyGraph, DependencyPosition};
pub use trigger::{find_rule_triggers, find_triggers, Trigger, TriggerKey};
