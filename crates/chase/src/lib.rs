//! # ontorew-chase
//!
//! The chase procedure for TGD programs and the certain-answer semantics it
//! induces (§3 of the paper):
//!
//! * [`trigger`] — rule-body matches on an instance and their firing,
//!   including the delta-restricted search of the semi-naive engine;
//! * [`engine`] — the semi-oblivious and restricted chase under a budget,
//!   with semi-naive (delta-driven, index-backed) and naive strategies;
//! * [`termination`] — weak acyclicity, the classical chase-termination test;
//! * [`certain`] — certain answers by chase materialization (the ground truth
//!   the rewriting engine is validated against);
//! * [`parallel`] — crossbeam-parallel trigger search for large instances;
//! * [`equiv`] — comparing chased instances up to null renaming (used by the
//!   naive-vs-semi-naive equivalence tests);
//! * [`provenance`] — stable fact ids and the derivation graph recorded
//!   behind [`ChaseConfig::track_provenance`], with the `WHY` / `WHY NOT`
//!   explanation walks;
//! * [`retract`] — incremental deletion by delete-and-rederive (DRed) over
//!   the derivation graph.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod certain;
pub mod engine;
pub mod equiv;
pub mod parallel;
pub mod provenance;
pub mod retract;
pub mod termination;
pub mod trigger;

pub use certain::{certain_answers, certain_answers_ucq, CertainAnswers, ChaseStats};
pub use engine::{
    chase, chase_incremental, is_model, ChaseConfig, ChaseOutcome, ChaseResult, ChaseStrategy,
    ChaseVariant, IncrementalChase,
};
pub use equiv::{equivalent_up_to_null_renaming, homomorphically_equivalent};
pub use parallel::{
    chase_parallel, find_triggers_delta_parallel, find_triggers_parallel,
    find_triggers_parallel_with,
};
pub use provenance::{
    explain_absent, DerivationEdge, DerivationGraph, FactId, WhyNot, WhyNotCandidate, WhyStep,
};
pub use retract::{chase_retract, RetractedChase};
pub use termination::{is_weakly_acyclic, DependencyGraph, DependencyPosition};
pub use trigger::{
    find_rule_triggers, find_rule_triggers_delta, find_rule_triggers_delta_chunk,
    find_rule_triggers_delta_pivot_generic, find_rule_triggers_delta_with, find_rule_triggers_with,
    find_triggers, RulePlan, Trigger, TriggerKey,
};
