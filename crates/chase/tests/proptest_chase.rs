//! Property-based tests for the chase: universal-model properties, variant
//! agreement, and monotonicity of certain answers.

use ontorew_chase::{
    certain_answers, chase, is_model, is_weakly_acyclic, ChaseConfig, ChaseVariant,
};
use ontorew_model::prelude::*;
use proptest::prelude::*;

fn constant() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "c", "d"]).prop_map(String::from)
}

/// Random databases over the signature used by the fixed test programs.
fn database_strategy() -> impl Strategy<Value = Instance> {
    prop::collection::vec(
        prop_oneof![
            (constant(), constant()).prop_map(|(x, y)| Atom::fact("edge", &[&x, &y])),
            constant().prop_map(|x| Atom::fact("person", &[&x])),
            (constant(), constant()).prop_map(|(x, y)| Atom::fact("hasParent", &[&x, &y])),
        ],
        0..15,
    )
    .prop_map(Instance::from_atoms)
}

/// A Datalog (full) program: always terminates.
fn full_program() -> TgdProgram {
    parse_program(
        "[R1] edge(X, Y) -> path(X, Y).\n\
         [R2] path(X, Y), edge(Y, Z) -> path(X, Z).\n\
         [R3] hasParent(X, Y) -> person(X).\n\
         [R4] hasParent(X, Y) -> person(Y).",
    )
    .unwrap()
}

/// A weakly-acyclic existential program: terminates on every database.
fn weakly_acyclic_program() -> TgdProgram {
    parse_program(
        "[R1] person(X) -> hasId(X, I).\n\
         [R2] hasId(X, I) -> identifier(I).",
    )
    .unwrap()
}

proptest! {
    /// The chase of a full program is a model containing the input, and both
    /// chase variants coincide on it (no nulls are ever invented).
    #[test]
    fn full_program_chase_is_a_minimal_model(db in database_strategy()) {
        let program = full_program();
        let restricted = chase(&program, &db, &ChaseConfig::default());
        let oblivious = chase(&program, &db, &ChaseConfig::oblivious(64));
        prop_assert!(restricted.is_universal_model());
        prop_assert!(oblivious.is_universal_model());
        prop_assert!(restricted.instance.contains_instance(&db));
        prop_assert!(is_model(&program, &restricted.instance));
        prop_assert!(restricted.instance.is_null_free());
        prop_assert_eq!(restricted.instance.clone(), oblivious.instance);
    }

    /// On weakly-acyclic programs the chase terminates and produces a model;
    /// the restricted chase never produces more facts than the semi-oblivious
    /// one.
    #[test]
    fn weakly_acyclic_chase_terminates(db in database_strategy()) {
        let program = weakly_acyclic_program();
        prop_assert!(is_weakly_acyclic(&program));
        let restricted = chase(&program, &db, &ChaseConfig::default());
        let oblivious = chase(&program, &db, &ChaseConfig::oblivious(64));
        prop_assert!(restricted.is_universal_model());
        prop_assert!(oblivious.is_universal_model());
        prop_assert!(is_model(&program, &restricted.instance));
        prop_assert!(restricted.instance.len() <= oblivious.instance.len());
    }

    /// Certain answers are monotone in the database.
    #[test]
    fn certain_answers_are_monotone(db in database_strategy(), extra in database_strategy()) {
        let program = full_program();
        let query = parse_query("q(X, Y) :- path(X, Y)").unwrap();
        let small = certain_answers(&program, &db, &query, &ChaseConfig::default());
        let mut bigger = db.clone();
        bigger.extend_from(&extra);
        let large = certain_answers(&program, &bigger, &query, &ChaseConfig::default());
        prop_assert!(small.complete && large.complete);
        for row in small.answers.iter() {
            prop_assert!(large.answers.contains(row));
        }
    }

    /// Null-free facts of the chased instance over the *input* signature that
    /// were not in the input are genuine consequences: re-chasing from the
    /// enlarged database is a fixpoint.
    #[test]
    fn chase_is_idempotent(db in database_strategy()) {
        let program = full_program();
        let first = chase(&program, &db, &ChaseConfig::default());
        let second = chase(&program, &first.instance, &ChaseConfig::default());
        prop_assert_eq!(first.instance, second.instance);
        prop_assert_eq!(second.fired, 0);
    }

    /// The trigger budget is respected.
    #[test]
    fn fact_budget_bounds_the_instance(db in database_strategy(), budget in 1usize..10) {
        let program = parse_program(
            "[R1] person(X) -> hasParent(X, Y).\n\
             [R2] hasParent(X, Y) -> person(Y).",
        )
        .unwrap();
        let config = ChaseConfig {
            variant: ChaseVariant::Restricted,
            max_rounds: 1_000,
            max_facts: budget,
        };
        let result = chase(&program, &db, &config);
        // The instance may exceed the budget only by the facts of the last
        // fired trigger (at most the largest head size, here 1).
        prop_assert!(result.instance.len() <= budget.max(db.len()) + 2);
    }
}
