//! Property-based tests for the chase: universal-model properties, variant
//! agreement, and monotonicity of certain answers.

use ontorew_chase::{
    certain_answers, chase, chase_incremental, chase_retract, equivalent_up_to_null_renaming,
    homomorphically_equivalent, is_model, is_weakly_acyclic, ChaseConfig, ChaseStrategy,
    ChaseVariant,
};
use ontorew_model::prelude::*;
use ontorew_workloads::{random_abox, random_program, AboxConfig, RandomProgramConfig};
use proptest::prelude::*;

fn constant() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "c", "d"]).prop_map(String::from)
}

/// Random databases over the signature used by the fixed test programs.
fn database_strategy() -> impl Strategy<Value = Instance> {
    prop::collection::vec(
        prop_oneof![
            (constant(), constant()).prop_map(|(x, y)| Atom::fact("edge", &[&x, &y])),
            constant().prop_map(|x| Atom::fact("person", &[&x])),
            (constant(), constant()).prop_map(|(x, y)| Atom::fact("hasParent", &[&x, &y])),
        ],
        0..15,
    )
    .prop_map(Instance::from_atoms)
}

/// A Datalog (full) program: always terminates.
fn full_program() -> TgdProgram {
    parse_program(
        "[R1] edge(X, Y) -> path(X, Y).\n\
         [R2] path(X, Y), edge(Y, Z) -> path(X, Z).\n\
         [R3] hasParent(X, Y) -> person(X).\n\
         [R4] hasParent(X, Y) -> person(Y).",
    )
    .unwrap()
}

/// A weakly-acyclic existential program: terminates on every database.
fn weakly_acyclic_program() -> TgdProgram {
    parse_program(
        "[R1] person(X) -> hasId(X, I).\n\
         [R2] hasId(X, I) -> identifier(I).",
    )
    .unwrap()
}

proptest! {
    /// The semi-naive (default) and naive chase engines produce the same
    /// instance up to null renaming, the same statistics, and the same
    /// certain answers on random simple programs over random databases.
    ///
    /// Random simple programs can diverge, so both engines run under the
    /// same *round* budget (never the fact budget, whose mid-round cut
    /// depends on firing order): after the same number of breadth-first
    /// rounds, the delta invariant says the fired trigger sets coincide.
    #[test]
    fn semi_naive_chase_matches_naive_chase(
        program_seed in 0u64..1_000,
        data_seed in 0u64..1_000,
        oblivious in prop::sample::select(vec![false, true]),
    ) {
        let program = random_program(&RandomProgramConfig {
            rules: 6,
            predicates: 5,
            max_arity: 3,
            max_body_atoms: 2,
            existential_probability: 0.3,
            seed: program_seed,
        });
        let db = random_abox(&program, &AboxConfig {
            facts: 10,
            constants: 5,
            seed: data_seed,
        });
        let base = if oblivious {
            ChaseConfig::oblivious(4)
        } else {
            ChaseConfig::restricted(4)
        };
        let semi = chase(&program, &db, &base);
        let naive = chase(&program, &db, &base.with_strategy(ChaseStrategy::Naive));

        prop_assert_eq!(semi.outcome, naive.outcome);
        prop_assert_eq!(semi.rounds, naive.rounds);
        prop_assert_eq!(semi.fired, naive.fired);
        prop_assert!(
            equivalent_up_to_null_renaming(&semi.instance, &naive.instance),
            "instances differ beyond null renaming:\n{:?}\nvs\n{:?}",
            semi.instance,
            naive.instance
        );

        // Certain answers agree for an atomic query over every predicate.
        for predicate in program.predicates() {
            let vars: Vec<Variable> = (0..predicate.arity)
                .map(|i| Variable::new(&format!("X{i}")))
                .collect();
            let body = vec![Atom::from_predicate(
                predicate,
                vars.iter().map(|v| Term::Variable(*v)).collect(),
            )];
            let query = ConjunctiveQuery::new(vars, body);
            let semi_answers = certain_answers(&program, &db, &query, &base);
            let naive_answers = certain_answers(
                &program,
                &db,
                &query,
                &base.with_strategy(ChaseStrategy::Naive),
            );
            prop_assert_eq!(&semi_answers.answers, &naive_answers.answers,
                "certain answers differ for {}", predicate);
            prop_assert_eq!(semi_answers.complete, naive_answers.complete);
        }
    }

    /// The chase of a full program is a model containing the input, and both
    /// chase variants coincide on it (no nulls are ever invented).
    #[test]
    fn full_program_chase_is_a_minimal_model(db in database_strategy()) {
        let program = full_program();
        let restricted = chase(&program, &db, &ChaseConfig::default());
        let oblivious = chase(&program, &db, &ChaseConfig::oblivious(64));
        prop_assert!(restricted.is_universal_model());
        prop_assert!(oblivious.is_universal_model());
        prop_assert!(restricted.instance.contains_instance(&db));
        prop_assert!(is_model(&program, &restricted.instance));
        prop_assert!(restricted.instance.is_null_free());
        prop_assert_eq!(restricted.instance.clone(), oblivious.instance);
    }

    /// On weakly-acyclic programs the chase terminates and produces a model;
    /// the restricted chase never produces more facts than the semi-oblivious
    /// one.
    #[test]
    fn weakly_acyclic_chase_terminates(db in database_strategy()) {
        let program = weakly_acyclic_program();
        prop_assert!(is_weakly_acyclic(&program));
        let restricted = chase(&program, &db, &ChaseConfig::default());
        let oblivious = chase(&program, &db, &ChaseConfig::oblivious(64));
        prop_assert!(restricted.is_universal_model());
        prop_assert!(oblivious.is_universal_model());
        prop_assert!(is_model(&program, &restricted.instance));
        prop_assert!(restricted.instance.len() <= oblivious.instance.len());
    }

    /// Certain answers are monotone in the database.
    #[test]
    fn certain_answers_are_monotone(db in database_strategy(), extra in database_strategy()) {
        let program = full_program();
        let query = parse_query("q(X, Y) :- path(X, Y)").unwrap();
        let small = certain_answers(&program, &db, &query, &ChaseConfig::default());
        let mut bigger = db.clone();
        bigger.extend_from(&extra);
        let large = certain_answers(&program, &bigger, &query, &ChaseConfig::default());
        prop_assert!(small.complete && large.complete);
        for row in small.answers.iter() {
            prop_assert!(large.answers.contains(row));
        }
    }

    /// Null-free facts of the chased instance over the *input* signature that
    /// were not in the input are genuine consequences: re-chasing from the
    /// enlarged database is a fixpoint.
    #[test]
    fn chase_is_idempotent(db in database_strategy()) {
        let program = full_program();
        let first = chase(&program, &db, &ChaseConfig::default());
        let second = chase(&program, &first.instance, &ChaseConfig::default());
        prop_assert_eq!(first.instance, second.instance);
        prop_assert_eq!(second.fired, 0);
    }

    /// Incremental continuation vs scratch chase of the merged database, on
    /// random programs and random (base, delta) splits.
    ///
    /// Under the **semi-oblivious** variant firing is determined per
    /// (rule, frontier image), so whenever both runs reach a fixpoint the
    /// incremental result must equal the scratch result up to null
    /// renaming. Under the **restricted** variant the continuation may keep
    /// extra witnesses (the base fired before the delta could satisfy a
    /// head), but it must still be a model containing the merged database
    /// with identical certain answers for every predicate.
    #[test]
    fn incremental_chase_matches_scratch(
        program_seed in 0u64..500,
        base_seed in 0u64..500,
        delta_seed in 500u64..1_000,
        oblivious in prop::sample::select(vec![false, true]),
    ) {
        let program = random_program(&RandomProgramConfig {
            rules: 5,
            predicates: 5,
            max_arity: 3,
            max_body_atoms: 2,
            existential_probability: 0.3,
            seed: program_seed,
        });
        let base_db = random_abox(&program, &AboxConfig {
            facts: 8,
            constants: 5,
            seed: base_seed,
        });
        let delta = random_abox(&program, &AboxConfig {
            facts: 4,
            constants: 5,
            seed: delta_seed,
        });
        // Random simple programs can diverge (and the oblivious variant can
        // explode doubly so): tight round and fact budgets keep divergent
        // draws cheap — equivalence is only claimed at fixpoints anyway.
        let config = if oblivious {
            ChaseConfig::oblivious(5).with_max_facts(2_000)
        } else {
            ChaseConfig::restricted(5).with_max_facts(2_000)
        };
        let base = chase(&program, &base_db, &config);
        let mut merged = base_db.clone();
        merged.extend_from(&delta);
        let scratch = chase(&program, &merged, &config);
        let incremental = chase_incremental(&program, &base, &delta, &config);
        // Random simple programs can diverge; equivalence is only claimed
        // at fixpoints.
        prop_assume!(base.is_universal_model());
        prop_assume!(scratch.is_universal_model());
        prop_assume!(incremental.result.is_universal_model());

        prop_assert!(incremental.result.instance.contains_instance(&merged));
        prop_assert!(is_model(&program, &incremental.result.instance));
        // `added` is exactly the difference to the base instance.
        for atom in incremental.added.atoms() {
            prop_assert!(!base.instance.contains(&atom));
            prop_assert!(incremental.result.instance.contains(&atom));
        }
        prop_assert_eq!(
            incremental.result.instance.len(),
            base.instance.len() + incremental.added.len()
        );
        if oblivious {
            prop_assert!(
                equivalent_up_to_null_renaming(&incremental.result.instance, &scratch.instance),
                "oblivious incremental differs beyond null renaming:\n{:?}\nvs\n{:?}",
                incremental.result.instance,
                scratch.instance
            );
        }
        // Certain answers agree for an atomic query over every predicate.
        for predicate in program.predicates() {
            let vars: Vec<Variable> = (0..predicate.arity)
                .map(|i| Variable::new(&format!("X{i}")))
                .collect();
            let body = vec![Atom::from_predicate(
                predicate,
                vars.iter().map(|v| Term::Variable(*v)).collect(),
            )];
            let query = ConjunctiveQuery::new(vars, body);
            let from_scratch = certain_answers(&program, &merged, &query, &config);
            let store = ontorew_storage::RelationalStore::from_instance(
                &incremental.result.instance,
            );
            let from_incremental =
                ontorew_storage::evaluate_cq(&store, &query).without_nulls();
            prop_assert_eq!(
                &from_incremental, &from_scratch.answers,
                "certain answers differ for {}", predicate
            );
        }
    }

    /// `chase_retract` vs a scratch chase of (inputs − removed), on random
    /// programs, random databases, and random removal subsets.
    ///
    /// The promised equivalence depends on the configuration: under the
    /// **semi-oblivious** variant (firing determined per frontier image) and
    /// for **Datalog** programs under either variant (unique minimal model)
    /// the retracted instance must equal the scratch chase up to null
    /// renaming. Under the **restricted** variant with existential rules the
    /// firing *order* is deletion-history dependent, so only homomorphic
    /// equivalence — and therefore identical certain answers, checked for an
    /// atomic query over every predicate — is promised.
    #[test]
    fn retraction_matches_scratch(
        program_seed in 0u64..500,
        data_seed in 0u64..500,
        removal_mask in 0u64..u64::MAX,
        oblivious in prop::sample::select(vec![false, true]),
    ) {
        let program = random_program(&RandomProgramConfig {
            rules: 5,
            predicates: 5,
            max_arity: 3,
            max_body_atoms: 2,
            existential_probability: 0.3,
            seed: program_seed,
        });
        let db = random_abox(&program, &AboxConfig {
            facts: 10,
            constants: 5,
            seed: data_seed,
        });
        let config = if oblivious {
            ChaseConfig::oblivious(5)
        } else {
            ChaseConfig::restricted(5)
        }
        .with_max_facts(2_000)
        .with_provenance(true);
        let base = chase(&program, &db, &config);
        prop_assume!(base.is_universal_model());

        let atoms: Vec<Atom> = db.atoms().collect();
        let removed = Instance::from_atoms(
            atoms
                .iter()
                .enumerate()
                .filter(|(i, _)| removal_mask >> (i % 64) & 1 == 1)
                .map(|(_, a)| a.clone()),
        );
        let survivors =
            Instance::from_atoms(atoms.iter().filter(|a| !removed.contains(a)).cloned());

        let retracted = chase_retract(&program, &base, &removed, &config);
        let oracle = chase(&program, &survivors, &config);
        prop_assume!(retracted.result.is_universal_model());
        prop_assume!(oracle.is_universal_model());

        prop_assert!(!retracted.scratch);
        prop_assert!(retracted.result.instance.contains_instance(&survivors));
        prop_assert!(is_model(&program, &retracted.result.instance));
        let datalog = program
            .iter()
            .all(|r| r.existential_head_variables().is_empty());
        if oblivious || datalog {
            prop_assert!(
                equivalent_up_to_null_renaming(&retracted.result.instance, &oracle.instance),
                "retraction differs beyond null renaming:\n{:?}\nvs\n{:?}",
                retracted.result.instance,
                oracle.instance
            );
        } else {
            prop_assert!(
                homomorphically_equivalent(&retracted.result.instance, &oracle.instance),
                "retraction not homomorphically equivalent to scratch:\n{:?}\nvs\n{:?}",
                retracted.result.instance,
                oracle.instance
            );
        }
        // Certain answers agree for an atomic query over every predicate.
        for predicate in program.predicates() {
            let vars: Vec<Variable> = (0..predicate.arity)
                .map(|i| Variable::new(&format!("X{i}")))
                .collect();
            let body = vec![Atom::from_predicate(
                predicate,
                vars.iter().map(|v| Term::Variable(*v)).collect(),
            )];
            let query = ConjunctiveQuery::new(vars, body);
            let from_scratch = certain_answers(&program, &survivors, &query, &config);
            let store = ontorew_storage::RelationalStore::from_instance(
                &retracted.result.instance,
            );
            let from_retracted =
                ontorew_storage::evaluate_cq(&store, &query).without_nulls();
            prop_assert_eq!(
                &from_retracted, &from_scratch.answers,
                "certain answers differ for {}", predicate
            );
        }
    }

    /// The trigger budget is respected.
    #[test]
    fn fact_budget_bounds_the_instance(db in database_strategy(), budget in 1usize..10) {
        let program = parse_program(
            "[R1] person(X) -> hasParent(X, Y).\n\
             [R2] hasParent(X, Y) -> person(Y).",
        )
        .unwrap();
        let config = ChaseConfig {
            variant: ChaseVariant::Restricted,
            max_rounds: 1_000,
            max_facts: budget,
            ..ChaseConfig::default()
        };
        let result = chase(&program, &db, &config);
        // The instance may exceed the budget only by the facts of the last
        // fired trigger (at most the largest head size, here 1).
        prop_assert!(result.instance.len() <= budget.max(db.len()) + 2);
    }
}
