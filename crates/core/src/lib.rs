//! # ontorew-core
//!
//! The graph-based approach to FO-rewritability of TGDs from
//! *"Query Answering over Ontologies Specified via Database Dependencies"*
//! (Civili, SIGMOD 2014 PhD Symposium):
//!
//! * [`position`] / [`position_graph`] — positions and the position graph
//!   `AG(P)` (Definitions 2–4);
//! * [`swr`] — the Simply Weakly Recursive class and its PTIME membership
//!   test (Definition 5, Theorem 1);
//! * [`pnode`] / [`wr`] — P-atoms, P-nodes, the P-node graph and the Weakly
//!   Recursive class (Definitions 6–8);
//! * [`classes`] — the previously known baseline classes (Linear,
//!   Multilinear, Guarded, Frontier-Guarded, Sticky, Sticky-Join,
//!   Domain-Restricted, acyclic-GRD);
//! * [`mod@classify`] — the unified classification report and the §7 trichotomy;
//! * [`examples`] — the paper's Examples 1–3 and the figures' inputs;
//! * [`graphviz`] — DOT rendering of both graphs (Figures 1–3);
//! * [`cycles`] — the labelled-cycle machinery shared by SWR and WR.
//!
//! ```
//! use ontorew_core::{classify, examples};
//!
//! let report = classify(&examples::example3());
//! assert!(!report.swr.is_swr);                      // outside SWR...
//! assert_eq!(report.wr.is_wr(), Some(true));        // ...but WR,
//! assert!(report.fo_rewritable());                  // hence FO-rewritable.
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod classes;
pub mod classify;
pub mod cycles;
pub mod dl_ext;
pub mod dl_lite;
pub mod examples;
pub mod graphviz;
pub mod pnode;
pub mod position;
pub mod position_graph;
pub mod swr;
pub mod wr;

pub use classify::{classify, classify_with, ClassificationReport, FoRewritabilityVerdict};
pub use cycles::LabeledGraph;
pub use dl_ext::{ExtendedAxiom, ExtendedConcept, ExtendedOntology};
pub use dl_lite::{Concept, DlLiteAxiom, DlLiteOntology, Role};
pub use graphviz::{pnode_graph_to_dot, position_graph_to_dot};
pub use pnode::{PEdgeLabel, PNode, PNodeGraph, PNodeGraphConfig};
pub use position::{is_r_compatible, Position};
pub use position_graph::{PositionEdgeLabel, PositionGraph};
pub use swr::{check_swr, is_swr, SwrReport, SwrViolation};
pub use wr::{check_wr, check_wr_with, is_wr, WrReport, WrVerdict};
