//! Simply Weakly Recursive (SWR) TGDs — Definition 5 and Theorem 1.
//!
//! A set `P` of TGDs is **SWR** iff (i) every rule is a *simple* TGD (single
//! head atom, no constants, no repeated variables inside an atom) and (ii)
//! the position graph `AG(P)` has no cycle containing both an m-edge and an
//! s-edge. Theorem 1 of the paper: every SWR set is FO-rewritable.
//!
//! The membership test runs in polynomial time (the position graph has at
//! most one node per position plus one per relation, and the cycle condition
//! is an SCC computation).

use crate::position_graph::PositionGraph;
use ontorew_model::prelude::*;
use serde::Serialize;

/// Why a program fails to be SWR (if it does).
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum SwrViolation {
    /// Some rule is not a simple TGD.
    NotSimple {
        /// Label of the offending rule.
        rule: String,
        /// Human-readable reason (multiple heads, constants, repeated
        /// variables).
        reason: String,
    },
    /// The position graph has a cycle with both an m-edge and an s-edge.
    DangerousCycle {
        /// The positions of a strongly connected component witnessing the
        /// dangerous cycle.
        positions: Vec<String>,
    },
}

/// The result of the SWR membership test.
#[derive(Clone, Debug, Serialize)]
pub struct SwrReport {
    /// True iff the program is SWR.
    pub is_swr: bool,
    /// True iff every rule is simple.
    pub all_simple: bool,
    /// Violations found (empty iff `is_swr`).
    pub violations: Vec<SwrViolation>,
    /// Size of the position graph that was built (nodes, edges).
    pub graph_size: (usize, usize),
}

/// Run the SWR membership test on `program`.
pub fn check_swr(program: &TgdProgram) -> SwrReport {
    let mut violations = Vec::new();
    let mut all_simple = true;
    for rule in program.iter() {
        if !rule.is_simple() {
            all_simple = false;
            let mut reasons = Vec::new();
            if !rule.has_single_head_atom() {
                reasons.push("multiple head atoms");
            }
            if rule.has_constants() {
                reasons.push("constants");
            }
            if rule.has_repeated_variables_in_an_atom() {
                reasons.push("repeated variables in an atom");
            }
            violations.push(SwrViolation::NotSimple {
                rule: rule.label_str().to_owned(),
                reason: reasons.join(", "),
            });
        }
    }

    let graph = PositionGraph::build(program);
    let graph_size = (graph.node_count(), graph.edge_count());
    if let Some(positions) = graph.dangerous_positions() {
        violations.push(SwrViolation::DangerousCycle {
            positions: positions.iter().map(|p| p.to_string()).collect(),
        });
    }

    SwrReport {
        is_swr: violations.is_empty(),
        all_simple,
        violations,
        graph_size,
    }
}

/// Convenience: true iff `program` is SWR.
pub fn is_swr(program: &TgdProgram) -> bool {
    check_swr(program).is_swr
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::parse_program;

    #[test]
    fn example1_is_swr() {
        let p = parse_program(
            "[R1] s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).\n\
             [R2] v(Y1, Y2), q(Y2) -> s(Y1, Y3, Y2).\n\
             [R3] r(Y1, Y2) -> v(Y1, Y2).",
        )
        .unwrap();
        let report = check_swr(&p);
        assert!(report.is_swr);
        assert!(report.all_simple);
        assert!(report.violations.is_empty());
        assert_eq!(report.graph_size.0, 7);
    }

    #[test]
    fn example2_is_not_swr_because_it_is_not_simple() {
        let p = parse_program(
            "[R1] t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n\
             [R2] s(Y1, Y1, Y2) -> r(Y2, Y3).",
        )
        .unwrap();
        let report = check_swr(&p);
        assert!(!report.is_swr);
        assert!(!report.all_simple);
        assert!(matches!(
            report.violations[0],
            SwrViolation::NotSimple { .. }
        ));
    }

    #[test]
    fn example3_is_not_swr_because_of_repeated_variables() {
        let p = parse_program(
            "[R1] r(Y1, Y2) -> t(Y3, Y1, Y1).\n\
             [R2] s(Y1, Y2, Y3) -> r(Y1, Y2).\n\
             [R3] u(Y1), t(Y1, Y1, Y2) -> s(Y1, Y1, Y2).",
        )
        .unwrap();
        assert!(!is_swr(&p));
    }

    #[test]
    fn dangerous_cycle_makes_a_simple_program_not_swr() {
        let p = parse_program(
            "[R1] p(X, Z), q(Z) -> h(X).\n\
             [R2] h(X), w(Y) -> q(Y).",
        )
        .unwrap();
        let report = check_swr(&p);
        assert!(report.all_simple);
        assert!(!report.is_swr);
        assert!(matches!(
            report.violations[0],
            SwrViolation::DangerousCycle { .. }
        ));
    }

    #[test]
    fn class_hierarchies_are_swr() {
        let p = parse_program(
            "[R1] student(X) -> person(X).\n\
             [R2] professor(X) -> person(X).\n\
             [R3] person(X) -> hasParent(X, Y).\n\
             [R4] hasParent(X, Y) -> person(Y).",
        )
        .unwrap();
        // This is the classic DL-Lite style ontology: linear rules, hence SWR.
        assert!(is_swr(&p));
    }

    #[test]
    fn empty_program_is_swr() {
        assert!(is_swr(&TgdProgram::new()));
    }

    #[test]
    fn constants_in_rules_break_simplicity() {
        let p = parse_program("[R1] visited(X) -> city(rome).").unwrap();
        let report = check_swr(&p);
        assert!(!report.is_swr);
        match &report.violations[0] {
            SwrViolation::NotSimple { reason, .. } => assert!(reason.contains("constants")),
            other => panic!("unexpected violation {other:?}"),
        }
    }
}
