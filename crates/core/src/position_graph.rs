//! The position graph `AG(P)` (Definition 4 of the paper).
//!
//! Nodes are positions (`r[ ]`, `r[i]`), edges connect the position of a rule
//! head to positions of its body, and edges are labelled with
//!
//! * `m` ("missing") when some distinguished variable of the rule does not
//!   occur in the body atom the edge points into, and
//! * `s` ("splitting") when an existential variable is split over two body
//!   atoms by the corresponding rewriting step.
//!
//! The construction below follows Definition 4 literally (points 1(a)–(d), 2
//! and 3), as a worklist fixpoint starting from the `r[ ]` positions of the
//! rule heads. The definition is stated for *simple* TGDs; as in the paper's
//! Example 2, the same construction can be applied to arbitrary TGDs (every
//! occurrence of a variable contributes a position), but the resulting
//! classification is only meaningful for simple programs — that caveat is
//! exactly what motivates the P-node graph.

use crate::cycles::LabeledGraph;
use crate::position::{is_r_compatible, Position};
use ontorew_model::prelude::*;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Edge labels of the position graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum PositionEdgeLabel {
    /// `m`: a distinguished variable of the rule is missing from the body atom.
    Missing,
    /// `s`: an existential variable is split over two body atoms.
    Splitting,
}

/// The position graph of a program.
#[derive(Clone, Debug)]
pub struct PositionGraph {
    nodes: Vec<Position>,
    node_ids: BTreeMap<Position, usize>,
    graph: LabeledGraph<PositionEdgeLabel>,
}

impl PositionGraph {
    /// Build `AG(P)` for `program`.
    pub fn build(program: &TgdProgram) -> Self {
        let mut builder = PositionGraph {
            nodes: Vec::new(),
            node_ids: BTreeMap::new(),
            graph: LabeledGraph::new(0),
        };

        // Initial nodes: r[ ] for every head atom (Definition 4, first bullet).
        let mut worklist: VecDeque<Position> = VecDeque::new();
        for rule in program.iter() {
            for alpha in &rule.head {
                let sigma = Position::whole(alpha.predicate);
                if builder.intern(sigma) {
                    worklist.push_back(sigma);
                }
            }
        }

        // Fixpoint: expand every node against every rule whose head is
        // R-compatible with it.
        let mut processed: BTreeSet<Position> = BTreeSet::new();
        while let Some(sigma) = worklist.pop_front() {
            if !processed.insert(sigma) {
                continue;
            }
            for rule in program.iter() {
                for alpha in &rule.head {
                    if !is_r_compatible(&sigma, rule, alpha) {
                        continue;
                    }
                    let new_nodes = builder.expand(&sigma, rule, alpha);
                    for n in new_nodes {
                        if !processed.contains(&n) {
                            worklist.push_back(n);
                        }
                    }
                }
            }
        }
        builder
    }

    /// Intern a node, returning true if it is new.
    fn intern(&mut self, position: Position) -> bool {
        if self.node_ids.contains_key(&position) {
            return false;
        }
        let id = self.nodes.len();
        self.nodes.push(position);
        self.node_ids.insert(position, id);
        self.graph.ensure_node(id);
        true
    }

    /// Apply points 1(a)–(d), 2 and 3 of Definition 4 for node `sigma`, rule
    /// `rule` and compatible head atom `alpha`. Returns the target positions
    /// (possibly new nodes).
    fn expand(&mut self, sigma: &Position, rule: &Tgd, alpha: &Atom) -> Vec<Position> {
        let distinguished: BTreeSet<Variable> =
            rule.distinguished_variables().into_iter().collect();
        let existential_body: BTreeSet<Variable> =
            rule.existential_body_variables().into_iter().collect();

        // Point 2: some existential body variable occurs in >= 2 body atoms.
        let splitting_rule = existential_body.iter().any(|z| {
            rule.body
                .iter()
                .filter(|b| b.variable_set().contains(z))
                .count()
                >= 2
        });
        // Point 3: sigma is r[i], and the head variable at position i occurs
        // in >= 2 body atoms.
        let splitting_position = match sigma.index {
            Some(i) => match alpha.terms.get(i).and_then(Term::as_variable) {
                Some(y) => {
                    rule.body
                        .iter()
                        .filter(|b| b.variable_set().contains(&y))
                        .count()
                        >= 2
                }
                None => false,
            },
            None => false,
        };
        let splitting = splitting_rule || splitting_position;

        let mut touched = Vec::new();
        for beta in &rule.body {
            // Point 1(d): the m label applies to every edge generated for this
            // body atom when some distinguished variable is missing from it.
            let missing = distinguished
                .iter()
                .any(|v| !beta.variable_set().contains(v));

            let mut edge_labels: Vec<PositionEdgeLabel> = Vec::new();
            if missing {
                edge_labels.push(PositionEdgeLabel::Missing);
            }
            if splitting {
                edge_labels.push(PositionEdgeLabel::Splitting);
            }

            let mut targets: Vec<Position> = Vec::new();
            // Point 1(a): sigma -> s[ ] for the body atom's relation.
            targets.push(Position::whole(beta.predicate));
            // Point 1(b): sigma -> Pos(z, beta) for existential body variables.
            for z in &existential_body {
                targets.extend(Position::positions_of(*z, beta));
            }
            // Point 1(c): if sigma = r[i], follow the head variable at i into
            // the body atom.
            if let Some(i) = sigma.index {
                if let Some(y) = alpha.terms.get(i).and_then(Term::as_variable) {
                    targets.extend(Position::positions_of(y, beta));
                }
            }

            for target in targets {
                self.intern(target);
                let from = self.node_ids[sigma];
                let to = self.node_ids[&target];
                self.graph.add_edge(from, to, edge_labels.iter().copied());
                touched.push(target);
            }
        }
        touched
    }

    /// The nodes of the graph.
    pub fn nodes(&self) -> &[Position] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// True if the graph contains the node.
    pub fn contains_node(&self, position: &Position) -> bool {
        self.node_ids.contains_key(position)
    }

    /// The labels of the edge between two positions, if present.
    pub fn edge_labels(
        &self,
        from: &Position,
        to: &Position,
    ) -> Option<&BTreeSet<PositionEdgeLabel>> {
        let a = self.node_ids.get(from)?;
        let b = self.node_ids.get(to)?;
        self.graph.labels(*a, *b)
    }

    /// Iterate over all edges as `(from, to, labels)`.
    pub fn edges(
        &self,
    ) -> impl Iterator<Item = (Position, Position, &BTreeSet<PositionEdgeLabel>)> + '_ {
        self.graph
            .edges()
            .map(move |(a, b, l)| (self.nodes[a], self.nodes[b], l))
    }

    /// Number of m-edges.
    pub fn m_edge_count(&self) -> usize {
        self.edges()
            .filter(|(_, _, l)| l.contains(&PositionEdgeLabel::Missing))
            .count()
    }

    /// Number of s-edges.
    pub fn s_edge_count(&self) -> usize {
        self.edges()
            .filter(|(_, _, l)| l.contains(&PositionEdgeLabel::Splitting))
            .count()
    }

    /// True if some cycle (closed walk) contains both an m-edge and an s-edge
    /// — the "dangerous cycle" of Definition 5. The check uses the strongly
    /// connected component formulation (the conservative reading of "cycle").
    pub fn has_dangerous_cycle(&self) -> bool {
        self.graph.has_cycle_with_labels(
            &[PositionEdgeLabel::Missing, PositionEdgeLabel::Splitting],
            &[],
        )
    }

    /// The positions involved in a dangerous strongly connected component, if
    /// any (diagnostic counterpart of [`PositionGraph::has_dangerous_cycle`]).
    pub fn dangerous_positions(&self) -> Option<Vec<Position>> {
        self.graph
            .find_dangerous_scc(
                &[PositionEdgeLabel::Missing, PositionEdgeLabel::Splitting],
                &[],
            )
            .map(|ids| ids.into_iter().map(|i| self.nodes[i]).collect())
    }

    /// True if the graph has any cycle at all (closed walk), regardless of
    /// labels.
    pub fn has_any_cycle(&self) -> bool {
        self.graph.has_cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::parse_program;

    fn example1() -> TgdProgram {
        parse_program(
            "[R1] s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).\n\
             [R2] v(Y1, Y2), q(Y2) -> s(Y1, Y3, Y2).\n\
             [R3] r(Y1, Y2) -> v(Y1, Y2).",
        )
        .unwrap()
    }

    fn example2() -> TgdProgram {
        parse_program(
            "[R1] t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n\
             [R2] s(Y1, Y1, Y2) -> r(Y2, Y3).",
        )
        .unwrap()
    }

    fn whole(name: &str, arity: usize) -> Position {
        Position::whole(Predicate::new(name, arity))
    }
    fn arg(name: &str, arity: usize, index_1based: usize) -> Position {
        Position::argument(Predicate::new(name, arity), index_1based - 1)
    }

    #[test]
    fn figure1_nodes_of_example1() {
        // Figure 1 of the paper: the position graph of Example 1 contains the
        // nodes r[ ], s[ ], v[ ], t[ ], q[ ] and s[2] (plus t[1], which
        // Definition 4(1)(b) mandates for the existential body variable Y4 of
        // R1 even though the figure elides it).
        let g = PositionGraph::build(&example1());
        for node in [
            whole("r", 2),
            whole("s", 3),
            whole("v", 2),
            whole("t", 1),
            whole("q", 1),
            arg("s", 3, 2),
            arg("t", 1, 1),
        ] {
            assert!(g.contains_node(&node), "missing node {node}");
        }
        assert_eq!(g.node_count(), 7);
    }

    #[test]
    fn figure1_edges_and_labels_of_example1() {
        let g = PositionGraph::build(&example1());
        // r[ ] -> s[ ] and r[ ] -> s[2] are unlabelled; r[ ] -> t[ ] carries m.
        assert!(g
            .edge_labels(&whole("r", 2), &whole("s", 3))
            .unwrap()
            .is_empty());
        assert!(g
            .edge_labels(&whole("r", 2), &arg("s", 3, 2))
            .unwrap()
            .is_empty());
        assert!(g
            .edge_labels(&whole("r", 2), &whole("t", 1))
            .unwrap()
            .contains(&PositionEdgeLabel::Missing));
        // s[ ] -> q[ ] carries m; s[ ] -> v[ ] does not.
        assert!(g
            .edge_labels(&whole("s", 3), &whole("q", 1))
            .unwrap()
            .contains(&PositionEdgeLabel::Missing));
        assert!(g
            .edge_labels(&whole("s", 3), &whole("v", 2))
            .unwrap()
            .is_empty());
        // v[ ] -> r[ ] closes the harmless cycle with no labels.
        assert!(g
            .edge_labels(&whole("v", 2), &whole("r", 2))
            .unwrap()
            .is_empty());
        // Exactly as the paper observes: there are no s-edges at all.
        assert_eq!(g.s_edge_count(), 0);
        assert_eq!(g.m_edge_count(), 3); // r->t[], r->t[1], s->q[]
    }

    #[test]
    fn example1_has_a_cycle_but_no_dangerous_one() {
        let g = PositionGraph::build(&example1());
        assert!(g.has_any_cycle()); // r[] -> s[] -> v[] -> r[]
        assert!(!g.has_dangerous_cycle());
        assert!(g.dangerous_positions().is_none());
    }

    #[test]
    fn s2_is_not_expanded_because_y3_is_existential() {
        // s[2] corresponds to the existential head variable Y3 of R2, so no
        // rule head is R-compatible with it and it has no outgoing edges.
        let g = PositionGraph::build(&example1());
        let s2 = arg("s", 3, 2);
        assert!(g.contains_node(&s2));
        assert!(g.edges().all(|(from, _, _)| from != s2));
    }

    #[test]
    fn figure2_nodes_of_example2() {
        // Figure 2 of the paper (built although the program is not simple).
        let g = PositionGraph::build(&example2());
        for node in [
            whole("r", 2),
            whole("s", 3),
            whole("t", 2),
            arg("r", 2, 2),
            arg("s", 3, 1),
            arg("s", 3, 2),
            arg("s", 3, 3),
            arg("r", 2, 1),
            arg("t", 2, 1),
            arg("t", 2, 2),
        ] {
            assert!(g.contains_node(&node), "missing node {node}");
        }
    }

    #[test]
    fn figure2_has_no_dangerous_cycle_which_is_the_point_of_the_example() {
        // The position graph wrongly suggests Example 2 is harmless (no cycle
        // with both m and s): that false negative motivates the P-node graph.
        let g = PositionGraph::build(&example2());
        assert_eq!(g.s_edge_count(), 0);
        assert!(!g.has_dangerous_cycle());
    }

    #[test]
    fn splitting_labels_appear_when_an_existential_spans_two_atoms() {
        // p(X, Z), q(Z) -> h(X): the existential body variable Z occurs in two
        // body atoms, so every edge of that rule carries s.
        let p = parse_program("[R1] p(X, Z), q(Z) -> h(X).").unwrap();
        let g = PositionGraph::build(&p);
        assert!(g.s_edge_count() > 0);
        let labels = g.edge_labels(&whole("h", 1), &whole("p", 2)).unwrap();
        assert!(labels.contains(&PositionEdgeLabel::Splitting));
        // And the edges also carry m because Z... no: the only distinguished
        // variable X occurs in p but not in q.
        let q_labels = g.edge_labels(&whole("h", 1), &whole("q", 1)).unwrap();
        assert!(q_labels.contains(&PositionEdgeLabel::Missing));
    }

    #[test]
    fn dangerous_cycle_is_detected_on_a_crafted_program() {
        // h(X) is rebuilt from p(X, Z), q(Z) and q feeds back into h through a
        // rule that loses the distinguished variable: the cycle carries both
        // m and s labels.
        let p = parse_program(
            "[R1] p(X, Z), q(Z) -> h(X).\n\
             [R2] h(X), w(Y) -> q(Y).",
        )
        .unwrap();
        let g = PositionGraph::build(&p);
        assert!(g.has_dangerous_cycle());
        let members = g.dangerous_positions().unwrap();
        assert!(members.contains(&whole("q", 1)));
        assert!(members.contains(&whole("h", 1)));
    }

    #[test]
    fn empty_program_yields_empty_graph() {
        let g = PositionGraph::build(&TgdProgram::new());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_dangerous_cycle());
    }
}
