//! Labelled directed graphs and the cycle conditions of the paper.
//!
//! Both the position graph (SWR, Definition 5) and the P-node graph
//! (WR, Definition 8) reduce FO-rewritability to a condition of the form
//! *"there is no cycle containing an edge with each of the labels
//! `required`, while containing no edge with a label in `forbidden`"*.
//!
//! The check exploits a standard fact about strongly connected components:
//! two edges lie on a common cycle iff they belong to the same SCC (after
//! removing every edge carrying a forbidden label, since any cycle through
//! such an edge is excluded anyway). So the algorithm is: drop forbidden
//! edges, compute SCCs (Tarjan), and look for an SCC whose internal edges
//! jointly cover all required labels.

use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;

/// A directed graph with label sets on its edges, over dense node ids.
#[derive(Clone, Debug)]
pub struct LabeledGraph<L> {
    node_count: usize,
    edges: BTreeMap<(usize, usize), BTreeSet<L>>,
}

impl<L: Clone + Ord + Eq + Hash> LabeledGraph<L> {
    /// An empty graph with `node_count` nodes (ids `0..node_count`).
    pub fn new(node_count: usize) -> Self {
        LabeledGraph {
            node_count,
            edges: BTreeMap::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of distinct edges (label sets are merged per edge).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Grow the node set so that it includes `node`.
    pub fn ensure_node(&mut self, node: usize) {
        if node >= self.node_count {
            self.node_count = node + 1;
        }
    }

    /// Add an edge (merging labels if it already exists).
    pub fn add_edge<I: IntoIterator<Item = L>>(&mut self, from: usize, to: usize, labels: I) {
        self.ensure_node(from);
        self.ensure_node(to);
        self.edges.entry((from, to)).or_default().extend(labels);
    }

    /// The labels of an edge, if present.
    pub fn labels(&self, from: usize, to: usize) -> Option<&BTreeSet<L>> {
        self.edges.get(&(from, to))
    }

    /// Iterate over all edges.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, &BTreeSet<L>)> {
        self.edges.iter().map(|((a, b), l)| (*a, *b, l))
    }

    /// True if the graph has a cycle at all (ignoring labels).
    pub fn has_cycle(&self) -> bool {
        let sccs = self.strongly_connected_components(&|_| true);
        self.edges.keys().any(|(a, b)| sccs[*a] == sccs[*b])
    }

    /// True if there is a cycle that contains, for every label in `required`,
    /// at least one edge carrying that label, and contains no edge carrying a
    /// label in `forbidden`.
    pub fn has_cycle_with_labels(&self, required: &[L], forbidden: &[L]) -> bool {
        self.find_dangerous_scc(required, forbidden).is_some()
    }

    /// Like [`LabeledGraph::has_cycle_with_labels`] but returns the node ids
    /// of a witnessing strongly connected component (the cycle runs within
    /// it), if any.
    pub fn find_dangerous_scc(&self, required: &[L], forbidden: &[L]) -> Option<Vec<usize>> {
        let forbidden: BTreeSet<&L> = forbidden.iter().collect();
        let allowed = |labels: &BTreeSet<L>| labels.iter().all(|l| !forbidden.contains(l));
        let sccs = self.strongly_connected_components(&allowed);

        // Collect, per SCC, the labels of its internal (allowed) edges.
        let mut scc_labels: BTreeMap<usize, BTreeSet<L>> = BTreeMap::new();
        let mut scc_has_internal_edge: BTreeSet<usize> = BTreeSet::new();
        for ((a, b), labels) in &self.edges {
            if !allowed(labels) {
                continue;
            }
            if sccs[*a] == sccs[*b] {
                scc_has_internal_edge.insert(sccs[*a]);
                scc_labels
                    .entry(sccs[*a])
                    .or_default()
                    .extend(labels.iter().cloned());
            }
        }
        for (scc, labels) in &scc_labels {
            if !scc_has_internal_edge.contains(scc) {
                continue;
            }
            if required.iter().all(|l| labels.contains(l)) {
                let members: Vec<usize> =
                    (0..self.node_count).filter(|n| sccs[*n] == *scc).collect();
                return Some(members);
            }
        }
        None
    }

    /// Tarjan's strongly connected components over the subgraph of edges
    /// accepted by `edge_filter`. Returns, for each node, its SCC id.
    fn strongly_connected_components(
        &self,
        edge_filter: &dyn Fn(&BTreeSet<L>) -> bool,
    ) -> Vec<usize> {
        let n = self.node_count;
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for ((a, b), labels) in &self.edges {
            if edge_filter(labels) {
                successors[*a].push(*b);
            }
        }

        // Iterative Tarjan to avoid recursion limits on large graphs.
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut scc_of = vec![usize::MAX; n];
        let mut next_index = 0usize;
        let mut next_scc = 0usize;

        #[derive(Clone)]
        struct Frame {
            node: usize,
            child: usize,
        }

        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut call_stack = vec![Frame {
                node: start,
                child: 0,
            }];
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(frame) = call_stack.last().cloned() {
                let v = frame.node;
                if frame.child < successors[v].len() {
                    let w = successors[v][frame.child];
                    call_stack.last_mut().expect("frame exists").child += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call_stack.push(Frame { node: w, child: 0 });
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(parent) = call_stack.last() {
                        let p = parent.node;
                        lowlink[p] = lowlink[p].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("stack non-empty");
                            on_stack[w] = false;
                            scc_of[w] = next_scc;
                            if w == v {
                                break;
                            }
                        }
                        next_scc += 1;
                    }
                }
            }
        }
        scc_of
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
    enum L {
        M,
        S,
        D,
        I,
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let mut g = LabeledGraph::new(3);
        g.add_edge(0, 1, [L::M]);
        g.add_edge(1, 2, [L::S]);
        assert!(!g.has_cycle());
        assert!(!g.has_cycle_with_labels(&[L::M], &[]));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = LabeledGraph::new(1);
        g.add_edge(0, 0, [L::M, L::S]);
        assert!(g.has_cycle());
        assert!(g.has_cycle_with_labels(&[L::M, L::S], &[]));
        assert!(!g.has_cycle_with_labels(&[L::D], &[]));
    }

    #[test]
    fn labels_must_lie_on_a_common_cycle() {
        // 0 -> 1 (m) -> 0 (plain) is a cycle with m but no s.
        // 2 -> 3 (s) -> 2 (plain) is a cycle with s but no m.
        // The two cycles are disjoint, so there is no single cycle with both.
        let mut g = LabeledGraph::new(4);
        g.add_edge(0, 1, [L::M]);
        g.add_edge(1, 0, []);
        g.add_edge(2, 3, [L::S]);
        g.add_edge(3, 2, []);
        assert!(g.has_cycle_with_labels(&[L::M], &[]));
        assert!(g.has_cycle_with_labels(&[L::S], &[]));
        assert!(!g.has_cycle_with_labels(&[L::M, L::S], &[]));
    }

    #[test]
    fn connected_cycles_combine_labels() {
        // One SCC containing an m-edge and an s-edge.
        let mut g = LabeledGraph::new(3);
        g.add_edge(0, 1, [L::M]);
        g.add_edge(1, 2, [L::S]);
        g.add_edge(2, 0, []);
        assert!(g.has_cycle_with_labels(&[L::M, L::S], &[]));
    }

    #[test]
    fn forbidden_labels_exclude_edges() {
        // The only way to close the m+s cycle passes through an i-edge.
        let mut g = LabeledGraph::new(3);
        g.add_edge(0, 1, [L::M]);
        g.add_edge(1, 2, [L::S]);
        g.add_edge(2, 0, [L::I]);
        assert!(g.has_cycle_with_labels(&[L::M, L::S], &[]));
        assert!(!g.has_cycle_with_labels(&[L::M, L::S], &[L::I]));
    }

    #[test]
    fn edges_outside_the_scc_do_not_count() {
        // 0 <-> 1 is a cycle; the s-edge 1 -> 2 dangles outside it.
        let mut g = LabeledGraph::new(3);
        g.add_edge(0, 1, [L::M]);
        g.add_edge(1, 0, []);
        g.add_edge(1, 2, [L::S]);
        assert!(!g.has_cycle_with_labels(&[L::M, L::S], &[]));
    }

    #[test]
    fn dangerous_scc_members_are_reported() {
        let mut g = LabeledGraph::new(4);
        g.add_edge(0, 1, [L::M]);
        g.add_edge(1, 0, [L::S]);
        g.add_edge(2, 3, []);
        let scc = g.find_dangerous_scc(&[L::M, L::S], &[]).unwrap();
        assert_eq!(scc, vec![0, 1]);
    }

    #[test]
    fn labels_merge_when_an_edge_is_added_twice() {
        let mut g: LabeledGraph<L> = LabeledGraph::new(2);
        g.add_edge(0, 1, [L::M]);
        g.add_edge(0, 1, [L::S]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.labels(0, 1).unwrap().len(), 2);
    }

    #[test]
    fn large_cycle_is_handled_iteratively() {
        // A long ring exercises the iterative Tarjan implementation.
        let n = 5_000;
        let mut g: LabeledGraph<L> = LabeledGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, if i == 0 { vec![L::M] } else { vec![] });
        }
        assert!(g.has_cycle_with_labels(&[L::M], &[]));
        assert!(!g.has_cycle_with_labels(&[L::M, L::S], &[]));
    }
}
