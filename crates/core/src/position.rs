//! Positions (Definition 2 of the paper).
//!
//! A position is either `r[ ]` ("some atom with relation `r`") or `r[i]`
//! ("an atom with relation `r` carrying a tracked variable at argument `i`").
//! Positions are the nodes of the position graph.

use ontorew_model::prelude::*;
use serde::Serialize;
use std::fmt;

/// A position `r[ ]` or `r[i]` (Definition 2). The index is stored 0-based
/// and displayed 1-based, following the paper's notation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct Position {
    /// The relation symbol (with its arity).
    pub predicate: Predicate,
    /// `None` for `r[ ]`; `Some(i)` (0-based) for `r[i+1]`.
    pub index: Option<usize>,
}

impl Position {
    /// The whole-relation position `r[ ]`.
    pub fn whole(predicate: Predicate) -> Self {
        Position {
            predicate,
            index: None,
        }
    }

    /// The argument position `r[i]` (0-based `index`).
    pub fn argument(predicate: Predicate, index: usize) -> Self {
        assert!(
            index < predicate.arity,
            "position index {index} out of range for {predicate}"
        );
        Position {
            predicate,
            index: Some(index),
        }
    }

    /// The relation symbol of the position (`Rel(σ)` in the paper).
    pub fn relation(&self) -> Predicate {
        self.predicate
    }

    /// True for `r[ ]` positions.
    pub fn is_whole(&self) -> bool {
        self.index.is_none()
    }

    /// `Pos(x, β)`: the argument positions of variable `x` inside atom `β`
    /// (the paper assumes a single occurrence because it works with simple
    /// TGDs; for general TGDs every occurrence yields a position).
    pub fn positions_of(variable: Variable, atom: &Atom) -> Vec<Position> {
        atom.positions_of(variable)
            .into_iter()
            .map(|i| Position::argument(atom.predicate, i))
            .collect()
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            None => write!(f, "{}[ ]", self.predicate.name),
            Some(i) => write!(f, "{}[{}]", self.predicate.name, i + 1),
        }
    }
}

/// R-compatibility (Definition 3): whether the head atom `alpha` of rule
/// `rule` is compatible with the position `sigma`.
///
/// * `alpha` is compatible with `r[ ]` iff `Rel(alpha) = r`;
/// * `alpha` is compatible with `r[i]` iff `Rel(alpha) = r` and the term at
///   position `i` of `alpha` is a distinguished variable of the rule.
pub fn is_r_compatible(sigma: &Position, rule: &Tgd, alpha: &Atom) -> bool {
    if alpha.predicate != sigma.predicate {
        return false;
    }
    match sigma.index {
        None => true,
        Some(i) => match alpha.terms.get(i) {
            Some(Term::Variable(v)) => rule.is_distinguished(*v),
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::parse_tgd;

    #[test]
    fn display_uses_one_based_indices() {
        let p = Predicate::new("r", 2);
        assert_eq!(Position::whole(p).to_string(), "r[ ]");
        assert_eq!(Position::argument(p, 0).to_string(), "r[1]");
        assert_eq!(Position::argument(p, 1).to_string(), "r[2]");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_argument_positions_are_rejected() {
        Position::argument(Predicate::new("r", 2), 2);
    }

    #[test]
    fn positions_of_returns_every_occurrence() {
        let atom = Atom::new(
            "t",
            vec![
                Term::variable("X"),
                Term::variable("X"),
                Term::variable("Y"),
            ],
        );
        let xs = Position::positions_of(Variable::new("X"), &atom);
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0].index, Some(0));
        assert_eq!(xs[1].index, Some(1));
        assert!(Position::positions_of(Variable::new("Z"), &atom).is_empty());
    }

    #[test]
    fn whole_positions_are_compatible_by_relation_name() {
        let rule = parse_tgd("s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3)").unwrap();
        let alpha = &rule.head[0];
        assert!(is_r_compatible(
            &Position::whole(Predicate::new("r", 2)),
            &rule,
            alpha
        ));
        assert!(!is_r_compatible(
            &Position::whole(Predicate::new("s", 3)),
            &rule,
            alpha
        ));
    }

    #[test]
    fn argument_positions_require_a_distinguished_variable() {
        // R2 of Example 1: v(Y1, Y2), q(Y2) -> s(Y1, Y3, Y2); Y3 is an
        // existential head variable, so s[2] is NOT compatible, while s[1] and
        // s[3] are.
        let rule = parse_tgd("v(Y1, Y2), q(Y2) -> s(Y1, Y3, Y2)").unwrap();
        let alpha = &rule.head[0];
        let s = Predicate::new("s", 3);
        assert!(is_r_compatible(&Position::argument(s, 0), &rule, alpha));
        assert!(!is_r_compatible(&Position::argument(s, 1), &rule, alpha));
        assert!(is_r_compatible(&Position::argument(s, 2), &rule, alpha));
    }

    #[test]
    fn constant_head_arguments_are_never_compatible_argument_positions() {
        let rule = parse_tgd("p(X) -> r(X, rome)").unwrap();
        let alpha = &rule.head[0];
        let r = Predicate::new("r", 2);
        assert!(is_r_compatible(&Position::argument(r, 0), &rule, alpha));
        assert!(!is_r_compatible(&Position::argument(r, 1), &rule, alpha));
    }
}
