//! The running examples of the paper, as ready-made programs and queries.
//!
//! These constructors are used by the test-suite, the example binaries and
//! the benchmark harness (experiments E1–E4 of DESIGN.md) so that every
//! reproduction refers to a single definition of each example.

use ontorew_model::prelude::*;
use ontorew_model::{parse_program, parse_query};

/// Example 1 (§5) — the SWR set whose position graph is Figure 1:
///
/// ```text
/// R1 : s(y1, y2, y3), t(y4) -> r(y1, y3)
/// R2 : v(y1, y2), q(y2)     -> s(y1, y3, y2)
/// R3 : r(y1, y2)            -> v(y1, y2)
/// ```
pub fn example1() -> TgdProgram {
    parse_program(
        "[R1] s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).\n\
         [R2] v(Y1, Y2), q(Y2) -> s(Y1, Y3, Y2).\n\
         [R3] r(Y1, Y2) -> v(Y1, Y2).",
    )
    .expect("example 1 parses")
}

/// Example 2 (§6) — the non-simple set whose position graph (Figure 2) is
/// misleadingly harmless and whose P-node graph (Figure 3) exposes the
/// dangerous cycle:
///
/// ```text
/// R1 : t(y1, y2), r(y3, y4) -> s(y1, y3, y2)
/// R2 : s(y1, y1, y2)        -> r(y2, y3)
/// ```
pub fn example2() -> TgdProgram {
    parse_program(
        "[R1] t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n\
         [R2] s(Y1, Y1, Y2) -> r(Y2, Y3).",
    )
    .expect("example 2 parses")
}

/// The boolean query `q() :- r("a", x)` used in Example 2 to witness the
/// unbounded rewriting.
pub fn example2_query() -> ConjunctiveQuery {
    parse_query(r#"q() :- r("a", X)"#).expect("example 2 query parses")
}

/// Example 3 (§6) — FO-rewritable but outside Linear, Multilinear, Sticky,
/// Sticky-Join and SWR; the flagship separation example for WR:
///
/// ```text
/// R1 : r(y1, y2)            -> t(y3, y1, y1)
/// R2 : s(y1, y2, y3)        -> r(y1, y2)
/// R3 : u(y1), t(y1, y1, y2) -> s(y1, y1, y2)
/// ```
pub fn example3() -> TgdProgram {
    parse_program(
        "[R1] r(Y1, Y2) -> t(Y3, Y1, Y1).\n\
         [R2] s(Y1, Y2, Y3) -> r(Y1, Y2).\n\
         [R3] u(Y1), t(Y1, Y1, Y2) -> s(Y1, Y1, Y2).",
    )
    .expect("example 3 parses")
}

/// A small DL-Lite style university ontology used by the OBDA examples and
/// the end-to-end benchmarks (this is the kind of "lightweight Description
/// Logic" workload §1 of the paper positions TGDs against).
pub fn university_ontology() -> TgdProgram {
    parse_program(
        "[U1] professor(X) -> faculty(X).\n\
         [U2] lecturer(X) -> faculty(X).\n\
         [U3] faculty(X) -> employee(X).\n\
         [U4] phdStudent(X) -> student(X).\n\
         [U5] student(X) -> person(X).\n\
         [U6] employee(X) -> person(X).\n\
         [U7] professor(X) -> teaches(X, C).\n\
         [U8] teaches(X, C) -> course(C).\n\
         [U9] attends(S, C) -> course(C).\n\
         [U10] attends(S, C) -> student(S).\n\
         [U11] phdStudent(X) -> advisedBy(X, Y).\n\
         [U12] advisedBy(X, Y) -> professor(Y).",
    )
    .expect("university ontology parses")
}

/// A representative query over the university ontology: people who teach a
/// course that someone attends.
pub fn university_query() -> ConjunctiveQuery {
    parse_query("q(T) :- teaches(T, C), attends(S, C)").expect("university query parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::swr::is_swr;
    use crate::wr::{is_wr, WrVerdict};

    #[test]
    fn example1_matches_the_paper_claims() {
        let p = example1();
        assert_eq!(p.len(), 3);
        assert!(p.is_simple());
        assert!(is_swr(&p));
        assert_eq!(is_wr(&p), Some(true));
    }

    #[test]
    fn example2_matches_the_paper_claims() {
        let p = example2();
        assert_eq!(p.len(), 2);
        assert!(!p.is_simple());
        assert!(!is_swr(&p));
        assert_eq!(is_wr(&p), Some(false));
        assert!(example2_query().is_boolean());
    }

    #[test]
    fn example3_matches_the_paper_claims() {
        let p = example3();
        let report = classify(&p);
        assert!(!report.linear && !report.multilinear);
        assert!(!report.sticky && !report.sticky_join);
        assert!(!report.swr.is_swr);
        assert_eq!(report.wr.verdict, WrVerdict::WeaklyRecursive);
    }

    #[test]
    fn university_ontology_is_fo_rewritable() {
        let p = university_ontology();
        let report = classify(&p);
        assert!(report.linear);
        assert!(report.swr.is_swr);
        assert!(report.fo_rewritable());
        assert_eq!(university_query().arity(), 1);
    }
}
