//! The unified classifier: one call, every class, one FO-rewritability
//! verdict.
//!
//! This is the "what do we know about this ontology?" entry point an OBDA
//! system needs before choosing an answering strategy (§7/§8 of the paper):
//! if some FO-rewritable class applies, rewriting is complete and runs in
//! AC0 data complexity; otherwise the system must fall back to
//! materialization or to sound approximations.

use crate::classes;
use crate::swr::{check_swr, SwrReport};
use crate::wr::{check_wr_with, WrReport, WrVerdict};
use crate::PNodeGraphConfig;
use ontorew_chase::is_weakly_acyclic;
use ontorew_model::prelude::*;
use serde::Serialize;

/// Membership in every implemented class, plus the derived verdicts.
#[derive(Clone, Debug, Serialize)]
pub struct ClassificationReport {
    /// Number of rules classified.
    pub rule_count: usize,
    /// Every rule is a simple TGD (§5 restriction).
    pub simple: bool,
    /// Linear: single body atom per rule.
    pub linear: bool,
    /// Multi-linear: every body atom contains all distinguished variables.
    pub multilinear: bool,
    /// Guarded: some body atom contains all body variables.
    pub guarded: bool,
    /// Frontier-guarded: some body atom contains all frontier variables.
    pub frontier_guarded: bool,
    /// Sticky (marking-based test, exact).
    pub sticky: bool,
    /// Sticky-join (marking-based *necessary condition*; advisory only — see
    /// `classes::sticky` — and therefore not counted by
    /// [`ClassificationReport::fo_rewritable`]).
    pub sticky_join: bool,
    /// Domain-restricted: each head atom has all or none of the body variables.
    pub domain_restricted: bool,
    /// Acyclic graph of rule dependencies.
    pub acyclic_grd: bool,
    /// Weakly acyclic (chase terminates on every database).
    pub weakly_acyclic: bool,
    /// Jointly acyclic (chase terminates; strictly generalises weak acyclicity).
    pub jointly_acyclic: bool,
    /// Weakly sticky (PTIME query answering; generalises Sticky and Weak Acyclicity).
    pub weakly_sticky: bool,
    /// Warded (PTIME query answering; generalises Datalog and Linear).
    pub warded: bool,
    /// The SWR report (position graph based).
    pub swr: SwrReport,
    /// The WR report (P-node graph based).
    pub wr: WrReport,
}

impl ClassificationReport {
    /// True when at least one implemented *FO-rewritable* class applies
    /// (Linear, Multilinear, Sticky, Domain-Restricted, acyclic-GRD, SWR, or
    /// WR). The advisory sticky-join flag is deliberately excluded because
    /// the implemented sticky-join test is only a necessary condition.
    pub fn fo_rewritable(&self) -> bool {
        self.linear
            || self.multilinear
            || self.sticky
            || self.domain_restricted
            || self.acyclic_grd
            || self.swr.is_swr
            || self.wr.verdict == WrVerdict::WeaklyRecursive
    }

    /// The three-way outcome of §7 of the paper: known WR (or otherwise
    /// FO-rewritable), known not-WR, or undetermined.
    pub fn fo_rewritability_verdict(&self) -> FoRewritabilityVerdict {
        if self.fo_rewritable() {
            FoRewritabilityVerdict::Rewritable
        } else if self.wr.verdict == WrVerdict::NotWeaklyRecursive {
            FoRewritabilityVerdict::NotKnownRewritable
        } else {
            FoRewritabilityVerdict::Undetermined
        }
    }

    /// True when chase materialization is guaranteed to terminate.
    pub fn chase_terminates(&self) -> bool {
        self.weakly_acyclic || self.jointly_acyclic || self.acyclic_grd
    }

    /// The names of the classes that hold.
    pub fn member_classes(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.linear {
            out.push("Linear");
        }
        if self.multilinear {
            out.push("Multilinear");
        }
        if self.guarded {
            out.push("Guarded");
        }
        if self.frontier_guarded {
            out.push("Frontier-Guarded");
        }
        if self.sticky {
            out.push("Sticky");
        }
        if self.sticky_join {
            out.push("Sticky-Join");
        }
        if self.domain_restricted {
            out.push("Domain-Restricted");
        }
        if self.acyclic_grd {
            out.push("Acyclic-GRD");
        }
        if self.weakly_acyclic {
            out.push("Weakly-Acyclic");
        }
        if self.jointly_acyclic {
            out.push("Jointly-Acyclic");
        }
        if self.weakly_sticky {
            out.push("Weakly-Sticky");
        }
        if self.warded {
            out.push("Warded");
        }
        if self.swr.is_swr {
            out.push("SWR");
        }
        if self.wr.verdict == WrVerdict::WeaklyRecursive {
            out.push("WR");
        }
        out
    }
}

/// The §7 trichotomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum FoRewritabilityVerdict {
    /// Some FO-rewritable class applies: rewriting is a complete strategy.
    Rewritable,
    /// The program is provably outside WR (and the other classes): rewriting
    /// may not terminate; approximation or materialization is needed.
    NotKnownRewritable,
    /// The analysis could not decide within its budget.
    Undetermined,
}

/// Classify a program against every implemented class with the default
/// P-node graph budget.
pub fn classify(program: &TgdProgram) -> ClassificationReport {
    classify_with(program, &PNodeGraphConfig::default())
}

/// Classify a program, controlling the P-node graph budget.
pub fn classify_with(program: &TgdProgram, config: &PNodeGraphConfig) -> ClassificationReport {
    ClassificationReport {
        rule_count: program.len(),
        simple: program.is_simple(),
        linear: classes::is_linear(program),
        multilinear: classes::is_multilinear(program),
        guarded: classes::is_guarded(program),
        frontier_guarded: classes::is_frontier_guarded(program),
        sticky: classes::is_sticky(program),
        sticky_join: classes::is_sticky_join(program),
        domain_restricted: classes::is_domain_restricted(program),
        acyclic_grd: classes::is_acyclic_grd(program),
        weakly_acyclic: is_weakly_acyclic(program),
        jointly_acyclic: classes::is_jointly_acyclic(program),
        weakly_sticky: classes::is_weakly_sticky(program),
        warded: classes::is_warded(program),
        swr: check_swr(program),
        wr: check_wr_with(program, config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::parse_program;

    #[test]
    fn example1_report() {
        let p = parse_program(
            "[R1] s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).\n\
             [R2] v(Y1, Y2), q(Y2) -> s(Y1, Y3, Y2).\n\
             [R3] r(Y1, Y2) -> v(Y1, Y2).",
        )
        .unwrap();
        let report = classify(&p);
        assert!(report.simple);
        assert!(report.swr.is_swr);
        assert_eq!(report.wr.verdict, WrVerdict::WeaklyRecursive);
        assert!(!report.linear);
        assert!(report.fo_rewritable());
        assert_eq!(
            report.fo_rewritability_verdict(),
            FoRewritabilityVerdict::Rewritable
        );
        assert!(report.member_classes().contains(&"SWR"));
    }

    #[test]
    fn example2_report() {
        let p = parse_program(
            "[R1] t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n\
             [R2] s(Y1, Y1, Y2) -> r(Y2, Y3).",
        )
        .unwrap();
        let report = classify(&p);
        assert!(!report.simple);
        assert!(!report.swr.is_swr);
        assert_eq!(report.wr.verdict, WrVerdict::NotWeaklyRecursive);
        assert!(!report.fo_rewritable());
        assert_eq!(
            report.fo_rewritability_verdict(),
            FoRewritabilityVerdict::NotKnownRewritable
        );
        // The chase still terminates on this program (weak acyclicity), so a
        // materialization strategy remains available.
        assert!(report.weakly_acyclic);
        assert!(report.chase_terminates());
    }

    #[test]
    fn example3_report_separates_wr_from_the_other_classes() {
        let p = parse_program(
            "[R1] r(Y1, Y2) -> t(Y3, Y1, Y1).\n\
             [R2] s(Y1, Y2, Y3) -> r(Y1, Y2).\n\
             [R3] u(Y1), t(Y1, Y1, Y2) -> s(Y1, Y1, Y2).",
        )
        .unwrap();
        let report = classify(&p);
        assert!(!report.linear);
        assert!(!report.multilinear);
        assert!(!report.sticky);
        assert!(!report.sticky_join);
        assert!(!report.swr.is_swr);
        assert_eq!(report.wr.verdict, WrVerdict::WeaklyRecursive);
        assert!(report.fo_rewritable());
        let members = report.member_classes();
        assert!(members.contains(&"WR"));
        assert!(!members.contains(&"SWR"));
    }

    #[test]
    fn dl_lite_style_ontology_is_in_many_classes() {
        let p = parse_program(
            "[R1] student(X) -> person(X).\n\
             [R2] person(X) -> hasParent(X, Y).\n\
             [R3] hasParent(X, Y) -> person(Y).",
        )
        .unwrap();
        let report = classify(&p);
        assert!(report.linear);
        assert!(report.multilinear);
        assert!(report.guarded);
        assert!(report.sticky);
        assert!(report.swr.is_swr);
        assert_eq!(report.wr.verdict, WrVerdict::WeaklyRecursive);
        // It is not weakly acyclic (infinite ancestor chain) — rewriting is
        // the only complete strategy.
        assert!(!report.weakly_acyclic);
        assert!(!report.chase_terminates());
    }
}
