//! DL-Lite style ontologies as TGDs.
//!
//! §1 of the paper positions TGD-based languages against the *DL-Lite* family
//! of lightweight Description Logics, and §6 reports that the WR class "allows
//! for the identification of new FO-rewritable Description Logic languages".
//! This module provides the bridge used by the examples and experiments: a
//! small abstract syntax for DL-Lite_R-style axioms (concept and role
//! inclusions over atomic concepts, atomic roles, inverse roles and
//! existential restrictions) and its standard translation into TGDs.
//!
//! The translation always produces *simple* TGDs with at most two variables,
//! so every translated ontology is Linear — and therefore SWR and WR, which
//! is exactly the subsumption the paper claims for the DL-Lite fragment.

use crate::classify::{classify, ClassificationReport};
use ontorew_model::prelude::*;

/// A basic concept of DL-Lite: an atomic concept `A`, an unqualified
/// existential restriction `∃R` or `∃R⁻`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Concept {
    /// An atomic concept (unary predicate).
    Atomic(String),
    /// `∃R`: things with some `R`-successor.
    Exists(String),
    /// `∃R⁻`: things with some `R`-predecessor.
    ExistsInverse(String),
}

/// A basic role: an atomic role `R` or its inverse `R⁻`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Role {
    /// An atomic role (binary predicate).
    Atomic(String),
    /// The inverse of an atomic role.
    Inverse(String),
}

/// A DL-Lite axiom (only the positive inclusions, which are what TGDs can
/// express; negative inclusions/disjointness are denial constraints and out of
/// scope for query answering by rewriting).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DlLiteAxiom {
    /// Concept inclusion `C1 ⊑ C2`.
    ConceptInclusion(Concept, Concept),
    /// Role inclusion `R1 ⊑ R2`.
    RoleInclusion(Role, Role),
}

/// A DL-Lite TBox: a finite set of positive inclusion axioms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DlLiteOntology {
    /// The axioms.
    pub axioms: Vec<DlLiteAxiom>,
}

impl DlLiteOntology {
    /// An empty ontology.
    pub fn new() -> Self {
        DlLiteOntology::default()
    }

    /// Add `A ⊑ B` for atomic concepts.
    pub fn subclass(mut self, sub: &str, sup: &str) -> Self {
        self.axioms.push(DlLiteAxiom::ConceptInclusion(
            Concept::Atomic(sub.into()),
            Concept::Atomic(sup.into()),
        ));
        self
    }

    /// Add `A ⊑ ∃R` (every `A` has an `R`-successor).
    pub fn mandatory_role(mut self, sub: &str, role: &str) -> Self {
        self.axioms.push(DlLiteAxiom::ConceptInclusion(
            Concept::Atomic(sub.into()),
            Concept::Exists(role.into()),
        ));
        self
    }

    /// Add `∃R ⊑ A` (domain typing) .
    pub fn domain(mut self, role: &str, concept: &str) -> Self {
        self.axioms.push(DlLiteAxiom::ConceptInclusion(
            Concept::Exists(role.into()),
            Concept::Atomic(concept.into()),
        ));
        self
    }

    /// Add `∃R⁻ ⊑ A` (range typing).
    pub fn range(mut self, role: &str, concept: &str) -> Self {
        self.axioms.push(DlLiteAxiom::ConceptInclusion(
            Concept::ExistsInverse(role.into()),
            Concept::Atomic(concept.into()),
        ));
        self
    }

    /// Add a role inclusion `R ⊑ S`.
    pub fn subrole(mut self, sub: &str, sup: &str) -> Self {
        self.axioms.push(DlLiteAxiom::RoleInclusion(
            Role::Atomic(sub.into()),
            Role::Atomic(sup.into()),
        ));
        self
    }

    /// Add an inverse-role inclusion `R⁻ ⊑ S`.
    pub fn inverse_subrole(mut self, sub: &str, sup: &str) -> Self {
        self.axioms.push(DlLiteAxiom::RoleInclusion(
            Role::Inverse(sub.into()),
            Role::Atomic(sup.into()),
        ));
        self
    }

    /// Number of axioms.
    pub fn len(&self) -> usize {
        self.axioms.len()
    }

    /// True if there are no axioms.
    pub fn is_empty(&self) -> bool {
        self.axioms.is_empty()
    }

    /// Translate the TBox into an equivalent set of TGDs.
    pub fn to_tgds(&self) -> TgdProgram {
        let x = || Term::variable("X");
        let y = || Term::variable("Y");
        let z = || Term::variable("Z");

        // Body atom for a basic concept over variable X (Y is the auxiliary
        // variable for existentials on the body side, where it is a normal
        // existential body variable).
        let concept_body = |c: &Concept| -> Atom {
            match c {
                Concept::Atomic(a) => Atom::new(a, vec![x()]),
                Concept::Exists(r) => Atom::new(r, vec![x(), y()]),
                Concept::ExistsInverse(r) => Atom::new(r, vec![y(), x()]),
            }
        };
        // Head atom for a basic concept over variable X (Z is the auxiliary
        // variable, which becomes an existential head variable).
        let concept_head = |c: &Concept| -> Atom {
            match c {
                Concept::Atomic(a) => Atom::new(a, vec![x()]),
                Concept::Exists(r) => Atom::new(r, vec![x(), z()]),
                Concept::ExistsInverse(r) => Atom::new(r, vec![z(), x()]),
            }
        };
        let role_atom = |r: &Role, first: Term, second: Term| -> Atom {
            match r {
                Role::Atomic(name) => Atom::new(name, vec![first, second]),
                Role::Inverse(name) => Atom::new(name, vec![second, first]),
            }
        };

        let mut rules = Vec::with_capacity(self.axioms.len());
        for (i, axiom) in self.axioms.iter().enumerate() {
            let rule = match axiom {
                DlLiteAxiom::ConceptInclusion(sub, sup) => Tgd::labelled(
                    &format!("DL{i}"),
                    vec![concept_body(sub)],
                    vec![concept_head(sup)],
                ),
                DlLiteAxiom::RoleInclusion(sub, sup) => Tgd::labelled(
                    &format!("DL{i}"),
                    vec![role_atom(sub, x(), y())],
                    vec![role_atom(sup, x(), y())],
                ),
            };
            rules.push(rule);
        }
        TgdProgram::from_rules(rules)
    }

    /// Translate and classify in one step.
    pub fn classify(&self) -> ClassificationReport {
        classify(&self.to_tgds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swr::is_swr;
    use crate::wr::{is_wr, WrVerdict};

    fn sample() -> DlLiteOntology {
        DlLiteOntology::new()
            .subclass("professor", "faculty")
            .subclass("faculty", "employee")
            .mandatory_role("professor", "teaches")
            .domain("teaches", "faculty")
            .range("teaches", "course")
            .subrole("lectures", "teaches")
            .inverse_subrole("taughtBy", "teaches")
    }

    #[test]
    fn translation_produces_one_simple_tgd_per_axiom() {
        let ontology = sample();
        let program = ontology.to_tgds();
        assert_eq!(program.len(), ontology.len());
        assert!(program.is_simple());
        assert!(program.iter().all(|r| r.body.len() == 1));
    }

    #[test]
    fn existential_axioms_translate_to_existential_heads() {
        let program = DlLiteOntology::new()
            .mandatory_role("professor", "teaches")
            .to_tgds();
        let rule = &program.rules()[0];
        assert_eq!(rule.existential_head_variables().len(), 1);
    }

    #[test]
    fn inverse_roles_swap_argument_positions() {
        let program = DlLiteOntology::new()
            .range("teaches", "course")
            .inverse_subrole("taughtBy", "teaches")
            .to_tgds();
        // range: teaches(Y, X) -> course(X)
        let range_rule = &program.rules()[0];
        assert_eq!(range_rule.body[0].terms[1], Term::variable("X"));
        assert_eq!(range_rule.head[0].terms[0], Term::variable("X"));
        // inverse subrole: taughtBy(Y, X) -> teaches(X, Y)
        let inv_rule = &program.rules()[1];
        assert_eq!(inv_rule.body[0].predicate.name_str(), "taughtBy");
        assert_eq!(inv_rule.head[0].terms[0], inv_rule.body[0].terms[1]);
    }

    #[test]
    fn dl_lite_ontologies_are_linear_swr_and_wr() {
        let report = sample().classify();
        assert!(report.linear);
        assert!(report.swr.is_swr);
        assert_eq!(report.wr.verdict, WrVerdict::WeaklyRecursive);
        assert!(report.fo_rewritable());
        let program = sample().to_tgds();
        assert!(is_swr(&program));
        assert_eq!(is_wr(&program), Some(true));
    }

    #[test]
    fn rewriting_over_a_translated_tbox_terminates_and_answers() {
        let program = sample().to_tgds();
        let query = ontorew_model::parse_query("q(X) :- employee(X)").unwrap();
        let rewriting =
            ontorew_rewrite::rewrite(&program, &query, &ontorew_rewrite::RewriteConfig::default());
        assert!(rewriting.complete);
        // employee ∨ faculty ∨ professor ∨ ∃teaches-domain chains.
        assert!(rewriting.ucq.len() >= 3);

        let mut data = Instance::new();
        data.insert_fact("professor", &["ada"]);
        data.insert_fact("lectures", &["grace", "db201"]);
        let store = ontorew_storage::RelationalStore::from_instance(&data);
        let answers = ontorew_storage::evaluate_ucq(&store, &rewriting.ucq);
        // ada via professor ⊑ faculty ⊑ employee; grace via lectures ⊑ teaches,
        // ∃teaches ⊑ faculty ⊑ employee.
        assert!(answers.contains_constants(&["ada"]));
        assert!(answers.contains_constants(&["grace"]));
    }

    #[test]
    fn empty_ontology_translates_to_empty_program() {
        let ontology = DlLiteOntology::new();
        assert!(ontology.is_empty());
        assert!(ontology.to_tgds().is_empty());
    }
}
