//! Graphviz (DOT) rendering of the position graph and the P-node graph.
//!
//! `dot -Tpdf` on these outputs regenerates Figures 1, 2 and 3 of the paper
//! (see the `classify_ontology` example and the figure benches).

use crate::pnode::{PEdgeLabel, PNodeGraph};
use crate::position_graph::{PositionEdgeLabel, PositionGraph};
use std::fmt::Write as _;

/// Render a position graph as a DOT digraph.
pub fn position_graph_to_dot(graph: &PositionGraph, name: &str) -> String {
    let mut out = String::new();
    writeln!(out, "digraph \"{name}\" {{").unwrap();
    writeln!(out, "  rankdir=LR;").unwrap();
    writeln!(out, "  node [shape=plaintext, fontname=\"Helvetica\"];").unwrap();
    for node in graph.nodes() {
        writeln!(out, "  \"{node}\";").unwrap();
    }
    for (from, to, labels) in graph.edges() {
        let mut rendered: Vec<&str> = Vec::new();
        if labels.contains(&PositionEdgeLabel::Missing) {
            rendered.push("m");
        }
        if labels.contains(&PositionEdgeLabel::Splitting) {
            rendered.push("s");
        }
        writeln!(
            out,
            "  \"{from}\" -> \"{to}\" [label=\"{}\"];",
            rendered.join(",")
        )
        .unwrap();
    }
    writeln!(out, "}}").unwrap();
    out
}

/// Render a P-node graph as a DOT digraph (nodes show the distinguished
/// P-atom; the full context is attached as a tooltip).
pub fn pnode_graph_to_dot(graph: &PNodeGraph, name: &str) -> String {
    let mut out = String::new();
    writeln!(out, "digraph \"{name}\" {{").unwrap();
    writeln!(out, "  rankdir=LR;").unwrap();
    writeln!(out, "  node [shape=box, fontname=\"Helvetica\"];").unwrap();
    for node in graph.nodes() {
        writeln!(
            out,
            "  \"{}\" [tooltip=\"{}\"];",
            node.atom,
            node.to_string().replace('"', "'")
        )
        .unwrap();
    }
    for (from, to, labels) in graph.edges() {
        let mut rendered: Vec<&str> = Vec::new();
        if labels.contains(&PEdgeLabel::Decreasing) {
            rendered.push("d");
        }
        if labels.contains(&PEdgeLabel::Missing) {
            rendered.push("m");
        }
        if labels.contains(&PEdgeLabel::Splitting) {
            rendered.push("s");
        }
        if labels.contains(&PEdgeLabel::Isolated) {
            rendered.push("i");
        }
        writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{}\"];",
            from.atom,
            to.atom,
            rendered.join(",")
        )
        .unwrap();
    }
    writeln!(out, "}}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{example1, example2};
    use crate::pnode::PNodeGraphConfig;

    #[test]
    fn figure1_dot_contains_its_nodes_and_labels() {
        let g = PositionGraph::build(&example1());
        let dot = position_graph_to_dot(&g, "figure1");
        assert!(dot.starts_with("digraph \"figure1\""));
        assert!(dot.contains("\"r[ ]\""));
        assert!(dot.contains("\"s[2]\""));
        assert!(dot.contains("label=\"m\""));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn figure3_dot_contains_the_dangerous_labels() {
        let g = PNodeGraph::build(&example2(), &PNodeGraphConfig::default());
        let dot = pnode_graph_to_dot(&g, "figure3");
        assert!(dot.contains("s(z, z, x1)"));
        assert!(dot.contains("d,m,s"));
    }

    #[test]
    fn dot_output_is_parseable_shape() {
        // Minimal well-formedness: balanced braces and one edge per arrow.
        let g = PositionGraph::build(&example1());
        let dot = position_graph_to_dot(&g, "check");
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        assert_eq!(dot.matches(" -> ").count(), g.edge_count());
    }
}
