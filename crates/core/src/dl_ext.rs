//! Beyond DL-Lite: richer Description Logic axioms as TGDs.
//!
//! §6 of the paper closes with the observation that the WR class "allows for
//! the identification of new FO-rewritable Description Logic languages" —
//! languages whose axioms fall outside DL-Lite (and outside Linear TGDs) but
//! whose TGD translations are still classified as SWR or WR, hence still
//! admit AC0 query answering by rewriting.
//!
//! This module provides that experimental bridge. On top of the DL-Lite
//! constructs of [`crate::dl_lite`] it adds:
//!
//! * **qualified existential restrictions** on both sides of an inclusion
//!   (`A ⊑ ∃R.B`, `∃R.B ⊑ A`) — the right-hand form needs a two-atom head,
//!   the left-hand form a two-atom body, so neither is expressible in
//!   DL-Lite_R nor by a Linear TGD;
//! * **role chains** (`R ∘ S ⊑ T`), the RIA construct of more expressive DLs;
//! * **symmetric** and **transitive** role declarations.
//!
//! Each axiom translates to one TGD; [`ExtendedOntology::classify`] then runs
//! the full classification report, so a modeller can see which combinations
//! of these constructs keep FO-rewritability (e.g. qualified existentials
//! usually do; transitivity never does).

use crate::classify::{classify, ClassificationReport};
use crate::dl_lite::Role;
use ontorew_model::prelude::*;

/// A (possibly qualified) concept of the extended language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExtendedConcept {
    /// An atomic concept (unary predicate).
    Atomic(String),
    /// `∃R.C`: things with an `R`-successor in `C`. Use
    /// [`ExtendedConcept::exists`] for the unqualified form `∃R` (i.e.
    /// `∃R.⊤`).
    QualifiedExists(Role, Box<ExtendedConcept>),
    /// `⊤`, the universal concept (only meaningful as a qualifier).
    Top,
}

impl ExtendedConcept {
    /// An atomic concept.
    pub fn atomic(name: &str) -> Self {
        ExtendedConcept::Atomic(name.into())
    }

    /// The unqualified existential `∃R`.
    pub fn exists(role: &str) -> Self {
        ExtendedConcept::QualifiedExists(Role::Atomic(role.into()), Box::new(ExtendedConcept::Top))
    }

    /// The qualified existential `∃R.C` over an atomic filler.
    pub fn some(role: &str, filler: &str) -> Self {
        ExtendedConcept::QualifiedExists(
            Role::Atomic(role.into()),
            Box::new(ExtendedConcept::Atomic(filler.into())),
        )
    }

    /// The qualified existential over an inverse role, `∃R⁻.C`.
    pub fn some_inverse(role: &str, filler: &str) -> Self {
        ExtendedConcept::QualifiedExists(
            Role::Inverse(role.into()),
            Box::new(ExtendedConcept::Atomic(filler.into())),
        )
    }
}

/// An axiom of the extended language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExtendedAxiom {
    /// Concept inclusion `C ⊑ D`.
    ConceptInclusion(ExtendedConcept, ExtendedConcept),
    /// Role inclusion `R ⊑ S`.
    RoleInclusion(Role, Role),
    /// Role chain `R1 ∘ R2 ⊑ S`.
    RoleChain(Role, Role, Role),
    /// `R` is symmetric (`R ⊑ R⁻`).
    SymmetricRole(String),
    /// `R` is transitive (`R ∘ R ⊑ R`).
    TransitiveRole(String),
}

/// A TBox in the extended language.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExtendedOntology {
    /// The axioms.
    pub axioms: Vec<ExtendedAxiom>,
}

impl ExtendedOntology {
    /// An empty ontology.
    pub fn new() -> Self {
        ExtendedOntology::default()
    }

    /// Add a concept inclusion `sub ⊑ sup`.
    pub fn include(mut self, sub: ExtendedConcept, sup: ExtendedConcept) -> Self {
        self.axioms.push(ExtendedAxiom::ConceptInclusion(sub, sup));
        self
    }

    /// Add `A ⊑ B` for atomic concepts.
    pub fn subclass(self, sub: &str, sup: &str) -> Self {
        self.include(ExtendedConcept::atomic(sub), ExtendedConcept::atomic(sup))
    }

    /// Add `A ⊑ ∃R.B` (qualified mandatory participation).
    pub fn some_values(self, sub: &str, role: &str, filler: &str) -> Self {
        self.include(
            ExtendedConcept::atomic(sub),
            ExtendedConcept::some(role, filler),
        )
    }

    /// Add `∃R.B ⊑ A` (qualified domain restriction).
    pub fn some_values_domain(self, role: &str, filler: &str, sup: &str) -> Self {
        self.include(
            ExtendedConcept::some(role, filler),
            ExtendedConcept::atomic(sup),
        )
    }

    /// Add a role inclusion `R ⊑ S`.
    pub fn subrole(mut self, sub: &str, sup: &str) -> Self {
        self.axioms.push(ExtendedAxiom::RoleInclusion(
            Role::Atomic(sub.into()),
            Role::Atomic(sup.into()),
        ));
        self
    }

    /// Add a role chain `R ∘ S ⊑ T`.
    pub fn role_chain(mut self, first: &str, second: &str, sup: &str) -> Self {
        self.axioms.push(ExtendedAxiom::RoleChain(
            Role::Atomic(first.into()),
            Role::Atomic(second.into()),
            Role::Atomic(sup.into()),
        ));
        self
    }

    /// Declare `R` symmetric.
    pub fn symmetric(mut self, role: &str) -> Self {
        self.axioms.push(ExtendedAxiom::SymmetricRole(role.into()));
        self
    }

    /// Declare `R` transitive.
    pub fn transitive(mut self, role: &str) -> Self {
        self.axioms.push(ExtendedAxiom::TransitiveRole(role.into()));
        self
    }

    /// Number of axioms.
    pub fn len(&self) -> usize {
        self.axioms.len()
    }

    /// True if there are no axioms.
    pub fn is_empty(&self) -> bool {
        self.axioms.is_empty()
    }

    /// Translate the TBox into TGDs (one rule per axiom).
    pub fn to_tgds(&self) -> TgdProgram {
        let x = || Term::variable("X");
        let y = || Term::variable("Y");
        let z = || Term::variable("Z");
        let role_atom = |r: &Role, first: Term, second: Term| -> Atom {
            match r {
                Role::Atomic(name) => Atom::new(name, vec![first, second]),
                Role::Inverse(name) => Atom::new(name, vec![second, first]),
            }
        };

        // Atoms describing membership of `var` in a concept, on the body side
        // (auxiliary variable: Y, an existential body variable) and on the
        // head side (auxiliary variable: Z, an existential head variable).
        let concept_atoms = |c: &ExtendedConcept, var: Term, aux: Term| -> Vec<Atom> {
            match c {
                ExtendedConcept::Atomic(a) => vec![Atom::new(a, vec![var])],
                ExtendedConcept::Top => vec![],
                ExtendedConcept::QualifiedExists(role, filler) => {
                    let mut atoms = vec![role_atom(role, var, aux)];
                    match filler.as_ref() {
                        ExtendedConcept::Top => {}
                        ExtendedConcept::Atomic(b) => atoms.push(Atom::new(b, vec![aux])),
                        nested @ ExtendedConcept::QualifiedExists(..) => {
                            // One level of nesting is supported by reusing the
                            // same auxiliary variable chain (W).
                            let w = Term::variable("W");
                            atoms.extend(concept_atoms_inner(nested, aux, w, &role_atom));
                        }
                    }
                    atoms
                }
            }
        };

        let mut rules = Vec::with_capacity(self.axioms.len());
        for (i, axiom) in self.axioms.iter().enumerate() {
            let label = format!("DX{i}");
            let rule = match axiom {
                ExtendedAxiom::ConceptInclusion(sub, sup) => {
                    let body = concept_atoms(sub, x(), y());
                    let head = concept_atoms(sup, x(), z());
                    if body.is_empty() || head.is_empty() {
                        // ⊤ on its own carries no information; skip.
                        continue;
                    }
                    Tgd::labelled(&label, body, head)
                }
                ExtendedAxiom::RoleInclusion(sub, sup) => Tgd::labelled(
                    &label,
                    vec![role_atom(sub, x(), y())],
                    vec![role_atom(sup, x(), y())],
                ),
                ExtendedAxiom::RoleChain(first, second, sup) => Tgd::labelled(
                    &label,
                    vec![role_atom(first, x(), y()), role_atom(second, y(), z())],
                    vec![role_atom(sup, x(), z())],
                ),
                ExtendedAxiom::SymmetricRole(role) => Tgd::labelled(
                    &label,
                    vec![Atom::new(role, vec![x(), y()])],
                    vec![Atom::new(role, vec![y(), x()])],
                ),
                ExtendedAxiom::TransitiveRole(role) => Tgd::labelled(
                    &label,
                    vec![
                        Atom::new(role, vec![x(), y()]),
                        Atom::new(role, vec![y(), z()]),
                    ],
                    vec![Atom::new(role, vec![x(), z()])],
                ),
            };
            rules.push(rule);
        }
        TgdProgram::from_rules(rules)
    }

    /// Translate and classify in one step.
    pub fn classify(&self) -> ClassificationReport {
        classify(&self.to_tgds())
    }
}

// Helper for one level of nested qualified existentials (kept outside the
// closure to avoid a recursive closure).
fn concept_atoms_inner(
    c: &ExtendedConcept,
    var: Term,
    aux: Term,
    role_atom: &dyn Fn(&Role, Term, Term) -> Atom,
) -> Vec<Atom> {
    match c {
        ExtendedConcept::Atomic(a) => vec![Atom::new(a, vec![var])],
        ExtendedConcept::Top => vec![],
        ExtendedConcept::QualifiedExists(role, filler) => {
            let mut atoms = vec![role_atom(role, var, aux)];
            match filler.as_ref() {
                ExtendedConcept::Top => {}
                ExtendedConcept::Atomic(b) => atoms.push(Atom::new(b, vec![aux])),
                ExtendedConcept::QualifiedExists(..) => {
                    // Deeper nesting is flattened away: the filler is treated
                    // as ⊤. Documented limitation — introduce a fresh atomic
                    // concept to model deeper qualifications exactly.
                }
            }
            atoms
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example: a research-group ontology that uses qualified
    /// existentials and a role chain — none of it expressible in DL-Lite_R —
    /// yet whose translation is FO-rewritable.
    fn research_group() -> ExtendedOntology {
        ExtendedOntology::new()
            .subclass("phdStudent", "researcher")
            // Every researcher is a member of some group (unqualified).
            .include(
                ExtendedConcept::atomic("researcher"),
                ExtendedConcept::exists("memberOf"),
            )
            // Every PhD student has an advisor who is a professor (qualified).
            .some_values("phdStudent", "advisedBy", "professor")
            // Anyone supervising a PhD student is a supervisor (qualified LHS).
            .some_values_domain("advises", "phdStudent", "supervisor")
            .subrole("advises", "knows")
    }

    #[test]
    fn translation_produces_one_rule_per_informative_axiom() {
        let onto = research_group();
        let program = onto.to_tgds();
        assert_eq!(program.len(), onto.len());
    }

    #[test]
    fn qualified_existential_head_has_two_atoms() {
        let program = ExtendedOntology::new()
            .some_values("phdStudent", "advisedBy", "professor")
            .to_tgds();
        let rule = &program.rules()[0];
        assert_eq!(rule.head.len(), 2);
        assert_eq!(rule.existential_head_variables().len(), 1);
        // The invented advisor is shared between the role atom and the
        // professor atom, so splitting the head would change the semantics.
        assert_eq!(rule.split_head().len(), 1);
    }

    #[test]
    fn qualified_existential_body_is_not_linear_but_still_fo_rewritable() {
        let onto = ExtendedOntology::new()
            .some_values_domain("advises", "phdStudent", "supervisor")
            .subclass("supervisor", "staff");
        let report = onto.classify();
        assert!(!report.linear);
        assert!(report.fo_rewritable(), "report: {report:?}");
    }

    #[test]
    fn research_group_is_a_new_fo_rewritable_dl() {
        // Outside DL-Lite (qualified existentials), outside Linear, yet the
        // graph-based analysis certifies FO-rewritability — the §6 claim.
        let report = research_group().classify();
        assert!(!report.linear);
        assert!(report.fo_rewritable(), "report: {report:?}");
    }

    #[test]
    fn transitive_roles_are_not_fo_rewritable() {
        let report = ExtendedOntology::new()
            .transitive("partOf")
            .subclass("wheel", "component")
            .classify();
        // Transitivity is the textbook non-FO-rewritable construct: the
        // classifier must not certify it.
        assert!(!report.fo_rewritable(), "report: {report:?}");
    }

    #[test]
    fn symmetric_roles_are_fo_rewritable() {
        let report = ExtendedOntology::new()
            .symmetric("marriedTo")
            .subclass("spouse", "person")
            .classify();
        assert!(report.fo_rewritable(), "report: {report:?}");
    }

    #[test]
    fn role_chains_translate_to_join_bodies() {
        let program = ExtendedOntology::new()
            .role_chain("hasParent", "hasBrother", "hasUncle")
            .to_tgds();
        let rule = &program.rules()[0];
        assert_eq!(rule.body.len(), 2);
        assert_eq!(rule.head.len(), 1);
        assert!(rule.is_full());
    }

    #[test]
    fn answering_over_the_research_group_ontology() {
        use ontorew_model::parse_query;
        let program = research_group().to_tgds();
        let query = parse_query("q(X) :- knows(X, Y)").unwrap();
        let rewriting =
            ontorew_rewrite::rewrite(&program, &query, &ontorew_rewrite::RewriteConfig::default());
        // The ontology has a rule whose head atoms share an existential
        // variable (advisedBy(X, Z), professor(Z)); the engine reports such
        // rewritings as incomplete because joins across the two head atoms
        // cannot be resolved by single-head piece steps. The UCQ is still a
        // sound under-approximation, which is all this test needs.
        assert!(!rewriting.complete);

        let mut data = Instance::new();
        data.insert_fact("advises", &["rossi", "dana"]);
        let store = ontorew_storage::RelationalStore::from_instance(&data);
        let answers = ontorew_storage::evaluate_ucq(&store, &rewriting.ucq);
        // rossi knows dana because advises ⊑ knows.
        assert!(answers.contains_constants(&["rossi"]));
    }

    #[test]
    fn top_only_axioms_are_dropped() {
        let onto = ExtendedOntology::new().include(ExtendedConcept::Top, ExtendedConcept::Top);
        assert_eq!(onto.len(), 1);
        assert!(onto.to_tgds().is_empty());
    }

    #[test]
    fn nested_qualified_existentials_translate_one_level() {
        // student ⊑ ∃attends.(∃taughtBy.professor): the nested level is kept.
        let onto = ExtendedOntology::new().include(
            ExtendedConcept::atomic("student"),
            ExtendedConcept::QualifiedExists(
                Role::Atomic("attends".into()),
                Box::new(ExtendedConcept::some("taughtBy", "professor")),
            ),
        );
        let program = onto.to_tgds();
        let rule = &program.rules()[0];
        // attends(X, Z), taughtBy(Z, W), professor(W)
        assert_eq!(rule.head.len(), 3);
        assert_eq!(rule.existential_head_variables().len(), 2);
    }
}
