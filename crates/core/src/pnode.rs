//! P-atoms, P-nodes and the P-node graph (Definitions 6–8 of the paper).
//!
//! The position graph abstracts the atoms of a rewriting by single positions,
//! which is too coarse once rules may contain constants and repeated
//! variables (Example 2). The P-node graph refines it:
//!
//! * a **P-atom** (Def. 6) is an atom over the finite alphabet
//!   `X_P = {z, x1, ..., xk}` plus the constants of `P`, where the reserved
//!   variable `z` marks the occurrence(s) of the *tracked* existential
//!   variable introduced by a rewriting step, and the `xi` are generic
//!   variables (equalities between positions are preserved by reusing the
//!   same `xi`);
//! * a **P-node** (Def. 7) is a pair `⟨σ, Σ⟩` with `σ ∈ Σ`: the atom `σ`
//!   together with its *context* — the set of atoms produced by the same
//!   rule application, which determines whether its variables are bounded;
//! * the **P-node graph** has an edge `⟨σ, Σ⟩ → ⟨σ′, Σ′⟩` whenever a
//!   rewriting step using some TGD `R ∈ P` can transform `σ` (in context `Σ`)
//!   into `σ′` (in context `Σ′`), labelled with a subset of `{s, m, d, i}`;
//! * `P` is **WR** (Def. 8) iff the graph has no cycle containing a d-edge,
//!   an m-edge and an s-edge while containing no i-edge.
//!
//! The paper leaves the full definition of the edge relation to an
//! unpublished manuscript; the construction implemented here is the
//! interpretation documented in DESIGN.md. Its acceptance criteria are that
//! it reproduces Figure 3 (the dangerous `d,m,s` cycle of Example 2 through
//! the nodes `s(z, z, x1)` and `r(z, x2)`) and classifies the paper's three
//! examples exactly as stated: Examples 1 and 3 are WR, Example 2 is not.
//!
//! ## Edge labels
//!
//! For a step that unifies `σ` with the head atom `α` of `R` via `u` and
//! produces the body image `u(body(R))`:
//!
//! * **s** ("splitting") — the tracked existential variable ends up in two
//!   different body atoms: either the `z` of `σ` propagates into ≥ 2 atoms of
//!   `u(body(R))`, or some existential body variable of `R` occurs in ≥ 2
//!   body atoms;
//! * **m** ("missing") — some distinguished variable of `R` does not occur in
//!   the body atom the edge points into;
//! * **d** ("decreasing") — the number of *bounded* argument positions of the
//!   target atom (in its new context) is strictly smaller than that of `σ`
//!   (in `Σ`); a position is bounded when it holds a constant or a variable
//!   with at least two occurrences across its context. The label also fires
//!   when the step introduces a fresh existential *join* variable of `R` (an
//!   existential body variable occurring in two or more body atoms) into the
//!   target atom: such a variable is only "bounded" by sibling atoms that
//!   themselves still have to be resolved, so the number of *independently*
//!   bounded arguments decreases — this is exactly the unbounded-chain
//!   generator of transitive-closure-like rules;
//! * **i** ("isolated") — the body atom the edge points into contains no
//!   distinguished variable of `R` and shares no variable with the other body
//!   atoms of `R`.

use crate::cycles::LabeledGraph;
use ontorew_model::prelude::*;
use ontorew_unify::unify_atoms;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Edge labels of the P-node graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum PEdgeLabel {
    /// `s`: the tracked existential variable is split over two body atoms.
    Splitting,
    /// `m`: a distinguished variable of the rule is missing from the target atom.
    Missing,
    /// `d`: the number of bounded argument positions decreases.
    Decreasing,
    /// `i`: the target atom is isolated inside the rule body.
    Isolated,
}

/// The reserved tracked-existential variable `z`.
fn z_variable() -> Variable {
    Variable::new("z")
}

/// A P-node `⟨σ, Σ⟩` in canonical form.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PNode {
    /// The distinguished P-atom `σ`.
    pub atom: Atom,
    /// The context `Σ` (always contains `σ`), kept sorted.
    pub context: Vec<Atom>,
}

impl PNode {
    /// Build and canonicalise a P-node from an atom and its context.
    pub fn new(atom: Atom, mut context: Vec<Atom>) -> Self {
        if !context.contains(&atom) {
            context.push(atom.clone());
        }
        PNode { atom, context }.canonicalize()
    }

    /// A root node: a generic atom over `predicate` with pairwise-distinct
    /// generic variables, in a singleton context.
    pub fn generic(predicate: Predicate) -> Self {
        let atom = Atom::from_predicate(
            predicate,
            (0..predicate.arity)
                .map(|i| Term::variable(&format!("x{}", i + 1)))
                .collect(),
        );
        PNode::new(atom.clone(), vec![atom])
    }

    /// Rename every non-`z` variable to `x1, x2, ...` deterministically (the
    /// atom's variables first, then the context's) and sort the context.
    fn canonicalize(mut self) -> Self {
        for _ in 0..3 {
            let renamed = self.rename_in_order();
            let mut context = renamed.context.clone();
            context.sort();
            context.dedup();
            let next = PNode {
                atom: renamed.atom,
                context,
            };
            if next == self {
                break;
            }
            self = next;
        }
        self
    }

    fn rename_in_order(&self) -> PNode {
        let z = z_variable();
        let mut mapping: BTreeMap<Variable, Term> = BTreeMap::new();
        let mut counter = 0usize;
        let visit = |t: &Term, mapping: &mut BTreeMap<Variable, Term>, counter: &mut usize| {
            if let Term::Variable(v) = t {
                if *v != z && !mapping.contains_key(v) {
                    *counter += 1;
                    mapping.insert(*v, Term::variable(&format!("x{counter}")));
                }
            }
        };
        for t in &self.atom.terms {
            visit(t, &mut mapping, &mut counter);
        }
        for a in &self.context {
            for t in &a.terms {
                visit(t, &mut mapping, &mut counter);
            }
        }
        let subst = Substitution::from_bindings(mapping);
        PNode {
            atom: subst.apply_atom(&self.atom),
            context: self.context.iter().map(|a| subst.apply_atom(a)).collect(),
        }
    }

    /// Number of occurrences of each variable across the whole context
    /// (counting repetitions inside an atom).
    fn occurrence_counts(&self) -> BTreeMap<Variable, usize> {
        let mut counts: BTreeMap<Variable, usize> = BTreeMap::new();
        for a in &self.context {
            for t in &a.terms {
                if let Term::Variable(v) = t {
                    *counts.entry(*v).or_insert(0) += 1;
                }
            }
        }
        counts
    }

    /// True if `v` is bounded in this node: it occurs at least twice across
    /// the context.
    pub fn is_bounded(&self, v: Variable) -> bool {
        self.occurrence_counts().get(&v).copied().unwrap_or(0) >= 2
    }

    /// Number of bounded argument positions of `σ`: positions holding a
    /// constant or a bounded variable.
    pub fn bounded_argument_count(&self) -> usize {
        let counts = self.occurrence_counts();
        self.atom
            .terms
            .iter()
            .filter(|t| match t {
                Term::Variable(v) => counts.get(v).copied().unwrap_or(0) >= 2,
                _ => true,
            })
            .count()
    }

    /// True if the tracked variable `z` occurs in `σ`.
    pub fn tracks_existential(&self) -> bool {
        self.atom.variable_set().contains(&z_variable())
    }
}

impl fmt::Display for PNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{} | {{", self.atom)?;
        for (i, a) in self.context.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}>")
    }
}

impl fmt::Debug for PNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Configuration for the P-node graph construction.
#[derive(Clone, Copy, Debug)]
pub struct PNodeGraphConfig {
    /// Maximum number of nodes explored; beyond this the construction stops
    /// and the WR verdict becomes "unknown" (the membership problem is
    /// PSPACE-hard in general, §6/§7 of the paper).
    pub max_nodes: usize,
}

impl Default for PNodeGraphConfig {
    fn default() -> Self {
        PNodeGraphConfig { max_nodes: 4_000 }
    }
}

/// The P-node graph of a program.
#[derive(Clone, Debug)]
pub struct PNodeGraph {
    nodes: Vec<PNode>,
    node_ids: BTreeMap<PNode, usize>,
    graph: LabeledGraph<PEdgeLabel>,
    /// True if the node budget was exhausted (the graph is a prefix of the
    /// full graph and absence of a dangerous cycle is inconclusive).
    pub truncated: bool,
}

impl PNodeGraph {
    /// Build the P-node graph of `program`.
    pub fn build(program: &TgdProgram, config: &PNodeGraphConfig) -> Self {
        let mut builder = PNodeGraph {
            nodes: Vec::new(),
            node_ids: BTreeMap::new(),
            graph: LabeledGraph::new(0),
            truncated: false,
        };

        let mut worklist: VecDeque<usize> = VecDeque::new();
        for rule in program.iter() {
            for alpha in &rule.head {
                let root = PNode::generic(alpha.predicate);
                let (id, new) = builder.intern(root);
                if new {
                    worklist.push_back(id);
                }
            }
        }

        while let Some(node_id) = worklist.pop_front() {
            if builder.nodes.len() > config.max_nodes {
                builder.truncated = true;
                break;
            }
            let node = builder.nodes[node_id].clone();
            for rule in program.iter() {
                let fresh = rule.freshen();
                for (head_index, alpha) in fresh.head.iter().enumerate() {
                    let new_ids = builder.expand(node_id, &node, &fresh, head_index, alpha, config);
                    for id in new_ids {
                        worklist.push_back(id);
                    }
                }
            }
        }
        builder
    }

    fn intern(&mut self, node: PNode) -> (usize, bool) {
        if let Some(&id) = self.node_ids.get(&node) {
            return (id, false);
        }
        let id = self.nodes.len();
        self.nodes.push(node.clone());
        self.node_ids.insert(node, id);
        self.graph.ensure_node(id);
        (id, true)
    }

    /// Expand one node against one (freshened) rule head atom, adding edges
    /// and returning the ids of newly created nodes.
    fn expand(
        &mut self,
        node_id: usize,
        node: &PNode,
        rule: &Tgd,
        _head_index: usize,
        alpha: &Atom,
        config: &PNodeGraphConfig,
    ) -> Vec<usize> {
        let unifier = match unify_atoms(&node.atom, alpha) {
            Some(u) => u,
            None => return Vec::new(),
        };
        if !self.unification_is_admissible(node, rule, alpha, &unifier) {
            return Vec::new();
        }

        let distinguished: BTreeSet<Variable> =
            rule.distinguished_variables().into_iter().collect();
        let existential_body: Vec<Variable> = rule.existential_body_variables();

        // Body image under the unifier.
        let mut body_images: Vec<Atom> = unifier.apply_atoms_deep(&rule.body);

        // The unifier may have chosen the rule's variable as the representative
        // of the tracked `z`; rename the representative back to `z` so that
        // tracking survives the step (if `z` was unified with a constant the
        // tracked existential is absorbed and tracking simply ends).
        if node.tracks_existential() {
            if let Term::Variable(rep) = unifier.apply_term_deep(Term::Variable(z_variable())) {
                if rep != z_variable() {
                    let mut rename = Substitution::new();
                    rename.bind(rep, Term::Variable(z_variable()));
                    body_images = rename.apply_atoms(&body_images);
                }
            }
        }

        // The s label is a property of the whole step (cf. points 2/3 of the
        // position-graph definition).
        let z = z_variable();
        let propagated_split = node.tracks_existential()
            && body_images
                .iter()
                .filter(|a| a.variable_set().contains(&z))
                .count()
                >= 2;
        // Existential body variables occurring in two or more body atoms: the
        // fresh join (NLE) variables this step introduces into the rewriting.
        let nle_body_vars: BTreeSet<Variable> = existential_body
            .iter()
            .copied()
            .filter(|w| {
                rule.body
                    .iter()
                    .filter(|b| b.variable_set().contains(w))
                    .count()
                    >= 2
            })
            .collect();
        let body_existential_split = !nle_body_vars.is_empty();
        let splitting = propagated_split || body_existential_split;

        // Variants: (a) propagate the tracked z; (b) for each existential body
        // variable, mark it as the newly tracked z (demoting any propagated z
        // to a generic variable).
        let mut variants: Vec<Vec<Atom>> = vec![body_images.clone()];
        for w in &existential_body {
            let mut renaming = Substitution::new();
            renaming.bind(*w, Term::Variable(z));
            if body_images.iter().any(|a| a.variable_set().contains(&z)) {
                // Demote the propagated z to a fresh generic variable.
                renaming.bind(z, Term::fresh_variable());
            }
            variants.push(renaming.apply_atoms(&body_images));
        }

        let source_bounded = node.bounded_argument_count();
        let mut created = Vec::new();
        for variant in variants {
            let context: Vec<Atom> = variant.clone();
            for (body_index, beta) in rule.body.iter().enumerate() {
                let target_atom = variant[body_index].clone();
                let target = PNode::new(target_atom, context.clone());

                let mut labels: Vec<PEdgeLabel> = Vec::new();
                if splitting {
                    labels.push(PEdgeLabel::Splitting);
                }
                // m: some distinguished variable missing from beta.
                if distinguished
                    .iter()
                    .any(|v| !beta.variable_set().contains(v))
                {
                    labels.push(PEdgeLabel::Missing);
                }
                // d: bounded arguments decrease, either by the occurrence
                // count of the target node, or because the step injects a
                // fresh existential join variable into beta (see the module
                // docs for the rationale).
                let injects_nle = beta
                    .variable_set()
                    .iter()
                    .any(|v| nle_body_vars.contains(v));
                if target.bounded_argument_count() < source_bounded || injects_nle {
                    labels.push(PEdgeLabel::Decreasing);
                }
                // i: beta is isolated in the rule body.
                if rule.body.len() >= 2 {
                    let beta_vars = beta.variable_set();
                    let has_distinguished = beta_vars.iter().any(|v| distinguished.contains(v));
                    let shares = rule
                        .body
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != body_index)
                        .any(|(_, other)| !other.variable_set().is_disjoint(&beta_vars));
                    if !has_distinguished && !shares {
                        labels.push(PEdgeLabel::Isolated);
                    }
                }

                if self.nodes.len() > config.max_nodes {
                    self.truncated = true;
                    return created;
                }
                let (target_id, is_new) = self.intern(target);
                self.graph.add_edge(node_id, target_id, labels);
                if is_new {
                    created.push(target_id);
                }
            }
        }
        created
    }

    /// The admissibility condition on existential head variables, evaluated
    /// with respect to the node's context (this is exactly what the context of
    /// a P-node is for, per §6 of the paper).
    fn unification_is_admissible(
        &self,
        node: &PNode,
        rule: &Tgd,
        alpha: &Atom,
        unifier: &Substitution,
    ) -> bool {
        let frontier: BTreeSet<Variable> = rule.frontier().into_iter().collect();
        let existentials: BTreeSet<Variable> =
            rule.existential_head_variables().into_iter().collect();
        let node_vars: BTreeSet<Variable> = node.atom.variable_set();

        for e in alpha.variable_set() {
            if !existentials.contains(&e) {
                continue;
            }
            let rep = unifier.apply_term_deep(Term::Variable(e));
            if rep.is_constant() || rep.is_null() {
                return false;
            }
            // Collect the class of e: every variable with the same deep image.
            let mut class: BTreeSet<Variable> = BTreeSet::new();
            if let Term::Variable(v) = rep {
                class.insert(v);
            }
            for v in node_vars.iter().chain(alpha.variable_set().iter()) {
                if unifier.apply_term_deep(Term::Variable(*v)) == rep {
                    class.insert(*v);
                }
            }
            for member in class {
                if member == e {
                    continue;
                }
                if frontier.contains(&member) || existentials.contains(&member) {
                    return false;
                }
                if node_vars.contains(&member) && node.is_bounded(member) {
                    return false;
                }
            }
        }
        true
    }

    /// The nodes of the graph.
    pub fn nodes(&self) -> &[PNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// True if a node with this canonical form is present.
    pub fn contains(&self, node: &PNode) -> bool {
        self.node_ids.contains_key(node)
    }

    /// Find a node whose distinguished atom matches `atom` (after
    /// canonicalising `atom` alone), if any.
    pub fn find_by_atom(&self, atom: &Atom) -> Option<&PNode> {
        self.nodes.iter().find(|n| {
            let probe = PNode::new(atom.clone(), vec![atom.clone()]);
            n.atom == probe.atom || n.atom == *atom
        })
    }

    /// Iterate over all edges as `(from, to, labels)`.
    pub fn edges(&self) -> impl Iterator<Item = (&PNode, &PNode, &BTreeSet<PEdgeLabel>)> + '_ {
        self.graph
            .edges()
            .map(move |(a, b, l)| (&self.nodes[a], &self.nodes[b], l))
    }

    /// True if the graph has a dangerous cycle in the sense of Definition 8:
    /// a cycle containing a d-edge, an m-edge and an s-edge but no i-edge.
    pub fn has_dangerous_cycle(&self) -> bool {
        self.graph.has_cycle_with_labels(
            &[
                PEdgeLabel::Decreasing,
                PEdgeLabel::Missing,
                PEdgeLabel::Splitting,
            ],
            &[PEdgeLabel::Isolated],
        )
    }

    /// The nodes of a dangerous strongly connected component, if any.
    pub fn dangerous_nodes(&self) -> Option<Vec<&PNode>> {
        self.graph
            .find_dangerous_scc(
                &[
                    PEdgeLabel::Decreasing,
                    PEdgeLabel::Missing,
                    PEdgeLabel::Splitting,
                ],
                &[PEdgeLabel::Isolated],
            )
            .map(|ids| ids.into_iter().map(|i| &self.nodes[i]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::parse_program;

    fn example1() -> TgdProgram {
        parse_program(
            "[R1] s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).\n\
             [R2] v(Y1, Y2), q(Y2) -> s(Y1, Y3, Y2).\n\
             [R3] r(Y1, Y2) -> v(Y1, Y2).",
        )
        .unwrap()
    }

    fn example2() -> TgdProgram {
        parse_program(
            "[R1] t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n\
             [R2] s(Y1, Y1, Y2) -> r(Y2, Y3).",
        )
        .unwrap()
    }

    fn example3() -> TgdProgram {
        parse_program(
            "[R1] r(Y1, Y2) -> t(Y3, Y1, Y1).\n\
             [R2] s(Y1, Y2, Y3) -> r(Y1, Y2).\n\
             [R3] u(Y1), t(Y1, Y1, Y2) -> s(Y1, Y1, Y2).",
        )
        .unwrap()
    }

    #[test]
    fn generic_nodes_are_canonical() {
        let n = PNode::generic(Predicate::new("r", 2));
        assert_eq!(n.atom.to_string(), "r(x1, x2)");
        assert_eq!(n.context.len(), 1);
        assert!(!n.tracks_existential());
        assert_eq!(n.bounded_argument_count(), 0);
    }

    #[test]
    fn canonicalization_is_renaming_invariant() {
        let a = PNode::new(
            Atom::new(
                "s",
                vec![
                    Term::variable("A"),
                    Term::variable("A"),
                    Term::variable("B"),
                ],
            ),
            vec![Atom::new(
                "s",
                vec![
                    Term::variable("A"),
                    Term::variable("A"),
                    Term::variable("B"),
                ],
            )],
        );
        let b = PNode::new(
            Atom::new(
                "s",
                vec![
                    Term::variable("U"),
                    Term::variable("U"),
                    Term::variable("W"),
                ],
            ),
            vec![Atom::new(
                "s",
                vec![
                    Term::variable("U"),
                    Term::variable("U"),
                    Term::variable("W"),
                ],
            )],
        );
        assert_eq!(a, b);
        assert_eq!(a.atom.to_string(), "s(x1, x1, x2)");
    }

    #[test]
    fn bounded_arguments_count_constants_and_repeated_variables() {
        let z = Term::variable("z");
        let node = PNode::new(
            Atom::new("s", vec![z, z, Term::variable("A")]),
            vec![Atom::new("s", vec![z, z, Term::variable("A")])],
        );
        // z occurs twice -> positions 1 and 2 bounded; A occurs once -> free.
        assert_eq!(node.bounded_argument_count(), 2);
        assert!(node.tracks_existential());
    }

    #[test]
    fn figure3_nodes_of_example2_are_constructed() {
        // Figure 3 of the paper: the P-node graph of Example 2 contains (at
        // least) the generic nodes for r and s, the repeated-variable node
        // s(x1, x1, x2) and the tracked-existential node s(z, z, x1).
        let g = PNodeGraph::build(&example2(), &PNodeGraphConfig::default());
        assert!(!g.truncated);
        let atoms: BTreeSet<String> = g.nodes().iter().map(|n| n.atom.to_string()).collect();
        assert!(atoms.contains("r(x1, x2)"), "nodes: {atoms:?}");
        assert!(atoms.contains("s(x1, x2, x3)"), "nodes: {atoms:?}");
        assert!(atoms.contains("s(x1, x1, x2)"), "nodes: {atoms:?}");
        assert!(atoms.contains("s(z, z, x1)"), "nodes: {atoms:?}");
    }

    #[test]
    fn figure3_dangerous_cycle_of_example2_is_detected() {
        let g = PNodeGraph::build(&example2(), &PNodeGraphConfig::default());
        assert!(g.has_dangerous_cycle());
        let dangerous = g.dangerous_nodes().unwrap();
        let atoms: Vec<String> = dangerous.iter().map(|n| n.atom.to_string()).collect();
        // The cycle of Figure 3 runs through the tracked-existential s-node
        // and the r-node it generates.
        assert!(
            atoms.iter().any(|a| a.starts_with("s(z, z")),
            "dangerous nodes: {atoms:?}"
        );
        assert!(
            atoms.iter().any(|a| a.starts_with("r(")),
            "dangerous nodes: {atoms:?}"
        );
    }

    #[test]
    fn figure3_edge_labels_include_d_m_s() {
        let g = PNodeGraph::build(&example2(), &PNodeGraphConfig::default());
        let has_dms_edge = g.edges().any(|(from, _, labels)| {
            from.atom.to_string() == "s(z, z, x1)"
                && labels.contains(&PEdgeLabel::Decreasing)
                && labels.contains(&PEdgeLabel::Missing)
                && labels.contains(&PEdgeLabel::Splitting)
        });
        assert!(has_dms_edge, "expected a d,m,s edge out of s(z, z, x1)");
    }

    #[test]
    fn example1_has_no_dangerous_cycle() {
        let g = PNodeGraph::build(&example1(), &PNodeGraphConfig::default());
        assert!(!g.truncated);
        assert!(!g.has_dangerous_cycle());
    }

    #[test]
    fn example3_has_no_dangerous_cycle() {
        let g = PNodeGraph::build(&example3(), &PNodeGraphConfig::default());
        assert!(!g.truncated);
        assert!(!g.has_dangerous_cycle());
    }

    #[test]
    fn example3_blocked_resolution_is_respected() {
        // The node t(z, z, x1) (in a context where z also appears in u(z))
        // must not be expandable through R1, because R1's existential head
        // variable would have to unify with the bounded z — this is the
        // paper's "the recursion is only apparent" argument.
        let g = PNodeGraph::build(&example3(), &PNodeGraphConfig::default());
        let t_node = g
            .nodes()
            .iter()
            .find(|n| n.atom.to_string().starts_with("t(z, z"))
            .cloned();
        if let Some(t_node) = t_node {
            assert!(t_node.is_bounded(Variable::new("z")));
            // No outgoing edge from that node reaches an r-node (which is what
            // R1 would produce).
            let outgoing: Vec<_> = g.edges().filter(|(from, _, _)| **from == t_node).collect();
            assert!(
                outgoing
                    .iter()
                    .all(|(_, to, _)| to.atom.predicate.name_str() != "r"),
                "t(z, z, _) must not resolve through R1"
            );
        }
    }

    #[test]
    fn transitive_closure_has_a_dangerous_cycle() {
        // Transitive closure is the textbook non-FO-rewritable pattern: each
        // rewriting step splits a fresh join variable over two copies of the
        // same predicate, so the chain grows without bound. The self-loop at
        // the partOf node must carry d, m and s.
        let p = parse_program("[T] partOf(X, Y), partOf(Y, Z) -> partOf(X, Z).").unwrap();
        let g = PNodeGraph::build(&p, &PNodeGraphConfig::default());
        assert!(!g.truncated);
        assert!(g.has_dangerous_cycle());
    }

    #[test]
    fn non_recursive_copy_rule_has_no_dangerous_cycle() {
        // A single non-recursive rule cannot produce any cycle at all, let
        // alone a dangerous one — the graph is a DAG from the path node into
        // the edge node.
        let p = parse_program("[B] edge(X, Y) -> path(X, Y).").unwrap();
        let g = PNodeGraph::build(&p, &PNodeGraphConfig::default());
        assert!(!g.has_dangerous_cycle());
    }

    #[test]
    fn truncation_is_reported_when_the_budget_is_tiny() {
        let g = PNodeGraph::build(&example2(), &PNodeGraphConfig { max_nodes: 2 });
        assert!(g.truncated);
    }

    #[test]
    fn hierarchy_programs_produce_small_graphs() {
        let p = parse_program(
            "[R1] student(X) -> person(X).\n\
             [R2] professor(X) -> person(X).\n\
             [R3] person(X) -> hasParent(X, Y).",
        )
        .unwrap();
        let g = PNodeGraph::build(&p, &PNodeGraphConfig::default());
        assert!(!g.truncated);
        assert!(!g.has_dangerous_cycle());
        assert!(g.node_count() <= 10);
    }
}
