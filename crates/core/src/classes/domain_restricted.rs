//! Domain-restricted TGDs.
//!
//! A TGD is **domain-restricted** when every head atom contains either *all*
//! of the body variables or *none* of them. The class is FO-rewritable and is
//! listed in §6 of the paper among the known classes (incomparable with SWR)
//! that the WR class is conjectured to subsume.

use ontorew_model::prelude::*;
use std::collections::BTreeSet;

/// True if the rule is domain-restricted.
pub fn rule_is_domain_restricted(rule: &Tgd) -> bool {
    let body_vars: BTreeSet<Variable> = rule.body_variables().into_iter().collect();
    if body_vars.is_empty() {
        return true;
    }
    rule.head.iter().all(|atom| {
        let head_atom_vars = atom.variable_set();
        let shared = body_vars.intersection(&head_atom_vars).count();
        shared == 0 || shared == body_vars.len()
    })
}

/// True if every rule of the program is domain-restricted.
pub fn is_domain_restricted(program: &TgdProgram) -> bool {
    program.iter().all(rule_is_domain_restricted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::{parse_program, parse_tgd};

    #[test]
    fn head_with_all_body_variables_is_domain_restricted() {
        assert!(rule_is_domain_restricted(
            &parse_tgd("p(X, Y) -> q(X, Y, Z)").unwrap()
        ));
    }

    #[test]
    fn head_with_no_body_variables_is_domain_restricted() {
        assert!(rule_is_domain_restricted(
            &parse_tgd("p(X, Y) -> alarm(Z)").unwrap()
        ));
    }

    #[test]
    fn head_with_some_body_variables_is_not_domain_restricted() {
        assert!(!rule_is_domain_restricted(
            &parse_tgd("p(X, Y) -> q(X, Z)").unwrap()
        ));
    }

    #[test]
    fn every_head_atom_is_checked() {
        assert!(!rule_is_domain_restricted(
            &parse_tgd("p(X, Y) -> q(X, Y), r(X)").unwrap()
        ));
        assert!(rule_is_domain_restricted(
            &parse_tgd("p(X, Y) -> q(X, Y), alarm(Z)").unwrap()
        ));
    }

    #[test]
    fn program_level_check() {
        let p = parse_program(
            "[R1] p(X, Y) -> q(X, Y).\n\
             [R2] q(X, Y) -> alarm(Z).",
        )
        .unwrap();
        assert!(is_domain_restricted(&p));
        let bad = parse_program("[R1] p(X, Y) -> q(X, Z).").unwrap();
        assert!(!is_domain_restricted(&bad));
    }
}
