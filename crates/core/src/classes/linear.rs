//! Linear and multi-linear TGDs.
//!
//! * A TGD is **linear** if its body consists of a single atom.
//! * A TGD is **multi-linear** if every body atom contains *all* the
//!   distinguished variables of the rule (the paper uses exactly this
//!   characterisation when it argues that Example 3 is not multi-linear:
//!   "u(y1) in R3 does not contain the variable y2").
//!
//! Both classes are FO-rewritable, and under the simple-TGD restriction they
//! are subsumed by SWR (§5 of the paper).

use ontorew_model::prelude::*;

/// True if the rule is linear (single body atom).
pub fn rule_is_linear(rule: &Tgd) -> bool {
    rule.body.len() == 1
}

/// True if every rule of the program is linear.
pub fn is_linear(program: &TgdProgram) -> bool {
    program.iter().all(rule_is_linear)
}

/// True if the rule is multi-linear: every body atom contains every
/// distinguished variable of the rule.
pub fn rule_is_multilinear(rule: &Tgd) -> bool {
    let distinguished = rule.distinguished_variables();
    rule.body.iter().all(|atom| {
        let vars = atom.variable_set();
        distinguished.iter().all(|v| vars.contains(v))
    })
}

/// True if every rule of the program is multi-linear.
pub fn is_multilinear(program: &TgdProgram) -> bool {
    program.iter().all(rule_is_multilinear)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::{parse_program, parse_tgd};

    #[test]
    fn single_body_atom_rules_are_linear() {
        assert!(rule_is_linear(
            &parse_tgd("student(X) -> person(X)").unwrap()
        ));
        assert!(!rule_is_linear(
            &parse_tgd("p(X), q(X) -> person(X)").unwrap()
        ));
    }

    #[test]
    fn linear_rules_are_multilinear() {
        let r = parse_tgd("teaches(X, Y) -> course(Y)").unwrap();
        assert!(rule_is_linear(&r));
        assert!(rule_is_multilinear(&r));
    }

    #[test]
    fn multilinear_but_not_linear() {
        // Both body atoms contain the only distinguished variable X.
        let r = parse_tgd("emp(X, D), senior(X) -> manager(X)").unwrap();
        assert!(!rule_is_linear(&r));
        assert!(rule_is_multilinear(&r));
    }

    #[test]
    fn example3_rule3_is_not_multilinear() {
        // Paper: "nor multilinear, since u(y1) in R3 does not contain the
        // variable y2".
        let r = parse_tgd("u(Y1), t(Y1, Y1, Y2) -> s(Y1, Y1, Y2)").unwrap();
        assert!(!rule_is_multilinear(&r));
    }

    #[test]
    fn program_level_checks() {
        let linear = parse_program(
            "[R1] student(X) -> person(X).\n\
             [R2] person(X) -> hasParent(X, Y).",
        )
        .unwrap();
        assert!(is_linear(&linear));
        assert!(is_multilinear(&linear));

        let not_linear = parse_program("[R1] p(X, Z), q(Z) -> h(X).").unwrap();
        assert!(!is_linear(&not_linear));
        // Z is not distinguished, so multi-linearity only requires X, which is
        // missing from q(Z).
        assert!(!is_multilinear(&not_linear));
    }

    #[test]
    fn empty_program_is_trivially_in_both_classes() {
        let p = TgdProgram::new();
        assert!(is_linear(&p));
        assert!(is_multilinear(&p));
    }
}
