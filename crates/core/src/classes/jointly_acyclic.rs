//! Jointly acyclic TGDs (Krötzsch & Rudolph).
//!
//! Joint acyclicity is a chase-termination guarantee that strictly
//! generalises weak acyclicity: instead of tracking positions, it tracks each
//! *existential head variable* individually and asks whether the nulls it
//! invents can ever feed back into the rule that invented them.
//!
//! For an existential head variable `y` of rule `R`, the **move set**
//! `Move(y)` is the least set of positions such that (i) every head position
//! of `y` in `R` is in `Move(y)`, and (ii) if a frontier variable `x` of some
//! rule `R'` occurs in `body(R')` only at positions of `Move(y)`, then every
//! head position of `x` in `R'` is in `Move(y)`.
//!
//! The **existential dependency graph** has one node per existential head
//! variable and an edge `y → y'` (where `y'` belongs to rule `R'`) whenever
//! some frontier variable of `R'` occurs in `body(R')` only at positions of
//! `Move(y)` — i.e. a null invented for `y` can trigger `R'` and cause a new
//! null to be invented for `y'`. A program is **jointly acyclic** iff this
//! graph is acyclic. The chase then terminates on every database.

use ontorew_model::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of an existential head variable: (rule index, variable).
pub type ExistentialId = (usize, Variable);

/// The move set of every existential head variable of the program.
pub fn move_sets(program: &TgdProgram) -> BTreeMap<ExistentialId, BTreeSet<(Predicate, usize)>> {
    let mut out = BTreeMap::new();
    for (ri, rule) in program.rules().iter().enumerate() {
        for y in rule.existential_head_variables() {
            out.insert((ri, y), move_set(program, rule, y));
        }
    }
    out
}

fn move_set(program: &TgdProgram, rule: &Tgd, y: Variable) -> BTreeSet<(Predicate, usize)> {
    let mut positions: BTreeSet<(Predicate, usize)> = BTreeSet::new();
    for head_atom in &rule.head {
        for i in head_atom.positions_of(y) {
            positions.insert((head_atom.predicate, i));
        }
    }
    loop {
        let mut changed = false;
        for other in program.iter() {
            for x in other.frontier() {
                let body_occ = body_positions_of(other, x);
                if body_occ.is_empty() || !body_occ.iter().all(|p| positions.contains(p)) {
                    continue;
                }
                for head_atom in &other.head {
                    for i in head_atom.positions_of(x) {
                        if positions.insert((head_atom.predicate, i)) {
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    positions
}

fn body_positions_of(rule: &Tgd, var: Variable) -> Vec<(Predicate, usize)> {
    let mut out = Vec::new();
    for atom in &rule.body {
        for i in atom.positions_of(var) {
            out.push((atom.predicate, i));
        }
    }
    out
}

/// The existential dependency graph: edges `y → y'` meaning that nulls
/// invented for `y` may cause nulls to be invented for `y'`.
pub fn existential_dependency_graph(
    program: &TgdProgram,
) -> BTreeMap<ExistentialId, BTreeSet<ExistentialId>> {
    let moves = move_sets(program);
    let mut graph: BTreeMap<ExistentialId, BTreeSet<ExistentialId>> = BTreeMap::new();
    for (y, positions) in &moves {
        let successors = graph.entry(*y).or_default();
        for (ri, rule) in program.rules().iter().enumerate() {
            let existentials = rule.existential_head_variables();
            if existentials.is_empty() {
                continue;
            }
            // Does some frontier variable of `rule` live entirely inside
            // Move(y)? Then a null for y can reach this rule's frontier, and
            // firing it invents nulls for each of its existential variables.
            let triggered = rule.frontier().into_iter().any(|x| {
                let occ = body_positions_of(rule, x);
                !occ.is_empty() && occ.iter().all(|p| positions.contains(p))
            });
            if triggered {
                for y2 in &existentials {
                    successors.insert((ri, *y2));
                }
            }
        }
    }
    graph
}

/// True if the program is jointly acyclic: its existential dependency graph
/// has no cycle.
pub fn is_jointly_acyclic(program: &TgdProgram) -> bool {
    let graph = existential_dependency_graph(program);
    // Cycle detection by iterative DFS with colouring.
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour: BTreeMap<ExistentialId, Colour> =
        graph.keys().map(|k| (*k, Colour::White)).collect();
    for start in graph.keys() {
        if colour[start] != Colour::White {
            continue;
        }
        // Stack of (node, next-successor-index).
        let mut stack: Vec<(ExistentialId, Vec<ExistentialId>, usize)> = Vec::new();
        colour.insert(*start, Colour::Grey);
        let succ: Vec<_> = graph[start].iter().copied().collect();
        stack.push((*start, succ, 0));
        while let Some((node, succ, idx)) = stack.last_mut() {
            if *idx >= succ.len() {
                colour.insert(*node, Colour::Black);
                stack.pop();
                continue;
            }
            let next = succ[*idx];
            *idx += 1;
            match colour.get(&next).copied().unwrap_or(Colour::Black) {
                Colour::Grey => return false,
                Colour::White => {
                    colour.insert(next, Colour::Grey);
                    let next_succ: Vec<_> = graph
                        .get(&next)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    stack.push((next, next_succ, 0));
                }
                Colour::Black => {}
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_chase::is_weakly_acyclic;
    use ontorew_model::parse_program;

    #[test]
    fn weakly_acyclic_programs_are_jointly_acyclic() {
        let programs = [
            "[R1] edge(X, Y) -> path(X, Y).\n[R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
            "[R1] emp(X) -> worksFor(X, D).\n[R2] worksFor(X, D) -> dept(D).",
            "[R1] s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).\n\
             [R2] v(Y1, Y2), q(Y2) -> s(Y1, Y3, Y2).\n\
             [R3] r(Y1, Y2) -> v(Y1, Y2).",
        ];
        for text in programs {
            let p = parse_program(text).unwrap();
            assert!(is_weakly_acyclic(&p), "expected weakly acyclic: {text}");
            assert!(is_jointly_acyclic(&p), "weakly acyclic but not JA: {text}");
        }
    }

    #[test]
    fn self_feeding_existential_is_not_jointly_acyclic() {
        let p = parse_program("[R1] r(X, Y) -> r(Y, Z).").unwrap();
        assert!(!is_weakly_acyclic(&p));
        assert!(!is_jointly_acyclic(&p));
    }

    #[test]
    fn ancestor_generation_is_not_jointly_acyclic() {
        let p = parse_program(
            "[R1] person(X) -> hasParent(X, Y).\n\
             [R2] hasParent(X, Y) -> person(Y).",
        )
        .unwrap();
        assert!(!is_jointly_acyclic(&p));
    }

    #[test]
    fn joint_acyclicity_is_strictly_more_general_than_weak_acyclicity() {
        // Nulls invented for Y land in r[1]; the weak-acyclicity dependency
        // graph sees the cycle a[0] => r[1] -> a[0] and rejects the program.
        // But R2 also requires the joined value to occur in b, which no rule
        // ever derives, so a null can never re-trigger R1: Move(Y) = {r[1]}
        // does not cover R2's frontier occurrence b[0], the existential
        // dependency graph has no edge, and the program is jointly acyclic.
        let p = parse_program(
            "[R1] a(X) -> r(X, Y).\n\
             [R2] r(X, Y), b(Y) -> a(Y).",
        )
        .unwrap();
        assert!(!is_weakly_acyclic(&p));
        assert!(is_jointly_acyclic(&p));
        let moves = move_sets(&p);
        assert_eq!(moves.len(), 1);
        let (_, positions) = moves.iter().next().unwrap();
        assert_eq!(
            positions.iter().copied().collect::<Vec<_>>(),
            vec![(Predicate::new("r", 2), 1)]
        );
    }

    #[test]
    fn move_set_propagates_through_rules() {
        let p = parse_program(
            "[R1] emp(X) -> worksFor(X, D).\n\
             [R2] worksFor(X, D) -> dept(D).",
        )
        .unwrap();
        let moves = move_sets(&p);
        assert_eq!(moves.len(), 1);
        let (_, positions) = moves.iter().next().unwrap();
        // D lands in worksFor[1]; R2's frontier D occurs only there, so
        // dept[0] is added.
        assert!(positions.contains(&(Predicate::new("worksFor", 2), 1)));
        assert!(positions.contains(&(Predicate::new("dept", 1), 0)));
        assert!(!positions.contains(&(Predicate::new("worksFor", 2), 0)));
    }

    #[test]
    fn datalog_programs_have_no_existential_graph() {
        let p = parse_program(
            "[R1] edge(X, Y) -> path(X, Y).\n\
             [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
        )
        .unwrap();
        assert!(existential_dependency_graph(&p).is_empty());
        assert!(is_jointly_acyclic(&p));
    }
}
