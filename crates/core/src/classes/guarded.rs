//! Guarded and frontier-guarded TGDs.
//!
//! * A TGD is **guarded** if some body atom (the guard) contains every
//!   variable occurring in the body.
//! * A TGD is **frontier-guarded** if some body atom contains every
//!   distinguished (frontier) variable.
//!
//! Guardedness guarantees decidability of query answering (though not
//! FO-rewritability); it is included as a baseline because the Datalog±
//! landscape the paper surveys is organised around these fragments.

use ontorew_model::prelude::*;
use std::collections::BTreeSet;

/// True if the rule has a guard: a body atom containing all body variables.
pub fn rule_is_guarded(rule: &Tgd) -> bool {
    let body_vars: BTreeSet<Variable> = rule.body_variables().into_iter().collect();
    rule.body.iter().any(|atom| {
        let vars = atom.variable_set();
        body_vars.iter().all(|v| vars.contains(v))
    })
}

/// True if every rule of the program is guarded.
pub fn is_guarded(program: &TgdProgram) -> bool {
    program.iter().all(rule_is_guarded)
}

/// True if the rule has a frontier guard: a body atom containing all
/// distinguished variables.
pub fn rule_is_frontier_guarded(rule: &Tgd) -> bool {
    let frontier: BTreeSet<Variable> = rule.frontier().into_iter().collect();
    rule.body.iter().any(|atom| {
        let vars = atom.variable_set();
        frontier.iter().all(|v| vars.contains(v))
    })
}

/// True if every rule of the program is frontier-guarded.
pub fn is_frontier_guarded(program: &TgdProgram) -> bool {
    program.iter().all(rule_is_frontier_guarded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::parse_tgd;

    #[test]
    fn single_atom_bodies_are_guarded() {
        assert!(rule_is_guarded(
            &parse_tgd("teaches(X, Y) -> course(Y)").unwrap()
        ));
    }

    #[test]
    fn a_covering_atom_acts_as_guard() {
        assert!(rule_is_guarded(
            &parse_tgd("emp(X, D), dept(D) -> worksIn(X, D)").unwrap()
        ));
        assert!(!rule_is_guarded(
            &parse_tgd("emp(X, D1), dept(D2) -> related(D1, D2)").unwrap()
        ));
    }

    #[test]
    fn frontier_guarded_is_weaker_than_guarded() {
        // Body variables {X, Y, Z}; no atom covers them all, but the frontier
        // is only {X}, which p covers.
        let r = parse_tgd("p(X, Y), q(Y, Z) -> h(X)").unwrap();
        assert!(!rule_is_guarded(&r));
        assert!(rule_is_frontier_guarded(&r));
    }

    #[test]
    fn guarded_implies_frontier_guarded() {
        let r = parse_tgd("emp(X, D), dept(D) -> worksIn(X, D)").unwrap();
        assert!(rule_is_guarded(&r));
        assert!(rule_is_frontier_guarded(&r));
    }

    #[test]
    fn cross_product_rules_are_neither() {
        let r = parse_tgd("a(X), b(Y) -> pair(X, Y)").unwrap();
        assert!(!rule_is_guarded(&r));
        assert!(!rule_is_frontier_guarded(&r));
    }
}
