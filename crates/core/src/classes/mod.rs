//! Baseline syntactic classes of TGDs.
//!
//! These are the previously known classes the paper's SWR and WR classes are
//! compared against (§5 and §6): Linear, Multi-linear, Sticky, Sticky-Join,
//! Domain-Restricted and acyclic-GRD are FO-rewritable; Guarded,
//! Frontier-Guarded, Weakly-Sticky and Warded guarantee decidability /
//! tractability (not FO-rewritability) and are included for completeness of
//! the landscape; Weak Acyclicity (re-exported from `ontorew-chase`) and
//! Joint Acyclicity guarantee chase termination.

pub mod acyclic_grd;
pub mod domain_restricted;
pub mod guarded;
pub mod jointly_acyclic;
pub mod linear;
pub mod sticky;
pub mod warded;
pub mod weakly_sticky;

pub use acyclic_grd::{depends_on, is_acyclic_grd, rule_dependency_graph};
pub use domain_restricted::{is_domain_restricted, rule_is_domain_restricted};
pub use guarded::{is_frontier_guarded, is_guarded, rule_is_frontier_guarded, rule_is_guarded};
pub use jointly_acyclic::{
    existential_dependency_graph, is_jointly_acyclic, move_sets, ExistentialId,
};
pub use linear::{is_linear, is_multilinear, rule_is_linear, rule_is_multilinear};
pub use sticky::{compute_marking, is_sticky, is_sticky_join, Marking};
pub use warded::{affected_positions, dangerous_variables, harmful_variables, is_warded};
pub use weakly_sticky::{infinite_rank_positions, is_weakly_sticky};

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::parse_program;

    #[test]
    fn class_inclusions_hold_on_a_spread_of_programs() {
        // Linear ⊆ Multilinear, Linear ⊆ Guarded, Guarded ⊆ Frontier-Guarded,
        // Sticky ⊆ Sticky-Join — checked on a battery of small programs.
        let programs = [
            "[R1] student(X) -> person(X).",
            "[R1] person(X) -> hasParent(X, Y).",
            "[R1] p(X, Z), q(Z) -> h(X).",
            "[R1] emp(X, D), dept(D) -> worksIn(X, D).",
            "[R1] a(X), b(Y) -> pair(X, Y).",
            "[R1] edge(W, W), node(X) -> good(X).",
            "[R1] r(Y1, Y2) -> t(Y3, Y1, Y1).\n[R2] s(Y1, Y2, Y3) -> r(Y1, Y2).\n[R3] u(Y1), t(Y1, Y1, Y2) -> s(Y1, Y1, Y2).",
        ];
        for text in programs {
            let p = parse_program(text).unwrap();
            if is_linear(&p) {
                assert!(is_multilinear(&p), "linear ⊄ multilinear on {text}");
                assert!(is_guarded(&p), "linear ⊄ guarded on {text}");
                assert!(is_warded(&p), "linear ⊄ warded on {text}");
            }
            if is_guarded(&p) {
                assert!(
                    is_frontier_guarded(&p),
                    "guarded ⊄ frontier-guarded on {text}"
                );
            }
            if is_sticky(&p) {
                assert!(is_sticky_join(&p), "sticky ⊄ sticky-join on {text}");
                assert!(is_weakly_sticky(&p), "sticky ⊄ weakly-sticky on {text}");
            }
            if ontorew_chase::is_weakly_acyclic(&p) {
                assert!(
                    is_jointly_acyclic(&p),
                    "weakly acyclic ⊄ jointly acyclic on {text}"
                );
            }
        }
    }
}
