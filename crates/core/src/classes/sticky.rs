//! Sticky and sticky-join TGDs (Calì, Gottlob & Pieris).
//!
//! Both classes are defined through the standard *marking* procedure over
//! body variable occurrences:
//!
//! 1. **Initial step** — for every rule `R` and every variable `x` occurring
//!    in `body(R)` but not in `head(R)`, mark every occurrence of `x` in
//!    `body(R)`.
//! 2. **Propagation step** — repeat until fixpoint: for every rule `R` and
//!    every variable `x` occurring in `head(R)` at some position that is
//!    marked in the body of some rule, mark every occurrence of `x` in
//!    `body(R)`.
//!
//! A program is **sticky** iff no marked variable occurs more than once in
//! the body of a rule (this test is exact). For **sticky-join** we implement
//! the characterisation the paper itself uses when discussing Example 3
//! ("y1 appears in two different atoms of body(R3)"): no marked variable
//! occurs in two *distinct* body atoms of a rule, repetitions inside a single
//! atom being allowed. Sticky ⊆ Sticky-Join under this test.
//!
//! **Caveat** — the full sticky-join definition of Calì, Gottlob & Pieris is
//! stated on an expanded rule set and is strictly stronger than this
//! single-pass check outside the simple-TGD fragment: the paper's Example 2
//! (repeated variable in a body atom) passes this check although it is not
//! FO-rewritable, hence not sticky-join. The check is therefore a *necessary*
//! condition, reported for comparison but not used to conclude
//! FO-rewritability (see `ontorew_core::classify`).

use ontorew_model::prelude::*;
use std::collections::BTreeSet;

/// A marked body position: rule index, body atom index, argument index.
type MarkedOccurrence = (usize, usize, usize);

/// The result of the marking procedure.
#[derive(Clone, Debug)]
pub struct Marking {
    /// Marked body occurrences (rule, body atom, argument).
    pub occurrences: BTreeSet<MarkedOccurrence>,
    /// Marked (predicate) positions: every `(predicate, argument)` such that
    /// some marked occurrence sits at that position.
    pub positions: BTreeSet<(Predicate, usize)>,
}

impl Marking {
    /// True if the given variable is marked in the given rule.
    pub fn variable_is_marked(
        &self,
        program: &TgdProgram,
        rule_index: usize,
        var: Variable,
    ) -> bool {
        let rule = &program.rules()[rule_index];
        self.occurrences.iter().any(|(r, b, a)| {
            *r == rule_index && rule.body[*b].terms.get(*a).and_then(Term::as_variable) == Some(var)
        })
    }
}

/// Run the sticky marking procedure on `program`.
pub fn compute_marking(program: &TgdProgram) -> Marking {
    let rules = program.rules();
    let mut occurrences: BTreeSet<MarkedOccurrence> = BTreeSet::new();
    let mut positions: BTreeSet<(Predicate, usize)> = BTreeSet::new();

    // Helper: mark every occurrence of `var` in the body of rule `ri`.
    let mark_var = |ri: usize,
                    var: Variable,
                    occurrences: &mut BTreeSet<MarkedOccurrence>,
                    positions: &mut BTreeSet<(Predicate, usize)>| {
        let rule = &rules[ri];
        let mut changed = false;
        for (bi, atom) in rule.body.iter().enumerate() {
            for (ai, term) in atom.terms.iter().enumerate() {
                if term.as_variable() == Some(var) && occurrences.insert((ri, bi, ai)) {
                    positions.insert((atom.predicate, ai));
                    changed = true;
                }
            }
        }
        changed
    };

    // Initial step.
    for (ri, rule) in rules.iter().enumerate() {
        let head_vars: BTreeSet<Variable> = rule.head_variables().into_iter().collect();
        for var in rule.body_variables() {
            if !head_vars.contains(&var) {
                mark_var(ri, var, &mut occurrences, &mut positions);
            }
        }
    }

    // Propagation to fixpoint.
    loop {
        let mut changed = false;
        for (ri, rule) in rules.iter().enumerate() {
            for head_atom in &rule.head {
                for (ai, term) in head_atom.terms.iter().enumerate() {
                    let var = match term.as_variable() {
                        Some(v) => v,
                        None => continue,
                    };
                    if positions.contains(&(head_atom.predicate, ai))
                        && mark_var(ri, var, &mut occurrences, &mut positions)
                    {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    Marking {
        occurrences,
        positions,
    }
}

/// True if the program is sticky: no marked variable occurs more than once in
/// a rule body.
pub fn is_sticky(program: &TgdProgram) -> bool {
    let marking = compute_marking(program);
    for (ri, rule) in program.rules().iter().enumerate() {
        for var in rule.body_variables() {
            if !marking.variable_is_marked(program, ri, var) {
                continue;
            }
            let occurrences: usize = rule.body.iter().map(|a| a.occurrences_of(var)).sum();
            if occurrences > 1 {
                return false;
            }
        }
    }
    true
}

/// True if the program is sticky-join: no marked variable occurs in two
/// distinct body atoms of a rule.
pub fn is_sticky_join(program: &TgdProgram) -> bool {
    let marking = compute_marking(program);
    for (ri, rule) in program.rules().iter().enumerate() {
        for var in rule.body_variables() {
            if !marking.variable_is_marked(program, ri, var) {
                continue;
            }
            let atoms_containing = rule
                .body
                .iter()
                .filter(|a| a.variable_set().contains(&var))
                .count();
            if atoms_containing > 1 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::parse_program;

    #[test]
    fn linear_programs_are_sticky() {
        let p = parse_program(
            "[R1] student(X) -> person(X).\n\
             [R2] person(X) -> hasParent(X, Y).",
        )
        .unwrap();
        assert!(is_sticky(&p));
        assert!(is_sticky_join(&p));
    }

    #[test]
    fn join_on_an_unmarked_variable_is_sticky() {
        // X occurs in both body atoms but is propagated to the head, and the
        // head position r[1] is never marked, so X never gets marked.
        let p = parse_program("[R1] p(X, Y), q(X) -> r(X).").unwrap();
        assert!(is_sticky(&p));
    }

    #[test]
    fn join_on_a_dropped_variable_is_not_sticky() {
        // Z occurs in both body atoms and not in the head: initial marking
        // marks it, and it occurs twice -> not sticky, and the occurrences are
        // in two distinct atoms -> not sticky-join either.
        let p = parse_program("[R1] p(X, Z), q(Z) -> h(X).").unwrap();
        assert!(!is_sticky(&p));
        assert!(!is_sticky_join(&p));
    }

    #[test]
    fn repeated_marked_variable_inside_one_atom_is_sticky_join_but_not_sticky() {
        // W is dropped from the head and occurs twice inside the same atom.
        let p = parse_program("[R1] edge(W, W), node(X) -> good(X).").unwrap();
        assert!(!is_sticky(&p));
        assert!(is_sticky_join(&p));
    }

    #[test]
    fn marking_propagates_through_heads() {
        // In R1, Z is dropped -> position q[1] marked. In R2, Y occurs in the
        // head at q[1], so Y gets marked in R2's body where it occurs twice ->
        // not sticky.
        let p = parse_program(
            "[R1] q(Z), p(X) -> h(X).\n\
             [R2] a(Y), b(Y) -> q(Y).",
        )
        .unwrap();
        let marking = compute_marking(&p);
        assert!(marking.positions.contains(&(Predicate::new("q", 1), 0)));
        assert!(!is_sticky(&p));
        assert!(!is_sticky_join(&p));
    }

    #[test]
    fn example3_is_neither_sticky_nor_sticky_join() {
        // The paper's Example 3 justification: y1 is marked and appears twice
        // in t(y1, y1, y2) (not sticky) and in two different atoms of body(R3)
        // (not sticky-join).
        let p = parse_program(
            "[R1] r(Y1, Y2) -> t(Y3, Y1, Y1).\n\
             [R2] s(Y1, Y2, Y3) -> r(Y1, Y2).\n\
             [R3] u(Y1), t(Y1, Y1, Y2) -> s(Y1, Y1, Y2).",
        )
        .unwrap();
        assert!(!is_sticky(&p));
        assert!(!is_sticky_join(&p));
    }

    #[test]
    fn sticky_is_contained_in_sticky_join() {
        let programs = [
            "[R1] p(X, Y), q(X) -> r(X).",
            "[R1] p(X, Z), q(Z) -> h(X).",
            "[R1] student(X) -> person(X).",
            "[R1] edge(W, W), node(X) -> good(X).",
        ];
        for text in programs {
            let p = parse_program(text).unwrap();
            if is_sticky(&p) {
                assert!(is_sticky_join(&p), "sticky program not sticky-join: {text}");
            }
        }
    }
}
