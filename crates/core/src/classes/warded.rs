//! Warded TGDs (Gottlob & Pieris; the class behind Vadalog).
//!
//! Wardedness restricts how *harmful* variables — variables that can only be
//! bound to labelled nulls during the chase — may be joined and propagated.
//! It guarantees PTIME data complexity of query answering (not
//! FO-rewritability) and subsumes plain Datalog and Linear TGDs, so it is a
//! useful "safety net" entry in the class landscape the paper positions SWR
//! and WR against.
//!
//! Definitions (all per program `P`):
//!
//! * **Affected positions** `aff(P)`: the least set such that (i) every head
//!   position holding an existential head variable is affected, and (ii) if a
//!   frontier variable of a rule occurs in the body *only* at affected
//!   positions, then every head position where it occurs is affected. These
//!   are the positions where labelled nulls may appear during the chase.
//! * A body variable of a rule is **harmful** if all of its body occurrences
//!   are at affected positions, and **harmless** otherwise.
//! * A harmful variable is **dangerous** if it also occurs in the head (it
//!   propagates a possible null forward).
//!
//! A program is **warded** iff for every rule, either it has no dangerous
//! variables, or there is a single body atom — the *ward* — that contains all
//! dangerous variables of the rule and shares only harmless variables with
//! the rest of the body.

use ontorew_model::prelude::*;
use std::collections::BTreeSet;

/// The affected positions of a program: the positions where labelled nulls
/// may appear during the chase.
pub fn affected_positions(program: &TgdProgram) -> BTreeSet<(Predicate, usize)> {
    let mut affected: BTreeSet<(Predicate, usize)> = BTreeSet::new();

    // (i) positions of existential head variables.
    for rule in program.iter() {
        let existentials: BTreeSet<Variable> =
            rule.existential_head_variables().into_iter().collect();
        for head_atom in &rule.head {
            for (i, term) in head_atom.terms.iter().enumerate() {
                if let Some(v) = term.as_variable() {
                    if existentials.contains(&v) {
                        affected.insert((head_atom.predicate, i));
                    }
                }
            }
        }
    }

    // (ii) propagate through frontier variables that can only carry nulls.
    loop {
        let mut changed = false;
        for rule in program.iter() {
            for var in rule.frontier() {
                let occurrences = body_positions_of(rule, var);
                if occurrences.is_empty() {
                    continue;
                }
                if !occurrences.iter().all(|p| affected.contains(p)) {
                    continue;
                }
                for head_atom in &rule.head {
                    for i in head_atom.positions_of(var) {
                        if affected.insert((head_atom.predicate, i)) {
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    affected
}

fn body_positions_of(rule: &Tgd, var: Variable) -> Vec<(Predicate, usize)> {
    let mut out = Vec::new();
    for atom in &rule.body {
        for i in atom.positions_of(var) {
            out.push((atom.predicate, i));
        }
    }
    out
}

/// The harmful variables of a rule: body variables all of whose body
/// occurrences are at affected positions.
pub fn harmful_variables(
    rule: &Tgd,
    affected: &BTreeSet<(Predicate, usize)>,
) -> BTreeSet<Variable> {
    rule.body_variables()
        .into_iter()
        .filter(|v| {
            let occ = body_positions_of(rule, *v);
            !occ.is_empty() && occ.iter().all(|p| affected.contains(p))
        })
        .collect()
}

/// The dangerous variables of a rule: harmful variables that also occur in
/// the head.
pub fn dangerous_variables(
    rule: &Tgd,
    affected: &BTreeSet<(Predicate, usize)>,
) -> BTreeSet<Variable> {
    let head_vars: BTreeSet<Variable> = rule.head_variables().into_iter().collect();
    harmful_variables(rule, affected)
        .into_iter()
        .filter(|v| head_vars.contains(v))
        .collect()
}

/// True if the rule satisfies the ward condition with respect to the given
/// affected-position set.
pub fn rule_is_warded(rule: &Tgd, affected: &BTreeSet<(Predicate, usize)>) -> bool {
    let dangerous = dangerous_variables(rule, affected);
    if dangerous.is_empty() {
        return true;
    }
    let harmful = harmful_variables(rule, affected);
    // Some body atom must contain every dangerous variable and share only
    // harmless variables with the rest of the body.
    rule.body.iter().enumerate().any(|(wi, ward)| {
        let ward_vars = ward.variable_set();
        if !dangerous.iter().all(|v| ward_vars.contains(v)) {
            return false;
        }
        rule.body.iter().enumerate().all(|(oi, other)| {
            if oi == wi {
                return true;
            }
            ward_vars
                .intersection(&other.variable_set())
                .all(|shared| !harmful.contains(shared))
        })
    })
}

/// True if the program is warded.
pub fn is_warded(program: &TgdProgram) -> bool {
    let affected = affected_positions(program);
    program.iter().all(|rule| rule_is_warded(rule, &affected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::linear::is_linear;
    use ontorew_model::parse_program;

    #[test]
    fn datalog_programs_are_warded() {
        // No existential variables -> no affected positions -> no dangerous
        // variables anywhere.
        let p = parse_program(
            "[R1] edge(X, Y) -> path(X, Y).\n\
             [R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
        )
        .unwrap();
        assert!(affected_positions(&p).is_empty());
        assert!(is_warded(&p));
    }

    #[test]
    fn linear_programs_are_warded() {
        let programs = [
            "[R1] student(X) -> person(X).",
            "[R1] person(X) -> hasParent(X, Y).\n[R2] hasParent(X, Y) -> person(Y).",
            "[R1] r(Y1, Y2) -> v(Y1, Y2).",
        ];
        for text in programs {
            let p = parse_program(text).unwrap();
            assert!(is_linear(&p), "expected linear: {text}");
            assert!(is_warded(&p), "linear but not warded: {text}");
        }
    }

    #[test]
    fn affected_positions_propagate_through_frontiers() {
        let p = parse_program(
            "[R1] person(X) -> hasParent(X, Y).\n\
             [R2] hasParent(X, Y) -> person(Y).",
        )
        .unwrap();
        let affected = affected_positions(&p);
        // hasParent[1] holds the existential Y of R1; R2 propagates it into
        // person[0]; R1 then propagates person[0] into hasParent[0].
        assert!(affected.contains(&(Predicate::new("hasParent", 2), 1)));
        assert!(affected.contains(&(Predicate::new("person", 1), 0)));
        assert!(affected.contains(&(Predicate::new("hasParent", 2), 0)));
    }

    #[test]
    fn dangerous_join_outside_the_ward_is_not_warded() {
        // p's only position is affected (fed by R1's existential). In R3 both
        // body atoms mention the harmful variable X, which is dangerous
        // because it reaches the head — and it is shared between the would-be
        // ward and the other atom, so the rule is not warded.
        let p = parse_program(
            "[R1] a(X) -> p(Y).\n\
             [R2] p(X) -> q(X).\n\
             [R3] p(X), q(X) -> r(X).",
        )
        .unwrap();
        let affected = affected_positions(&p);
        assert!(affected.contains(&(Predicate::new("p", 1), 0)));
        assert!(affected.contains(&(Predicate::new("q", 1), 0)));
        assert!(!is_warded(&p));
    }

    #[test]
    fn dangerous_variables_confined_to_a_single_atom_are_warded() {
        // Same setup but the join variable is harmless in R3 because it also
        // occurs at the non-affected position u[0].
        let p = parse_program(
            "[R1] a(X) -> p(Y).\n\
             [R2] p(X), u(X) -> r(X).",
        )
        .unwrap();
        let affected = affected_positions(&p);
        assert!(affected.contains(&(Predicate::new("p", 1), 0)));
        assert!(!affected.contains(&(Predicate::new("u", 1), 0)));
        assert!(is_warded(&p));
    }

    #[test]
    fn paper_example1_is_warded() {
        let p = parse_program(
            "[R1] s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).\n\
             [R2] v(Y1, Y2), q(Y2) -> s(Y1, Y3, Y2).\n\
             [R3] r(Y1, Y2) -> v(Y1, Y2).",
        )
        .unwrap();
        assert!(is_warded(&p));
    }

    #[test]
    fn harmful_vs_dangerous_distinction() {
        // In R2, X is harmful (only occurrence is the affected p[0]) but not
        // dangerous (it does not reach the head), so the rule is warded.
        let p = parse_program(
            "[R1] a(X) -> p(Y).\n\
             [R2] p(X), b(Z) -> c(Z).",
        )
        .unwrap();
        let affected = affected_positions(&p);
        let rule = &p.rules()[1];
        let harmful = harmful_variables(rule, &affected);
        let dangerous = dangerous_variables(rule, &affected);
        assert_eq!(harmful.len(), 1);
        assert!(dangerous.is_empty());
        assert!(is_warded(&p));
    }
}
