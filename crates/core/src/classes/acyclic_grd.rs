//! Acyclic graph of rule dependencies (aGRD) — Baget, Leclère, Mugnier &
//! Salvat.
//!
//! Rule `R2` *depends on* rule `R1` when an application of `R1` can trigger a
//! new application of `R2`. The graph of rule dependencies (GRD) has the
//! rules as nodes and one edge per dependency; when it is acyclic, both the
//! chase and the rewriting terminate, so the program is FO-rewritable (and
//! chase-terminating). The paper lists aGRD among the known FO-rewritable
//! classes that WR is conjectured to subsume.
//!
//! The precise dependency test is a piece-unification check between the head
//! of `R1` and the body of `R2`; this module uses the piece unifiers of
//! `ontorew-unify`, treating the body atom set of `R2` as a boolean query, so
//! the test is the standard sufficient-and-necessary unification criterion
//! restricted to single-head-atom pieces (an over-approximation of dependency
//! for entangled multi-atom heads, which only ever *adds* edges and therefore
//! keeps the acyclicity verdict sound).

use crate::cycles::LabeledGraph;
use ontorew_model::prelude::*;
use ontorew_unify::piece_unifiers;

/// True if applying `r1` can trigger `r2` (an edge `r1 -> r2` of the GRD).
pub fn depends_on(r2: &Tgd, r1: &Tgd) -> bool {
    // Standardise the rules apart, then look for a piece unifier between some
    // subset of r2's body (viewed as a boolean query) and r1's head.
    let r1 = r1.freshen();
    let r2 = r2.freshen();
    !piece_unifiers(&r2.body, &[], &r1).is_empty()
}

/// Build the graph of rule dependencies: nodes are rule indices, and there is
/// an edge `i -> j` when rule `j` depends on rule `i`.
pub fn rule_dependency_graph(program: &TgdProgram) -> LabeledGraph<()> {
    let rules = program.rules();
    let mut graph = LabeledGraph::new(rules.len());
    for (i, r1) in rules.iter().enumerate() {
        for (j, r2) in rules.iter().enumerate() {
            if depends_on(r2, r1) {
                graph.add_edge(i, j, []);
            }
        }
    }
    graph
}

/// True if the graph of rule dependencies of `program` is acyclic.
pub fn is_acyclic_grd(program: &TgdProgram) -> bool {
    !rule_dependency_graph(program).has_cycle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontorew_model::{parse_program, parse_tgd};

    #[test]
    fn dependency_requires_unifiable_predicates() {
        let r1 = parse_tgd("student(X) -> person(X)").unwrap();
        let r2 = parse_tgd("person(Y) -> agent(Y)").unwrap();
        assert!(depends_on(&r2, &r1));
        assert!(!depends_on(&r1, &r2));
    }

    #[test]
    fn existential_heads_block_some_dependencies() {
        // r1 produces hasParent(X, fresh); r2 requires hasParent(Y, Y) — the
        // fresh existential cannot be unified with the repeated variable
        // because that variable also occurs in the frontier position, so r2
        // does not depend on r1.
        let r1 = parse_tgd("person(X) -> hasParent(X, Z)").unwrap();
        let r2 = parse_tgd("hasParent(Y, Y) -> selfParent(Y)").unwrap();
        assert!(!depends_on(&r2, &r1));
    }

    #[test]
    fn hierarchy_program_is_acyclic() {
        let p = parse_program(
            "[R1] phd(X) -> student(X).\n\
             [R2] student(X) -> person(X).\n\
             [R3] person(X) -> agent(X).",
        )
        .unwrap();
        assert!(is_acyclic_grd(&p));
        let g = rule_dependency_graph(&p);
        assert_eq!(g.edge_count(), 2); // R1 -> R2 -> R3
    }

    #[test]
    fn mutual_recursion_is_cyclic() {
        let p = parse_program(
            "[R1] person(X) -> hasParent(X, Y).\n\
             [R2] hasParent(X, Y) -> person(Y).",
        )
        .unwrap();
        assert!(!is_acyclic_grd(&p));
    }

    #[test]
    fn self_dependency_is_a_cycle() {
        let p = parse_program("[R1] path(X, Y), edge(Y, Z) -> path(X, Z).").unwrap();
        assert!(!is_acyclic_grd(&p));
    }

    #[test]
    fn example1_of_the_paper_is_not_acyclic_grd_but_is_swr() {
        // Example 1's rules feed each other (r -> v -> s -> r), so its GRD has
        // a cycle, yet the program is SWR: the two classes are incomparable,
        // which is why the paper aims at a class subsuming both.
        let p = parse_program(
            "[R1] s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).\n\
             [R2] v(Y1, Y2), q(Y2) -> s(Y1, Y3, Y2).\n\
             [R3] r(Y1, Y2) -> v(Y1, Y2).",
        )
        .unwrap();
        assert!(!is_acyclic_grd(&p));
        assert!(crate::swr::is_swr(&p));
    }
}
