//! Weakly-sticky TGDs (Calì, Gottlob & Pieris).
//!
//! Weak stickiness relaxes stickiness by exempting variables that occur at
//! least once at a *finite-rank* position: positions at which, during the
//! chase, only finitely many distinct labelled nulls can ever appear. The
//! finite/infinite-rank split is computed on the same dependency graph used
//! by the weak-acyclicity test (`ontorew_chase::DependencyGraph`): a position
//! has **infinite rank** iff it is reachable from a cycle that traverses a
//! special edge.
//!
//! A program is **weakly sticky** iff for every rule `R` and every variable
//! `x` occurring more than once in `body(R)`, either `x` is non-marked (in
//! the sticky marking of `classes::sticky`), or `x` occurs at least once in
//! `body(R)` at a position of finite rank.
//!
//! Weak stickiness guarantees tractable (PTIME data complexity) query
//! answering, not FO-rewritability; like Guarded it is reported as part of
//! the class landscape the paper positions SWR/WR against, and the
//! classification report does not count it towards
//! [`ClassificationReport::fo_rewritable`](crate::ClassificationReport::fo_rewritable).

use crate::classes::sticky::compute_marking;
use ontorew_chase::{DependencyGraph, DependencyPosition};
use ontorew_model::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// The set of positions of infinite rank of a program: the positions
/// reachable (in the dependency graph) from a cycle that traverses a special
/// edge. During the chase, these are exactly the positions where an unbounded
/// number of distinct labelled nulls may appear.
pub fn infinite_rank_positions(program: &TgdProgram) -> BTreeSet<(Predicate, usize)> {
    let graph = DependencyGraph::build(program);
    let mut successors: BTreeMap<DependencyPosition, Vec<DependencyPosition>> = BTreeMap::new();
    for (a, b) in graph.edges.iter().chain(graph.special_edges.iter()) {
        successors.entry(*a).or_default().push(*b);
    }

    // Seed: the target of every special edge that lies on a cycle.
    let mut frontier: Vec<DependencyPosition> = Vec::new();
    for (u, v) in &graph.special_edges {
        if reaches(&successors, *v, *u) {
            frontier.push(*v);
        }
    }

    // Everything reachable from a seed has infinite rank.
    let mut infinite: BTreeSet<DependencyPosition> = BTreeSet::new();
    while let Some(node) = frontier.pop() {
        if !infinite.insert(node) {
            continue;
        }
        if let Some(next) = successors.get(&node) {
            frontier.extend(next.iter().copied());
        }
    }

    infinite
        .into_iter()
        .map(|p| (p.predicate, p.index))
        .collect()
}

fn reaches(
    successors: &BTreeMap<DependencyPosition, Vec<DependencyPosition>>,
    from: DependencyPosition,
    to: DependencyPosition,
) -> bool {
    let mut seen = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(node) = stack.pop() {
        if node == to {
            return true;
        }
        if !seen.insert(node) {
            continue;
        }
        if let Some(next) = successors.get(&node) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// True if rule `rule_index` of `program` satisfies the weak-stickiness
/// condition with respect to the given marking and infinite-rank position
/// set.
fn rule_is_weakly_sticky(
    program: &TgdProgram,
    rule_index: usize,
    marking: &crate::classes::sticky::Marking,
    infinite: &BTreeSet<(Predicate, usize)>,
) -> bool {
    let rule = &program.rules()[rule_index];
    for var in rule.body_variables() {
        let occurrences: usize = rule.body.iter().map(|a| a.occurrences_of(var)).sum();
        if occurrences <= 1 {
            continue;
        }
        if !marking.variable_is_marked(program, rule_index, var) {
            continue;
        }
        // The variable is marked and occurs more than once: it must touch at
        // least one finite-rank position.
        let touches_finite = rule.body.iter().any(|atom| {
            atom.positions_of(var)
                .into_iter()
                .any(|i| !infinite.contains(&(atom.predicate, i)))
        });
        if !touches_finite {
            return false;
        }
    }
    true
}

/// True if the program is weakly sticky.
pub fn is_weakly_sticky(program: &TgdProgram) -> bool {
    let marking = compute_marking(program);
    let infinite = infinite_rank_positions(program);
    (0..program.len()).all(|ri| rule_is_weakly_sticky(program, ri, &marking, &infinite))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::sticky::is_sticky;
    use ontorew_chase::is_weakly_acyclic;
    use ontorew_model::parse_program;

    #[test]
    fn sticky_programs_are_weakly_sticky() {
        let programs = [
            "[R1] student(X) -> person(X).",
            "[R1] person(X) -> hasParent(X, Y).\n[R2] hasParent(X, Y) -> person(Y).",
            "[R1] p(X, Y), q(X) -> r(X).",
            "[R1] s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).\n\
             [R2] v(Y1, Y2), q(Y2) -> s(Y1, Y3, Y2).\n\
             [R3] r(Y1, Y2) -> v(Y1, Y2).",
        ];
        for text in programs {
            let p = parse_program(text).unwrap();
            if is_sticky(&p) {
                assert!(is_weakly_sticky(&p), "sticky but not weakly sticky: {text}");
            }
        }
    }

    #[test]
    fn weakly_acyclic_programs_are_weakly_sticky() {
        // With no infinite-rank positions the weak-stickiness condition is
        // vacuously satisfied whenever a marked join variable touches any
        // position at all — i.e. always.
        let programs = [
            "[R1] p(X, Z), q(Z) -> h(X).",
            "[R1] edge(X, Y) -> path(X, Y).\n[R2] path(X, Y), edge(Y, Z) -> path(X, Z).",
            "[R1] emp(X) -> worksFor(X, D).\n[R2] worksFor(X, D) -> dept(D).",
        ];
        for text in programs {
            let p = parse_program(text).unwrap();
            assert!(is_weakly_acyclic(&p), "expected weakly acyclic: {text}");
            assert!(
                is_weakly_sticky(&p),
                "weakly acyclic but not weakly sticky: {text}"
            );
        }
    }

    #[test]
    fn join_on_infinite_rank_positions_is_not_weakly_sticky() {
        // r[1] and r[2] receive fresh nulls through the R1/R2 cycle, and R3
        // joins a marked variable on them twice without touching any
        // finite-rank position.
        let p = parse_program(
            "[R1] r(X, Y) -> r(Y, Z).\n\
             [R2] r(X, Y), r(Y, X) -> bad(X).",
        )
        .unwrap();
        assert!(!is_weakly_acyclic(&p));
        assert!(!is_sticky(&p));
        assert!(!is_weakly_sticky(&p));
    }

    #[test]
    fn non_sticky_join_saved_by_a_finite_rank_position_is_weakly_sticky() {
        // Z is marked (dropped from the head) and occurs in two atoms, but
        // every position of the program has finite rank (no existential-variable
        // cycle), so the program is weakly sticky although not sticky.
        let p = parse_program("[R1] p(X, Z), q(Z) -> h(X).").unwrap();
        assert!(!is_sticky(&p));
        assert!(is_weakly_sticky(&p));
    }

    #[test]
    fn infinite_rank_positions_of_a_self_feeding_rule() {
        let p = parse_program("[R1] r(X, Y) -> r(Y, Z).").unwrap();
        let infinite = infinite_rank_positions(&p);
        // The special edge r[0] => r[1] lies on a cycle (r[1] -> r[0] via the
        // normal edge of Y), so both positions of r have infinite rank.
        assert!(infinite.contains(&(Predicate::new("r", 2), 1)));
        assert!(!infinite.is_empty());
    }

    #[test]
    fn weakly_acyclic_program_has_no_infinite_rank_positions() {
        let p = parse_program("[R1] emp(X) -> worksFor(X, D).\n[R2] worksFor(X, D) -> dept(D).")
            .unwrap();
        assert!(infinite_rank_positions(&p).is_empty());
    }

    #[test]
    fn paper_example2_is_weakly_sticky() {
        // Example 2 is weakly acyclic (no infinite-rank positions), hence
        // weakly sticky — yet not FO-rewritable: tractability of the chase
        // and FO-rewritability are orthogonal, which is exactly the gap the
        // paper's WR class targets.
        let p = parse_program(
            "[R1] t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n\
             [R2] s(Y1, Y1, Y2) -> r(Y2, Y3).",
        )
        .unwrap();
        assert!(is_weakly_sticky(&p));
    }
}
