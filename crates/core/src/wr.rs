//! Weakly Recursive (WR) TGDs — Definition 8 and the paper's conjectures.
//!
//! A set `P` of TGDs is **WR** iff its P-node graph has no cycle containing a
//! d-edge, an m-edge and an s-edge while containing no i-edge. The paper
//! conjectures that (i) every WR set is FO-rewritable, (ii) WR membership is
//! decidable in PSPACE, and (iii) WR strictly subsumes every known
//! FO-rewritable class (including SWR, Linear, Multilinear, Sticky,
//! Sticky-Join, Domain-Restricted and acyclic-GRD).
//!
//! Because the P-node graph can be exponentially larger than the position
//! graph (this is the PTIME → PSPACE jump of §7), the membership test runs
//! under a node budget and reports `Unknown` when the budget is exhausted —
//! precisely situation (ii) of the paper's §7 discussion.

use crate::pnode::{PNodeGraph, PNodeGraphConfig};
use ontorew_model::prelude::*;
use serde::Serialize;

/// Outcome of the WR membership test.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum WrVerdict {
    /// The P-node graph was fully explored and has no dangerous cycle.
    WeaklyRecursive,
    /// A dangerous cycle (d + m + s, no i) was found.
    NotWeaklyRecursive,
    /// The node budget was exhausted before a dangerous cycle was found; the
    /// program may or may not be WR.
    Unknown,
}

/// The result of the WR membership test.
#[derive(Clone, Debug, Serialize)]
pub struct WrReport {
    /// The verdict.
    pub verdict: WrVerdict,
    /// Nodes and edges of the (possibly truncated) P-node graph.
    pub graph_size: (usize, usize),
    /// True if the graph construction hit its node budget.
    pub truncated: bool,
    /// Rendered atoms of a dangerous strongly connected component, if found.
    pub dangerous_nodes: Vec<String>,
}

impl WrReport {
    /// Convenience: `Some(true)` / `Some(false)` when decided, `None` when
    /// unknown.
    pub fn is_wr(&self) -> Option<bool> {
        match self.verdict {
            WrVerdict::WeaklyRecursive => Some(true),
            WrVerdict::NotWeaklyRecursive => Some(false),
            WrVerdict::Unknown => None,
        }
    }
}

/// Run the WR membership test with the given P-node graph budget.
pub fn check_wr_with(program: &TgdProgram, config: &PNodeGraphConfig) -> WrReport {
    let graph = PNodeGraph::build(program, config);
    let graph_size = (graph.node_count(), graph.edge_count());
    if graph.has_dangerous_cycle() {
        let dangerous_nodes = graph
            .dangerous_nodes()
            .map(|ns| ns.iter().map(|n| n.atom.to_string()).collect())
            .unwrap_or_default();
        return WrReport {
            verdict: WrVerdict::NotWeaklyRecursive,
            graph_size,
            truncated: graph.truncated,
            dangerous_nodes,
        };
    }
    WrReport {
        verdict: if graph.truncated {
            WrVerdict::Unknown
        } else {
            WrVerdict::WeaklyRecursive
        },
        graph_size,
        truncated: graph.truncated,
        dangerous_nodes: Vec::new(),
    }
}

/// Run the WR membership test with the default budget.
pub fn check_wr(program: &TgdProgram) -> WrReport {
    check_wr_with(program, &PNodeGraphConfig::default())
}

/// Convenience: `Some(true)` when WR, `Some(false)` when not, `None` when the
/// budgeted construction could not decide.
pub fn is_wr(program: &TgdProgram) -> Option<bool> {
    check_wr(program).is_wr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swr::is_swr;
    use ontorew_model::parse_program;

    fn example1() -> TgdProgram {
        parse_program(
            "[R1] s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).\n\
             [R2] v(Y1, Y2), q(Y2) -> s(Y1, Y3, Y2).\n\
             [R3] r(Y1, Y2) -> v(Y1, Y2).",
        )
        .unwrap()
    }

    fn example2() -> TgdProgram {
        parse_program(
            "[R1] t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n\
             [R2] s(Y1, Y1, Y2) -> r(Y2, Y3).",
        )
        .unwrap()
    }

    fn example3() -> TgdProgram {
        parse_program(
            "[R1] r(Y1, Y2) -> t(Y3, Y1, Y1).\n\
             [R2] s(Y1, Y2, Y3) -> r(Y1, Y2).\n\
             [R3] u(Y1), t(Y1, Y1, Y2) -> s(Y1, Y1, Y2).",
        )
        .unwrap()
    }

    #[test]
    fn example1_is_wr_and_swr() {
        assert_eq!(is_wr(&example1()), Some(true));
        assert!(is_swr(&example1()));
    }

    #[test]
    fn example2_is_not_wr() {
        let report = check_wr(&example2());
        assert_eq!(report.verdict, WrVerdict::NotWeaklyRecursive);
        assert!(!report.dangerous_nodes.is_empty());
    }

    #[test]
    fn example3_is_wr_but_not_swr_nor_in_the_baseline_classes() {
        // This is the paper's flagship separation example: FO-rewritable and
        // WR, but outside Linear, Multilinear, Sticky, Sticky-Join and SWR.
        let p = example3();
        assert_eq!(is_wr(&p), Some(true));
        assert!(!is_swr(&p));
        assert!(!crate::classes::is_linear(&p));
        assert!(!crate::classes::is_multilinear(&p));
        assert!(!crate::classes::is_sticky(&p));
        assert!(!crate::classes::is_sticky_join(&p));
    }

    #[test]
    fn hierarchies_are_wr() {
        let p = parse_program(
            "[R1] student(X) -> person(X).\n\
             [R2] person(X) -> hasParent(X, Y).\n\
             [R3] hasParent(X, Y) -> person(Y).",
        )
        .unwrap();
        assert_eq!(is_wr(&p), Some(true));
    }

    #[test]
    fn tiny_budget_yields_unknown_on_nontrivial_programs() {
        let report = check_wr_with(&example1(), &PNodeGraphConfig { max_nodes: 1 });
        // Either a dangerous cycle was (wrongly) not found and the graph is
        // truncated -> Unknown, never a spurious NotWeaklyRecursive.
        assert_ne!(report.verdict, WrVerdict::NotWeaklyRecursive);
        if report.truncated {
            assert_eq!(report.verdict, WrVerdict::Unknown);
        }
    }

    #[test]
    fn report_exposes_graph_size() {
        let report = check_wr(&example2());
        assert!(report.graph_size.0 > 3);
        assert!(report.graph_size.1 > 3);
    }
}
