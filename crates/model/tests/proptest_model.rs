//! Property-based tests for the data model: parser/printer round trips,
//! substitution algebra and structural invariants of rules and queries.

use ontorew_model::prelude::*;
use proptest::prelude::*;

fn predicate_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["p", "q", "r", "s", "teaches", "attends"]).prop_map(String::from)
}

fn variable_token() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["X", "Y", "Z", "W", "U1", "V2"]).prop_map(String::from)
}

fn constant_token() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "c", "alice", "db101"]).prop_map(String::from)
}

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        variable_token().prop_map(|v| Term::variable(&v)),
        constant_token().prop_map(|c| Term::constant(&c)),
    ]
}

fn atom_strategy() -> impl Strategy<Value = Atom> {
    (
        predicate_name(),
        prop::collection::vec(term_strategy(), 1..4),
    )
        .prop_map(|(p, terms)| Atom::new(&format!("{p}{}", terms.len()), terms))
}

proptest! {
    /// Display → parse round trip for single TGDs.
    #[test]
    fn tgd_display_parse_round_trip(
        body in prop::collection::vec(atom_strategy(), 1..4),
        head in atom_strategy(),
    ) {
        let tgd = Tgd::new(body, vec![head]);
        let rendered = format!("{tgd}");
        let reparsed = parse_tgd(&rendered).unwrap();
        prop_assert_eq!(reparsed.body.len(), tgd.body.len());
        prop_assert_eq!(reparsed.head.len(), tgd.head.len());
        // Structural fingerprints survive the round trip.
        prop_assert_eq!(reparsed.predicates(), tgd.predicates());
        prop_assert_eq!(
            reparsed.distinguished_variables().len(),
            tgd.distinguished_variables().len()
        );
        prop_assert_eq!(
            reparsed.existential_head_variables().len(),
            tgd.existential_head_variables().len()
        );
        prop_assert_eq!(reparsed.is_simple(), tgd.is_simple());
    }

    /// The variable taxonomy partitions the rule variables: distinguished,
    /// existential-head and existential-body variables are pairwise disjoint
    /// and jointly cover all variables.
    #[test]
    fn variable_taxonomy_is_a_partition(
        body in prop::collection::vec(atom_strategy(), 1..4),
        head in prop::collection::vec(atom_strategy(), 1..3),
    ) {
        let tgd = Tgd::new(body, head);
        let distinguished: std::collections::BTreeSet<_> =
            tgd.distinguished_variables().into_iter().collect();
        let ex_head: std::collections::BTreeSet<_> =
            tgd.existential_head_variables().into_iter().collect();
        let ex_body: std::collections::BTreeSet<_> =
            tgd.existential_body_variables().into_iter().collect();
        prop_assert!(distinguished.is_disjoint(&ex_head));
        prop_assert!(distinguished.is_disjoint(&ex_body));
        prop_assert!(ex_head.is_disjoint(&ex_body));
        let all: std::collections::BTreeSet<_> = tgd.variables().into_iter().collect();
        let union: std::collections::BTreeSet<_> = distinguished
            .iter()
            .chain(ex_head.iter())
            .chain(ex_body.iter())
            .copied()
            .collect();
        prop_assert_eq!(all, union);
    }

    /// Freshening preserves every structural property of a rule.
    #[test]
    fn freshening_preserves_structure(
        body in prop::collection::vec(atom_strategy(), 1..4),
        head in atom_strategy(),
    ) {
        let tgd = Tgd::new(body, vec![head]);
        let fresh = tgd.freshen();
        prop_assert_eq!(fresh.body.len(), tgd.body.len());
        prop_assert_eq!(fresh.predicates(), tgd.predicates());
        prop_assert_eq!(fresh.is_simple(), tgd.is_simple());
        prop_assert_eq!(fresh.is_full(), tgd.is_full());
        prop_assert_eq!(
            fresh.distinguished_variables().len(),
            tgd.distinguished_variables().len()
        );
        // Freshening twice gives disjoint variable sets.
        let again = tgd.freshen();
        let a: std::collections::BTreeSet<_> = fresh.variables().into_iter().collect();
        let b: std::collections::BTreeSet<_> = again.variables().into_iter().collect();
        prop_assert!(a.is_disjoint(&b));
    }

    /// Substitution restriction and composition interact as expected.
    #[test]
    fn substitution_restrict_then_apply(
        bindings in prop::collection::vec((variable_token(), constant_token()), 0..5),
        keep in prop::collection::vec(variable_token(), 0..3),
        t in term_strategy(),
    ) {
        let subst = Substitution::from_bindings(
            bindings
                .into_iter()
                .map(|(v, c)| (Variable::new(&v), Term::constant(&c))),
        );
        let keep_vars: Vec<Variable> = keep.iter().map(|v| Variable::new(v)).collect();
        let restricted = subst.restrict(&keep_vars);
        // The restricted substitution never binds anything outside `keep`.
        prop_assert!(restricted.domain().all(|v| keep_vars.contains(&v)));
        // And it agrees with the original wherever it is defined.
        if let Term::Variable(v) = t {
            if restricted.binds(v) {
                prop_assert_eq!(restricted.apply_term(t), subst.apply_term(t));
            }
        }
    }

    /// Instances are insensitive to insertion order and duplicates.
    #[test]
    fn instance_is_a_set(mut facts in prop::collection::vec(
        (predicate_name(), prop::collection::vec(constant_token(), 1..3)),
        0..15,
    )) {
        let to_atom = |(p, args): &(String, Vec<String>)| {
            Atom::fact(&format!("{p}{}", args.len()), &args.iter().map(String::as_str).collect::<Vec<_>>())
        };
        let forward: Instance = facts.iter().map(to_atom).collect();
        facts.reverse();
        let mut backward: Instance = facts.iter().map(to_atom).collect();
        // Re-inserting everything changes nothing.
        for f in facts.iter().map(to_atom) {
            backward.insert(f);
        }
        prop_assert_eq!(forward, backward);
    }

    /// Parsing a rendered program yields the same number of rules, facts and
    /// queries (document-level round trip).
    #[test]
    fn document_round_trip(n_rules in 1usize..4, n_facts in 0usize..4) {
        let mut text = String::new();
        for i in 0..n_rules {
            text.push_str(&format!("[R{i}] p2(X, Y) -> q2(Y, Z{i}).\n"));
        }
        for i in 0..n_facts {
            text.push_str(&format!("p2(a{i}, b{i}).\n"));
        }
        text.push_str("query(X) :- q2(X, Y).\n");
        let doc = parse_document(&text).unwrap();
        prop_assert_eq!(doc.program.len(), n_rules);
        prop_assert_eq!(doc.facts.len(), n_facts);
        prop_assert_eq!(doc.queries.len(), 1);
        let rendered = doc.program.to_string();
        prop_assert_eq!(parse_program(&rendered).unwrap().len(), n_rules);
    }
}
