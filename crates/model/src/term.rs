//! Terms: constants, variables and labelled nulls.

use crate::symbols::{fresh_id, Symbol};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A variable symbol, e.g. `X` in `person(X)`.
///
/// Variables are named (interned) so that parsed rules keep their original
/// variable names; fresh variables minted during the chase or the rewriting
/// are named `_V<n>` with a process-unique `n`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Variable(pub Symbol);

impl Variable {
    /// A variable with the given name.
    pub fn new(name: &str) -> Self {
        Variable(Symbol::intern(name))
    }

    /// A fresh variable guaranteed not to clash with any previously created
    /// variable (its name starts with `_V`).
    pub fn fresh() -> Self {
        Variable(Symbol::intern(&format!("_V{}", fresh_id())))
    }

    /// The variable's name.
    pub fn name(&self) -> &'static str {
        self.0.as_str()
    }

    /// True if this variable was produced by [`Variable::fresh`].
    pub fn is_fresh(&self) -> bool {
        self.name().starts_with("_V")
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.name())
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A constant symbol, e.g. `"alice"`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Constant(pub Symbol);

impl Constant {
    /// A constant with the given name.
    pub fn new(name: &str) -> Self {
        Constant(Symbol::intern(name))
    }

    /// The constant's name.
    pub fn name(&self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Debug for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.name())
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A labelled null, invented by the chase when firing a TGD with existential
/// head variables. Nulls are globally numbered.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Null(pub u64);

impl Null {
    /// A fresh labelled null.
    pub fn fresh() -> Self {
        Null(fresh_id())
    }

    /// The numeric label of the null.
    pub fn id(&self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Null {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:n{}", self.0)
    }
}

impl fmt::Display for Null {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:n{}", self.0)
    }
}

/// A term occurring in an atom: a constant, a variable, or a labelled null.
///
/// Rules and queries only contain constants and variables; labelled nulls
/// appear in chase-produced instances.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Term {
    /// A constant symbol. Interpreted under the Unique Name Assumption.
    Constant(Constant),
    /// A variable symbol.
    Variable(Variable),
    /// A labelled null (an anonymous individual invented by the chase).
    Null(Null),
}

impl Term {
    /// Convenience constructor for a constant term.
    pub fn constant(name: &str) -> Self {
        Term::Constant(Constant::new(name))
    }

    /// Convenience constructor for a variable term.
    pub fn variable(name: &str) -> Self {
        Term::Variable(Variable::new(name))
    }

    /// A fresh variable term.
    pub fn fresh_variable() -> Self {
        Term::Variable(Variable::fresh())
    }

    /// A fresh labelled null term.
    pub fn fresh_null() -> Self {
        Term::Null(Null::fresh())
    }

    /// True if this term is a variable.
    pub fn is_variable(&self) -> bool {
        matches!(self, Term::Variable(_))
    }

    /// True if this term is a constant.
    pub fn is_constant(&self) -> bool {
        matches!(self, Term::Constant(_))
    }

    /// True if this term is a labelled null.
    pub fn is_null(&self) -> bool {
        matches!(self, Term::Null(_))
    }

    /// True if this term is a constant or a null (i.e. not a variable).
    pub fn is_ground(&self) -> bool {
        !self.is_variable()
    }

    /// The variable inside this term, if any.
    pub fn as_variable(&self) -> Option<Variable> {
        match self {
            Term::Variable(v) => Some(*v),
            _ => None,
        }
    }

    /// The constant inside this term, if any.
    pub fn as_constant(&self) -> Option<Constant> {
        match self {
            Term::Constant(c) => Some(*c),
            _ => None,
        }
    }

    /// The null inside this term, if any.
    pub fn as_null(&self) -> Option<Null> {
        match self {
            Term::Null(n) => Some(*n),
            _ => None,
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Constant(c) => write!(f, "{c:?}"),
            Term::Variable(v) => write!(f, "{v:?}"),
            Term::Null(n) => write!(f, "{n:?}"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Constant(c) => write!(f, "\"{c}\""),
            Term::Variable(v) => write!(f, "{v}"),
            Term::Null(n) => write!(f, "{n}"),
        }
    }
}

impl From<Variable> for Term {
    fn from(v: Variable) -> Self {
        Term::Variable(v)
    }
}

impl From<Constant> for Term {
    fn from(c: Constant) -> Self {
        Term::Constant(c)
    }
}

impl From<Null> for Term {
    fn from(n: Null) -> Self {
        Term::Null(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        let c = Term::constant("alice");
        let v = Term::variable("X");
        let n = Term::fresh_null();
        assert!(c.is_constant() && c.is_ground() && !c.is_variable());
        assert!(v.is_variable() && !v.is_ground());
        assert!(n.is_null() && n.is_ground());
    }

    #[test]
    fn accessors_return_expected_variants() {
        let v = Variable::new("X");
        let t: Term = v.into();
        assert_eq!(t.as_variable(), Some(v));
        assert_eq!(t.as_constant(), None);
        assert_eq!(t.as_null(), None);

        let c = Constant::new("bob");
        let t: Term = c.into();
        assert_eq!(t.as_constant(), Some(c));
        assert_eq!(t.as_variable(), None);
    }

    #[test]
    fn equal_names_make_equal_terms() {
        assert_eq!(Term::constant("a"), Term::constant("a"));
        assert_eq!(Term::variable("X"), Term::variable("X"));
        assert_ne!(Term::constant("a"), Term::variable("a"));
    }

    #[test]
    fn fresh_variables_are_distinct_and_marked() {
        let a = Variable::fresh();
        let b = Variable::fresh();
        assert_ne!(a, b);
        assert!(a.is_fresh() && b.is_fresh());
        assert!(!Variable::new("X").is_fresh());
    }

    #[test]
    fn fresh_nulls_are_distinct() {
        assert_ne!(Null::fresh(), Null::fresh());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Term::variable("X")), "X");
        assert_eq!(format!("{}", Term::constant("a")), "\"a\"");
        let n = Term::Null(Null(7));
        assert_eq!(format!("{n}"), "_:n7");
    }

    #[test]
    fn ordering_is_consistent_with_equality() {
        let a = Term::constant("same");
        let b = Term::constant("same");
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
    }
}
