//! Tuple-generating dependencies (TGDs), a.k.a. existential rules.

use crate::atom::{constants_of, predicates_of, variables_of, Atom};
use crate::symbols::Symbol;
use crate::term::{Constant, Term, Variable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A tuple-generating dependency (TGD)
/// `β1, ..., βn → α1, ..., αm`.
///
/// Following the paper (§3):
/// * the **distinguished variables** are those occurring both in the head and
///   in the body (also called the *frontier* in the existential-rule
///   literature);
/// * the **existential body variables** occur only in the body;
/// * the **existential head variables** occur only in the head (these are the
///   existentially quantified variables that give TGDs their "value
///   invention" power).
///
/// The semantics is the first-order sentence
/// `∀x. β1 ∧ ... ∧ βn → ∃y. α1 ∧ ... ∧ αm` under the Unique Name Assumption.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tgd {
    /// Optional rule label (e.g. `R1`), used for diagnostics and reports.
    pub label: Option<Symbol>,
    /// The body atoms `β1, ..., βn` (n ≥ 1).
    pub body: Vec<Atom>,
    /// The head atoms `α1, ..., αm` (m ≥ 1).
    pub head: Vec<Atom>,
}

impl Tgd {
    /// Build a TGD from body and head atoms.
    ///
    /// # Panics
    /// Panics if either the body or the head is empty (the paper requires
    /// n, m ≥ 1).
    pub fn new(body: Vec<Atom>, head: Vec<Atom>) -> Self {
        assert!(!body.is_empty(), "a TGD must have at least one body atom");
        assert!(!head.is_empty(), "a TGD must have at least one head atom");
        Tgd {
            label: None,
            body,
            head,
        }
    }

    /// Build a labelled TGD.
    pub fn labelled(label: &str, body: Vec<Atom>, head: Vec<Atom>) -> Self {
        let mut tgd = Tgd::new(body, head);
        tgd.label = Some(Symbol::intern(label));
        tgd
    }

    /// The rule label, or a placeholder if the rule is unlabelled.
    pub fn label_str(&self) -> &'static str {
        self.label.map(Symbol::as_str).unwrap_or("<unlabelled>")
    }

    /// Variables occurring in the body, in order of first occurrence.
    pub fn body_variables(&self) -> Vec<Variable> {
        variables_of(&self.body)
    }

    /// Variables occurring in the head, in order of first occurrence.
    pub fn head_variables(&self) -> Vec<Variable> {
        variables_of(&self.head)
    }

    /// The distinguished variables (frontier): variables occurring both in
    /// the head and in the body.
    pub fn distinguished_variables(&self) -> Vec<Variable> {
        let body: BTreeSet<Variable> = self.body_variables().into_iter().collect();
        self.head_variables()
            .into_iter()
            .filter(|v| body.contains(v))
            .collect()
    }

    /// The frontier of the rule (synonym for [`Tgd::distinguished_variables`]).
    pub fn frontier(&self) -> Vec<Variable> {
        self.distinguished_variables()
    }

    /// Existential head variables: variables occurring only in the head.
    pub fn existential_head_variables(&self) -> Vec<Variable> {
        let body: BTreeSet<Variable> = self.body_variables().into_iter().collect();
        self.head_variables()
            .into_iter()
            .filter(|v| !body.contains(v))
            .collect()
    }

    /// Existential body variables: variables occurring only in the body.
    pub fn existential_body_variables(&self) -> Vec<Variable> {
        let head: BTreeSet<Variable> = self.head_variables().into_iter().collect();
        self.body_variables()
            .into_iter()
            .filter(|v| !head.contains(v))
            .collect()
    }

    /// All variables of the rule.
    pub fn variables(&self) -> Vec<Variable> {
        let mut vars = self.body_variables();
        let seen: BTreeSet<Variable> = vars.iter().copied().collect();
        for v in self.head_variables() {
            if !seen.contains(&v) {
                vars.push(v);
            }
        }
        vars
    }

    /// All constants of the rule.
    pub fn constants(&self) -> BTreeSet<Constant> {
        let mut cs = constants_of(&self.body);
        cs.extend(constants_of(&self.head));
        cs
    }

    /// All predicates of the rule.
    pub fn predicates(&self) -> BTreeSet<crate::atom::Predicate> {
        let mut ps = predicates_of(&self.body);
        ps.extend(predicates_of(&self.head));
        ps
    }

    /// The maximum predicate arity of the rule.
    pub fn max_arity(&self) -> usize {
        self.predicates().iter().map(|p| p.arity).max().unwrap_or(0)
    }

    /// True if the rule contains a constant anywhere.
    pub fn has_constants(&self) -> bool {
        self.body
            .iter()
            .chain(self.head.iter())
            .any(Atom::has_constants)
    }

    /// True if some atom of the rule contains a repeated variable.
    pub fn has_repeated_variables_in_an_atom(&self) -> bool {
        self.body
            .iter()
            .chain(self.head.iter())
            .any(Atom::has_repeated_variables)
    }

    /// True if the rule is a *simple* TGD in the sense of the paper (§5):
    /// (i) no atom contains a repeated variable, (ii) no constants occur, and
    /// (iii) the head is a single atom.
    pub fn is_simple(&self) -> bool {
        self.head.len() == 1 && !self.has_constants() && !self.has_repeated_variables_in_an_atom()
    }

    /// True if the rule has a single head atom (condition (iii) of simplicity).
    pub fn has_single_head_atom(&self) -> bool {
        self.head.len() == 1
    }

    /// True if the rule is *full* (a plain Datalog rule): it has no
    /// existential head variables.
    pub fn is_full(&self) -> bool {
        self.existential_head_variables().is_empty()
    }

    /// True if the variable `v` is a distinguished variable of the rule.
    pub fn is_distinguished(&self, v: Variable) -> bool {
        self.distinguished_variables().contains(&v)
    }

    /// True if the variable `v` is an existential head variable of the rule.
    pub fn is_existential_head(&self, v: Variable) -> bool {
        self.existential_head_variables().contains(&v)
    }

    /// Rename every variable of the rule with fresh variables (standardising
    /// apart), preserving the rule structure.
    pub fn freshen(&self) -> Tgd {
        let mut renaming = crate::substitution::Substitution::new();
        for v in self.variables() {
            renaming.bind(v, Term::fresh_variable());
        }
        Tgd {
            label: self.label,
            body: renaming.apply_atoms(&self.body),
            head: renaming.apply_atoms(&self.head),
        }
    }

    /// Split a multi-head TGD into single-head TGDs sharing the same body.
    ///
    /// Note: this transformation preserves certain answers only when the head
    /// atoms do not share existential variables; when they do, the rule is
    /// returned unchanged as a single element so that callers do not silently
    /// change the semantics.
    pub fn split_head(&self) -> Vec<Tgd> {
        if self.head.len() <= 1 {
            return vec![self.clone()];
        }
        let ex: BTreeSet<Variable> = self.existential_head_variables().into_iter().collect();
        // Check whether some existential variable is shared across head atoms.
        for v in &ex {
            let occurrences = self
                .head
                .iter()
                .filter(|a| a.variable_set().contains(v))
                .count();
            if occurrences > 1 {
                return vec![self.clone()];
            }
        }
        self.head
            .iter()
            .enumerate()
            .map(|(i, h)| {
                let mut t = Tgd::new(self.body.clone(), vec![h.clone()]);
                t.label = self
                    .label
                    .map(|l| Symbol::intern(&format!("{}#{}", l.as_str(), i + 1)));
                t
            })
            .collect()
    }
}

impl fmt::Debug for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(l) = self.label {
            write!(f, "[{l}] ")?;
        }
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " -> ")?;
        for (i, a) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: &str) -> Term {
        Term::variable(n)
    }

    /// R1 of Example 1: s(Y1,Y2,Y3), t(Y4) -> r(Y1,Y3)
    fn example1_r1() -> Tgd {
        Tgd::labelled(
            "R1",
            vec![
                Atom::new("s", vec![var("Y1"), var("Y2"), var("Y3")]),
                Atom::new("t", vec![var("Y4")]),
            ],
            vec![Atom::new("r", vec![var("Y1"), var("Y3")])],
        )
    }

    /// R2 of Example 1: v(Y1,Y2), q(Y2) -> s(Y1,Y3,Y2)
    fn example1_r2() -> Tgd {
        Tgd::labelled(
            "R2",
            vec![
                Atom::new("v", vec![var("Y1"), var("Y2")]),
                Atom::new("q", vec![var("Y2")]),
            ],
            vec![Atom::new("s", vec![var("Y1"), var("Y3"), var("Y2")])],
        )
    }

    #[test]
    fn distinguished_and_existential_variables() {
        let r1 = example1_r1();
        assert_eq!(
            r1.distinguished_variables(),
            vec![Variable::new("Y1"), Variable::new("Y3")]
        );
        assert_eq!(
            r1.existential_body_variables(),
            vec![Variable::new("Y2"), Variable::new("Y4")]
        );
        assert!(r1.existential_head_variables().is_empty());
        assert!(r1.is_full());

        let r2 = example1_r2();
        assert_eq!(r2.existential_head_variables(), vec![Variable::new("Y3")]);
        assert!(!r2.is_full());
    }

    #[test]
    fn simplicity_of_example1_rules() {
        assert!(example1_r1().is_simple());
        assert!(example1_r2().is_simple());
    }

    #[test]
    fn repeated_variables_break_simplicity() {
        // R2 of Example 2: s(Y1,Y1,Y2) -> r(Y2,Y3)
        let r = Tgd::new(
            vec![Atom::new("s", vec![var("Y1"), var("Y1"), var("Y2")])],
            vec![Atom::new("r", vec![var("Y2"), var("Y3")])],
        );
        assert!(r.has_repeated_variables_in_an_atom());
        assert!(!r.is_simple());
    }

    #[test]
    fn constants_break_simplicity() {
        let r = Tgd::new(
            vec![Atom::new("p", vec![var("X"), Term::constant("a")])],
            vec![Atom::new("q", vec![var("X")])],
        );
        assert!(r.has_constants());
        assert!(!r.is_simple());
    }

    #[test]
    fn multi_head_breaks_simplicity() {
        let r = Tgd::new(
            vec![Atom::new("p", vec![var("X")])],
            vec![
                Atom::new("q", vec![var("X")]),
                Atom::new("t", vec![var("X")]),
            ],
        );
        assert!(!r.is_simple());
        assert!(!r.has_single_head_atom());
    }

    #[test]
    #[should_panic(expected = "at least one body atom")]
    fn empty_body_is_rejected() {
        Tgd::new(vec![], vec![Atom::new("q", vec![var("X")])]);
    }

    #[test]
    #[should_panic(expected = "at least one head atom")]
    fn empty_head_is_rejected() {
        Tgd::new(vec![Atom::new("p", vec![var("X")])], vec![]);
    }

    #[test]
    fn freshen_standardises_apart() {
        let r = example1_r1();
        let fresh = r.freshen();
        assert_eq!(fresh.body.len(), r.body.len());
        assert_eq!(fresh.head.len(), r.head.len());
        // No original variable survives.
        for v in fresh.variables() {
            assert!(v.is_fresh());
        }
        // Structure is preserved: same predicates in the same order.
        assert_eq!(fresh.body[0].predicate, r.body[0].predicate);
        assert_eq!(fresh.head[0].predicate, r.head[0].predicate);
    }

    #[test]
    fn split_head_on_independent_atoms() {
        let r = Tgd::labelled(
            "R",
            vec![Atom::new("p", vec![var("X")])],
            vec![
                Atom::new("q", vec![var("X"), var("Z1")]),
                Atom::new("t", vec![var("X"), var("Z2")]),
            ],
        );
        let split = r.split_head();
        assert_eq!(split.len(), 2);
        assert!(split.iter().all(|t| t.has_single_head_atom()));
    }

    #[test]
    fn split_head_refuses_shared_existentials() {
        let r = Tgd::new(
            vec![Atom::new("p", vec![var("X")])],
            vec![
                Atom::new("q", vec![var("X"), var("Z")]),
                Atom::new("t", vec![var("Z")]),
            ],
        );
        // Z is shared between the two head atoms: splitting would change the
        // semantics, so the rule is returned unchanged.
        assert_eq!(r.split_head().len(), 1);
    }

    #[test]
    fn display_round_trips_structure() {
        let r1 = example1_r1();
        let rendered = format!("{r1}");
        assert!(rendered.contains("[R1]"));
        assert!(rendered.contains("->"));
        assert!(rendered.contains("s(Y1, Y2, Y3)"));
        assert!(rendered.contains("r(Y1, Y3)"));
    }

    #[test]
    fn max_arity_and_predicates() {
        let r1 = example1_r1();
        assert_eq!(r1.max_arity(), 3);
        assert_eq!(r1.predicates().len(), 3);
        assert!(r1.constants().is_empty());
    }
}
