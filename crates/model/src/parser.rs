//! Parser for the textual ontology syntax.
//!
//! The syntax is a small Datalog±/DLGP-style language:
//!
//! ```text
//! % a line comment (also '#')
//! [R1] s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).      % a TGD, optionally labelled
//! v(Y1, Y2), q(Y2) -> s(Y1, Y3, Y2).           % existential variables are
//!                                               % simply head-only variables
//! teaches(alice, db101).                        % a fact (ground atom)
//! q(X) :- r(X, Y), s(Y, Y).                     % a conjunctive query
//! ```
//!
//! * identifiers starting with an **uppercase** letter or `_` are variables;
//! * identifiers starting with a lowercase letter or digits are constants
//!   (in fact/rule argument position) or predicate names (in functor
//!   position); quoted strings `"like this"` are always constants;
//! * a rule is `body -> head .` with comma-separated atom lists on both sides;
//! * a query is `name(answer vars) :- body .`;
//! * a fact is a single ground atom followed by `.`.

use crate::atom::Atom;
use crate::error::ParseError;
use crate::instance::Instance;
use crate::program::TgdProgram;
use crate::query::ConjunctiveQuery;
use crate::rule::Tgd;
use crate::term::{Term, Variable};
use std::collections::BTreeSet;

/// The result of parsing a document: TGDs, ground facts and queries.
#[derive(Clone, Debug, Default)]
pub struct ParsedDocument {
    /// The TGDs, in document order.
    pub program: TgdProgram,
    /// The ground facts.
    pub facts: Instance,
    /// The conjunctive queries, in document order.
    pub queries: Vec<ConjunctiveQuery>,
}

/// Parse a full document (rules, facts and queries).
pub fn parse_document(input: &str) -> Result<ParsedDocument, ParseError> {
    Parser::new(input).parse_document()
}

/// Parse a document and return only its TGD program.
pub fn parse_program(input: &str) -> Result<TgdProgram, ParseError> {
    Ok(parse_document(input)?.program)
}

/// Parse a single conjunctive query, e.g. `q(X) :- r(X, Y).`
/// (the trailing period is optional for single queries).
pub fn parse_query(input: &str) -> Result<ConjunctiveQuery, ParseError> {
    let doc = parse_document(ensure_period(input).as_ref())?;
    doc.queries
        .into_iter()
        .next()
        .ok_or_else(|| ParseError::new(1, 1, "expected a conjunctive query (name(vars) :- body)"))
}

/// Parse a single TGD, e.g. `p(X) -> q(X, Y).`
/// (the trailing period is optional for single rules).
pub fn parse_tgd(input: &str) -> Result<Tgd, ParseError> {
    let doc = parse_document(ensure_period(input).as_ref())?;
    doc.program
        .rules()
        .first()
        .cloned()
        .ok_or_else(|| ParseError::new(1, 1, "expected a TGD (body -> head)"))
}

fn ensure_period(input: &str) -> String {
    let trimmed = input.trim_end();
    if trimmed.ends_with('.') {
        trimmed.to_owned()
    } else {
        format!("{trimmed}.")
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    Ident(String),
    Quoted(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Period,
    Arrow,     // ->
    Turnstile, // :-
}

#[derive(Clone, Debug)]
struct Spanned {
    token: Token,
    line: usize,
    column: usize,
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Self {
        Parser {
            tokens: tokenize(input),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        match self.peek() {
            Some(s) => ParseError::new(s.line, s.column, message),
            None => {
                let (line, column) = self
                    .tokens
                    .last()
                    .map(|s| (s.line, s.column))
                    .unwrap_or((1, 1));
                ParseError::new(line, column, message)
            }
        }
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(s) if &s.token == expected => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.error_here(format!("expected {what}"))),
        }
    }

    fn parse_document(&mut self) -> Result<ParsedDocument, ParseError> {
        let mut doc = ParsedDocument::default();
        while self.peek().is_some() {
            self.parse_statement(&mut doc)?;
        }
        Ok(doc)
    }

    fn parse_statement(&mut self, doc: &mut ParsedDocument) -> Result<(), ParseError> {
        // Optional rule label: [R1]
        let label = if matches!(self.peek().map(|s| &s.token), Some(Token::LBracket)) {
            self.next();
            let name = match self.next() {
                Some(Spanned {
                    token: Token::Ident(name),
                    ..
                }) => name,
                _ => return Err(self.error_here("expected a rule label inside '[...]'")),
            };
            self.expect(&Token::RBracket, "']' after rule label")?;
            Some(name)
        } else {
            None
        };

        let first_atoms = self.parse_atom_list()?;

        match self.peek().map(|s| s.token.clone()) {
            Some(Token::Arrow) => {
                self.next();
                let head = self.parse_atom_list()?;
                self.expect(&Token::Period, "'.' at the end of the rule")?;
                let mut tgd = Tgd::new(first_atoms, head);
                if let Some(l) = label {
                    tgd.label = Some(crate::symbols::Symbol::intern(&l));
                }
                doc.program.push(tgd);
                Ok(())
            }
            Some(Token::Turnstile) => {
                // first_atoms must be a single head atom q(X, Y, ...)
                if first_atoms.len() != 1 {
                    return Err(self.error_here(
                        "a query must have a single head atom of the form name(vars)",
                    ));
                }
                let head = &first_atoms[0];
                let mut answer_vars = Vec::new();
                for t in &head.terms {
                    match t {
                        Term::Variable(v) => answer_vars.push(*v),
                        _ => {
                            return Err(self.error_here("query answer arguments must be variables"))
                        }
                    }
                }
                self.next();
                let body = self.parse_atom_list()?;
                self.expect(&Token::Period, "'.' at the end of the query")?;
                let body_vars: BTreeSet<Variable> =
                    crate::atom::variables_of(&body).into_iter().collect();
                for v in &answer_vars {
                    if !body_vars.contains(v) {
                        return Err(self.error_here(format!(
                            "answer variable {v} does not occur in the query body"
                        )));
                    }
                }
                let q =
                    ConjunctiveQuery::new(answer_vars, body).named(head.predicate.name.as_str());
                doc.queries.push(q);
                Ok(())
            }
            Some(Token::Period) => {
                self.next();
                // Facts: every atom must be ground.
                for a in first_atoms {
                    if !a.is_ground() {
                        return Err(self.error_here(format!(
                            "fact {a} contains variables; facts must be ground"
                        )));
                    }
                    doc.facts.insert(a);
                }
                Ok(())
            }
            _ => Err(self.error_here("expected '->', ':-' or '.' after atom list")),
        }
    }

    fn parse_atom_list(&mut self) -> Result<Vec<Atom>, ParseError> {
        let mut atoms = vec![self.parse_atom()?];
        while matches!(self.peek().map(|s| &s.token), Some(Token::Comma)) {
            self.next();
            atoms.push(self.parse_atom()?);
        }
        Ok(atoms)
    }

    fn parse_atom(&mut self) -> Result<Atom, ParseError> {
        let name = match self.next() {
            Some(Spanned {
                token: Token::Ident(name),
                ..
            }) => name,
            _ => return Err(self.error_here("expected a predicate name")),
        };
        self.expect(&Token::LParen, "'(' after predicate name")?;
        let mut terms = Vec::new();
        if matches!(self.peek().map(|s| &s.token), Some(Token::RParen)) {
            self.next();
            return Ok(Atom::new(&name, terms));
        }
        loop {
            terms.push(self.parse_term()?);
            match self.next() {
                Some(Spanned {
                    token: Token::Comma,
                    ..
                }) => continue,
                Some(Spanned {
                    token: Token::RParen,
                    ..
                }) => break,
                _ => return Err(self.error_here("expected ',' or ')' in argument list")),
            }
        }
        Ok(Atom::new(&name, terms))
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.next() {
            Some(Spanned {
                token: Token::Ident(name),
                ..
            }) => {
                let first = name.chars().next().unwrap_or('a');
                if first.is_uppercase() || first == '_' {
                    Ok(Term::variable(&name))
                } else {
                    Ok(Term::constant(&name))
                }
            }
            Some(Spanned {
                token: Token::Quoted(name),
                ..
            }) => Ok(Term::constant(&name)),
            _ => Err(self.error_here("expected a term (variable, constant or \"quoted\")")),
        }
    }
}

fn tokenize(input: &str) -> Vec<Spanned> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut column = 1usize;
    let mut chars = input.chars().peekable();

    macro_rules! advance {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        };
    }

    while let Some(&c) = chars.peek() {
        let (tok_line, tok_col) = (line, column);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                chars.next();
                advance!(c);
            }
            '%' | '#' => {
                // Line comment.
                while let Some(&c) = chars.peek() {
                    chars.next();
                    advance!(c);
                    if c == '\n' {
                        break;
                    }
                }
            }
            '(' => {
                chars.next();
                advance!(c);
                tokens.push(Spanned {
                    token: Token::LParen,
                    line: tok_line,
                    column: tok_col,
                });
            }
            ')' => {
                chars.next();
                advance!(c);
                tokens.push(Spanned {
                    token: Token::RParen,
                    line: tok_line,
                    column: tok_col,
                });
            }
            '[' => {
                chars.next();
                advance!(c);
                tokens.push(Spanned {
                    token: Token::LBracket,
                    line: tok_line,
                    column: tok_col,
                });
            }
            ']' => {
                chars.next();
                advance!(c);
                tokens.push(Spanned {
                    token: Token::RBracket,
                    line: tok_line,
                    column: tok_col,
                });
            }
            ',' => {
                chars.next();
                advance!(c);
                tokens.push(Spanned {
                    token: Token::Comma,
                    line: tok_line,
                    column: tok_col,
                });
            }
            '.' => {
                chars.next();
                advance!(c);
                tokens.push(Spanned {
                    token: Token::Period,
                    line: tok_line,
                    column: tok_col,
                });
            }
            '-' => {
                chars.next();
                advance!(c);
                if chars.peek() == Some(&'>') {
                    chars.next();
                    advance!('>');
                    tokens.push(Spanned {
                        token: Token::Arrow,
                        line: tok_line,
                        column: tok_col,
                    });
                } else {
                    // A stray '-', treat as part of an identifier start; emit
                    // an identifier beginning with '-' so the parser reports a
                    // sensible error.
                    tokens.push(Spanned {
                        token: Token::Ident("-".to_owned()),
                        line: tok_line,
                        column: tok_col,
                    });
                }
            }
            ':' => {
                chars.next();
                advance!(c);
                if chars.peek() == Some(&'-') {
                    chars.next();
                    advance!('-');
                    tokens.push(Spanned {
                        token: Token::Turnstile,
                        line: tok_line,
                        column: tok_col,
                    });
                } else {
                    tokens.push(Spanned {
                        token: Token::Ident(":".to_owned()),
                        line: tok_line,
                        column: tok_col,
                    });
                }
            }
            '"' => {
                chars.next();
                advance!(c);
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    chars.next();
                    advance!(c);
                    if c == '"' {
                        break;
                    }
                    s.push(c);
                }
                tokens.push(Spanned {
                    token: Token::Quoted(s),
                    line: tok_line,
                    column: tok_col,
                });
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '\'' {
                        s.push(c);
                        chars.next();
                        advance!(c);
                    } else {
                        break;
                    }
                }
                tokens.push(Spanned {
                    token: Token::Ident(s),
                    line: tok_line,
                    column: tok_col,
                });
            }
            other => {
                // Unknown character: surface it as an identifier token so the
                // parser produces a located error message.
                chars.next();
                advance!(other);
                tokens.push(Spanned {
                    token: Token::Ident(other.to_string()),
                    line: tok_line,
                    column: tok_col,
                });
            }
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Variable;

    #[test]
    fn parses_example1_program() {
        let doc = parse_document(
            r#"
            % Example 1 of the paper
            [R1] s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).
            [R2] v(Y1, Y2), q(Y2) -> s(Y1, Y3, Y2).
            [R3] r(Y1, Y2) -> v(Y1, Y2).
            "#,
        )
        .unwrap();
        assert_eq!(doc.program.len(), 3);
        assert!(doc.program.is_simple());
        assert_eq!(doc.program.rules()[0].label_str(), "R1");
        assert_eq!(doc.program.rules()[1].existential_head_variables().len(), 1);
    }

    #[test]
    fn parses_facts_and_queries() {
        let doc = parse_document(
            r#"
            teaches(alice, db101).
            teaches("bob", "ai102").
            q(X) :- teaches(X, Y).
            "#,
        )
        .unwrap();
        assert_eq!(doc.facts.len(), 2);
        assert_eq!(doc.queries.len(), 1);
        assert_eq!(doc.queries[0].answer_vars, vec![Variable::new("X")]);
    }

    #[test]
    fn parses_boolean_query_with_constant() {
        // The query of Example 2: q() :- r("a", X).
        let q = parse_query(r#"q() :- r("a", X)"#).unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.body.len(), 1);
        assert!(q.body[0].terms[0].is_constant());
        assert!(q.body[0].terms[1].is_variable());
    }

    #[test]
    fn parses_single_tgd_without_period() {
        let tgd = parse_tgd("person(X) -> agent(X)").unwrap();
        assert_eq!(tgd.body.len(), 1);
        assert_eq!(tgd.head.len(), 1);
        assert!(tgd.is_full());
    }

    #[test]
    fn lowercase_arguments_are_constants_uppercase_are_variables() {
        let tgd = parse_tgd("p(X, alice) -> q(X)").unwrap();
        assert!(tgd.body[0].terms[0].is_variable());
        assert!(tgd.body[0].terms[1].is_constant());
    }

    #[test]
    fn underscore_starts_a_variable() {
        let tgd = parse_tgd("p(_x, Y) -> q(Y)").unwrap();
        assert!(tgd.body[0].terms[0].is_variable());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let doc = parse_document("% nothing here\n\n# nor here\np(a).\n").unwrap();
        assert_eq!(doc.facts.len(), 1);
    }

    #[test]
    fn multi_head_rules_parse() {
        let tgd = parse_tgd("p(X) -> q(X, Z), t(Z)").unwrap();
        assert_eq!(tgd.head.len(), 2);
        assert_eq!(tgd.existential_head_variables(), vec![Variable::new("Z")]);
    }

    #[test]
    fn zero_arity_atoms_parse() {
        let doc = parse_document("alarm().\nq() :- alarm().").unwrap();
        assert_eq!(doc.facts.len(), 1);
        assert!(doc.queries[0].is_boolean());
    }

    #[test]
    fn error_on_nonground_fact() {
        let err = parse_document("p(X).").unwrap_err();
        assert!(err.message.contains("ground"));
    }

    #[test]
    fn error_on_missing_period() {
        let err = parse_document("p(a) -> q(a)").unwrap_err();
        assert!(err.message.contains("'.'"));
    }

    #[test]
    fn error_on_unsafe_query() {
        let err = parse_document("q(X, W) :- r(X, Y).").unwrap_err();
        assert!(err.message.contains("does not occur"));
    }

    #[test]
    fn error_positions_point_to_the_problem() {
        let err = parse_document("p(a).\nq(b) -> ??.").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn error_on_constant_answer_variable() {
        let err = parse_document("q(a) :- r(a, b).").unwrap_err();
        assert!(err.message.contains("must be variables"));
    }

    #[test]
    fn round_trip_program_display_then_parse() {
        let original =
            parse_program("[R1] s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).\n[R2] r(X, Y) -> v(X, Y).")
                .unwrap();
        let rendered = original.to_string();
        let reparsed = parse_program(&rendered).unwrap();
        assert_eq!(original.len(), reparsed.len());
        for (a, b) in original.iter().zip(reparsed.iter()) {
            assert_eq!(a.body.len(), b.body.len());
            assert_eq!(a.head.len(), b.head.len());
        }
    }
}
