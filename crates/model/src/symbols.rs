//! Interned symbols.
//!
//! Every name that appears in an ontology — predicate names, constant names,
//! variable names — is interned into a global [`SymbolTable`] and represented
//! by a compact [`Symbol`] (a `u32` index). All hot paths in the chase, the
//! rewriting engine and the classifiers therefore hash and compare integers
//! rather than strings.
//!
//! The table is global and append-only: interned strings are leaked (they live
//! for the lifetime of the process), which keeps `Symbol::as_str` allocation-
//! free and avoids threading an interner handle through every API. Ontologies
//! have a bounded vocabulary, so the leak is bounded too.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// An interned string. Cheap to copy, hash and compare.
///
/// Two `Symbol`s are equal if and only if they were interned from equal
/// strings.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct SymbolTableInner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

/// The global symbol table. Access it through [`Symbol::intern`] and
/// [`Symbol::as_str`]; the type is public only so that statistics can be
/// reported (see [`SymbolTable::len`]).
pub struct SymbolTable {
    inner: RwLock<SymbolTableInner>,
}

impl SymbolTable {
    fn new() -> Self {
        SymbolTable {
            inner: RwLock::new(SymbolTableInner {
                by_name: HashMap::new(),
                names: Vec::new(),
            }),
        }
    }

    /// Number of distinct symbols interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().names.len()
    }

    /// True if no symbol has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn intern(&self, name: &str) -> Symbol {
        if let Some(&id) = self.inner.read().by_name.get(name) {
            return Symbol(id);
        }
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_name.get(name) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = inner.names.len() as u32;
        inner.names.push(leaked);
        inner.by_name.insert(leaked, id);
        Symbol(id)
    }

    fn resolve(&self, sym: Symbol) -> &'static str {
        self.inner.read().names[sym.0 as usize]
    }
}

fn global_table() -> &'static SymbolTable {
    use std::sync::OnceLock;
    static TABLE: OnceLock<SymbolTable> = OnceLock::new();
    TABLE.get_or_init(SymbolTable::new)
}

impl Symbol {
    /// Intern `name`, returning its symbol. Idempotent.
    pub fn intern(name: &str) -> Symbol {
        global_table().intern(name)
    }

    /// The string this symbol was interned from.
    pub fn as_str(self) -> &'static str {
        global_table().resolve(self)
    }

    /// The raw index of the symbol inside the global table. Stable within a
    /// process run; useful as a dense map key.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::intern(&s)
    }
}

impl serde::Serialize for Symbol {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> serde::Deserialize<'de> for Symbol {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(Symbol::intern(&s))
    }
}

static FRESH_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Returns a process-unique counter value, used to mint fresh variable and
/// null names that cannot clash with user-written names.
pub fn fresh_id() -> u64 {
    FRESH_COUNTER.fetch_add(1, Ordering::Relaxed)
}

/// Number of symbols interned in the global table (diagnostic).
pub fn interned_symbol_count() -> usize {
    global_table().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("person");
        let b = Symbol::intern("person");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "person");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::intern("alpha-test-1");
        let b = Symbol::intern("alpha-test-2");
        assert_ne!(a, b);
        assert_ne!(a.index(), b.index());
    }

    #[test]
    fn display_and_debug_render_the_name() {
        let a = Symbol::intern("teaches");
        assert_eq!(format!("{a}"), "teaches");
        assert!(format!("{a:?}").contains("teaches"));
    }

    #[test]
    fn from_str_and_string() {
        let a: Symbol = "employee".into();
        let b: Symbol = String::from("employee").into();
        assert_eq!(a, b);
    }

    #[test]
    fn fresh_ids_are_strictly_increasing() {
        let a = fresh_id();
        let b = fresh_id();
        assert!(b > a);
    }

    #[test]
    fn ordering_is_total() {
        let a = Symbol::intern("ord-a");
        let b = Symbol::intern("ord-b");
        // Ordering is by interning index, not lexicographic; it only needs to
        // be total and stable.
        assert!(a < b || b < a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn symbol_table_reports_growth() {
        let before = interned_symbol_count();
        Symbol::intern("a-definitely-new-symbol-for-growth-test");
        assert!(interned_symbol_count() >= before);
    }

    #[test]
    fn concurrent_interning_yields_consistent_ids() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("concurrent-symbol").index()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
