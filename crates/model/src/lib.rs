//! # ontorew-model
//!
//! The core data model for *query answering over ontologies specified via
//! database dependencies* (Civili, SIGMOD 2014 PhD Symposium): terms, atoms,
//! tuple-generating dependencies (TGDs), conjunctive queries, instances and a
//! small textual syntax.
//!
//! Everything downstream — the chase (`ontorew-chase`), the UCQ rewriting
//! engine (`ontorew-rewrite`), the graph-based FO-rewritability classifiers
//! (`ontorew-core`) and the OBDA facade (`ontorew-obda`) — is written against
//! the types of this crate.
//!
//! ## Quick tour
//!
//! ```
//! use ontorew_model::prelude::*;
//!
//! // Parse Example 1 of the paper.
//! let program = parse_program(
//!     "[R1] s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).\n\
//!      [R2] v(Y1, Y2), q(Y2) -> s(Y1, Y3, Y2).\n\
//!      [R3] r(Y1, Y2) -> v(Y1, Y2).",
//! ).unwrap();
//! assert!(program.is_simple());
//!
//! // Parse a conjunctive query.
//! let q = parse_query("q(X) :- r(X, Y)").unwrap();
//! assert_eq!(q.arity(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atom;
pub mod error;
pub mod instance;
pub mod parser;
pub mod program;
pub mod query;
pub mod rule;
pub mod signature;
pub mod substitution;
pub mod symbols;
pub mod term;

pub use atom::{Atom, Predicate};
pub use error::{ModelError, ParseError};
pub use instance::{intersect_sorted, pattern_matches, Candidates, IndexedRelation, Instance};
pub use parser::{parse_document, parse_program, parse_query, parse_tgd, ParsedDocument};
pub use program::TgdProgram;
pub use query::{ConjunctiveQuery, UnionOfConjunctiveQueries};
pub use rule::Tgd;
pub use signature::Signature;
pub use substitution::{freshen_variables, Substitution};
pub use symbols::Symbol;
pub use term::{Constant, Null, Term, Variable};

/// Convenient glob import: `use ontorew_model::prelude::*;`.
pub mod prelude {
    pub use crate::atom::{constants_of, predicates_of, variables_of, Atom, Predicate};
    pub use crate::error::{ModelError, ParseError};
    pub use crate::instance::{
        intersect_sorted, pattern_matches, Candidates, IndexedRelation, Instance,
    };
    pub use crate::parser::{
        parse_document, parse_program, parse_query, parse_tgd, ParsedDocument,
    };
    pub use crate::program::TgdProgram;
    pub use crate::query::{ConjunctiveQuery, UnionOfConjunctiveQueries};
    pub use crate::rule::Tgd;
    pub use crate::signature::Signature;
    pub use crate::substitution::{freshen_variables, Substitution};
    pub use crate::symbols::Symbol;
    pub use crate::term::{Constant, Null, Term, Variable};
}
