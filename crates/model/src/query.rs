//! Conjunctive queries (CQs) and unions of conjunctive queries (UCQs).

use crate::atom::{variables_of, Atom};
use crate::substitution::Substitution;
use crate::symbols::Symbol;
use crate::term::{Term, Variable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A conjunctive query `q(x) :- α1, ..., αn`.
///
/// The variables in `answer_vars` are the **distinguished variables** of the
/// query (its free variables); every other variable occurring in the body is
/// an **existential variable** of the query. Following the paper, existential
/// variables occurring in more than one body atom are called
/// **NLE-variables** (non-local existential variables, i.e. existential join
/// variables).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    /// Optional query name (defaults to `q` for display).
    pub name: Option<Symbol>,
    /// The distinguished (answer) variables, in answer-tuple order.
    pub answer_vars: Vec<Variable>,
    /// The body atoms.
    pub body: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Build a CQ from answer variables and body atoms.
    ///
    /// # Panics
    /// Panics if the body is empty or if some answer variable does not occur
    /// in the body (the paper requires every distinguished variable to occur
    /// at least once in the body).
    pub fn new(answer_vars: Vec<Variable>, body: Vec<Atom>) -> Self {
        assert!(!body.is_empty(), "a CQ must have a non-empty body");
        let body_vars: BTreeSet<Variable> = variables_of(&body).into_iter().collect();
        for v in &answer_vars {
            assert!(
                body_vars.contains(v),
                "answer variable {v} does not occur in the query body"
            );
        }
        ConjunctiveQuery {
            name: None,
            answer_vars,
            body,
        }
    }

    /// Build a boolean CQ (no answer variables).
    pub fn boolean(body: Vec<Atom>) -> Self {
        ConjunctiveQuery::new(vec![], body)
    }

    /// Attach a name to the query.
    pub fn named(mut self, name: &str) -> Self {
        self.name = Some(Symbol::intern(name));
        self
    }

    /// The query arity (number of answer variables).
    pub fn arity(&self) -> usize {
        self.answer_vars.len()
    }

    /// True if the query is boolean.
    pub fn is_boolean(&self) -> bool {
        self.answer_vars.is_empty()
    }

    /// All variables of the body, in order of first occurrence.
    pub fn variables(&self) -> Vec<Variable> {
        variables_of(&self.body)
    }

    /// The existential (non-distinguished) variables of the query.
    pub fn existential_variables(&self) -> Vec<Variable> {
        let answers: BTreeSet<Variable> = self.answer_vars.iter().copied().collect();
        self.variables()
            .into_iter()
            .filter(|v| !answers.contains(v))
            .collect()
    }

    /// The NLE-variables of the query: existential variables occurring in at
    /// least two distinct body atoms (existential join variables).
    pub fn nle_variables(&self) -> Vec<Variable> {
        self.existential_variables()
            .into_iter()
            .filter(|v| {
                self.body
                    .iter()
                    .filter(|a| a.variable_set().contains(v))
                    .count()
                    >= 2
            })
            .collect()
    }

    /// True if `v` is a distinguished (answer) variable of the query.
    pub fn is_distinguished(&self, v: Variable) -> bool {
        self.answer_vars.contains(&v)
    }

    /// Apply a substitution to the query body and to the answer variables
    /// (answer variables mapped to non-variable terms are dropped from the
    /// answer list; use with care — primarily intended for internal rewriting
    /// machinery where answer variables are never bound to constants).
    pub fn apply(&self, subst: &Substitution) -> ConjunctiveQuery {
        let body = subst.apply_atoms(&self.body);
        let answer_vars = self
            .answer_vars
            .iter()
            .map(|v| match subst.apply_term(Term::Variable(*v)) {
                Term::Variable(w) => w,
                _ => *v,
            })
            .collect();
        ConjunctiveQuery {
            name: self.name,
            answer_vars,
            body,
        }
    }

    /// Rename every variable with fresh variables, preserving the query
    /// structure (answer variables included).
    pub fn freshen(&self) -> ConjunctiveQuery {
        let mut renaming = Substitution::new();
        for v in self.variables() {
            renaming.bind(v, Term::fresh_variable());
        }
        self.apply(&renaming)
    }

    /// Number of body atoms.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// True if the body has exactly one atom.
    pub fn is_atomic(&self) -> bool {
        self.body.len() == 1
    }

    /// Never true: a CQ body is non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }
}

impl fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = self.name.map(Symbol::as_str).unwrap_or("q");
        write!(f, "{name}(")?;
        for (i, v) in self.answer_vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// A union of conjunctive queries: a set of CQs of the same arity.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnionOfConjunctiveQueries {
    /// The common arity of all disjuncts.
    pub arity: usize,
    /// The disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionOfConjunctiveQueries {
    /// Build a UCQ from disjuncts.
    ///
    /// # Panics
    /// Panics if the disjunct list is empty or the disjuncts disagree on
    /// arity.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Self {
        assert!(
            !disjuncts.is_empty(),
            "a UCQ must contain at least one disjunct"
        );
        let arity = disjuncts[0].arity();
        for q in &disjuncts {
            assert_eq!(q.arity(), arity, "all UCQ disjuncts must share the arity");
        }
        UnionOfConjunctiveQueries { arity, disjuncts }
    }

    /// A UCQ with a single disjunct.
    pub fn singleton(q: ConjunctiveQuery) -> Self {
        UnionOfConjunctiveQueries::new(vec![q])
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// Never true: a UCQ is non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Iterate over the disjuncts.
    pub fn iter(&self) -> impl Iterator<Item = &ConjunctiveQuery> {
        self.disjuncts.iter()
    }

    /// Total number of body atoms across all disjuncts (a common size measure
    /// for rewritings).
    pub fn total_atoms(&self) -> usize {
        self.disjuncts.iter().map(ConjunctiveQuery::len).sum()
    }
}

impl fmt::Debug for UnionOfConjunctiveQueries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for UnionOfConjunctiveQueries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, q) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{q}")?;
        }
        Ok(())
    }
}

impl IntoIterator for UnionOfConjunctiveQueries {
    type Item = ConjunctiveQuery;
    type IntoIter = std::vec::IntoIter<ConjunctiveQuery>;
    fn into_iter(self) -> Self::IntoIter {
        self.disjuncts.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: &str) -> Term {
        Term::variable(n)
    }

    fn sample_cq() -> ConjunctiveQuery {
        // q(X) :- r(X, Y), s(Y, Z), t(Z, Z)
        ConjunctiveQuery::new(
            vec![Variable::new("X")],
            vec![
                Atom::new("r", vec![var("X"), var("Y")]),
                Atom::new("s", vec![var("Y"), var("Z")]),
                Atom::new("t", vec![var("Z"), var("Z")]),
            ],
        )
    }

    #[test]
    fn arity_and_variable_partition() {
        let q = sample_cq();
        assert_eq!(q.arity(), 1);
        assert!(!q.is_boolean());
        assert_eq!(
            q.existential_variables(),
            vec![Variable::new("Y"), Variable::new("Z")]
        );
        assert!(q.is_distinguished(Variable::new("X")));
        assert!(!q.is_distinguished(Variable::new("Y")));
    }

    #[test]
    fn nle_variables_are_existential_join_variables() {
        let q = sample_cq();
        // Y occurs in r and s; Z occurs in s and t (twice in t, but what
        // matters is the two distinct atoms).
        assert_eq!(
            q.nle_variables(),
            vec![Variable::new("Y"), Variable::new("Z")]
        );
    }

    #[test]
    fn nle_excludes_variables_local_to_one_atom() {
        let q = ConjunctiveQuery::boolean(vec![
            Atom::new("t", vec![var("Z"), var("Z")]),
            Atom::new("r", vec![var("W"), var("U")]),
        ]);
        assert!(q.nle_variables().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty body")]
    fn empty_body_is_rejected() {
        ConjunctiveQuery::new(vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "does not occur in the query body")]
    fn unsafe_answer_variable_is_rejected() {
        ConjunctiveQuery::new(
            vec![Variable::new("W")],
            vec![Atom::new("r", vec![var("X"), var("Y")])],
        );
    }

    #[test]
    fn boolean_query_construction() {
        let q =
            ConjunctiveQuery::boolean(vec![Atom::new("r", vec![Term::constant("a"), var("X")])]);
        assert!(q.is_boolean());
        assert_eq!(q.arity(), 0);
        assert_eq!(q.existential_variables(), vec![Variable::new("X")]);
    }

    #[test]
    fn apply_substitution_rewrites_body() {
        let q = sample_cq();
        let mut s = Substitution::new();
        s.bind(Variable::new("Y"), Term::constant("c"));
        let q2 = q.apply(&s);
        assert_eq!(q2.body[0].terms[1], Term::constant("c"));
        assert_eq!(q2.answer_vars, q.answer_vars);
    }

    #[test]
    fn freshen_preserves_shape() {
        let q = sample_cq();
        let f = q.freshen();
        assert_eq!(f.arity(), 1);
        assert_eq!(f.len(), 3);
        assert!(f.variables().iter().all(Variable::is_fresh));
        // Join structure preserved: variable shared between atoms 0 and 1.
        assert_eq!(f.body[0].terms[1], f.body[1].terms[0]);
    }

    #[test]
    fn display_format() {
        let q = sample_cq().named("myq");
        let s = format!("{q}");
        assert!(s.starts_with("myq(X) :- "));
        assert!(s.contains("t(Z, Z)"));
    }

    #[test]
    fn ucq_construction_and_size() {
        let q1 = sample_cq();
        let q2 = ConjunctiveQuery::new(
            vec![Variable::new("X")],
            vec![Atom::new("u", vec![var("X")])],
        );
        let ucq = UnionOfConjunctiveQueries::new(vec![q1, q2]);
        assert_eq!(ucq.len(), 2);
        assert_eq!(ucq.arity, 1);
        assert_eq!(ucq.total_atoms(), 4);
    }

    #[test]
    #[should_panic(expected = "share the arity")]
    fn mixed_arity_ucq_is_rejected() {
        let q1 = sample_cq();
        let q2 = ConjunctiveQuery::boolean(vec![Atom::new("u", vec![var("X")])]);
        UnionOfConjunctiveQueries::new(vec![q1, q2]);
    }

    #[test]
    fn singleton_ucq_iterates_once() {
        let ucq = UnionOfConjunctiveQueries::singleton(sample_cq());
        assert_eq!(ucq.iter().count(), 1);
        assert_eq!(ucq.into_iter().count(), 1);
    }
}
