//! TGD programs: finite sets of TGDs with derived metadata.

use crate::atom::Predicate;
use crate::rule::Tgd;
use crate::signature::Signature;
use crate::term::Constant;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A finite set `P` of TGDs (the intensional layer of an OBDA system).
///
/// The program keeps the rules in insertion order (rule labels such as `R1`,
/// `R2` refer to this order when unlabelled) and exposes the derived
/// metadata used throughout the stack: signature, constants, maximum arity,
/// and the simplicity check of the paper.
#[derive(Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TgdProgram {
    rules: Vec<Tgd>,
}

impl TgdProgram {
    /// The empty program.
    pub fn new() -> Self {
        TgdProgram::default()
    }

    /// Build a program from rules.
    pub fn from_rules<I: IntoIterator<Item = Tgd>>(rules: I) -> Self {
        TgdProgram {
            rules: rules.into_iter().collect(),
        }
    }

    /// Append a rule.
    pub fn push(&mut self, rule: Tgd) {
        self.rules.push(rule);
    }

    /// The rules, in insertion order.
    pub fn rules(&self) -> &[Tgd] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterate over the rules.
    pub fn iter(&self) -> impl Iterator<Item = &Tgd> {
        self.rules.iter()
    }

    /// The signature of the program (all predicates of all rules).
    ///
    /// # Panics
    /// Panics if the same relation name is used with two different arities;
    /// use [`TgdProgram::try_signature`] for a fallible variant.
    pub fn signature(&self) -> Signature {
        self.try_signature()
            .expect("arity conflict in program signature")
    }

    /// The signature of the program, or an error on arity conflict.
    pub fn try_signature(&self) -> Result<Signature, crate::signature::ArityConflict> {
        let mut s = Signature::new();
        for r in &self.rules {
            s.add_all(r.predicates())?;
        }
        Ok(s)
    }

    /// All predicates occurring in the program.
    pub fn predicates(&self) -> BTreeSet<Predicate> {
        self.rules.iter().flat_map(Tgd::predicates).collect()
    }

    /// All constants occurring in the program.
    pub fn constants(&self) -> BTreeSet<Constant> {
        self.rules.iter().flat_map(|r| r.constants()).collect()
    }

    /// The maximum arity of a relation occurring in the program (the `k` used
    /// to build the P-atom alphabet `X_P = {z, x1, ..., xk}` in Def. 6).
    pub fn max_arity(&self) -> usize {
        self.rules.iter().map(Tgd::max_arity).max().unwrap_or(0)
    }

    /// True if every rule of the program is a *simple* TGD (§5 of the paper).
    pub fn is_simple(&self) -> bool {
        self.rules.iter().all(Tgd::is_simple)
    }

    /// True if every rule has a single head atom.
    pub fn all_single_head(&self) -> bool {
        self.rules.iter().all(Tgd::has_single_head_atom)
    }

    /// The rules whose head predicate set contains `predicate`.
    pub fn rules_defining(&self, predicate: Predicate) -> Vec<&Tgd> {
        self.rules
            .iter()
            .filter(|r| r.head.iter().any(|a| a.predicate == predicate))
            .collect()
    }

    /// The rules whose body mentions `predicate`.
    pub fn rules_using(&self, predicate: Predicate) -> Vec<&Tgd> {
        self.rules
            .iter()
            .filter(|r| r.body.iter().any(|a| a.predicate == predicate))
            .collect()
    }

    /// The rule with the given label, if any.
    pub fn rule_by_label(&self, label: &str) -> Option<&Tgd> {
        self.rules.iter().find(|r| r.label_str() == label)
    }

    /// A copy of the program in which every multi-head rule that can be
    /// soundly split (no shared existential head variables) is replaced by
    /// its single-head split.
    pub fn with_split_heads(&self) -> TgdProgram {
        TgdProgram::from_rules(self.rules.iter().flat_map(Tgd::split_head))
    }

    /// Attach labels `R1..Rn` (in order) to any rule that has no label yet.
    pub fn with_default_labels(&self) -> TgdProgram {
        let mut out = self.clone();
        for (i, r) in out.rules.iter_mut().enumerate() {
            if r.label.is_none() {
                r.label = Some(crate::symbols::Symbol::intern(&format!("R{}", i + 1)));
            }
        }
        out
    }

    /// Total number of atoms across all rules (a size measure used by the
    /// scaling experiments).
    pub fn total_atoms(&self) -> usize {
        self.rules.iter().map(|r| r.body.len() + r.head.len()).sum()
    }
}

impl fmt::Debug for TgdProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TgdProgram ({} rules):", self.rules.len())?;
        for r in &self.rules {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TgdProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}.")?;
        }
        Ok(())
    }
}

impl FromIterator<Tgd> for TgdProgram {
    fn from_iter<I: IntoIterator<Item = Tgd>>(iter: I) -> Self {
        TgdProgram::from_rules(iter)
    }
}

impl IntoIterator for TgdProgram {
    type Item = Tgd;
    type IntoIter = std::vec::IntoIter<Tgd>;
    fn into_iter(self) -> Self::IntoIter {
        self.rules.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::term::Term;

    fn var(n: &str) -> Term {
        Term::variable(n)
    }

    fn example1() -> TgdProgram {
        TgdProgram::from_rules(vec![
            Tgd::labelled(
                "R1",
                vec![
                    Atom::new("s", vec![var("Y1"), var("Y2"), var("Y3")]),
                    Atom::new("t", vec![var("Y4")]),
                ],
                vec![Atom::new("r", vec![var("Y1"), var("Y3")])],
            ),
            Tgd::labelled(
                "R2",
                vec![
                    Atom::new("v", vec![var("Y1"), var("Y2")]),
                    Atom::new("q", vec![var("Y2")]),
                ],
                vec![Atom::new("s", vec![var("Y1"), var("Y3"), var("Y2")])],
            ),
            Tgd::labelled(
                "R3",
                vec![Atom::new("r", vec![var("Y1"), var("Y2")])],
                vec![Atom::new("v", vec![var("Y1"), var("Y2")])],
            ),
        ])
    }

    #[test]
    fn metadata_of_example1() {
        let p = example1();
        assert_eq!(p.len(), 3);
        assert!(p.is_simple());
        assert!(p.all_single_head());
        assert_eq!(p.max_arity(), 3);
        assert!(p.constants().is_empty());
        assert_eq!(p.predicates().len(), 5); // r/2, s/3, t/1, v/2, q/1
        assert_eq!(p.signature().max_arity(), 3);
    }

    #[test]
    fn rules_defining_and_using() {
        let p = example1();
        let r_pred = Predicate::new("r", 2);
        assert_eq!(p.rules_defining(r_pred).len(), 1);
        assert_eq!(p.rules_using(r_pred).len(), 1);
        assert_eq!(p.rule_by_label("R3").unwrap().label_str(), "R3");
        assert!(p.rule_by_label("R99").is_none());
    }

    #[test]
    fn default_labels_fill_gaps() {
        let p = TgdProgram::from_rules(vec![Tgd::new(
            vec![Atom::new("a", vec![var("X")])],
            vec![Atom::new("b", vec![var("X")])],
        )]);
        let labelled = p.with_default_labels();
        assert_eq!(labelled.rules()[0].label_str(), "R1");
    }

    #[test]
    fn split_heads_preserves_single_head_rules() {
        let p = example1();
        assert_eq!(p.with_split_heads().len(), 3);
    }

    #[test]
    fn total_atoms_counts_bodies_and_heads() {
        let p = example1();
        assert_eq!(p.total_atoms(), 2 + 1 + 2 + 1 + 1 + 1);
    }

    #[test]
    fn arity_conflicts_are_detected() {
        let p = TgdProgram::from_rules(vec![Tgd::new(
            vec![Atom::new("r", vec![var("X")])],
            vec![Atom::new("r", vec![var("X"), var("Y")])],
        )]);
        assert!(p.try_signature().is_err());
    }

    #[test]
    fn iteration_round_trip() {
        let p = example1();
        let q: TgdProgram = p.clone().into_iter().collect();
        assert_eq!(p, q);
    }
}
